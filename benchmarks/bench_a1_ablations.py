"""A1 — ablations over the library's design choices.

Three ablations the DESIGN.md constants bake in:

* **A1a — the constant C** in λ' = λ/(C log n): smaller C means more trees
  (faster pipeline) but a higher w.h.p. failure rate for Theorem 2's event.
  We sweep C and report parts, decomposition success over 10 seeds, and the
  end-to-end broadcast rounds when successful — locating the sweet spot the
  default C = 2 sits near.
* **A1b — message→tree assignment**: the paper's contiguous ranges vs
  round-robin vs a random assignment. All three balance loads to O(k/λ');
  contiguous is what Lemma 3 gives for free. Measured pipeline rounds
  should be within noise of each other — we verify none is secretly
  load-bearing.
* **A1c — redundancy r** (the resilience extension): rounds vs surviving a
  dead color class, r ∈ {1, 2, 3}.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import (
    build_tree_packing,
    build_packing_with_retry,
    fast_broadcast,
    num_parts,
    random_partition,
    redundant_broadcast,
    tree_edge_ids,
    uniform_random_placement,
)
from repro.core.broadcast import _bfs_view
from repro.graphs import thick_cycle
from repro.primitives.pipeline import run_tree_broadcast
from repro.util.errors import ValidationError
from repro.util.rng import rng_from_seed
from repro.util.tables import Table


def _ablate_C(g, lam, k):
    table = Table(
        ["C", "parts", "success/10", "rounds(best seed)"],
        title="A1a — the Theorem 2 constant C (thick cycle n=%d, λ=%d)" % (g.n, lam),
    )
    pl = uniform_random_placement(g.n, k, seed=1)
    rows = []
    for C in (0.75, 1.0, 1.5, 2.0, 3.0):
        parts = num_parts(lam, g.n, C)
        successes = 0
        rounds = None
        for seed in range(10):
            decomp = random_partition(g, parts, seed)
            try:
                packing = build_tree_packing(decomp, distributed=False)
            except ValidationError:
                continue
            successes += 1
            if rounds is None:
                res = fast_broadcast(g, pl, packing=packing, seed=seed)
                rounds = res.rounds
        table.add_row([C, parts, successes, rounds if rounds is not None else "-"])
        rows.append((C, parts, successes, rounds))
    table.print()
    # Shape: success rate is monotone non-decreasing in C; more parts help
    # rounds while they succeed.
    succ = [s for _, _, s, _ in rows]
    assert succ[-1] == 10, "C=3 must be reliable"
    assert succ == sorted(succ), f"success must not degrade as C grows: {succ}"
    return rows


def _ablate_assignment(g, lam, k):
    parts = num_parts(lam, g.n, C=1.5)
    packing, _ = build_packing_with_retry(g, parts, seed=3, distributed=False)
    trees = {c: _bfs_view(packing, c) for c in range(parts)}
    rng = rng_from_seed(4)
    owners = rng.integers(g.n, size=k)

    def placement_for(policy: str):
        per = {c: {} for c in range(parts)}
        K = -(-k // parts)
        for j in range(1, k + 1):
            if policy == "contiguous":
                c = min((j - 1) // K, parts - 1)
            elif policy == "round-robin":
                c = (j - 1) % parts
            else:
                c = int(rng.integers(parts))
            per[c].setdefault(int(owners[j - 1]), []).append(j)
        return per

    table = Table(
        ["assignment", "rounds", "max_congestion", "max_tree_load"],
        title="A1b — message→tree assignment policy",
    )
    rows = []
    for policy in ("contiguous", "round-robin", "random"):
        per = placement_for(policy)
        out = run_tree_broadcast(g, trees, per)
        load = max(sum(len(v) for v in per[c].values()) for c in range(parts))
        table.add_row([policy, out.rounds, out.max_congestion, load])
        rows.append((policy, out.rounds))
    table.print()
    # Shape: policies agree within ~35% (random has Θ(√(k log/parts)) skew).
    rs = [r for _, r in rows]
    assert max(rs) <= 1.35 * min(rs), f"assignment policy unexpectedly matters: {rows}"
    return rows


def _ablate_redundancy(g, lam, k):
    parts = num_parts(lam, g.n, C=1.5)
    packing, _ = build_packing_with_retry(g, parts, seed=5, distributed=False)
    pl = uniform_random_placement(g.n, k, seed=6)
    dead = tree_edge_ids(packing, 0)
    table = Table(
        ["r", "rounds", "delivered(dead tree)", "min_coverage"],
        title="A1c — redundancy vs a sabotaged color class",
    )
    rows = []
    for r in range(1, parts + 1):
        rep = redundant_broadcast(
            g, pl, packing, redundancy=r, dead_edges=dead, seed=7
        )
        table.add_row(
            [r, rep.rounds, f"{rep.fully_delivered}/{rep.k}",
             round(rep.min_coverage, 2)]
        )
        rows.append((r, rep))
    table.print()
    assert rows[0][1].fully_delivered < k  # r=1 must lose the dead tree
    assert all(rep.fully_delivered == k for _, rep in rows[1:])
    # Cost grows roughly linearly in r.
    assert rows[-1][1].rounds <= (parts + 1) * rows[0][1].rounds + 50
    return rows


def run_experiment():
    g = thick_cycle(12, 10)  # n = 120, λ = 20
    lam = 20
    k = 240
    a = _ablate_C(g, lam, k)
    b = _ablate_assignment(g, lam, k)
    c = _ablate_redundancy(g, lam, k)
    return a, b, c


def test_a1_ablations(benchmark):
    run_once(benchmark, run_experiment)
