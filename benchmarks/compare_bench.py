#!/usr/bin/env python
"""Cross-PR perf regression gate over BENCH_E13.json (ROADMAP open item).

Usage::

    python benchmarks/compare_bench.py --old prev/BENCH_E13.json \
        [--new BENCH_E13.json] [--threshold 2.0] [--min-seconds 0.05]

Walks both artifacts, collects every numeric leaf whose key ends in
``seconds`` (the wall clocks E6/E8/E13/E16/E17 record), and fails (exit 1)
when the current value exceeds ``threshold ×`` the previous one for any
pipeline measured in both files. Leaves whose key ends in ``qps``
(queries/sec — the E18 batched-throughput floor) gate in the opposite
direction: the build fails when the current throughput drops below
``old / threshold``. Timings under ``--min-seconds`` in the old
artifact are skipped — at the sub-50 ms scale a 2× "regression" is scheduler
noise, not a pipeline change. Metrics present in only one artifact are
one-sided: sections the previous PR didn't measure are "new", sections this
PR no longer measures are "retired" — both are notices, never gate failures,
so the first PR adding (or removing) a bench surface passes the gate.

A missing ``--old`` file exits 0 with a notice: the first PR after the gate
lands, and any PR whose CI cannot fetch the previous artifact, should not
fail on bootstrap. CI wires this after downloading the prior run's
``bench-e13-*`` artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


_IDENTITY_KEYS = ("scenario", "budget", "batch", "n", "k", "lam", "redundancy")


def _entry_label(value, index: int) -> str:
    """Stable label for a list entry: identifying fields when present, so
    reordering/inserting benchmark rows across PRs never pairs up timings
    of *different* scenarios; positional index only as a last resort."""
    if isinstance(value, dict):
        ident = [
            f"{key}={value[key]}"
            for key in _IDENTITY_KEYS
            if isinstance(value.get(key), (str, int))
        ]
        if ident:
            return f"[{','.join(ident)}]"
    return f"[{index}]"


def _walk_suffix(node, suffix: str, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (int, float)) and str(key).endswith(suffix):
                out[path] = float(value)
            else:
                out.update(_walk_suffix(value, suffix, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(
                _walk_suffix(value, suffix, f"{prefix}{_entry_label(value, i)}")
            )
    return out


def walk_seconds(node, prefix: str = "") -> dict[str, float]:
    """Flatten ``{path: value}`` for every numeric leaf keyed ``*seconds``."""
    return _walk_suffix(node, "seconds", prefix)


def walk_qps(node, prefix: str = "") -> dict[str, float]:
    """Flatten ``{path: value}`` for every numeric leaf keyed ``*qps``."""
    return _walk_suffix(node, "qps", prefix)


def walk_phases(node, prefix: str = "") -> dict[str, dict[str, float]]:
    """Flatten ``{path: {phase: seconds}}`` for every dict keyed ``*phases``.

    These are the per-phase breakdowns the traced benchmarks record next
    to their wall clocks (e.g. ``e13_quick.vec_phases`` beside
    ``e13_quick.vec_seconds``) — the data :func:`attribute` uses to name
    the phase behind a regression.
    """
    out: dict[str, dict[str, float]] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if (
                str(key).endswith("phases")
                and isinstance(value, dict)
                and value
                and all(isinstance(v, (int, float)) for v in value.values())
            ):
                out[path] = {str(k): float(v) for k, v in value.items()}
            else:
                out.update(walk_phases(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(walk_phases(value, f"{prefix}{_entry_label(value, i)}"))
    return out


def attribute(
    path: str,
    old_phases: dict[str, dict[str, float]],
    new_phases: dict[str, dict[str, float]],
) -> str | None:
    """Name the phase that moved most behind the regressed timing at ``path``.

    Looks for a sibling ``*phases`` breakdown (same parent object,
    preferring one whose key shares the timing's stem: ``fast_seconds`` →
    ``fast_phases``) present in both artifacts, and reports the phase with
    the largest absolute wall-clock growth. Returns ``None`` when no
    breakdown is recorded on both sides.
    """
    parent, _, leaf = path.rpartition(".")
    stem = leaf[: -len("seconds")].rstrip("_")
    candidates = [
        p for p in new_phases
        if p in old_phases and p.rpartition(".")[0] == parent
    ]
    if not candidates:
        return None
    preferred = [
        p for p in candidates
        if stem and p.rpartition(".")[2].startswith(stem)
    ]
    ppath = sorted(preferred or candidates)[0]
    old_p, new_p = old_phases[ppath], new_phases[ppath]
    movers = [
        (new_p[name] - old_p[name], name)
        for name in old_p
        if name in new_p
    ]
    if not movers:
        return None
    delta, name = max(movers)
    if delta <= 0:
        return f"no recorded phase grew ({ppath})"
    return (
        f"phase '{name}' moved most: "
        f"{old_p[name]:.3f}s -> {new_p[name]:.3f}s (+{delta:.3f}s)"
    )


def compare(
    old: dict, new: dict, threshold: float, min_seconds: float
) -> tuple[list[str], list[str]]:
    """Returns (regressions, notes); regressions non-empty = gate fails."""
    old_secs = walk_seconds(old)
    new_secs = walk_seconds(new)
    old_phases = walk_phases(old)
    new_phases = walk_phases(new)
    regressions: list[str] = []
    notes: list[str] = []
    for path, before in sorted(old_secs.items()):
        after = new_secs.get(path)
        if after is None:
            notes.append(f"retired: {path} (was {before:.3f}s)")
            continue
        # A regression must clear the ratio gate AND grow by a real absolute
        # amount — sub-min_seconds deltas on tiny timings are scheduler
        # noise, but a tiny timing blowing up past the floor still fails.
        if (after - before) < min_seconds:
            continue
        if after > threshold * max(before, 1e-9):
            line = (
                f"{path}: {before:.3f}s -> {after:.3f}s "
                f"({after / max(before, 1e-9):.1f}x > {threshold:.1f}x gate)"
            )
            blame = attribute(path, old_phases, new_phases)
            if blame:
                line += f" — {blame}"
            regressions.append(line)
    for path in sorted(set(new_secs) - set(old_secs)):
        notes.append(f"new: {path} = {new_secs[path]:.3f}s")
    # Throughput floor: *qps leaves gate downward — batching machinery that
    # silently degrades to per-query speed is exactly what this catches.
    old_qps = walk_qps(old)
    new_qps = walk_qps(new)
    for path, before in sorted(old_qps.items()):
        after = new_qps.get(path)
        if after is None:
            notes.append(f"retired: {path} (was {before:.1f} q/s)")
            continue
        if after * threshold < before:
            regressions.append(
                f"{path}: {before:.1f} q/s -> {after:.1f} q/s "
                f"({before / max(after, 1e-9):.1f}x slower > "
                f"{threshold:.1f}x gate)"
            )
    for path in sorted(set(new_qps) - set(old_qps)):
        notes.append(f"new: {path} = {new_qps[path]:.1f} q/s")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--old", required=True, help="previous CI artifact")
    parser.add_argument(
        "--new",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_E13.json"),
        help="current artifact (default: repo BENCH_E13.json)",
    )
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when new > threshold * old (default 2.0)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="ignore regressions growing less than this "
                        "many absolute seconds (noise floor)")
    args = parser.parse_args(argv)

    old_path, new_path = Path(args.old), Path(args.new)
    if not old_path.exists():
        print(f"compare_bench: no previous artifact at {old_path}; skipping gate")
        return 0
    if not new_path.exists():
        print(f"compare_bench: current artifact {new_path} missing", file=sys.stderr)
        return 1
    try:
        old = json.loads(old_path.read_text())
    except json.JSONDecodeError:
        print(f"compare_bench: previous artifact {old_path} unreadable; skipping gate")
        return 0
    new = json.loads(new_path.read_text())

    regressions, notes = compare(old, new, args.threshold, args.min_seconds)
    for note in notes:
        print(f"  note  {note}")
    if regressions:
        print(f"compare_bench: {len(regressions)} wall-clock regression(s):")
        for reg in regressions:
            print(f"  FAIL  {reg}")
        return 1
    print(
        f"compare_bench: ok — {len(walk_seconds(new))} timings and "
        f"{len(walk_qps(new))} throughputs, none beyond "
        f"{args.threshold:.1f}x of the previous artifact"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
