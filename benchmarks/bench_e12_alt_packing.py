"""E12 — Appendix A: Lemma 9 (k,d)-connectivity and the Theorem 10 packing.

Two sub-tables:

* **Lemma 9** — sampled node pairs on random-regular hosts: the number of
  edge-disjoint short paths found vs the λ/5 target, and the max path
  length vs the 16n/δ target.
* **Theorem 10** — the congestion-penalized packing: λ trees, measured
  congestion vs the O(log n) target, and max tree diameter vs the
  O((n log n)/δ) target, swept over n.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.core import (
    greedy_low_diameter_packing,
    kd_connectivity_witness,
    lemma9_parameters,
)
from repro.graphs import random_regular
from repro.util.tables import Table


def run_experiment():
    lemma9 = Table(
        ["n", "lam", "pair", "paths_found", "target(λ/5)", "max_len",
         "target(16n/δ)", "ok"],
        title="E12a / Lemma 9 — (λ/5, 16n/δ)-connectivity witnesses",
    )
    l9_rows = []
    for n, d, seed in ((100, 10, 1), (200, 16, 2), (400, 20, 3)):
        g = random_regular(n, d, seed=seed)
        k_t, d_t = lemma9_parameters(g, d)
        for u, v in ((0, n // 2), (1, n - 1)):
            ps = kd_connectivity_witness(g, u, v, max_paths=math.ceil(k_t))
            ok = ps.count >= k_t and ps.max_length <= d_t
            lemma9.add_row(
                [n, d, f"{u}-{v}", ps.count, round(k_t, 1), ps.max_length,
                 round(d_t), ok]
            )
            l9_rows.append(ok)
    lemma9.print()
    assert all(l9_rows)

    thm10 = Table(
        ["n", "lam(=trees)", "congestion", "target(3 ln n)", "max_diam",
         "target(n ln n/δ)", "ok"],
        title="E12b / Theorem 10 — greedy congestion-penalized packing",
    )
    t10_rows = []
    for n, d, seed in ((100, 10, 4), (200, 16, 5), (400, 20, 6)):
        g = random_regular(n, d, seed=seed)
        packing = greedy_low_diameter_packing(g, d, seed=seed)
        cong_target = 3 * math.log(n)
        diam_target = n * math.log(n) / d
        ok = packing.congestion <= cong_target and packing.max_diameter <= diam_target
        thm10.add_row(
            [n, d, packing.congestion, round(cong_target, 1),
             packing.max_diameter, round(diam_target), ok]
        )
        t10_rows.append((packing, ok))
    thm10.print()
    assert all(ok for _, ok in t10_rows)
    return l9_rows, t10_rows


def test_e12_alt_packing(benchmark):
    run_once(benchmark, run_experiment)
