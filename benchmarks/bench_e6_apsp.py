"""E6 — Theorem 4: (3,2)-approximate unweighted APSP in Õ(n/λ) rounds.

Rows sweep λ at (roughly) fixed n on thick cycles; columns: cluster count
(Õ(n/δ)), the round ledger split into simulated and charged phases, total
rounds, the Õ(n/λ) reference scale, and the certified (3, 2) envelope.

Shape assertions: the envelope holds everywhere (d ≤ d̃ ≤ 3d+2) and total
rounds *decrease* as λ grows at fixed n — the sublinearity that separates
this result from the Ω̃(n) general-graph APSP lower bounds.

**Backends.** The sweep itself runs on the vectorized engine (identical
ledgers, certified by ``tests/test_engine_equivalence.py``). A dedicated
cross-check then executes the full pipeline on *both* backends at the
largest simulator-feasible host: estimates, cluster assignments, and both
round ledgers must match bit-for-bit, and the vectorized path must be
≥ 20× faster wall-clock; the timing lands in ``BENCH_E13.json``.

Set ``E6_QUICK=1`` for the CI smoke: smallest host, both backends, ledger
equality asserted, no timing assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once, write_bench_artifact
from repro.apsp import approx_apsp_unweighted, check_32_approximation
from repro.graphs import thick_cycle
from repro.util.tables import Table


def _both_backends(g, lam, seed):
    """Full Theorem 4 pipeline on both backends: identical results, timed."""
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        res = approx_apsp_unweighted(g, lam=lam, C=1.5, seed=seed, backend=backend)
        out[backend] = (res, time.perf_counter() - t0)
    sim, vec = out["simulator"][0], out["vectorized"][0]
    assert np.array_equal(sim.estimate, vec.estimate), "APSP estimates diverged"
    assert np.array_equal(sim.clustering.s, vec.clustering.s)
    assert sim.simulated_rounds == vec.simulated_rounds, "simulated ledgers diverged"
    assert sim.charged_rounds == vec.charged_rounds, "charged ledgers diverged"
    return out


def run_quick():
    """CI smoke: smallest host, both backends, bit-identical pipelines."""
    g = thick_cycle(10, 6)  # n = 60, λ = 12
    out = _both_backends(g, lam=12, seed=5)
    ok, _ = check_32_approximation(g, out["vectorized"][0].estimate)
    assert ok
    write_bench_artifact(
        "e6_quick",
        {"n": g.n, "sim_seconds": round(out["simulator"][1], 4),
         "vec_seconds": round(out["vectorized"][1], 4),
         "speedup": round(out["simulator"][1] / out["vectorized"][1], 1)},
    )
    return out


def run_experiment():
    table = Table(
        ["n", "lam", "clusters", "sim_rounds", "charged", "total", "n/lam",
         "envelope_ok", "worst_mult"],
        title="E6 / Theorem 4 — (3,2)-approximate unweighted APSP",
    )
    hosts = [
        (thick_cycle(30, 4), 8),
        (thick_cycle(15, 8), 16),
        (thick_cycle(10, 12), 24),
        (thick_cycle(8, 15), 30),
    ]
    rows = []
    for g, lam in hosts:
        res = approx_apsp_unweighted(g, lam=lam, C=1.5, seed=5, backend="vectorized")
        ok, worst = check_32_approximation(g, res.estimate)
        sim = sum(res.simulated_rounds.values())
        charged = sum(res.charged_rounds.values())
        table.add_row(
            [g.n, lam, res.k_clusters, sim, charged, res.rounds,
             round(g.n / lam, 1), ok, round(worst, 2)]
        )
        rows.append((g, lam, res, ok))
    table.print()

    assert all(ok for _, _, _, ok in rows)
    # Shape: at n = 120 fixed, higher λ → cheaper broadcast phase.
    sims = [sum(r.simulated_rounds.values()) for _, _, r, _ in rows]
    assert sims[-1] < sims[0]

    # Backend cross-check + wall-clock speedup at the largest host the
    # simulator can stomach (n = 180 > the sweep's 120).
    g = thick_cycle(10, 18)  # n = 180, λ = 36
    out = _both_backends(g, lam=36, seed=5)
    speedup = out["simulator"][1] / out["vectorized"][1]
    print(
        f"E6 backend cross-check (n={g.n}): sim {out['simulator'][1]:.2f}s, "
        f"vec {out['vectorized'][1]:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= 20.0, f"vectorized APSP speedup only {speedup:.1f}x"
    write_bench_artifact(
        "e6",
        {"n": g.n, "lam": 36,
         "sim_seconds": round(out["simulator"][1], 4),
         "vec_seconds": round(out["vectorized"][1], 4),
         "speedup": round(speedup, 1)},
    )
    return rows


def test_e6_apsp(benchmark):
    if os.environ.get("E6_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
