"""E6 — Theorem 4: (3,2)-approximate unweighted APSP in Õ(n/λ) rounds.

Rows sweep λ at (roughly) fixed n on thick cycles; columns: cluster count
(Õ(n/δ)), the round ledger split into simulated and charged phases, total
rounds, the Õ(n/λ) reference scale, and the certified (3, 2) envelope.

Shape assertions: the envelope holds everywhere (d ≤ d̃ ≤ 3d+2) and total
rounds *decrease* as λ grows at fixed n — the sublinearity that separates
this result from the Ω̃(n) general-graph APSP lower bounds.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.apsp import approx_apsp_unweighted, check_32_approximation
from repro.graphs import thick_cycle
from repro.util.tables import Table


def run_experiment():
    table = Table(
        ["n", "lam", "clusters", "sim_rounds", "charged", "total", "n/lam",
         "envelope_ok", "worst_mult"],
        title="E6 / Theorem 4 — (3,2)-approximate unweighted APSP",
    )
    hosts = [
        (thick_cycle(30, 4), 8),
        (thick_cycle(15, 8), 16),
        (thick_cycle(10, 12), 24),
        (thick_cycle(8, 15), 30),
    ]
    rows = []
    for g, lam in hosts:
        res = approx_apsp_unweighted(g, lam=lam, C=1.5, seed=5)
        ok, worst = check_32_approximation(g, res.estimate)
        sim = sum(res.simulated_rounds.values())
        charged = sum(res.charged_rounds.values())
        table.add_row(
            [g.n, lam, res.k_clusters, sim, charged, res.rounds,
             round(g.n / lam, 1), ok, round(worst, 2)]
        )
        rows.append((g, lam, res, ok))
    table.print()

    assert all(ok for _, _, _, ok in rows)
    # Shape: at n = 120 fixed, higher λ → cheaper broadcast phase.
    sims = [sum(r.simulated_rounds.values()) for _, _, r, _ in rows]
    assert sims[-1] < sims[0]
    return rows


def test_e6_apsp(benchmark):
    run_once(benchmark, run_experiment)
