"""E2 — Theorem 2 + §3.1: the random partition and its tree packing.

Paper claims: (a) all λ' = λ/(C log n) color classes are spanning with
diameter O((C n log n)/δ); (b) one parallel BFS turns them into λ'
edge-disjoint spanning trees of the same depth scale, in O((n log n)/δ)
rounds.

Rows sweep λ (via the host family) at comparable n; columns report class
count, worst class diameter vs bound, packing depth, and the certified
construction rounds from the CONGEST simulator.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import (
    build_packing_with_retry,
    num_parts,
    random_partition,
    theorem2_diameter_bound,
    validate_decomposition,
)
from repro.graphs import hypercube, random_regular, thick_cycle
from repro.util.tables import Table


def run_experiment():
    C = 1.5
    table = Table(
        [
            "graph",
            "n",
            "lam",
            "parts",
            "all_spanning",
            "max_class_diam",
            "bound",
            "packing_depth",
            "bfs_rounds",
            "edge_disjoint",
        ],
        title="E2 / Theorem 2 — random partition & tree packing (C = 1.5)",
    )
    hosts = [
        ("reg-d16", random_regular(300, 16, seed=1), 16),
        ("reg-d24", random_regular(300, 24, seed=2), 24),
        ("reg-d40", random_regular(300, 40, seed=3), 40),
        ("hcube-8", hypercube(8), 8),
        ("thick-24", thick_cycle(16, 12), 24),
    ]
    results = []
    for name, g, lam in hosts:
        parts = num_parts(lam, g.n, C=C)
        decomp = random_partition(g, parts, seed=11)
        rep = validate_decomposition(decomp, C=C)
        packing, attempts = build_packing_with_retry(
            g, parts, seed=11, distributed=True
        )
        table.add_row(
            [
                name,
                g.n,
                lam,
                parts,
                rep.all_spanning,
                rep.max_diameter,
                round(rep.bound),
                packing.max_depth,
                packing.construction_rounds,
                packing.is_edge_disjoint,
            ]
        )
        results.append((g, rep, packing))
    table.print()

    for g, rep, packing in results:
        assert packing.is_edge_disjoint
        assert packing.max_depth <= theorem2_diameter_bound(g.n, g.min_degree(), C)
        # Certified construction cost ~ depth, not ~ n (per attempt).
        assert packing.construction_rounds <= 8 * (packing.max_depth + 2)
    # Shape: more λ → more trees at fixed n.
    parts_by_lam = [p.size for _, _, p in results[:3]]
    assert parts_by_lam == sorted(parts_by_lam)
    return results


def test_e2_decomposition(benchmark):
    run_once(benchmark, run_experiment)
