"""E9 — the unknown-λ exponential search (§1.1 Remark).

Rows sweep the δ/λ gap (cliques joined by thin bridges: δ fixed by the
clique, λ by the bridge width); columns: search iterations vs the
⌈log(δ/λ)⌉+1 prediction, validation rounds spent, the accepted guess, and
the end-to-end broadcast rounds with and without knowing λ.

Shape assertions: iterations track log(δ/λ); the unknown-λ total stays
within a constant factor of the known-λ run.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.core import (
    broadcast_unknown_lambda,
    fast_broadcast,
    uniform_random_placement,
)
from repro.graphs import path_of_cliques
from repro.util.tables import Table


def run_experiment():
    table = Table(
        ["delta", "lam", "log2(δ/λ)", "iterations", "accepted", "valid_rounds",
         "rounds_unknown", "rounds_known"],
        title="E9 / unknown-λ exponential search — path of cliques",
    )
    rows = []
    for bridge in (12, 6, 3, 1):
        g = path_of_cliques(4, 13, bridge)  # δ = 12, λ = bridge
        delta = g.min_degree()
        k = g.n
        pl = uniform_random_placement(g.n, k, seed=1)
        unknown, search = broadcast_unknown_lambda(g, pl, seed=2, C=1.0)
        known = fast_broadcast(g, pl, lam=bridge, C=1.0, seed=2)
        table.add_row(
            [
                delta,
                bridge,
                round(math.log2(delta / bridge), 1),
                search.iterations,
                search.accepted_guess,
                search.total_validation_rounds,
                unknown.rounds,
                known.rounds,
            ]
        )
        rows.append((delta, bridge, search, unknown, known))
    table.print()

    # Shape: iterations grow with the δ/λ gap, bounded by log2(δ/λ)+2.
    iters = [s.iterations for _, _, s, _, _ in rows]
    assert iters == sorted(iters)
    for delta, bridge, search, _, _ in rows:
        assert search.iterations <= math.log2(max(delta / bridge, 1)) + 2
    # Shape: unknown-λ overhead is a constant factor.
    for _, _, _, unknown, known in rows:
        assert unknown.rounds <= 5 * known.rounds + 200
    return rows


def test_e9_lambda_search(benchmark):
    run_once(benchmark, run_experiment)
