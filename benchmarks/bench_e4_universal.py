"""E4 — universal optimality: measured/(k/λ) = O(log n) across families.

Paper claim (§3.2): for k = Ω(n) the fast broadcast runs in O(OPT·log n)
rounds on *every* graph, where OPT ≥ k/λ is forced by Theorem 3. So the
ratio measured/(k/λ) must stay within an O(log n) band across wildly
different topologies — that band is exactly what this experiment prints.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.core import fast_broadcast, uniform_random_placement
from repro.graphs import (
    edge_connectivity,
    hypercube,
    random_regular,
    thick_cycle,
    torus_grid,
)
from repro.theory import universal_optimality_ratio
from repro.util.tables import Table


def run_experiment():
    table = Table(
        ["graph", "n", "lam", "k", "rounds", "k/lam", "ratio", "ln n", "ratio/ln n"],
        title="E4 / universal optimality — rounds ÷ (k/λ) across families (k = 3n)",
    )
    hosts = [
        ("reg-d12", random_regular(240, 12, seed=1), 12),
        ("reg-d24", random_regular(240, 24, seed=2), 24),
        ("thick", thick_cycle(20, 12), 24),
        ("hcube", hypercube(8), 8),
        ("torus", torus_grid(12, 12), 4),
    ]
    ratios = []
    for name, g, lam in hosts:
        assert edge_connectivity(g) == lam
        k = 3 * g.n
        pl = uniform_random_placement(g.n, k, seed=3)
        res = fast_broadcast(g, pl, lam=lam, C=1.5, seed=4, distributed_packing=False)
        ratio = universal_optimality_ratio(res.rounds, k, lam)
        lnn = math.log(g.n)
        table.add_row(
            [name, g.n, lam, k, res.rounds, round(k / lam, 1), round(ratio, 1),
             round(lnn, 1), round(ratio / lnn, 2)]
        )
        ratios.append(ratio / lnn)
    table.print()

    # Shape: the normalized ratio is Θ(1) — bounded above and not collapsing
    # to zero — across all five families.
    assert max(ratios) <= 12.0, f"ratio/ln n blew up: {ratios}"
    assert min(ratios) >= 0.2
    assert max(ratios) / min(ratios) <= 15.0
    return ratios


def test_e4_universal(benchmark):
    run_once(benchmark, run_experiment)
