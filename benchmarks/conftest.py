"""Shared helpers for the experiment benchmarks (E1–E12, DESIGN.md §5).

Every benchmark:

1. runs one full experiment sweep exactly once (``benchmark.pedantic`` with
   a single round — the sweeps are minutes-scale, statistical timing noise
   is irrelevant next to the *measured round counts*, which are exact),
2. prints its table in the fixed layout EXPERIMENTS.md quotes,
3. **asserts the paper-shape** (who wins, scaling direction, approximation
   envelope) so a regression in any algorithm fails the bench run loudly.

Perf-tracking benchmarks (E6, E8, E13) additionally merge their wall-clock
and backend-speedup numbers into ``BENCH_E13.json`` via
:func:`write_bench_artifact`; CI uploads the file so the perf trajectory is
comparable across PRs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path



def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def bench_artifact_path() -> Path:
    """Where the machine-readable perf artifact lives (repo root by default;
    override with ``BENCH_E13_PATH``)."""
    env = os.environ.get("BENCH_E13_PATH")
    if env:
        return Path(env)
    return Path(__file__).resolve().parent.parent / "BENCH_E13.json"


def trace_artifact_path() -> Path:
    """Where the E13 quick-smoke trace artifact lives (repo root by default;
    override with ``TRACE_E13_PATH``). CI uploads it and runs
    ``repro trace`` on it as a schema smoke test."""
    env = os.environ.get("TRACE_E13_PATH")
    if env:
        return Path(env)
    return Path(__file__).resolve().parent.parent / "TRACE_E13_QUICK.json"


def write_bench_artifact(section: str, payload) -> Path:
    """Merge one benchmark's ``payload`` under ``section`` in BENCH_E13.json.

    Read-modify-write so E6, E8, and E13 can each contribute their own
    section regardless of execution order; returns the path written.
    """
    path = bench_artifact_path()
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}  # a torn artifact from an interrupted run: start over
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
