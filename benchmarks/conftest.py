"""Shared helpers for the experiment benchmarks (E1–E12, DESIGN.md §5).

Every benchmark:

1. runs one full experiment sweep exactly once (``benchmark.pedantic`` with
   a single round — the sweeps are minutes-scale, statistical timing noise
   is irrelevant next to the *measured round counts*, which are exact),
2. prints its table in the fixed layout EXPERIMENTS.md quotes,
3. **asserts the paper-shape** (who wins, scaling direction, approximation
   envelope) so a regression in any algorithm fails the bench run loudly.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
