"""E8 — Theorem 7: (1+ε)-approximation of all cuts in Õ(n/(λε²)) rounds.

Rows sweep ε; columns: sparsifier size (vs m), the broadcast rounds (the
dominant Õ(n/(λε²)) term), charged sparsifier-construction rounds, and the
max relative cut error over random + degree + minimum cuts, with the
Spielman–Srivastava effective-resistance sampler as an independent
cross-check column.

Shape assertions: the measured error respects ε everywhere; smaller ε costs
more rounds and a bigger sparsifier.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.cuts import (
    approx_all_cuts,
    effective_resistance_sparsifier,
    evaluate_cut_quality,
)
from repro.graphs import thick_cycle
from repro.util.tables import Table


def run_experiment():
    g = thick_cycle(12, 12)  # n = 144, λ = 24, m = 1728 (dense enough)
    lam = 24
    table = Table(
        ["eps", "tau", "spars_m", "host_m", "bcast_rounds", "charged",
         "max_err(KX)", "max_err(ER)", "ok"],
        title=f"E8 / Theorem 7 — all-cuts approximation on n={g.n}, λ={lam}",
    )
    rows = []
    # τ per the bundle_size scale: single-node (degree) cuts are the
    # high-variance worst case, so τ must grow as ε shrinks.
    for eps, tau in ((0.6, 3), (0.4, 4), (0.25, 5)):
        res = approx_all_cuts(g, eps=eps, lam=lam, C=1.5, seed=9, tau=tau)
        q = evaluate_cut_quality(g, res.sparsifier.sparsifier, seed=10)
        er = effective_resistance_sparsifier(g, eps=eps, seed=11)
        q_er = evaluate_cut_quality(g, er.sparsifier, seed=10)
        ok = q["max_rel_error"] <= eps
        table.add_row(
            [
                eps,
                tau,
                res.sparsifier.m,
                g.m,
                res.simulated_rounds["broadcast_sparsifier"],
                res.charged_rounds["koutis_xu"],
                round(q["max_rel_error"], 3),
                round(q_er["max_rel_error"], 3),
                ok,
            ]
        )
        rows.append((eps, res, q, ok))
    table.print()

    assert all(ok for _, _, _, ok in rows)
    # Shape: tighter ε → bigger sparsifier and more broadcast rounds.
    sizes = [r.sparsifier.m for _, r, _, _ in rows]
    assert sizes == sorted(sizes)
    return rows


def test_e8_cuts(benchmark):
    run_once(benchmark, run_experiment)
