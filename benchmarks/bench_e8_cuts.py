"""E8 — Theorem 7: (1+ε)-approximation of all cuts in Õ(n/(λε²)) rounds.

Rows sweep ε; columns: sparsifier size (vs m), the broadcast rounds (the
dominant Õ(n/(λε²)) term), charged sparsifier-construction rounds, and the
max relative cut error over random + degree + minimum cuts, with the
Spielman–Srivastava effective-resistance sampler as an independent
cross-check column.

Shape assertions: the measured error respects ε everywhere; smaller ε costs
more rounds and a bigger sparsifier.

**Backends.** The sweep runs on the vectorized engine (identical
sparsifiers and ledgers, certified by ``tests/test_engine_equivalence.py``).
A dedicated cross-check executes the full Theorem 7 pipeline on *both*
backends at the tightest-ε config: sparsifier edges/weights and both round
ledgers must match bit-for-bit, and the vectorized path must be ≥ 20×
faster wall-clock; the timing lands in ``BENCH_E13.json``.

Set ``E8_QUICK=1`` for the CI smoke: one small config, both backends,
equality asserted, no timing assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once, write_bench_artifact
from repro.cuts import (
    approx_all_cuts,
    effective_resistance_sparsifier,
    evaluate_cut_quality,
)
from repro.graphs import thick_cycle
from repro.util.tables import Table


def _both_backends(g, eps, lam, tau, seed):
    """Full Theorem 7 pipeline on both backends: identical results, timed."""
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        res = approx_all_cuts(
            g, eps=eps, lam=lam, C=1.5, seed=seed, tau=tau, backend=backend
        )
        out[backend] = (res, time.perf_counter() - t0)
    sim, vec = out["simulator"][0], out["vectorized"][0]
    assert sim.sparsifier.sparsifier == vec.sparsifier.sparsifier
    assert np.array_equal(
        sim.sparsifier.sparsifier.weights, vec.sparsifier.sparsifier.weights
    ), "sparsifier weights diverged"
    assert sim.simulated_rounds == vec.simulated_rounds, "simulated ledgers diverged"
    assert sim.charged_rounds == vec.charged_rounds, "charged ledgers diverged"
    return out


def run_quick():
    """CI smoke: one small config, both backends, bit-identical pipelines."""
    g = thick_cycle(8, 8)  # n = 64, λ = 16
    out = _both_backends(g, eps=0.6, lam=16, tau=3, seed=9)
    q = evaluate_cut_quality(g, out["vectorized"][0].sparsifier.sparsifier, seed=10)
    assert q["max_rel_error"] <= 0.6
    write_bench_artifact(
        "e8_quick",
        {"n": g.n, "sim_seconds": round(out["simulator"][1], 4),
         "vec_seconds": round(out["vectorized"][1], 4),
         "speedup": round(out["simulator"][1] / out["vectorized"][1], 1)},
    )
    return out


def run_experiment():
    g = thick_cycle(12, 12)  # n = 144, λ = 24, m = 1728 (dense enough)
    lam = 24
    table = Table(
        ["eps", "tau", "spars_m", "host_m", "bcast_rounds", "charged",
         "max_err(KX)", "max_err(ER)", "ok"],
        title=f"E8 / Theorem 7 — all-cuts approximation on n={g.n}, λ={lam}",
    )
    rows = []
    # τ per the bundle_size scale: single-node (degree) cuts are the
    # high-variance worst case, so τ must grow as ε shrinks.
    for eps, tau in ((0.6, 3), (0.4, 4), (0.25, 5)):
        res = approx_all_cuts(
            g, eps=eps, lam=lam, C=1.5, seed=9, tau=tau, backend="vectorized"
        )
        q = evaluate_cut_quality(g, res.sparsifier.sparsifier, seed=10)
        er = effective_resistance_sparsifier(g, eps=eps, seed=11)
        q_er = evaluate_cut_quality(g, er.sparsifier, seed=10)
        ok = q["max_rel_error"] <= eps
        table.add_row(
            [
                eps,
                tau,
                res.sparsifier.m,
                g.m,
                res.simulated_rounds["broadcast_sparsifier"],
                res.charged_rounds["koutis_xu"],
                round(q["max_rel_error"], 3),
                round(q_er["max_rel_error"], 3),
                ok,
            ]
        )
        rows.append((eps, res, q, ok))
    table.print()

    assert all(ok for _, _, _, ok in rows)
    # Shape: tighter ε → bigger sparsifier and more broadcast rounds.
    sizes = [r.sparsifier.m for _, r, _, _ in rows]
    assert sizes == sorted(sizes)

    # Backend cross-check + wall-clock speedup at the tightest-ε config —
    # the most bundle levels, i.e. the heaviest simulator load E8 produces.
    out = _both_backends(g, eps=0.25, lam=lam, tau=5, seed=9)
    speedup = out["simulator"][1] / out["vectorized"][1]
    print(
        f"E8 backend cross-check (n={g.n}, eps=0.25): "
        f"sim {out['simulator'][1]:.2f}s, vec {out['vectorized'][1]:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 20.0, f"vectorized cuts speedup only {speedup:.1f}x"
    write_bench_artifact(
        "e8",
        {"n": g.n, "eps": 0.25,
         "sim_seconds": round(out["simulator"][1], 4),
         "vec_seconds": round(out["vectorized"][1], 4),
         "speedup": round(speedup, 1)},
    )
    return rows


def test_e8_cuts(benchmark):
    if os.environ.get("E8_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
