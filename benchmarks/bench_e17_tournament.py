"""E17 — the adversary tournament: attack × defense at matched budgets.

E16 ended one-sided: the targeted-cut adversary beheads a shared-root
packing for the price of one node's degree, and no redundancy level helps.
E17 closes the loop with :func:`repro.congest.tournament.run_tournament` —
every scenario of the adversary library against the countermeasure grid
(root policies × redundancy, with the coverage-repair loop scoring what
graceful degradation buys back):

* **E17a — attack/defense separation at n = 10⁴**: the acceptance surface.
  At a doubled leader-degree budget the `TargetedCutAdversary` still zeroes
  every shared-root message (the E16 reproduction), while spread-root and
  cut-aware packings keep min-coverage ≈ 1 at the *same* budget and
  decomposition seed — the defense, strictly separated.
* **E17b — repair at half the leader-degree budget**: a cut that beheads
  color classes without fully isolating the root; the repair loop re-roots
  the broken trees and recovers full coverage without a rebuild. (At the
  full leader-degree budget the root is severed outright — then no repair
  can help, which E17a's shared-r1 row already records.)

Since PR 9 the tournament evaluates each defense's attack column as one
:func:`repro.core.resilient.evaluate_fault_grid` call (the multi-query
plane: message numbering, tree views, and redundancy splits hoisted out of
the per-cell loop), so the grids below are a handful of numpy passes rather
than |attacks| × |defenses| cold starts — with every cell still
bit-identical to the solo ``redundant_broadcast`` it replaces.

Scores (min/mean coverage, certified rounds and bits, repair cost) and wall
clocks are merged into ``BENCH_E13.json``; the recorded ``attacks`` entries
are the exact `to_json` serializations of the adversaries run, so every
cell is replayable.

Set ``E17_QUICK=1`` for the CI smoke: a small host, a 2×2 grid on both
backends, payload equality (modulo the backend tag) asserted, no timing
assertions.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once, write_bench_artifact
from repro.congest.tournament import run_tournament
from repro.core import uniform_random_placement
from repro.graphs import thick_cycle
from repro.util.tables import Table


def _placement(n: int, k: int, seed: int) -> dict[int, int]:
    """Uniform placement with node 0 (the cut target) excluded: no defense
    can deliver *from* a severed source, so keeping sources off it makes
    min-coverage measure the defenses, not the placement."""
    pl = uniform_random_placement(n, k, seed=seed)
    pl.pop(0, None)
    return pl


def run_quick():
    """CI smoke: 2 adversaries x 2 defenses, both backends, identical grids."""
    g = thick_cycle(10, 10)
    pl = _placement(g.n, 60, seed=3)
    payloads = {}
    secs = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        res = run_tournament(
            g, 60, parts=3, seed=2, backend=backend,
            adversaries=["dead-tree", "loss"],
            defenses=["shared-r1", "spread-r2"],
            placement=pl,
        )
        secs[backend] = time.perf_counter() - t0
        pay = res.to_payload()
        assert pay.pop("backend") == backend
        payloads[backend] = pay
    assert payloads["simulator"] == payloads["vectorized"], "tournament drift"
    res_cells = payloads["vectorized"]["cells"]
    by = {(c["adversary"], c["defense"]): c for c in res_cells}
    # r=1 loses the dead tree and buys it back with a rebuild; r=2 never
    # notices — the E16 separation, now visible inside one scored grid.
    assert by[("dead-tree", "shared-r1")]["min_coverage"] == 0.0
    assert by[("dead-tree", "shared-r1")]["repaired_min_coverage"] == 1.0
    assert by[("dead-tree", "shared-r1")]["rebuilt"]
    assert by[("dead-tree", "spread-r2")]["min_coverage"] == 1.0
    write_bench_artifact(
        "e17_quick",
        {
            "n": g.n,
            "budget": payloads["vectorized"]["budget"],
            "sim_seconds": round(secs["simulator"], 4),
            "vec_seconds": round(secs["vectorized"], 4),
        },
    )
    return payloads


def run_experiment():
    artifact: dict[str, object] = {}
    parts, k = 4, 200
    g = thick_cycle(500, 20)
    n = g.n
    assert n >= 10_000
    pl = _placement(n, k, seed=3)

    # ---- E17a: attack/defense separation at 2x leader degree ------------- #
    budget = 2 * int(g.degrees()[0])
    t0 = time.perf_counter()
    res = run_tournament(
        g, k, parts=parts, budget=budget, seed=2, backend="vectorized",
        adversaries=["targeted-cut"],
        defenses=["shared-r1", "spread-r2", "cut-aware-r2"],
        placement=pl,
    )
    secs_a = time.perf_counter() - t0
    ta = Table(
        ["defense", "min_cov", "mean_cov", "full", "rounds", "bits"],
        title=f"E17a — targeted-cut at budget {budget} (n={n}, k={res.k})",
    )
    for c in res.cells:
        ta.add_row([
            c.defense, round(c.min_coverage, 4), round(c.mean_coverage, 4),
            f"{c.fully_delivered}/{c.k}", c.rounds, c.total_bits,
        ])
    ta.print()
    shared = res.cell("targeted-cut", "shared-r1")
    spread = res.cell("targeted-cut", "spread-r2")
    aware = res.cell("targeted-cut", "cut-aware-r2")
    # Acceptance: the E16 attack reproduces (shared-root collapse), and the
    # countermeasures strictly separate at the same budget and seed.
    assert shared.min_coverage == 0.0 and shared.mean_coverage == 0.0
    assert spread.min_coverage > 0.99 > shared.min_coverage
    assert aware.min_coverage > 0.99 > shared.min_coverage
    artifact["e17a"] = {
        "n": n, "k": res.k, "budget": budget,
        "attacks": res.to_payload()["attacks"],
        "cells": [c.to_row() for c in res.cells],
        "seconds": round(secs_a, 2),
    }

    # ---- E17b: repair at half the leader-degree budget ------------------- #
    t0 = time.perf_counter()
    res_b = run_tournament(
        g, k, parts=parts, budget=int(g.degrees()[0]) // 2, seed=2,
        backend="vectorized",
        adversaries=["targeted-cut"], defenses=["shared-r1"],
        placement=pl,
    )
    secs_b = time.perf_counter() - t0
    cell = res_b.cell("targeted-cut", "shared-r1")
    print(
        f"E17b — repair at budget {res_b.budget}: min {cell.min_coverage:.4f} "
        f"-> {cell.repaired_min_coverage:.4f} via {cell.rerooted} re-root(s) "
        f"in {cell.repair_rounds} rounds ({secs_b:.1f}s)"
    )
    # The cut beheads classes without isolating the root outright: the
    # repair loop re-roots the broken trees and recovers everything.
    assert cell.min_coverage == 0.0
    assert cell.repaired_min_coverage == 1.0
    assert cell.rerooted >= 1 and not cell.rebuilt
    artifact["e17b"] = {
        "n": n, "k": res_b.k, "budget": res_b.budget,
        "cell": cell.to_row(), "seconds": round(secs_b, 2),
    }

    write_bench_artifact("e17", artifact)
    return artifact


def test_e17_tournament(benchmark):
    if os.environ.get("E17_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
