"""E7 — Theorem 5 / Corollary 1: weighted APSP via spanner broadcast.

Rows sweep the Baswana–Sen parameter k ∈ {2, 3, 4, Cor.1's k}; columns:
spanner size vs the k·n^{1+1/k} bound, measured stretch vs 2k−1, the
broadcast rounds (the Õ(m̃/λ) term), and the O(k²) charge.

Shape assertions: stretch ≤ 2k−1 everywhere; spanner size and broadcast
rounds *decrease* in k while stretch increases — the paper's size/stretch
trade-off, ending at Corollary 1's Õ(n/λ) point.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.apsp import (
    approx_apsp_weighted,
    check_weighted_stretch,
    corollary1_k,
)
from repro.graphs import random_regular, random_weights
from repro.util.tables import Table


def run_experiment():
    g = random_weights(random_regular(200, 24, seed=6), seed=7)
    lam = 24
    table = Table(
        ["k", "stretch_bound", "spanner_m", "size_bound", "bcast_rounds",
         "charged_k2", "total", "measured_stretch", "ok"],
        title=f"E7 / Theorem 5 — weighted APSP on n={g.n}, m={g.m}, λ={lam}",
    )
    ks = [2, 3, 4, corollary1_k(g.n)]
    rows = []
    for k in sorted(set(ks)):
        res = approx_apsp_weighted(g, k=k, lam=lam, C=1.5, seed=8)
        ok, worst = check_weighted_stretch(g, res.estimate, k)
        table.add_row(
            [
                k,
                2 * k - 1,
                res.spanner.m,
                round(res.spanner.expected_size_bound(g.n)),
                res.simulated_rounds["broadcast_spanner"],
                res.charged_rounds["baswana_sen"],
                res.rounds,
                round(worst, 2),
                ok,
            ]
        )
        rows.append((k, res, ok, worst))
    table.print()

    assert all(ok for _, _, ok, _ in rows)
    sizes = [r.spanner.m for _, r, _, _ in rows]
    assert sizes == sorted(sizes, reverse=True), "spanner must shrink with k"
    bcast = [r.simulated_rounds["broadcast_spanner"] for _, r, _, _ in rows]
    assert bcast[-1] < bcast[0], "broadcast term must shrink with k"
    return rows


def test_e7_spanner_apsp(benchmark):
    run_once(benchmark, run_experiment)
