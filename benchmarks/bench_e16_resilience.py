"""E16 — resilience at scale: coverage vs redundancy vs adversary budget.

The Section 1.2 story (tree packings feed the Fischer–Parter resilient
compilers) was previously demonstrated only at simulator scale (n ≈ 100,
``tests/test_resilience.py``). The fault-aware vectorized engine
(:mod:`repro.engine.faults`) replays the same executions — bit-identical
receipts, drops, rounds, and fault RNG stream — at four orders of magnitude
more nodes, which opens the scenario-diversity axis:

* **E16a — adversary sweep at n = 10⁴**: every scenario class of
  :mod:`repro.congest.adversary` × redundancy r ∈ {1, 2}, evaluated as ONE
  :func:`repro.core.resilient.evaluate_fault_grid` call (the PR 9 query
  plane: numbering, tree views, and redundancy splits hoisted out of the
  per-cell loop) and cross-checked bit-identically against the looped
  :func:`redundant_broadcast` calls it replaces; the ``core.resilient``
  coverage separation (r = 1 loses exactly the sabotaged tree's k/parts
  messages, r = 2 recovers everything) must reproduce at this scale.
* **E16b — budget sweep**: min-coverage as a function of the mobile
  adversary's per-round edge budget and redundancy — the redundancy/budget
  trade-off surface, again one fault-grid call over all 9 cells.
* **E16c — backend cross-check at n = 10⁴**: one scenario run on both
  backends; reports must be identical and the vectorized engine ≥ 20×
  faster wall-clock.
* **E16d — vectorized-only scale-up to n = 10⁵**: the separation again, at
  a size the simulator never reached.

Wall clocks and speedups are merged into ``BENCH_E13.json``
(:func:`benchmarks.conftest.write_bench_artifact`); CI uploads the file and
``benchmarks/compare_bench.py`` gates cross-PR regressions.

Set ``E16_QUICK=1`` for the CI smoke: a small host, both backends, report
equality and the coverage separation asserted, no timing assertions.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once, write_bench_artifact
from repro.congest import MobileAdversary
from repro.core import (
    FaultCell,
    build_packing_with_retry,
    evaluate_fault_grid,
    redundant_broadcast,
    tree_edge_ids,
    uniform_random_placement,
)
from repro.graphs import thick_cycle
from repro.util.tables import Table


def _setup(groups: int, size: int, k: int, parts: int, seed: int = 2):
    g = thick_cycle(groups, size)
    packing, _ = build_packing_with_retry(
        g, parts, seed=seed, distributed=False, backend="vectorized"
    )
    placement = uniform_random_placement(g.n, k, seed=seed + 1)
    return g, packing, placement


def _report_fields(rep):
    return (
        rep.rounds,
        rep.dropped_messages,
        rep.fully_delivered,
        rep.per_message_coverage,
    )


def _assert_separation(g, packing, placement, k, parts, backend="vectorized"):
    """The core.resilient separation: r=1 loses the dead tree's k/parts
    messages exactly; r=2 delivers everything through the dead class."""
    dead = tree_edge_ids(packing, 0)
    r1 = redundant_broadcast(
        g, placement, packing, redundancy=1, dead_edges=dead, backend=backend
    )
    r2 = redundant_broadcast(
        g, placement, packing, redundancy=2, dead_edges=dead, backend=backend
    )
    assert r1.fully_delivered == k - k // parts, (r1.fully_delivered, k, parts)
    assert r1.min_coverage < 1.0
    assert r2.fully_delivered == k and r2.min_coverage == 1.0
    return r1, r2


def run_quick():
    """CI smoke: one fault-grid call per backend, bit-identical reports."""
    parts, k = 3, 60
    g, packing, placement = _setup(groups=10, size=10, k=k, parts=parts)
    dead = tree_edge_ids(packing, 0)
    cells = [
        FaultCell(redundancy=1, dead_edges=dead),
        FaultCell(redundancy=2, dead_edges=dead),
        FaultCell(redundancy=2, drop_rate=0.02, fault_seed=7),
    ]
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        reps = evaluate_fault_grid(g, placement, packing, cells, backend=backend)
        out[backend] = (*reps, time.perf_counter() - t0)
    r1, r2 = out["vectorized"][0], out["vectorized"][1]
    assert r1.fully_delivered == k - k // parts and r1.min_coverage < 1.0
    assert r2.fully_delivered == k and r2.min_coverage == 1.0
    for i in range(3):
        assert _report_fields(out["simulator"][i]) == _report_fields(
            out["vectorized"][i]
        ), f"backend drift in quick scenario {i}"
    assert (
        out["simulator"][2].fault_rng_state == out["vectorized"][2].fault_rng_state
    ), "fault RNG streams diverged"
    write_bench_artifact(
        "e16_quick",
        {
            "n": g.n,
            "k": k,
            "sim_seconds": round(out["simulator"][3], 4),
            "vec_seconds": round(out["vectorized"][3], 4),
        },
    )
    return out


def run_experiment():
    artifact: dict[str, object] = {}

    # ---- E16a: adversary sweep at n = 10⁴ (vectorized) ------------------- #
    parts, k = 4, 200
    g, packing, placement = _setup(groups=500, size=20, k=k, parts=parts)
    n = g.n
    assert n >= 10_000
    dead = tree_edge_ids(packing, 0)
    scenarios = {
        "none": dict(),
        "dead-tree": dict(dead_edges=dead),
        "mobile(b=32)": dict(
            adversary=MobileAdversary.sweeping(sorted(dead), budget=32, rounds=4000)
        ),
        "loss(0.5%)": dict(drop_rate=0.005, fault_seed=5),
    }
    ta = Table(
        ["scenario", "r", "rounds", "dropped", "full", "min_cov"],
        title=f"E16a — adversary sweep (n={n}, k={k}, {parts} trees, one grid)",
    )
    jobs = [
        (name, r, kwargs)
        for name, kwargs in scenarios.items()
        for r in (1, 2)
    ]
    t0 = time.perf_counter()
    reports = evaluate_fault_grid(
        g, placement, packing,
        [FaultCell(redundancy=r, **kwargs) for _, r, kwargs in jobs],
        backend="vectorized",
    )
    grid_secs = time.perf_counter() - t0
    # The loop of solo calls the grid replaces: must agree bit-for-bit.
    t0 = time.perf_counter()
    looped = [
        redundant_broadcast(
            g, placement, packing, redundancy=r, backend="vectorized", **kwargs
        )
        for _, r, kwargs in jobs
    ]
    loop_secs = time.perf_counter() - t0
    rows_a = []
    for (name, r, _), rep, solo in zip(jobs, reports, looped):
        assert _report_fields(rep) == _report_fields(solo), (name, r)
        assert rep.fault_rng_state == solo.fault_rng_state, (name, r)
        ta.add_row([
            name, r, rep.rounds, rep.dropped_messages,
            f"{rep.fully_delivered}/{k}", round(rep.min_coverage, 3),
        ])
        rows_a.append({
            "scenario": name, "redundancy": r, "rounds": rep.rounds,
            "dropped": rep.dropped_messages,
            "fully_delivered": rep.fully_delivered,
            "min_coverage": round(rep.min_coverage, 4),
        })
    ta.print()
    print(
        f"E16a grid: {len(jobs)} cells in {grid_secs:.2f}s "
        f"(loop of solos {loop_secs:.2f}s — {loop_secs / grid_secs:.1f}x)"
    )
    _assert_separation(g, packing, placement, k, parts)
    artifact["n"] = n
    artifact["k"] = k
    artifact["adversary_sweep"] = rows_a
    artifact["adversary_sweep_grid"] = {
        "cells": len(jobs),
        "grid_seconds": round(grid_secs, 3),
        "loop_seconds": round(loop_secs, 3),
        "speedup": round(loop_secs / grid_secs, 2),
    }

    # ---- E16b: budget sweep (mobile adversary) × redundancy -------------- #
    tb = Table(
        ["budget"] + [f"min_cov r={r}" for r in (1, 2, 3)],
        title=f"E16b — mobile budget vs redundancy (n={n}, k={k})",
    )
    pool = sorted(dead | tree_edge_ids(packing, 1))
    budgets = (8, 64, 512)
    grid_reports = evaluate_fault_grid(
        g, placement, packing,
        [
            FaultCell(
                redundancy=r,
                adversary=MobileAdversary.sweeping(pool, budget=budget, rounds=6000),
            )
            for budget in budgets
            for r in (1, 2, 3)
        ],
        backend="vectorized",
    )
    rows_b = []
    for i, budget in enumerate(budgets):
        row = {"budget": budget}
        covs = []
        for j, r in enumerate((1, 2, 3)):
            rep = grid_reports[3 * i + j]
            covs.append(round(rep.min_coverage, 4))
            row[f"r{r}"] = covs[-1]
        tb.add_row([budget] + covs)
        rows_b.append(row)
    tb.print()
    # Shape: more redundancy never hurts; the biggest budget hurts r=1 most.
    for row in rows_b:
        assert row["r3"] >= row["r1"] - 1e-9
    assert rows_b[-1]["r1"] <= rows_b[0]["r1"] + 1e-9
    artifact["budget_sweep"] = rows_b

    # ---- E16c: backend cross-check + speedup at n = 10⁴ ------------------ #
    kc = 60
    placement_c = uniform_random_placement(n, kc, seed=9)
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        rep = redundant_broadcast(
            g, placement_c, packing, redundancy=2, dead_edges=dead,
            drop_rate=0.001, fault_seed=3, backend=backend,
        )
        out[backend] = (rep, time.perf_counter() - t0)
    sim, vec = out["simulator"], out["vectorized"]
    assert _report_fields(sim[0]) == _report_fields(vec[0]), "backend drift at n=1e4"
    assert sim[0].fault_rng_state == vec[0].fault_rng_state
    speedup = sim[1] / vec[1]
    print(
        f"E16c backend cross-check (n={n}, k={kc}): sim {sim[1]:.1f}s, "
        f"vec {vec[1]:.2f}s — {speedup:.0f}x"
    )
    assert speedup >= 20.0, f"vectorized fault engine only {speedup:.1f}x"
    artifact["e16c"] = {
        "n": n, "k": kc, "sim_seconds": round(sim[1], 3),
        "vec_seconds": round(vec[1], 3), "speedup": round(speedup, 1),
    }

    # ---- E16d: vectorized-only scale-up to n = 10⁵ ----------------------- #
    parts_d, kd = 4, 100
    gd, packing_d, placement_d = _setup(groups=2500, size=40, k=kd, parts=parts_d)
    assert gd.n >= 100_000
    t0 = time.perf_counter()
    r1, r2 = _assert_separation(gd, packing_d, placement_d, kd, parts_d)
    secs = time.perf_counter() - t0
    print(
        f"E16d — n={gd.n}: r=1 delivers {r1.fully_delivered}/{kd}, "
        f"r=2 delivers {r2.fully_delivered}/{kd} through a dead tree "
        f"({r1.rounds}/{r2.rounds} rounds; both runs in {secs:.1f}s)"
    )
    artifact["e16d"] = {
        "n": gd.n, "k": kd,
        "r1_fully_delivered": r1.fully_delivered,
        "r2_fully_delivered": r2.fully_delivered,
        "r1_rounds": r1.rounds, "r2_rounds": r2.rounds,
        "seconds": round(secs, 2),
    }

    write_bench_artifact("e16", artifact)
    return artifact


def test_e16_resilience(benchmark):
    if os.environ.get("E16_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
