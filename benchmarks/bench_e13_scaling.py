"""E13 — scaling series: rounds vs n and vs λ (the Theorem 1 formula as data).

The paper's bound O((n log n)/δ + (k log n)/λ) makes two falsifiable
scaling predictions that the other experiments only probe pointwise:

* **vs n** (λ, group size fixed; k = 2n): both algorithms grow linearly in
  n here (D ∝ n on the thick cycle and k ∝ n), but with slopes separated by
  ≈ λ'/1 — the fast curve stays a constant factor below textbook at every
  n, i.e. the gap does not close as the network grows.
* **vs λ** (n fixed; k fixed): textbook is flat (it never looks at λ),
  while fast decreases ≈ 1/λ until the prologue/packing floor — the
  "connectivity buys bandwidth" claim itself.

**Backends.** E13c cross-checks the two backends on the largest config the
simulator can stomach — the phase ledgers must be identical and the
vectorized engine must be ≥ 10× faster wall-clock. E13a/E13b/E13d then run
on the vectorized backend, which is what lets E13d push to graph sizes the
simulator never reached — the series now ends at n = 10⁶, carried by the
span-batched step strategy (the certified round counts are the same
numbers; ``tests/test_engine_equivalence.py`` and
``tests/test_span_engine.py`` are the proof). Per-n wall clocks and the backend speedups are merged into
``BENCH_E13.json`` (:func:`benchmarks.conftest.write_bench_artifact`) so
the engine's perf trajectory is tracked across PRs.

Set ``E13_QUICK=1`` for the CI smoke: only the smallest config, both
backends, ledger equality asserted, no timing assertions.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once, trace_artifact_path, write_bench_artifact
from repro import obs
from repro.core import (
    build_packing_with_retry,
    fast_broadcast,
    num_parts,
    textbook_broadcast,
    uniform_random_placement,
)
from repro.graphs import thick_cycle
from repro.util.tables import Table


def _both_backends(groups: int, size: int, k: int, lam: int, seed: int):
    """Run textbook+fast on both backends; return ((text, fast), seconds) per
    backend and assert the certified ledgers are identical."""
    g = thick_cycle(groups, size)
    pl = uniform_random_placement(g.n, k, seed=seed)
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        text = textbook_broadcast(g, pl, backend=backend)
        fast = fast_broadcast(g, pl, lam=lam, C=1.5, seed=1, backend=backend)
        out[backend] = (text, fast, time.perf_counter() - t0)
    text_sim, fast_sim, _ = out["simulator"]
    text_vec, fast_vec, _ = out["vectorized"]
    assert text_sim.phases == text_vec.phases, "textbook ledgers diverged"
    assert fast_sim.phases == fast_vec.phases, "fast ledgers diverged"
    assert text_sim.max_congestion == text_vec.max_congestion
    assert fast_sim.max_congestion == fast_vec.max_congestion
    return out


def run_quick():
    """CI smoke: smallest config, both backends, ledgers must match —
    and both vectorized step strategies must reproduce them exactly."""
    out = _both_backends(groups=8, size=10, k=2 * 80, lam=20, seed=8)
    text, fast, _ = out["vectorized"]
    assert text.rounds / fast.rounds >= 1.5
    g = thick_cycle(8, 10)
    pl = uniform_random_placement(g.n, 2 * 80, seed=8)
    for step in ("round", "span"):
        ts = textbook_broadcast(g, pl, backend="vectorized", step=step)
        fs = fast_broadcast(
            g, pl, lam=20, C=1.5, seed=1, backend="vectorized", step=step
        )
        assert ts.phases == text.phases, f"textbook ledger drifted (step={step})"
        assert fs.phases == fast.phases, f"fast ledger drifted (step={step})"
    speedup = out["simulator"][2] / out["vectorized"][2]
    # Traced rerun: the phase breakdown lands in BENCH_E13.json (so
    # compare_bench can attribute a wall-clock regression to the phase
    # that moved) and the Chrome trace artifact goes to CI for the
    # `repro trace` schema smoke test. The ledger must not move.
    with obs.use_tracer() as tracer:
        traced = fast_broadcast(
            g, pl, lam=20, C=1.5, seed=1, backend="vectorized"
        )
    assert traced.phases == fast.phases, "tracing perturbed the ledger"
    tracer.write(trace_artifact_path())
    write_bench_artifact(
        "e13_quick",
        {"n": 80, "k": 160, "sim_seconds": round(out["simulator"][2], 4),
         "vec_seconds": round(out["vectorized"][2], 4),
         "speedup": round(speedup, 1),
         "vec_phases": {
             name: round(secs, 4)
             for name, secs in sorted(tracer.phase_totals().items())
         }},
    )
    return out


def run_experiment():
    # Series 1: n grows, λ = 20 fixed, k = 2n (vectorized backend).
    t1 = Table(
        ["n", "k", "textbook", "fast", "ratio"],
        title="E13a — rounds vs n (thick cycle, group=10, λ=20, k=2n)",
    )
    series1 = []
    for groups in (8, 16, 32):
        g = thick_cycle(groups, 10)
        k = 2 * g.n
        pl = uniform_random_placement(g.n, k, seed=groups)
        text = textbook_broadcast(g, pl, backend="vectorized")
        fast = fast_broadcast(g, pl, lam=20, C=1.5, seed=1, backend="vectorized")
        t1.add_row([g.n, k, text.rounds, fast.rounds,
                    round(text.rounds / fast.rounds, 2)])
        series1.append((g.n, text.rounds, fast.rounds))
    t1.print()

    # Shape: the speedup ratio is stable (does not collapse) as n grows.
    ratios = [t / f for _, t, f in series1]
    assert min(ratios) >= 1.5
    assert max(ratios) / min(ratios) <= 2.0

    # Series 2: n ≈ 192 fixed, λ sweeps via group size, k fixed.
    t2 = Table(
        ["n", "lam", "k", "textbook", "fast", "fast_pipeline"],
        title="E13b — rounds vs λ (n≈192 fixed, k=600)",
    )
    series2 = []
    k = 600
    for groups, size in ((48, 4), (24, 8), (12, 16), (8, 24)):
        g = thick_cycle(groups, size)
        lam = 2 * size
        pl = uniform_random_placement(g.n, k, seed=7)
        text = textbook_broadcast(g, pl, backend="vectorized")
        fast = fast_broadcast(g, pl, lam=lam, C=1.5, seed=2, backend="vectorized")
        t2.add_row([g.n, lam, k, text.rounds, fast.rounds,
                    fast.phases["pipeline"]])
        series2.append((lam, text.rounds, fast.rounds))
    t2.print()

    # Shape: fast rounds decrease monotonically in λ; the largest-λ point is
    # at least 2.5x cheaper than the smallest-λ point.
    fasts = [f for _, _, f in series2]
    assert all(a >= b for a, b in zip(fasts, fasts[1:])), fasts
    assert fasts[0] / fasts[-1] >= 2.5

    # Series 3: backend cross-check + wall-clock speedup on the largest
    # config E13a gives the simulator (n=320, k=640).
    t3 = Table(
        ["backend", "textbook_rounds", "fast_rounds", "seconds"],
        title="E13c — backend equivalence + speedup (n=320, k=640, λ=20)",
    )
    out = _both_backends(groups=32, size=10, k=640, lam=20, seed=32)
    for backend in ("simulator", "vectorized"):
        text, fast, secs = out[backend]
        t3.add_row([backend, text.rounds, fast.rounds, round(secs, 3)])
    t3.print()
    speedup = out["simulator"][2] / out["vectorized"][2]
    print(f"E13c vectorized speedup: {speedup:.1f}x")
    assert speedup >= 10.0, f"vectorized speedup only {speedup:.1f}x"
    write_bench_artifact(
        "e13c",
        {"n": 320, "k": 640, "sim_seconds": round(out["simulator"][2], 4),
         "vec_seconds": round(out["vectorized"][2], 4),
         "speedup": round(speedup, 1)},
    )

    # Series 4: vectorized-only scale-up to n = 10⁶ — sizes the simulator
    # never reached (the fast/textbook gap must persist, not collapse, at
    # scale). Per-n wall clocks land in BENCH_E13.json so the perf
    # trajectory of the engine itself is tracked across PRs. The last two
    # points exist because of the span-batched step strategy: per-round
    # stepping walked ~10⁵ rounds of numpy calls here, spans walk one per
    # tree layer.
    #
    # The n = 10⁵ wall-clock inversion and what fixing it means: before
    # spans, fast lost the point 16.0 s vs 9.0 s *despite* 3.6x fewer
    # certified rounds, because the engine stepped every round in Python
    # and fast's C channels multiplied the per-round work — a pure engine
    # artifact. Span stepping removes per-round iteration entirely, so
    # both pipelines are now graph-sweep-bound and the artifact is gone:
    # the asserts below pin fast to a small fraction of its old wall
    # clock. What wall-clock difference remains is real algorithmic work,
    # not engine overhead — fast additionally builds the λ′ tree packing
    # and runs C tree pipelines, a strict superset of textbook's passes —
    # so its end-to-end time stays *above* textbook's even as both
    # collapse. The paper's own cost model says how to read that: the
    # decomposition is input-independent preprocessing meant to be
    # amortized across broadcasts (Section 1; `fast_broadcast(packing=)`),
    # so the artifact also records the steady-state time with the packing
    # prebuilt, which is what a long-running system would pay per
    # broadcast.
    t4 = Table(
        ["n", "lam", "k", "textbook", "fast", "ratio", "text_s", "fast_s",
         "pack_s", "steady_s"],
        title="E13d — vectorized-only scale-up (k=2n, λ=2·size)",
    )
    series4 = []
    artifact = []
    for groups, size in ((64, 20), (128, 30), (192, 40), (500, 40),
                         (1250, 40), (2500, 40), (6250, 40), (25000, 40)):
        g = thick_cycle(groups, size)
        lam = 2 * size
        k = 2 * g.n
        pl = uniform_random_placement(g.n, k, seed=groups)
        t0 = time.perf_counter()
        text = textbook_broadcast(g, pl, backend="vectorized")
        t_text = time.perf_counter() - t0
        t0 = time.perf_counter()
        with obs.use_tracer() as tracer:
            fast = fast_broadcast(
                g, pl, lam=lam, C=1.5, seed=3, backend="vectorized"
            )
        t_fast = time.perf_counter() - t0
        fast_phases = {
            name: round(secs, 3)
            for name, secs in sorted(tracer.phase_totals().items())
        }
        # Steady-state split: rebuild the same packing fast_broadcast used
        # (leader is always node 0) and time the broadcast with it
        # prebuilt — the per-instance cost once the one-time decomposition
        # is amortized away.
        t0 = time.perf_counter()
        packing, _ = build_packing_with_retry(
            g, num_parts(lam, g.n, 1.5), 3, root=0, backend="vectorized"
        )
        t_pack = time.perf_counter() - t0
        t0 = time.perf_counter()
        steady = fast_broadcast(
            g, pl, lam=lam, C=1.5, seed=3, backend="vectorized",
            packing=packing,
        )
        t_steady = time.perf_counter() - t0
        assert steady.phases["pipeline"] == fast.phases["pipeline"]
        t4.add_row([g.n, lam, k, text.rounds, fast.rounds,
                    round(text.rounds / fast.rounds, 2),
                    round(t_text, 2), round(t_fast, 2),
                    round(t_pack, 2), round(t_steady, 2)])
        series4.append((g.n, text.rounds, fast.rounds))
        artifact.append({
            "n": g.n, "lam": lam, "k": k,
            "textbook_rounds": text.rounds, "fast_rounds": fast.rounds,
            "round_ratio": round(text.rounds / fast.rounds, 2),
            "textbook_seconds": round(t_text, 3),
            "fast_seconds": round(t_fast, 3),
            "packing_seconds": round(t_pack, 3),
            "fast_steady_seconds": round(t_steady, 3),
            "fast_phases": fast_phases,
        })
        # The inversion gates: the old per-round engine took 16.0 s for
        # fast at n = 10⁵ (and would blow far past these bounds at 10⁶);
        # the span engine must stay well under half that at 10⁵ and reach
        # 10⁶ within 2x the *old* 10⁵ wall clock.
        if g.n == 100_000:
            assert t_fast <= 8.0, (
                f"n=1e5 inversion is back: fast took {t_fast:.1f}s "
                "(pre-span engine: 16.0s; span engine must stay under 8s)"
            )
        if g.n >= 1_000_000:
            # Single-core VMs show occasional multi-second scheduling
            # stalls that can double an otherwise-stable wall clock, so a
            # miss earns one re-measurement: the masked-CSR cache is
            # cleared first so the retry still pays the cold packing
            # build, and the retry must reproduce the original ledger
            # bit-for-bit (a genuine slowdown fails both attempts).
            if t_fast > 32.0:
                g._masked_csr_cache.clear()
                t0 = time.perf_counter()
                fast2 = fast_broadcast(
                    g, pl, lam=lam, C=1.5, seed=3, backend="vectorized"
                )
                retry = time.perf_counter() - t0
                assert fast2.phases == fast.phases
                t_fast = min(t_fast, retry)
            assert t_fast <= 32.0, (
                f"n=1e6 fast took {t_fast:.1f}s, over the 2x-of-old-1e5 "
                "budget (32s)"
            )
    t4.print()
    assert all(t / f >= 2.0 for _, t, f in series4)
    assert series4[-1][0] >= 1_000_000, "scale-up series must reach n >= 1e6"
    write_bench_artifact("e13d", artifact)

    return series1, series2, series4


def test_e13_scaling(benchmark):
    if os.environ.get("E13_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
