"""E13 — scaling series: rounds vs n and vs λ (the Theorem 1 formula as data).

The paper's bound O((n log n)/δ + (k log n)/λ) makes two falsifiable
scaling predictions that the other experiments only probe pointwise:

* **vs n** (λ, group size fixed; k = 2n): both algorithms grow linearly in
  n here (D ∝ n on the thick cycle and k ∝ n), but with slopes separated by
  ≈ λ'/1 — the fast curve stays a constant factor below textbook at every
  n, i.e. the gap does not close as the network grows.
* **vs λ** (n fixed; k fixed): textbook is flat (it never looks at λ),
  while fast decreases ≈ 1/λ until the prologue/packing floor — the
  "connectivity buys bandwidth" claim itself.

**Backends.** E13c cross-checks the two backends on the largest config the
simulator can stomach — the phase ledgers must be identical and the
vectorized engine must be ≥ 10× faster wall-clock. E13a/E13b/E13d then run
on the vectorized backend, which is what lets E13d push to graph sizes the
simulator never reached — the series now ends at n = 10⁵ (the certified
round counts are the same numbers; ``tests/test_engine_equivalence.py`` is
the proof). Per-n wall clocks and the backend speedups are merged into
``BENCH_E13.json`` (:func:`benchmarks.conftest.write_bench_artifact`) so
the engine's perf trajectory is tracked across PRs.

Set ``E13_QUICK=1`` for the CI smoke: only the smallest config, both
backends, ledger equality asserted, no timing assertions.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once, write_bench_artifact
from repro.core import fast_broadcast, textbook_broadcast, uniform_random_placement
from repro.graphs import thick_cycle
from repro.util.tables import Table


def _both_backends(groups: int, size: int, k: int, lam: int, seed: int):
    """Run textbook+fast on both backends; return ((text, fast), seconds) per
    backend and assert the certified ledgers are identical."""
    g = thick_cycle(groups, size)
    pl = uniform_random_placement(g.n, k, seed=seed)
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        text = textbook_broadcast(g, pl, backend=backend)
        fast = fast_broadcast(g, pl, lam=lam, C=1.5, seed=1, backend=backend)
        out[backend] = (text, fast, time.perf_counter() - t0)
    text_sim, fast_sim, _ = out["simulator"]
    text_vec, fast_vec, _ = out["vectorized"]
    assert text_sim.phases == text_vec.phases, "textbook ledgers diverged"
    assert fast_sim.phases == fast_vec.phases, "fast ledgers diverged"
    assert text_sim.max_congestion == text_vec.max_congestion
    assert fast_sim.max_congestion == fast_vec.max_congestion
    return out


def run_quick():
    """CI smoke: smallest config, both backends, ledgers must match."""
    out = _both_backends(groups=8, size=10, k=2 * 80, lam=20, seed=8)
    text, fast, _ = out["vectorized"]
    assert text.rounds / fast.rounds >= 1.5
    speedup = out["simulator"][2] / out["vectorized"][2]
    write_bench_artifact(
        "e13_quick",
        {"n": 80, "k": 160, "sim_seconds": round(out["simulator"][2], 4),
         "vec_seconds": round(out["vectorized"][2], 4),
         "speedup": round(speedup, 1)},
    )
    return out


def run_experiment():
    # Series 1: n grows, λ = 20 fixed, k = 2n (vectorized backend).
    t1 = Table(
        ["n", "k", "textbook", "fast", "ratio"],
        title="E13a — rounds vs n (thick cycle, group=10, λ=20, k=2n)",
    )
    series1 = []
    for groups in (8, 16, 32):
        g = thick_cycle(groups, 10)
        k = 2 * g.n
        pl = uniform_random_placement(g.n, k, seed=groups)
        text = textbook_broadcast(g, pl, backend="vectorized")
        fast = fast_broadcast(g, pl, lam=20, C=1.5, seed=1, backend="vectorized")
        t1.add_row([g.n, k, text.rounds, fast.rounds,
                    round(text.rounds / fast.rounds, 2)])
        series1.append((g.n, text.rounds, fast.rounds))
    t1.print()

    # Shape: the speedup ratio is stable (does not collapse) as n grows.
    ratios = [t / f for _, t, f in series1]
    assert min(ratios) >= 1.5
    assert max(ratios) / min(ratios) <= 2.0

    # Series 2: n ≈ 192 fixed, λ sweeps via group size, k fixed.
    t2 = Table(
        ["n", "lam", "k", "textbook", "fast", "fast_pipeline"],
        title="E13b — rounds vs λ (n≈192 fixed, k=600)",
    )
    series2 = []
    k = 600
    for groups, size in ((48, 4), (24, 8), (12, 16), (8, 24)):
        g = thick_cycle(groups, size)
        lam = 2 * size
        pl = uniform_random_placement(g.n, k, seed=7)
        text = textbook_broadcast(g, pl, backend="vectorized")
        fast = fast_broadcast(g, pl, lam=lam, C=1.5, seed=2, backend="vectorized")
        t2.add_row([g.n, lam, k, text.rounds, fast.rounds,
                    fast.phases["pipeline"]])
        series2.append((lam, text.rounds, fast.rounds))
    t2.print()

    # Shape: fast rounds decrease monotonically in λ; the largest-λ point is
    # at least 2.5x cheaper than the smallest-λ point.
    fasts = [f for _, _, f in series2]
    assert all(a >= b for a, b in zip(fasts, fasts[1:])), fasts
    assert fasts[0] / fasts[-1] >= 2.5

    # Series 3: backend cross-check + wall-clock speedup on the largest
    # config E13a gives the simulator (n=320, k=640).
    t3 = Table(
        ["backend", "textbook_rounds", "fast_rounds", "seconds"],
        title="E13c — backend equivalence + speedup (n=320, k=640, λ=20)",
    )
    out = _both_backends(groups=32, size=10, k=640, lam=20, seed=32)
    for backend in ("simulator", "vectorized"):
        text, fast, secs = out[backend]
        t3.add_row([backend, text.rounds, fast.rounds, round(secs, 3)])
    t3.print()
    speedup = out["simulator"][2] / out["vectorized"][2]
    print(f"E13c vectorized speedup: {speedup:.1f}x")
    assert speedup >= 10.0, f"vectorized speedup only {speedup:.1f}x"
    write_bench_artifact(
        "e13c",
        {"n": 320, "k": 640, "sim_seconds": round(out["simulator"][2], 4),
         "vec_seconds": round(out["vectorized"][2], 4),
         "speedup": round(speedup, 1)},
    )

    # Series 4: vectorized-only scale-up to n ≥ 10⁵ — sizes the simulator
    # never reached (the fast/textbook gap must persist, not collapse, at
    # scale). Per-n wall clocks land in BENCH_E13.json so the perf
    # trajectory of the engine itself is tracked across PRs.
    t4 = Table(
        ["n", "lam", "k", "textbook", "fast", "ratio", "text_s", "fast_s"],
        title="E13d — vectorized-only scale-up (k=2n, λ=2·size)",
    )
    series4 = []
    artifact = []
    for groups, size in ((64, 20), (128, 30), (192, 40), (500, 40),
                         (1250, 40), (2500, 40)):
        g = thick_cycle(groups, size)
        lam = 2 * size
        k = 2 * g.n
        pl = uniform_random_placement(g.n, k, seed=groups)
        t0 = time.perf_counter()
        text = textbook_broadcast(g, pl, backend="vectorized")
        t_text = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = fast_broadcast(g, pl, lam=lam, C=1.5, seed=3, backend="vectorized")
        t_fast = time.perf_counter() - t0
        t4.add_row([g.n, lam, k, text.rounds, fast.rounds,
                    round(text.rounds / fast.rounds, 2),
                    round(t_text, 2), round(t_fast, 2)])
        series4.append((g.n, text.rounds, fast.rounds))
        artifact.append({
            "n": g.n, "lam": lam, "k": k,
            "textbook_rounds": text.rounds, "fast_rounds": fast.rounds,
            "round_ratio": round(text.rounds / fast.rounds, 2),
            "textbook_seconds": round(t_text, 3),
            "fast_seconds": round(t_fast, 3),
        })
    t4.print()
    assert all(t / f >= 2.0 for _, t, f in series4)
    assert series4[-1][0] >= 100_000, "scale-up series must reach n >= 1e5"
    write_bench_artifact("e13d", artifact)

    return series1, series2, series4


def test_e13_scaling(benchmark):
    if os.environ.get("E13_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
