"""E13 — scaling series: rounds vs n and vs λ (the Theorem 1 formula as data).

The paper's bound O((n log n)/δ + (k log n)/λ) makes two falsifiable
scaling predictions that the other experiments only probe pointwise:

* **vs n** (λ, group size fixed; k = 2n): both algorithms grow linearly in
  n here (D ∝ n on the thick cycle and k ∝ n), but with slopes separated by
  ≈ λ'/1 — the fast curve stays a constant factor below textbook at every
  n, i.e. the gap does not close as the network grows.
* **vs λ** (n fixed; k fixed): textbook is flat (it never looks at λ),
  while fast decreases ≈ 1/λ until the prologue/packing floor — the
  "connectivity buys bandwidth" claim itself.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import fast_broadcast, textbook_broadcast, uniform_random_placement
from repro.graphs import thick_cycle
from repro.util.tables import Table


def run_experiment():
    # Series 1: n grows, λ = 20 fixed, k = 2n.
    t1 = Table(
        ["n", "k", "textbook", "fast", "ratio"],
        title="E13a — rounds vs n (thick cycle, group=10, λ=20, k=2n)",
    )
    series1 = []
    for groups in (8, 16, 32):
        g = thick_cycle(groups, 10)
        k = 2 * g.n
        pl = uniform_random_placement(g.n, k, seed=groups)
        text = textbook_broadcast(g, pl)
        fast = fast_broadcast(g, pl, lam=20, C=1.5, seed=1, distributed_packing=False)
        t1.add_row([g.n, k, text.rounds, fast.rounds,
                    round(text.rounds / fast.rounds, 2)])
        series1.append((g.n, text.rounds, fast.rounds))
    t1.print()

    # Shape: the speedup ratio is stable (does not collapse) as n grows.
    ratios = [t / f for _, t, f in series1]
    assert min(ratios) >= 1.5
    assert max(ratios) / min(ratios) <= 2.0

    # Series 2: n ≈ 192 fixed, λ sweeps via group size, k fixed.
    t2 = Table(
        ["n", "lam", "k", "textbook", "fast", "fast_pipeline"],
        title="E13b — rounds vs λ (n≈192 fixed, k=600)",
    )
    series2 = []
    k = 600
    for groups, size in ((48, 4), (24, 8), (12, 16), (8, 24)):
        g = thick_cycle(groups, size)
        lam = 2 * size
        pl = uniform_random_placement(g.n, k, seed=7)
        text = textbook_broadcast(g, pl)
        fast = fast_broadcast(g, pl, lam=lam, C=1.5, seed=2, distributed_packing=False)
        t2.add_row([g.n, lam, k, text.rounds, fast.rounds,
                    fast.phases["pipeline"]])
        series2.append((lam, text.rounds, fast.rounds))
    t2.print()

    # Shape: fast rounds decrease monotonically in λ; the largest-λ point is
    # at least 2.5x cheaper than the smallest-λ point.
    fasts = [f for _, _, f in series2]
    assert all(a >= b for a, b in zip(fasts, fasts[1:])), fasts
    assert fasts[0] / fasts[-1] >= 2.5
    return series1, series2


def test_e13_scaling(benchmark):
    run_once(benchmark, run_experiment)
