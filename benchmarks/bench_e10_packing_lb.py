"""E10 — Theorems 11/13: the tree-packing diameter lower bound family.

Paper claim: there are λ-connected graphs of diameter O(log n) where every
tree packing has all-but-O(log n) trees of diameter Ω(n/λ) — i.e., the
O((n log n)/δ) diameter of the paper's own packing (Theorem 2) cannot be
beaten by more than the log factor.

Rows sweep the thick-path length of the GK13-style family; columns: host
diameter (stays logarithmic), the per-tree diameter distribution of the
Theorem 2 packing, and how many trees exceed the Ω(n/λ) threshold.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.lower_bounds import measure_packing_diameters
from repro.util.tables import Table


def run_experiment():
    table = Table(
        ["length", "lam", "n", "host_D", "ln n", "parts", "tree_diams",
         "deep(>=len/4)", "min_diam", "n/lam"],
        title="E10 / Theorem 13 — packing diameters on the GK13 family",
    )
    rows = []
    for length, lam in ((32, 32), (48, 32), (64, 32)):
        rep = measure_packing_diameters(length, lam, C=1.0, seed=1)
        table.add_row(
            [
                length,
                lam,
                rep.n,
                rep.host_diameter,
                round(math.log(rep.n), 1),
                rep.parts,
                str(rep.tree_diameters),
                rep.trees_above(0.25),
                rep.min_tree_diameter,
                round(rep.n / rep.lam),
            ]
        )
        rows.append(rep)
    table.print()

    for rep in rows:
        # Host stays logarithmic…
        assert rep.host_diameter <= 3 * math.log2(rep.n)
        # …while almost all packed trees are Ω(n/λ) deep.
        assert rep.trees_above(0.25) >= rep.parts - math.ceil(math.log2(rep.n) / 4)
    # Shape: tree depth scales with the path length (the Ω(n/λ) scale).
    assert rows[-1].max_tree_diameter > rows[0].max_tree_diameter
    return rows


def test_e10_packing_lb(benchmark):
    run_once(benchmark, run_experiment)
