"""E11 — Theorem 12: random-delay scheduling of overlapping broadcasts.

Paper claim ([Gha15b], used in Appendix B): J algorithms with congestion C
and dilation d compose into one execution of O(C + d·log²n) rounds w.h.p.

Rows sweep the number of overlapping tree-broadcast jobs (all sharing the
same host edges); columns: stand-alone dilation, measured joint congestion,
the O(C + d·log²n) budget, and the measured makespan with random delays vs
the no-delay baseline.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.graphs import random_regular
from repro.primitives import run_bfs, run_scheduled_broadcast, run_tree_broadcast
from repro.util.tables import Table


def _jobs(g, num_jobs, k_per_job):
    trees = {}
    msgs = {}
    mid = 1
    for j in range(num_jobs):
        trees[j] = run_bfs(g, j % g.n)
        msgs[j] = {(j * 7) % g.n: list(range(mid, mid + k_per_job))}
        mid += k_per_job
    return trees, msgs


def run_experiment():
    g = random_regular(120, 10, seed=12)
    k_per_job = 40
    table = Table(
        ["jobs", "dilation", "congestion", "budget(C+d·ln²n)", "makespan",
         "makespan(no delay)", "within"],
        title=f"E11 / Theorem 12 — scheduling overlapping broadcasts, n={g.n}",
    )
    ln2 = math.log(g.n) ** 2
    rows = []
    for num_jobs in (2, 4, 8):
        trees, msgs = _jobs(g, num_jobs, k_per_job)
        # Dilation: max stand-alone rounds.
        dilation = max(
            run_tree_broadcast(g, {0: trees[j]}, {0: msgs[j]}).rounds
            for j in range(num_jobs)
        )
        sched = run_scheduled_broadcast(g, trees, msgs, seed=13)
        base = run_scheduled_broadcast(g, trees, msgs, max_delay=0, seed=13)
        budget = sched.congestion + dilation * ln2
        table.add_row(
            [
                num_jobs,
                dilation,
                sched.congestion,
                round(budget),
                sched.makespan,
                base.makespan,
                sched.makespan <= budget,
            ]
        )
        rows.append((num_jobs, dilation, sched, base, budget))
    table.print()

    for _, dilation, sched, _, budget in rows:
        assert sched.makespan <= budget
        assert sched.makespan >= dilation  # cannot beat the slowest job
    # Shape: makespan grows sublinearly in the job count (smoothing works):
    # 4× the jobs should cost well under 4× the 2-job makespan.
    m2 = rows[0][2].makespan
    m8 = rows[-1][2].makespan
    assert m8 <= 3.5 * m2
    return rows


def test_e11_scheduling(benchmark):
    run_once(benchmark, run_experiment)
