"""E5 — lower bounds (Theorems 3, 8, 9): measured rounds vs information floors.

Three sub-tables:

* **Theorem 3**: every broadcast execution must sit above (sk/2−4)/(2wλ)
  rounds; we run both algorithms with adversarial (cut-concentrated)
  placements and print measured/bound slack — always ≥ 1, and for the fast
  algorithm within an O(log n) band (that's universal optimality again,
  seen from below).
* **Theorem 8**: the Ω(n/λ) ID-learning floor under any APSP algorithm's
  output requirement, vs the measured Õ(n/λ) broadcast of n ID messages.
* **Theorem 9**: the hard weighted instance — the decoder proves any
  α-approximation carries the bits; the floor is printed next to the cost
  of shipping that information with the textbook algorithm on the instance.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import (
    cut_adversarial_placement,
    fast_broadcast,
    textbook_broadcast,
)
from repro.graphs import min_cut, thick_cycle
from repro.lower_bounds import (
    decode_exponents,
    theorem8_rounds_bound,
    theorem9_instance,
    verify_broadcast_meets_bound,
)
from repro.util.bits import message_bit_budget
from repro.util.rng import rng_from_seed
from repro.util.tables import Table

import numpy as np


def run_experiment():
    g = thick_cycle(15, 12)  # n = 180, λ = 24
    side, cut = min_cut(g)
    lam = len(cut)
    w = message_bit_budget(g.n)

    t3 = Table(
        ["algo", "k", "measured", "thm3_bound", "slack"],
        title=f"E5a / Theorem 3 — cut-adversarial broadcast, λ={lam}",
    )
    slacks = []
    for k in (240, 960):
        pl = cut_adversarial_placement(g, side, k)
        for name, res in (
            ("textbook", textbook_broadcast(g, pl)),
            ("fast", fast_broadcast(g, pl, lam=lam, C=1.5, seed=1)),
        ):
            cert = verify_broadcast_meets_bound(
                g, k, res.rounds, message_bits=w, bandwidth_bits=w
            )
            t3.add_row([name, k, res.rounds, round(cert.bound_rounds, 1),
                        round(cert.slack, 1)])
            slacks.append((name, k, cert.slack))
    t3.print()
    assert all(s >= 1.0 for _, _, s in slacks)
    # The fast algorithm's slack stays in an O(log n) band at large k.
    fast_large = [s for name, k, s in slacks if name == "fast" and k == 960]
    assert fast_large[0] <= 20 * np.log(g.n)

    # Theorem 8: ship n ID messages; compare against the Ω(n/λ) floor.
    t8 = Table(
        ["n", "lam", "measured_id_broadcast", "thm8_floor"],
        title="E5b / Theorem 8 — learning all IDs",
    )
    pl = {v: 1 for v in range(g.n)}
    res = fast_broadcast(g, pl, lam=lam, C=1.5, seed=2)
    floor = theorem8_rounds_bound(g.n, lam)
    t8.add_row([g.n, lam, res.rounds, round(floor, 1)])
    t8.print()
    assert res.rounds >= floor

    # Theorem 9: hard weighted instance — decoding + information floor.
    t9 = Table(
        ["n", "lam", "alpha", "kmax", "info_bits", "thm9_floor", "decode_ok"],
        title="E5c / Theorem 9 — weighted APSP hard instance",
    )
    inst = theorem9_instance(120, 8, alpha=2.0, seed=3)
    exact = inst.exact_distances_from_v1()
    rng = rng_from_seed(4)
    approx = exact * (1.0 + rng.random(inst.n) * (inst.alpha - 1.0))
    decoded = decode_exponents(inst, approx)
    ok = bool(np.array_equal(decoded, inst.exponents))
    t9.add_row(
        [inst.n, inst.lam, inst.alpha, inst.kmax,
         round(inst.information_bits()), round(inst.rounds_bound(), 1), ok]
    )
    t9.print()
    assert ok
    assert inst.rounds_bound() > 1
    return slacks


def test_e5_lower_bounds(benchmark):
    run_once(benchmark, run_experiment)
