"""E1 — Lemma 5: p-sampled subgraphs are spanning and low-diameter.

Paper claim: sampling each edge with p = C log n/λ gives, w.h.p., a spanning
subgraph of diameter O(C n log n/δ). Rows sweep n on random-regular hosts
(λ = δ = d) and on the thick cycle (where the n/δ scale is actually large);
columns report measured diameter vs the proof's explicit 20·n·L/δ bound.

Each host additionally runs the Lemma 2 BFS flood *inside the sampled
subgraph* on both backends: the simulator and the vectorized engine must
report identical parents, dists, and certified round counts (the per-row
``bfs_speedup`` column is the wall-clock ratio — the engine's reason to
exist).

Shape assertions: every sample spans; every diameter is below the bound;
diameters track n/δ (not n); backend results are bit-identical.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro.core import analyze_sample, sample_edges, sampling_probability
from repro.graphs import random_regular, thick_cycle
from repro.primitives.bfs import run_bfs
from repro.util.tables import Table


def _bfs_both_backends(g, mask):
    """BFS in the sampled subgraph on both backends; assert bit-equality."""
    t0 = time.perf_counter()
    sim = run_bfs(g, 0, edge_mask=mask, backend="simulator")
    t_sim = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = run_bfs(g, 0, edge_mask=mask, backend="vectorized")
    t_vec = time.perf_counter() - t0
    assert np.array_equal(sim.parent, vec.parent)
    assert np.array_equal(sim.dist, vec.dist)
    assert sim.rounds == vec.rounds
    assert sim.children == vec.children
    return sim.rounds, t_sim / max(t_vec, 1e-9)


def run_experiment():
    table = Table(
        [
            "graph", "n", "delta", "p", "m_sampled", "spanning", "diam",
            "proof_bound", "bfs_rounds", "bfs_speedup",
        ],
        title="E1 / Lemma 5 — sampled subgraph diameter (C = 2, λ = 48)",
    )
    C = 2.0
    rows = []

    # λ = 48 keeps p = C ln n / λ well below 1 so the sampling is genuine
    # (at λ ≲ C ln n the lemma is vacuous — everything survives).
    hosts = [
        ("reg", random_regular(200, 48, seed=1), 48),
        ("reg", random_regular(400, 48, seed=2), 48),
        ("reg", random_regular(800, 48, seed=3), 48),
        ("thick", thick_cycle(25, 24), 48),
        ("thick", thick_cycle(50, 24), 48),
    ]
    speedups = []
    for name, g, lam in hosts:
        p = sampling_probability(g.n, lam, C=C)
        mask = sample_edges(g, p, seed=7)
        rep = analyze_sample(g, mask, C=C)
        bfs_rounds, speedup = _bfs_both_backends(g, mask)
        speedups.append(speedup)
        table.add_row(
            [
                name,
                g.n,
                g.min_degree(),
                round(rep.p, 3),
                rep.m_sampled,
                rep.spanning,
                rep.diameter,
                round(rep.bound),
                bfs_rounds,
                round(speedup, 1),
            ]
        )
        rows.append((name, g, rep))
    table.print()

    # Shape: all spanning, all within the proof bound.
    assert all(r.spanning for _, _, r in rows)
    assert all(r.within_bound for _, _, r in rows)
    # Shape: on regular hosts diameter grows far slower than n (the whole
    # point: sampled diameter ~ n/δ·polylog, and δ is fixed here).
    reg = [r for name, _, r in rows if name == "reg"]
    assert reg[-1].diameter <= reg[0].diameter * 8
    # Backend contract: bit-identical results, and the vectorized flood is
    # decisively faster on every host (conservative floor; typically ≫ 10x).
    assert min(speedups) >= 3.0
    return rows


def test_e1_sampling(benchmark):
    run_once(benchmark, run_experiment)
