"""E3 — Theorem 1 vs Lemma 1: the headline broadcast comparison.

Paper claim: k-broadcast costs Õ((n+k)/λ) with the tree packing vs O(D+k)
for the textbook pipeline, so on a high-λ, moderate-D host the fast
algorithm wins for large k by a factor ≈ λ/log n, with a crossover at small
k (where the textbook's lack of log-factors wins). On a λ = 1 control the
fast algorithm degenerates to a single tree and cannot win.

Rows sweep k on a thick cycle (n = 180, λ = 24, D = 7) plus the λ = 1
barbell control; columns: measured rounds of both algorithms, prediction of
each, and who wins.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import (
    fast_broadcast,
    textbook_broadcast,
    uniform_random_placement,
)
from repro.graphs import barbell, diameter, thick_cycle
from repro.theory import predict_fast_rounds, predict_textbook_rounds
from repro.util.tables import Table


def run_experiment():
    g = thick_cycle(15, 12)  # n = 180, λ = δ = 24, D = 7 or 8
    D = diameter(g)
    lam = 24
    C = 1.5
    table = Table(
        ["k", "textbook", "fast", "winner", "pred_text", "pred_fast", "speedup"],
        title=f"E3 / Theorem 1 vs textbook — thick cycle n={g.n}, λ={lam}, D={D}",
    )
    rows = []
    for k in (20, 90, 360, 1080):
        pl = uniform_random_placement(g.n, k, seed=k)
        text = textbook_broadcast(g, pl)
        fast = fast_broadcast(g, pl, lam=lam, C=C, seed=5)
        winner = "fast" if fast.rounds < text.rounds else "textbook"
        table.add_row(
            [
                k,
                text.rounds,
                fast.rounds,
                winner,
                round(predict_textbook_rounds(D, k)),
                round(predict_fast_rounds(g.n, k, 2 * 12, lam, C)),
                round(text.rounds / fast.rounds, 2),
            ]
        )
        rows.append((k, text, fast))
    table.print()

    # Shape: textbook wins (or ties) at tiny k; fast wins by a growing
    # factor at large k.
    small_k = rows[0]
    large_k = rows[-1]
    assert small_k[1].rounds <= small_k[2].rounds * 1.5
    assert large_k[2].rounds < large_k[1].rounds
    speedup = large_k[1].rounds / large_k[2].rounds
    assert speedup >= 2.0, f"fast should win big at k={large_k[0]}: {speedup}"

    # λ = 1 control: no speedup possible.
    ctrl = barbell(40, bridge_len=10)
    pl = uniform_random_placement(ctrl.n, 200, seed=9)
    text = textbook_broadcast(ctrl, pl)
    fast = fast_broadcast(ctrl, pl, lam=1, seed=9)
    control = Table(
        ["graph", "k", "textbook", "fast(λ=1)"],
        title="E3 control — λ = 1 barbell: Ω(k) unavoidable",
    )
    control.add_row(["barbell", 200, text.rounds, fast.rounds])
    control.print()
    assert fast.rounds >= 0.5 * text.rounds  # no miracle on λ = 1
    return rows


def test_e3_broadcast(benchmark):
    run_once(benchmark, run_experiment)
