"""E15 — §3.2 existential optimality: min(D+k, Õ((n+k)/λ)) vs Theorem 11.

For all k ≤ n the paper's combination nearly matches the Ghaffari–Kuhn
existential lower bound Ω(D + min(K/log²n, n/λ)) for shipping K = Θ(k log n)
bits (Theorem 11), on the very family where that bound is tight. We run the
combined algorithm on the GK13-style instance, sweeping k across the
regimes, and print measured rounds against the bound — the ratio must stay
polylogarithmic, and the combination must actually switch algorithms at the
crossover.
"""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.core import combined_broadcast, uniform_random_placement
from repro.graphs import approx_diameter, ghaffari_kuhn_family
from repro.theory import theorem11_lower_bound
from repro.util.bits import message_bit_budget
from repro.util.tables import Table


def run_experiment():
    g = ghaffari_kuhn_family(32, 24)  # n = 768, λ = 24, D = O(log n)
    lam = 24
    D = approx_diameter(g, samples=4, seed=1)
    w = message_bit_budget(g.n)
    table = Table(
        ["k", "algo_chosen", "measured", "gk_bound", "ratio", "log2(n)^2"],
        title=f"E15 / existential optimality — GK13 family n={g.n}, λ={lam}, D={D}",
    )
    rows = []
    for k in (24, 96, 384, 768):
        pl = uniform_random_placement(g.n, k, seed=k)
        res = combined_broadcast(g, pl, lam=lam, C=1.5, seed=2)
        bound = D + theorem11_lower_bound(k * w, g.n, lam)
        ratio = res.rounds / bound
        table.add_row(
            [k, res.algorithm, res.rounds, round(bound, 1), round(ratio, 1),
             round(math.log2(g.n) ** 2)]
        )
        rows.append((k, res, bound, ratio))
    table.print()

    # Shape: measured is above the bound (it is a lower bound) and within a
    # polylog factor of it across the whole k sweep.
    polylog = math.log2(g.n) ** 2
    for k, res, bound, ratio in rows:
        assert res.rounds >= 0.9 * bound  # bound respected (0.9: D estimate slack)
        assert ratio <= polylog, f"k={k}: ratio {ratio} exceeds log²n = {polylog:.0f}"
    return rows


def test_e15_existential(benchmark):
    run_once(benchmark, run_experiment)
