"""E18 — multi-query frontier planes: one sweep, thousands of queries.

E16/E17 evaluate (scenario × defense × seed) grids; until now every cell
re-ran the engine from a cold start — per-call CSR builds and, on deep
hosts, thousands of tiny per-layer numpy dispatches, repeated once per
query. The :class:`repro.engine.plane.QueryPlane` packs all queries into
one bit-packed (queries × nodes) plane so a whole grid shares a single
layer loop (:func:`repro.engine.faults.faulty_bfs_grid`), with every
element bit-identical to its standalone call — forest, rounds, drop
count, and fault RNG state.

* **E18a — acceptance grid at n = 10⁴**: a 64-root × 4-fault-seed
  E16-style grid (256 queries) under a static dead-edge plan on a *deep*
  host (thick_cycle(2500, 4), D ≈ 1250 — the per-layer-overhead regime
  the plane amortizes). The batched grid must match the loop of single
  calls element-wise bit-identically and run ≥ 10× faster.
* **E18b — queries/sec curve at n = 10⁵**: batch sizes 1 → 10⁴ (roots
  cycling through 256 distinct values, one fault seed per query — the
  seed axis of a scenario grid). Throughput must grow with batch size;
  the top-of-curve ``batched_qps`` feeds the ``compare_bench`` throughput
  floor so a >2× batched-throughput regression fails CI.

Bit-identity is certified twice: element-wise in E18a here, and by the
``check_bfs_batch`` / ``check_fault_grid`` checks that
``repro.engine.verify`` now runs in every sweep (a deterministic anchor
of each also runs below).

Set ``E18_QUICK=1`` for the CI smoke: a small host, grid vs loop on both
backends, bit-identity asserted, no timing assertions.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once, write_bench_artifact
from repro.congest.adversary import FaultPlan
from repro.engine.faults import faulty_bfs, faulty_bfs_grid
from repro.engine.verify import check_bfs_batch, check_fault_grid
from repro.graphs import thick_cycle
from repro.util.rng import rng_from_seed
from repro.util.tables import Table


def _grid_queries(n: int, queries: int, distinct_roots: int, seed: int):
    """(root, fault_seed) pairs cycling through ``distinct_roots`` roots —
    the shape of a scenario grid's seed axis. Distinct roots are spread
    uniformly over the node range so plane rows differ in depth."""
    rng = rng_from_seed(seed)
    pool = np.linspace(0, n - 1, num=distinct_roots, dtype=np.int64)
    roots = [int(pool[i % distinct_roots]) for i in range(queries)]
    fault_seeds = [int(s) for s in rng.integers(0, 1 << 16, size=queries)]
    return roots, fault_seeds


def _dead_plan(graph, every: int = 97) -> FaultPlan:
    """A static dead-edge scenario (every ``every``-th edge id): the
    coin-free regime the plane path collapses to one sweep."""
    return FaultPlan(dead_edges=range(0, graph.m, every))


def _assert_bit_identical(grid, loop):
    assert len(grid) == len(loop)
    for i, (a, b) in enumerate(zip(grid, loop)):
        assert np.array_equal(a.result.parent, b.result.parent), f"parent[{i}]"
        assert np.array_equal(a.result.dist, b.result.dist), f"dist[{i}]"
        assert a.result.rounds == b.result.rounds, f"rounds[{i}]"
        assert a.result.children == b.result.children, f"children[{i}]"
        assert a.dropped == b.dropped, f"dropped[{i}]"
        assert a.fault_rng_state == b.fault_rng_state, f"rng[{i}]"


def run_quick():
    """CI smoke: small host, grid == loop on both backends."""
    g = thick_cycle(12, 4)
    plan = _dead_plan(g, every=11)
    roots, fault_seeds = _grid_queries(g.n, queries=32, distinct_roots=8, seed=4)
    out = {}
    for backend in ("simulator", "vectorized"):
        t0 = time.perf_counter()
        grid = faulty_bfs_grid(
            g, roots, plan=plan, fault_seeds=fault_seeds, backend=backend
        )
        secs = time.perf_counter() - t0
        loop = [
            faulty_bfs(g, r, plan=plan, fault_seed=s, backend=backend)
            for r, s in zip(roots, fault_seeds)
        ]
        _assert_bit_identical(grid, loop)
        out[backend] = secs
    assert check_bfs_batch(g, roots[:6]) == []
    write_bench_artifact(
        "e18_quick",
        {
            "n": g.n,
            "queries": len(roots),
            "sim_seconds": round(out["simulator"], 4),
            "vec_seconds": round(out["vectorized"], 4),
        },
    )
    return out


def run_experiment():
    artifact: dict[str, object] = {}

    # ---- E18a: acceptance grid at n = 10⁴ (deep host) -------------------- #
    g = thick_cycle(2500, 4)
    n = g.n
    assert n >= 10_000
    plan = _dead_plan(g)
    roots, fault_seeds = _grid_queries(n, queries=256, distinct_roots=64, seed=2)

    t0 = time.perf_counter()
    loop = [
        faulty_bfs(g, r, plan=plan, fault_seed=s, backend="vectorized")
        for r, s in zip(roots, fault_seeds)
    ]
    loop_secs = time.perf_counter() - t0

    t0 = time.perf_counter()
    grid = faulty_bfs_grid(g, roots, plan=plan, fault_seeds=fault_seeds)
    grid_secs = time.perf_counter() - t0

    _assert_bit_identical(grid, loop)
    speedup = loop_secs / grid_secs
    print(
        f"E18a — {len(roots)} (root, seed) queries at n={n} (D≈{2500 // 2}): "
        f"loop {loop_secs:.2f}s, plane {grid_secs:.3f}s — {speedup:.0f}x, "
        f"bit-identical"
    )
    assert speedup >= 10.0, f"plane only {speedup:.1f}x over the query loop"
    # The same contract, certified by the verify checks the sweep runs.
    assert check_bfs_batch(g, roots[:4]) == []
    assert check_fault_grid(thick_cycle(5, 4), 6, seed=3, parts=2) == []
    artifact["e18a"] = {
        "n": n,
        "queries": len(roots),
        "distinct_roots": 64,
        "loop_seconds": round(loop_secs, 3),
        "grid_seconds": round(grid_secs, 3),
        "speedup": round(speedup, 1),
        "grid_qps": round(len(roots) / grid_secs, 1),
    }

    # ---- E18b: queries/sec vs batch size at n = 10⁵ ---------------------- #
    gb = thick_cycle(12_500, 8)
    assert gb.n >= 100_000
    plan_b = _dead_plan(gb)
    tb = Table(
        ["batch", "seconds", "queries/sec"],
        title=f"E18b — plane throughput vs batch size (n={gb.n})",
    )
    rows = []
    for batch in (1, 10, 100, 1_000, 10_000):
        roots_b, seeds_b = _grid_queries(
            gb.n, queries=batch, distinct_roots=min(batch, 256), seed=8
        )
        t0 = time.perf_counter()
        res = faulty_bfs_grid(gb, roots_b, plan=plan_b, fault_seeds=seeds_b)
        secs = time.perf_counter() - t0
        assert len(res) == batch
        qps = batch / secs
        tb.add_row([batch, round(secs, 3), round(qps, 1)])
        rows.append({"batch": batch, "seconds": round(secs, 3),
                     "qps": round(qps, 1)})
        del res
    tb.print()
    # Shape: batching must buy at least an order of magnitude of throughput.
    assert rows[-1]["qps"] > 10 * rows[0]["qps"], rows
    artifact["e18b"] = {
        "n": gb.n,
        "curve": rows,
        "batched_qps": rows[-1]["qps"],
    }

    write_bench_artifact("e18", artifact)
    return artifact


def test_e18_multiquery(benchmark):
    if os.environ.get("E18_QUICK") == "1":
        run_once(benchmark, run_quick)
    else:
        run_once(benchmark, run_experiment)
