"""E14 — amortizing the tree packing across broadcast instances (Question 2).

The paper's framing of Question 2: once a good tree packing exists, *any
subsequent* k-broadcast instance runs in Õ(OPT) — the packing is
input-independent, so its cost amortizes. Theorem 2 makes even the first
instance cheap; this experiment quantifies both effects:

* instance 1 pays prologue + packing + pipeline,
* instances 2..T reuse the packing (and, for repeat placements, could even
  reuse the numbering; we re-run it, keeping the comparison honest) and pay
  essentially pipeline only.

Columns: per-instance rounds across 5 instances, the steady-state marginal
cost, and the one-shot textbook cost for reference.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core import (
    build_packing_with_retry,
    fast_broadcast,
    num_parts,
    textbook_broadcast,
    uniform_random_placement,
)
from repro.graphs import thick_cycle
from repro.util.tables import Table


def run_experiment():
    g = thick_cycle(15, 12)  # n = 180, λ = 24
    lam, C, k = 24, 1.5, 540
    parts = num_parts(lam, g.n, C)
    packing, _ = build_packing_with_retry(g, parts, seed=3, distributed=True)

    table = Table(
        ["instance", "fast_rounds", "of which pipeline", "textbook"],
        title=f"E14 / amortized broadcast — n={g.n}, λ={lam}, k={k}, {parts} trees",
    )
    per_instance = []
    for i in range(5):
        pl = uniform_random_placement(g.n, k, seed=100 + i)
        fast = fast_broadcast(g, pl, packing=packing, seed=3)
        if i == 0:
            # Charge the construction to the first instance.
            fast.phases["tree_packing"] = packing.construction_rounds
        text = textbook_broadcast(g, pl)
        table.add_row([i + 1, fast.rounds, fast.phases["pipeline"], text.rounds])
        per_instance.append((fast, text))
    table.print()

    first = per_instance[0][0].rounds
    steady = [f.rounds for f, _ in per_instance[1:]]
    # Shape: steady-state cost < first instance; every instance beats the
    # one-shot textbook run.
    assert max(steady) < first
    for fast, text in per_instance:
        assert fast.rounds < text.rounds
    return per_instance


def test_e14_amortization(benchmark):
    run_once(benchmark, run_experiment)
