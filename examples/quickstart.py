#!/usr/bin/env python
"""Quickstart: broadcast k messages through a highly connected network.

This walks the paper's headline result end to end:

1. build a λ-edge-connected network,
2. scatter k = 4n messages across it,
3. run the textbook O(D + k) broadcast (Lemma 1),
4. run the paper's Õ((n + k)/λ) broadcast (Theorem 1),
5. compare certified round counts against the Ω(k/λ) floor (Theorem 3).

Run:  python examples/quickstart.py
"""

from repro.core import (
    fast_broadcast,
    textbook_broadcast,
    uniform_random_placement,
)
from repro.graphs import diameter, edge_connectivity, thick_cycle
from repro.lower_bounds import verify_broadcast_meets_bound
from repro.util.bits import message_bit_budget


def main() -> None:
    # A "thick cycle": 15 groups of 12 nodes, adjacent groups fully joined.
    # High edge connectivity (λ = 24) with a genuine diameter (D ≈ 7) —
    # the regime the paper targets.
    g = thick_cycle(15, 12)
    lam = edge_connectivity(g)
    D = diameter(g)
    print(f"network: n={g.n} nodes, m={g.m} edges, λ={lam}, δ={g.min_degree()}, D={D}")

    k = 4 * g.n
    placement = uniform_random_placement(g.n, k, seed=42)
    print(f"workload: k={k} messages at random nodes\n")

    text = textbook_broadcast(g, placement)
    print(f"textbook (Lemma 1):   {text.rounds:5d} rounds  {text.phases}")

    fast = fast_broadcast(g, placement, lam=lam, C=1.5, seed=42)
    print(f"fast (Theorem 1):     {fast.rounds:5d} rounds  {fast.phases}")
    print(f"  -> {fast.parts} edge-disjoint spanning trees, "
          f"max depth {fast.packing_max_depth}, "
          f"congestion {fast.max_congestion} (vs {text.max_congestion} single-tree)")

    speedup = text.rounds / fast.rounds
    print(f"\nspeedup: {speedup:.1f}x  (theory predicts ~λ/log n = "
          f"{lam / max(1, __import__('math').log(g.n)):.1f}x for k >> n)")

    w = message_bit_budget(g.n)
    cert = verify_broadcast_meets_bound(
        g, k, fast.rounds, message_bits=w, bandwidth_bits=w
    )
    print(f"Theorem 3 floor: {cert.bound_rounds:.0f} rounds "
          f"(measured/floor = {cert.slack:.1f} — universal optimality means "
          f"this slack is O(log n))")


if __name__ == "__main__":
    main()
