#!/usr/bin/env python
"""Tree packings for resilient communication (Theorem 2 + Theorem 12).

Scenario: the Fischer–Parter mobile-adversary compiler (Section 1.2) turns
any CONGEST algorithm into one that tolerates Õ(λ) adversarial edges per
round — *given* a packing of ≥ λ trees with polylog congestion and small
diameter. This example builds both packings the paper offers:

* the Theorem 2 packing — λ/(C log n) edge-disjoint trees, zero-round
  coloring plus one parallel BFS,
* the Appendix A packing — a full λ trees with O(log n) congestion,

prints the (count, congestion, diameter) triple the compiler consumes, and
then demonstrates Theorem 12 by broadcasting over all the overlapping
Appendix A trees at once under random-delay scheduling.

Run:  python examples/resilient_packing.py [--backend vectorized]

``--backend`` selects how the Theorem 2 packing is built and how the
closing redundant-broadcast demo executes (the vectorized fault engine
produces bit-identical reports; see benchmark E16 for the scale story).
"""

import argparse
import math
import sys

from repro.congest import TargetedCutAdversary
from repro.core import (
    build_packing_with_retry,
    greedy_low_diameter_packing,
    num_parts,
    redundant_broadcast,
    uniform_random_placement,
)
from repro.core.broadcast import _bfs_view
from repro.graphs import edge_connectivity, random_regular
from repro.primitives import run_scheduled_broadcast


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--backend",
        choices=["simulator", "vectorized"],
        default="simulator",
        help="backend for the packing build and the redundant-broadcast demo",
    )
    args = parser.parse_args(argv if argv is not None else [])
    backend = args.backend

    g = random_regular(200, 16, seed=3)
    lam = edge_connectivity(g)
    print(f"network: n={g.n}, m={g.m}, λ={lam}  (backend: {backend})\n")

    parts = num_parts(lam, g.n, C=1.5)
    packing, attempts = build_packing_with_retry(
        g, parts, seed=4, distributed=True, backend=backend
    )
    print("Theorem 2 packing (edge-disjoint):")
    print(f"  trees={packing.size}  congestion={packing.congestion}  "
          f"max diameter={packing.max_diameter}")
    print(f"  built in {packing.construction_rounds} certified rounds "
          f"({attempts} attempt(s))\n")

    alt = greedy_low_diameter_packing(g, lam, seed=5)
    print("Appendix A packing (λ trees, overlapping):")
    print(f"  trees={alt.size}  congestion={alt.congestion} "
          f"(target O(log n) = {math.log(g.n):.1f})  max diameter={alt.max_diameter}\n")

    # Theorem 12: run a broadcast job over *every* Appendix A tree at once.
    # Trees share edges, so the jobs contend; random delays smooth the load.
    jobs = min(6, alt.size)
    trees = {j: _bfs_view(alt, j) for j in range(jobs)}
    msgs = {
        j: {(17 * j) % g.n: list(range(100 * j + 1, 100 * j + 31))}
        for j in range(jobs)
    }
    sched = run_scheduled_broadcast(g, trees, msgs, seed=6)
    base = run_scheduled_broadcast(g, trees, msgs, max_delay=0, seed=6)
    budget = sched.congestion + max(t.diameter() for t in alt.trees[:jobs]) * math.log(g.n) ** 2
    print(f"Theorem 12 — {jobs} overlapping 30-message broadcasts:")
    print(f"  makespan {sched.makespan} rounds with random delays "
          f"(no-delay baseline {base.makespan}); "
          f"O(congestion + dilation·log²n) budget ≈ {budget:.0f}")
    print(f"  joint congestion {sched.congestion} messages on the busiest edge\n")

    # What the FP23 compiler consumes the packing *for*: redundancy against
    # an informed attacker. The targeted-cut adversary aims at the lightest
    # approximate cut (Theorem 7); r = 2 over the edge-disjoint trees rides
    # out its budget.
    attacker = TargetedCutAdversary(
        eps=0.5, budget=6, candidates=8, seed=7, tau=2, backend=backend
    )
    placement = uniform_random_placement(g.n, 60, seed=8)
    print("redundant broadcast vs targeted-cut attacker (budget 6):")
    for r in (1, 2):
        rep = redundant_broadcast(
            g, placement, packing, redundancy=r, adversary=attacker, seed=9,
            backend=backend,
        )
        print(f"  r={r}: {rep.fully_delivered}/{rep.k} fully delivered "
              f"(min coverage {rep.min_coverage:.0%}, "
              f"{rep.dropped_messages} frames dropped, {rep.rounds} rounds)")


if __name__ == "__main__":
    main(sys.argv[1:])
