#!/usr/bin/env python
"""Distance oracles on a data-center-style fabric (Theorems 4 & 5).

Scenario: a multi-path switching fabric (high edge connectivity by design)
wants every switch to hold a distance table to every other switch — e.g.
for latency-aware routing — without Ω(n) rounds of flooding. The paper's
APSP applications do it in Õ(n/λ):

* unweighted (hop count): the (3, 2)-approximation of Theorem 4,
* weighted (link latency): the (2k−1)-approximation of Theorem 5 via a
  Baswana–Sen spanner broadcast.

Run:  python examples/distance_oracle.py
"""

import numpy as np

from repro.apsp import (
    approx_apsp_unweighted,
    approx_apsp_weighted,
    check_32_approximation,
    check_weighted_stretch,
    corollary1_k,
)
from repro.graphs import edge_connectivity, random_weights, thick_cycle


def main() -> None:
    fabric = thick_cycle(12, 10)  # 120 switches, λ = 20
    lam = edge_connectivity(fabric)
    print(f"fabric: n={fabric.n}, m={fabric.m}, λ={lam}\n")

    # --- hop-count oracle (Theorem 4) ---------------------------------- #
    res = approx_apsp_unweighted(fabric, lam=lam, C=1.5, seed=7)
    ok, worst = check_32_approximation(fabric, res.estimate)
    print("hop-count oracle (Theorem 4, (3,2)-approximation):")
    print(f"  clusters: {res.k_clusters} (Õ(n/δ))")
    print(f"  rounds:   {res.rounds} total — simulated {res.simulated_rounds},"
          f" charged {res.charged_rounds}")
    print(f"  envelope d <= d~ <= 3d+2 holds: {ok} (worst multiplicative {worst:.2f})")
    u, v = 3, fabric.n // 2
    print(f"  sample: switch {u} -> {v}: estimate {res.estimate[u, v]}\n")

    # --- latency oracle (Theorem 5 / Corollary 1) ----------------------- #
    weighted = random_weights(fabric, low=1, high=50, seed=8)
    k = corollary1_k(weighted.n)
    wres = approx_apsp_weighted(weighted, k=k, lam=lam, C=1.5, seed=9)
    ok_w, stretch = check_weighted_stretch(weighted, wres.estimate, k)
    print(f"latency oracle (Corollary 1, k={k} -> stretch <= {2*k-1}):")
    print(f"  spanner: {wres.spanner.m} of {weighted.m} edges broadcast")
    print(f"  rounds:  {wres.rounds} total — simulated {wres.simulated_rounds},"
          f" charged {wres.charged_rounds}")
    print(f"  stretch bound holds: {ok_w} (measured worst stretch {stretch:.2f})")

    # Both oracles end with *every* node able to answer locally:
    est = wres.estimate
    far = int(np.argmax(est[0]))
    print(f"  sample: farthest switch from 0 is {far} at estimated latency "
          f"{est[0, far]:.0f}")


if __name__ == "__main__":
    main()
