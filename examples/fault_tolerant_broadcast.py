#!/usr/bin/env python
"""Surviving link sabotage with edge-disjoint trees (Section 1.2 mechanism).

Scenario: an adversary (or a misbehaving switch ASIC) silently drops every
frame on the links of one spanning tree. Because the Theorem 2 packing is
**edge-disjoint**, assigning each message to r trees makes it survive the
loss of any r−1 whole color classes — the elementary mechanism behind the
Fischer–Parter resilient compilers the paper feeds.

This example broadcasts 120 messages over a 3-tree packing while tree 0's
edges are dead, at redundancy r = 1, 2, 3, and prints the coverage/cost
trade-off. It then shows a lossy-network run (1% random frame drop) and an
*informed* attacker: :class:`~repro.congest.adversary.TargetedCutAdversary`
runs the Theorem 7 all-cuts pipeline, finds the lightest approximate cut,
and kills its crossing edges — the worst place to lose bandwidth.

Run:  python examples/fault_tolerant_broadcast.py [--backend vectorized]

``--backend vectorized`` replays the identical executions (bit-identical
reports, same fault RNG stream) on the fault-aware numpy engine, which is
the mode that scales these experiments to n = 10⁵ (benchmark E16).
"""

import argparse
import sys

from repro.congest import TargetedCutAdversary
from repro.core import (
    build_packing_with_retry,
    redundant_broadcast,
    tree_edge_ids,
    uniform_random_placement,
)
from repro.graphs import edge_connectivity, thick_cycle


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--backend",
        choices=["simulator", "vectorized"],
        default="simulator",
        help="simulator = certified CONGEST execution; vectorized = "
        "bit-identical delivery reports via the fault-aware numpy engine",
    )
    args = parser.parse_args(argv if argv is not None else [])
    backend = args.backend

    g = thick_cycle(10, 10)  # n = 100, λ = 20
    lam = edge_connectivity(g)
    packing, _ = build_packing_with_retry(g, 3, seed=2, distributed=False)
    print(f"network: n={g.n}, λ={lam}; packing: {packing.size} edge-disjoint trees")
    print(f"backend: {backend}\n")

    k = 120
    placement = uniform_random_placement(g.n, k, seed=3)
    dead = tree_edge_ids(packing, 0)
    print(f"adversary kills all {len(dead)} edges of tree 0\n")

    print(f"{'redundancy':>10} {'rounds':>7} {'fully delivered':>16} {'min coverage':>13}")
    for r in (1, 2, 3):
        rep = redundant_broadcast(
            g, placement, packing, redundancy=r, dead_edges=dead, seed=4,
            backend=backend,
        )
        print(f"{r:>10} {rep.rounds:>7} {rep.fully_delivered:>9}/{rep.k:<6} "
              f"{rep.min_coverage:>12.0%}")

    print("\nr = 1 loses exactly the k/3 messages homed on the dead tree;")
    print("r = 2 already recovers everything at ~2x the pipeline rounds.\n")

    lossy = redundant_broadcast(
        g, placement, packing, redundancy=2, drop_rate=0.01, seed=5,
        backend=backend,
    )
    print(f"lossy network (1% frame drop, r=2): {lossy.fully_delivered}/{lossy.k} "
          f"messages reached everyone; {lossy.dropped_messages} frames dropped "
          f"in {lossy.rounds} rounds\n")

    # The informed attacker: estimate all cut values from the Theorem 7
    # sparsifier (what a compromised node actually holds), then kill the
    # lightest cut it can afford with a budget of 8 edges.
    attacker = TargetedCutAdversary(
        eps=0.5, budget=8, candidates=8, seed=6, tau=2, backend=backend
    )
    plan = attacker.compile(g, packing=packing)
    print(f"targeted-cut attacker (budget 8): kills edges {sorted(plan.dead_edges)}")
    for r in (1, 2):
        rep = redundant_broadcast(
            g, placement, packing, redundancy=r, adversary=attacker, seed=4,
            backend=backend,
        )
        print(f"  r={r}: {rep.fully_delivered}/{rep.k} fully delivered, "
              f"min coverage {rep.min_coverage:.0%}, "
              f"{rep.dropped_messages} frames dropped")
    print("\nunlike the oblivious saboteur, the informed attacker aims at the")
    print("leader's own degree cut — every tree passes through those few")
    print("edges, so tree redundancy alone cannot route around it. That is")
    print("the Theorem 1 bandwidth argument in reverse, and why FP23-style")
    print("compilers must re-root or spread trees across the cut.")


if __name__ == "__main__":
    main(sys.argv[1:])
