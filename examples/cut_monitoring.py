#!/usr/bin/env python
"""Network-wide cut monitoring via sparsifier broadcast (Theorem 7).

Scenario: an overlay network wants every node to estimate the capacity of
*arbitrary* cuts — "how much bandwidth survives if this set of nodes
partitions away?" — continuously and locally. Theorem 7: broadcast a
Koutis–Xu sparsifier once (Õ(n/(λε²)) rounds); afterwards every node
evaluates any cut to within (1±ε) with zero further communication.

Run:  python examples/cut_monitoring.py
"""

import numpy as np

from repro.cuts import approx_all_cuts, evaluate_cut_quality
from repro.graphs import cut_value, edge_connectivity, min_cut, thick_cycle
from repro.util.rng import rng_from_seed


def main() -> None:
    g = thick_cycle(8, 18)  # n = 144, λ = 36, m = 2592: dense overlay
    lam = edge_connectivity(g)
    eps = 0.4
    print(f"overlay: n={g.n}, m={g.m}, λ={lam}; target accuracy ±{eps:.0%}\n")

    res = approx_all_cuts(g, eps=eps, lam=lam, C=1.5, seed=11, tau=3)
    sp = res.sparsifier
    print(f"sparsifier: {sp.m} edges (host has {g.m}), built in "
          f"{res.charged_rounds['koutis_xu']} charged rounds over {sp.levels} levels")
    print(f"broadcast:  {res.simulated_rounds['broadcast_sparsifier']} certified "
          f"CONGEST rounds — after this, every node holds the sparsifier\n")

    # Every node can now answer cut queries locally. Demonstrate three:
    rng = rng_from_seed(5)
    queries = {
        "random half": rng.random(g.n) < 0.5,
        "one group": np.arange(g.n) < 18,
        "min cut side": min_cut(g)[0],
    }
    print(f"{'cut query':<14} {'exact':>8} {'estimate':>9} {'error':>7}")
    for name, side in queries.items():
        exact = cut_value(g, side)
        est = res.estimate_cut(side)
        print(f"{name:<14} {exact:8.0f} {est:9.1f} {abs(est-exact)/exact:6.1%}")

    quality = evaluate_cut_quality(g, sp.sparsifier, num_random_cuts=100, seed=6)
    print(f"\nswept {quality['cuts']:.0f} cuts: max error "
          f"{quality['max_rel_error']:.1%}, mean {quality['mean_rel_error']:.1%} "
          f"(target {eps:.0%})")


if __name__ == "__main__":
    main()
