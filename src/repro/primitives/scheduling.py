"""Random-delay scheduling of concurrent algorithms (Theorem 12, [Gha15b]).

Ghaffari's scheduler executes k distributed algorithms together in
``O(congestion) + O(dilation · log² n)`` rounds w.h.p.: give each algorithm
an independent random start delay, and let every edge serve its queued
messages one per round. The paper invokes this in Appendix B (Theorem 13) to
run the basic broadcast of Lemma 1 in many *overlapping* subgraphs at once.

This module implements exactly that use case: multiple pipelined tree
broadcasts whose trees may **share edges**. Each node keeps one FIFO per
port; sub-jobs (channels) deposit their sends into the FIFOs, and the node
flushes at most one message per port per round — which is precisely the
CONGEST constraint, so the simulator's bandwidth checks stay satisfied even
though the trees overlap.

Measured quantities (experiment E11):

* ``makespan`` — rounds until every job finished,
* ``congestion`` — max total messages per edge (from simulator metrics),
* ``dilation`` — max stand-alone round count over jobs,

and the bench compares makespan against ``congestion + dilation·log² n``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


from repro.congest.metrics import Metrics
from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult
from repro.primitives.pipeline import ChannelSpec
from repro.util.errors import ProtocolError, ValidationError
from repro.util.rng import ensure_rng

__all__ = ["ScheduledBroadcastProgram", "ScheduleOutcome", "run_scheduled_broadcast"]

_UP = 0
_DOWN = 1


class _JobState:
    __slots__ = ("spec", "delay", "up_queue", "down_queue", "recv_count", "recv_sum")

    def __init__(self, spec: ChannelSpec, delay: int):
        self.spec = spec
        self.delay = delay
        self.up_queue: deque[int] = deque(spec.own)
        self.down_queue: deque[int] = deque()
        is_root = spec.parent_port is None
        if is_root:
            self.down_queue.extend(self.up_queue)
            self.up_queue.clear()
        self.recv_count = len(spec.own) if is_root else 0
        self.recv_sum = sum(spec.own) if is_root else 0


class ScheduledBroadcastProgram(NodeProgram):
    """Host several tree-broadcast jobs behind per-port FIFO queues."""

    def __init__(self, node: int, jobs: dict[int, ChannelSpec], delays: dict[int, int]):
        super().__init__()
        self.node = node
        self.jobs = {cid: _JobState(spec, delays[cid]) for cid, spec in jobs.items()}
        self.port_fifo: dict[int, deque[tuple[int, int, int]]] = {}

    def _enqueue(self, port: int, payload: tuple[int, int, int]) -> None:
        self.port_fifo.setdefault(port, deque()).append(payload)

    def _pump(self, ctx: Context) -> None:
        for cid, job in self.jobs.items():
            if ctx.round < job.delay:
                continue
            spec = job.spec
            if job.up_queue and spec.parent_port is not None:
                self._enqueue(spec.parent_port, (_UP, cid, job.up_queue.popleft()))
            if job.down_queue:
                mid = job.down_queue.popleft()
                for p in spec.child_ports:
                    self._enqueue(p, (_DOWN, cid, mid))

    def _flush(self, ctx: Context) -> None:
        busy = False
        for port, fifo in self.port_fifo.items():
            if fifo:
                ctx.send(port, fifo.popleft())
                busy = busy or bool(fifo)
        if busy or any(
            j.up_queue or j.down_queue or ctx.round < j.delay
            for j in self.jobs.values()
        ):
            ctx.wake()

    def on_start(self, ctx: Context) -> None:
        self._pump(ctx)
        self._flush(ctx)

    def on_round(self, ctx: Context) -> None:
        for port, payload in ctx.inbox:
            kind, cid, mid = payload
            job = self.jobs.get(cid)
            if job is None:
                raise ProtocolError(f"node {self.node}: unknown job {cid}")
            spec = job.spec
            if kind == _UP:
                if spec.parent_port is None:
                    job.down_queue.append(mid)
                    job.recv_count += 1
                    job.recv_sum += mid
                else:
                    job.up_queue.append(mid)
            elif kind == _DOWN:
                job.recv_count += 1
                job.recv_sum += mid
                job.down_queue.append(mid)
            else:
                raise ProtocolError(f"unknown scheduled payload kind {kind}")
        self._pump(ctx)
        self._flush(ctx)


@dataclass
class ScheduleOutcome:
    """Joint execution statistics for experiment E11."""

    makespan: int
    metrics: Metrics
    delays: dict[int, int]
    per_job_k: dict[int, int]

    @property
    def congestion(self) -> int:
        return self.metrics.max_congestion


def run_scheduled_broadcast(
    graph: Graph,
    trees: dict[int, BFSResult],
    messages: dict[int, dict[int, list[int]]],
    max_delay: int | None = None,
    seed=None,
    verify: bool = True,
) -> ScheduleOutcome:
    """Run possibly-overlapping tree broadcasts with random start delays.

    ``max_delay`` defaults to a congestion-proportional window: the sum over
    jobs of their message counts divided by the number of jobs — the scale
    Theorem 12's analysis smooths load over. Pass ``0`` to get the
    no-delay baseline the E11 bench compares against.
    """
    rng = ensure_rng(seed)
    network = Network(graph)

    per_job_k: dict[int, int] = {}
    expected_sum: dict[int, int] = {}
    for cid, placement in messages.items():
        ids = [m for msgs in placement.values() for m in msgs]
        if len(set(ids)) != len(ids):
            raise ValidationError(f"duplicate message ids in job {cid}")
        per_job_k[cid] = len(ids)
        expected_sum[cid] = sum(ids)
    for cid, tree in trees.items():
        per_job_k.setdefault(cid, 0)
        expected_sum.setdefault(cid, 0)
        if not tree.spans():
            raise ValidationError(f"job {cid} tree does not span the graph")

    if max_delay is None:
        total_msgs = sum(per_job_k.values())
        max_delay = max(1, total_msgs // max(1, len(trees)))
    delays = {
        cid: (0 if max_delay == 0 else int(rng.integers(max_delay)))
        for cid in trees
    }

    programs: list[ScheduledBroadcastProgram] = []

    def factory(v: int) -> ScheduledBroadcastProgram:
        specs: dict[int, ChannelSpec] = {}
        for cid, tree in trees.items():
            parent = int(tree.parent[v])
            specs[cid] = ChannelSpec(
                parent_port=None if parent == v else network.port_to(v, parent),
                child_ports=[network.port_to(v, c) for c in tree.children[v]],
                own=list(messages.get(cid, {}).get(v, [])),
                total=per_job_k[cid],
            )
        prog = ScheduledBroadcastProgram(v, specs, delays)
        programs.append(prog)
        return prog

    sim = Simulator(network, factory)
    result = sim.run()

    if verify:
        for v, prog in enumerate(programs):
            for cid in trees:
                job = prog.jobs[cid]
                if job.recv_count != per_job_k[cid] or job.recv_sum != expected_sum[cid]:
                    raise ProtocolError(
                        f"node {v} missed messages in job {cid}: "
                        f"got {job.recv_count}/{per_job_k[cid]}"
                    )

    return ScheduleOutcome(
        makespan=result.metrics.rounds,
        metrics=result.metrics,
        delays=delays,
        per_job_k=per_job_k,
    )
