"""Leader election by minimum-ID flooding.

The paper (Section 2) elects a leader by rooting a BFS; equivalently, every
node floods the smallest ID it has heard, and after D+1 quiet rounds the
unique minimum has reached everyone. Flooding is the standard O(D)-round,
O(log n)-bits-per-message primitive; the textbook broadcast algorithm
(Lemma 1) uses it to agree on the BFS root.
"""

from __future__ import annotations

from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.graphs.graph import Graph

__all__ = ["MinIDFloodProgram", "elect_leader"]


_LEADER = 0  # int payload tag (strings are too wide for tiny-n budgets)


class MinIDFloodProgram(NodeProgram):
    """Each node repeatedly forwards the smallest ID seen so far."""

    def __init__(self, node: int):
        super().__init__()
        self.node = node
        self.best = node

    def on_start(self, ctx: Context) -> None:
        ctx.send_all((_LEADER, self.best))

    def on_round(self, ctx: Context) -> None:
        improved = False
        for _port, payload in ctx.inbox:
            _tag, candidate = payload
            if candidate < self.best:
                self.best = candidate
                improved = True
        if improved:
            ctx.send_all((_LEADER, self.best))
        self.output["leader"] = self.best


def elect_leader(graph: Graph) -> tuple[int, int]:
    """Elect the minimum-ID node; returns ``(leader, rounds)``.

    Every node learns the leader; the tests assert unanimity. Rounds are
    O(D) — each round the frontier of "knows the minimum" grows by one hop.
    """
    network = Network(graph)
    sim = Simulator(network, lambda v: MinIDFloodProgram(v))
    result = sim.run()
    leaders = {p.best for p in result.programs}
    if len(leaders) != 1:
        # Disconnected graphs legitimately elect one leader per component;
        # callers on connected graphs treat this as a failure.
        raise RuntimeError(f"no unanimous leader: {sorted(leaders)}")
    return leaders.pop(), result.metrics.rounds
