"""Tree convergecast / downcast aggregation (used by Lemma 4 and Lemma 3).

A convergecast computes an associative aggregate (min, max, or sum) of
per-node values up a rooted spanning tree in depth(T) rounds, then the root
downcasts the result in another depth(T) rounds so every node knows it.

The paper uses this shape twice in Section 2:

* Lemma 4 (first half): learn δ = min over degrees via a BFS-tree
  convergecast, then broadcast it — ``O(D)`` rounds total
  (:func:`learn_min_degree`).
* Lemma 3: subtree item-count sums on the way up, identifier-range splits on
  the way down (implemented in :mod:`repro.primitives.numbering`).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult, run_bfs
from repro.util.errors import ProtocolError, ValidationError

__all__ = ["ConvergecastProgram", "tree_aggregate", "learn_min_degree"]

_UP = 0
_DOWN = 1

_OPS: dict[str, Callable[[int, int], int]] = {
    "min": min,
    "max": max,
    "sum": lambda a, b: a + b,
}


class ConvergecastProgram(NodeProgram):
    """Aggregate ``value`` up a known tree, then downcast the result.

    The node-local tree structure (parent port, child ports) comes from a
    prior BFS; leaves fire immediately, internal nodes after all children
    report. The root switches to the downcast phase, after which every node
    stores the global aggregate in ``self.result``.
    """

    def __init__(
        self,
        node: int,
        value: int,
        parent_port: int | None,
        child_ports: list[int],
        op: str,
        is_root: bool,
    ):
        super().__init__()
        if op not in _OPS:
            raise ValidationError(f"unsupported op {op!r}; use one of {sorted(_OPS)}")
        self.node = node
        self.op = _OPS[op]
        self.acc = value
        self.parent_port = parent_port
        self.waiting = set(child_ports)
        self.child_ports = list(child_ports)
        self.is_root = is_root
        self.result: int | None = None

    def _maybe_fire_up(self, ctx: Context) -> None:
        if self.waiting:
            return
        if self.is_root:
            self.result = self.acc
            self.output["result"] = self.result
            for p in self.child_ports:
                ctx.send(p, (_DOWN, self.result))
            ctx.halt()
        else:
            ctx.send(self.parent_port, (_UP, self.acc))

    def on_start(self, ctx: Context) -> None:
        self._maybe_fire_up(ctx)

    def on_round(self, ctx: Context) -> None:
        for port, payload in ctx.inbox:
            kind, value = payload
            if kind == _UP:
                if port not in self.waiting:
                    raise ProtocolError(
                        f"node {self.node} got an UP from non-child port {port}"
                    )
                self.waiting.discard(port)
                self.acc = self.op(self.acc, value)
                self._maybe_fire_up(ctx)
            elif kind == _DOWN:
                self.result = value
                self.output["result"] = value
                for p in self.child_ports:
                    ctx.send(p, (_DOWN, value))
                ctx.halt()
            else:
                raise ProtocolError(f"unknown convergecast payload kind {kind}")


def tree_aggregate(
    graph: Graph,
    tree: BFSResult,
    values: np.ndarray,
    op: str = "min",
) -> tuple[int, int]:
    """Aggregate ``values`` over ``tree``; every node learns the result.

    Returns ``(aggregate, rounds)``. Rounds = 2·depth(T) + O(1).
    """
    if not tree.spans():
        raise ValidationError("aggregation requires a spanning tree")
    values = np.asarray(values)
    if values.shape != (graph.n,):
        raise ValidationError("need one value per node")
    network = Network(graph)

    def factory(v: int) -> ConvergecastProgram:
        parent = int(tree.parent[v])
        parent_port = None if parent == v else network.port_to(v, parent)
        child_ports = [network.port_to(v, c) for c in tree.children[v]]
        return ConvergecastProgram(
            v,
            int(values[v]),
            parent_port,
            child_ports,
            op,
            is_root=(v == tree.root),
        )

    sim = Simulator(network, factory)
    result = sim.run()
    answers = {p.result for p in result.programs}
    if len(answers) != 1 or None in answers:
        raise ProtocolError(f"aggregation did not converge: {answers}")
    return answers.pop(), result.metrics.rounds


def learn_min_degree(graph: Graph, root: int = 0) -> tuple[int, int]:
    """Lemma 4 (δ half): every node learns δ in O(D) rounds.

    Returns ``(delta, total_rounds)`` where the total includes the BFS that
    builds the aggregation tree. (The λ half of Lemma 4 relies on the
    shortcut machinery of [CPT20, GZ22]; the library instead offers the
    paper's exponential-search alternative — see
    :mod:`repro.core.lambda_search` — which needs no λ knowledge at all.)
    """
    tree = run_bfs(graph, root)
    delta, rounds = tree_aggregate(graph, tree, graph.degrees(), op="min")
    return delta, tree.rounds + rounds
