"""Distributed item numbering over a BFS tree (Lemma 3).

Each node ``v`` holds ``x_v`` items; the protocol assigns every item a
globally unique identifier in ``[X]``, ``X = Σ x_v``, in ``O(D)`` rounds:

1. **Up phase** — convergecast of subtree item counts: each node reports
   ``x_v + Σ (children's subtree counts)`` to its parent.
2. **Down phase** — the root takes ``[1..x_root]`` for its own items and
   splits the rest among its children's subtrees in child-port order; every
   node receiving a range ``[a, b]`` does the same.

The broadcast algorithm (Theorem 1) uses this to number the k messages
``1..k`` so that message ``j`` can be deterministically assigned to spanning
subgraph ``G_{⌈j/K⌉}`` with ``K = ⌈k/λ'⌉``.
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult
from repro.util.errors import ProtocolError, ValidationError

__all__ = ["NumberingProgram", "assign_item_numbers"]

_COUNT = 0
_RANGE = 1


class NumberingProgram(NodeProgram):
    """Subtree-count convergecast followed by range-splitting downcast."""

    def __init__(
        self,
        node: int,
        own_count: int,
        parent_port: int | None,
        child_ports: list[int],
        is_root: bool,
    ):
        super().__init__()
        if own_count < 0:
            raise ValidationError("item counts must be non-negative")
        self.node = node
        self.own = own_count
        self.parent_port = parent_port
        self.child_ports = list(child_ports)
        self.waiting = set(child_ports)
        self.subtree_counts: dict[int, int] = {}
        self.is_root = is_root
        self.start: int | None = None  # first id of this node's own items

    def _subtree_total(self) -> int:
        return self.own + sum(self.subtree_counts.values())

    def _split(self, ctx: Context, start: int) -> None:
        """Take own ids first, then hand each child its subtree's range."""
        self.start = start
        self.output["start"] = start
        self.output["count"] = self.own
        cursor = start + self.own
        for p in self.child_ports:
            ctx.send(p, (_RANGE, cursor))
            cursor += self.subtree_counts[p]
        ctx.halt()

    def _maybe_fire_up(self, ctx: Context) -> None:
        if self.waiting:
            return
        if self.is_root:
            self._split(ctx, start=1)  # paper numbers items 1..X
        else:
            ctx.send(self.parent_port, (_COUNT, self._subtree_total()))

    def on_start(self, ctx: Context) -> None:
        self._maybe_fire_up(ctx)

    def on_round(self, ctx: Context) -> None:
        for port, payload in ctx.inbox:
            kind, value = payload
            if kind == _COUNT:
                if port not in self.waiting:
                    raise ProtocolError(
                        f"node {self.node}: COUNT from unexpected port {port}"
                    )
                self.waiting.discard(port)
                self.subtree_counts[port] = value
                self._maybe_fire_up(ctx)
            elif kind == _RANGE:
                self._split(ctx, start=value)
            else:
                raise ProtocolError(f"unknown numbering payload kind {kind}")


def assign_item_numbers(
    graph: Graph, tree: BFSResult, counts: np.ndarray
) -> tuple[np.ndarray, int]:
    """Run Lemma 3 over a spanning BFS tree.

    Returns ``(starts, rounds)`` where node ``v``'s items get the contiguous
    ids ``starts[v] .. starts[v] + counts[v] - 1`` and all ids together are
    exactly ``1..X``. Rounds = 2·depth(T) + O(1).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != (graph.n,):
        raise ValidationError("need one item count per node")
    if not tree.spans():
        raise ValidationError("numbering requires a spanning tree")
    network = Network(graph)

    def factory(v: int) -> NumberingProgram:
        parent = int(tree.parent[v])
        parent_port = None if parent == v else network.port_to(v, parent)
        child_ports = [network.port_to(v, c) for c in tree.children[v]]
        return NumberingProgram(
            v, int(counts[v]), parent_port, child_ports, is_root=(v == tree.root)
        )

    sim = Simulator(network, factory)
    result = sim.run()
    starts = np.empty(graph.n, dtype=np.int64)
    for v, prog in enumerate(result.programs):
        if prog.start is None:
            raise ProtocolError(f"node {v} never received an id range")
        starts[v] = prog.start
    # Certify global uniqueness/contiguity (the Lemma 3 guarantee).
    ids = []
    for v in range(graph.n):
        ids.extend(range(int(starts[v]), int(starts[v] + counts[v])))
    expected = list(range(1, int(counts.sum()) + 1))
    if sorted(ids) != expected:
        raise ProtocolError("identifier ranges are not a partition of [X]")
    return starts, result.metrics.rounds
