"""Pipelined k-message broadcast over rooted trees (Lemma 1).

Given a rooted spanning tree T and k messages initially scattered over the
nodes, Lemma 1 broadcasts all of them in ``O(depth(T) + k)`` rounds with
congestion ``O(k)`` per edge:

* **Upcast** — every node streams its pending messages (its own items plus
  anything received from children) to its parent, one per round per tree
  edge. After ``depth + k`` rounds the root has everything.
* **Downcast** — the root streams every message to all children, one per
  round; internal nodes forward FIFO. Another ``depth + k`` rounds.

The two phases overlap freely (the root starts streaming as soon as the
first message arrives), so the whole pipeline is ``≈ 2·depth + 2k`` rounds —
the ``O(D + k)`` of Lemma 1 with explicit constants.

**Channels.** Theorem 1 runs λ' of these pipelines concurrently, one per
edge-disjoint spanning tree, each carrying its assigned ``k_i = O(k/λ')``
messages. :class:`PipelinedBroadcastProgram` multiplexes channels the same
way :class:`~repro.primitives.bfs.BFSProgram` does; edge-disjointness keeps
the per-edge one-message-per-round constraint intact, which the simulator
enforces.

Delivery verification uses a (count, sum-of-ids) accumulator per node per
channel — exact set equality given that channel ``c``'s message ids are a
known contiguous range (from Lemma 3 numbering).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.congest.metrics import Metrics
from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult
from repro.util.errors import ProtocolError, ValidationError

__all__ = [
    "ChannelSpec",
    "PipelinedBroadcastProgram",
    "TreeBroadcastOutcome",
    "run_tree_broadcast",
]

_UP = 0
_DOWN = 1


@dataclass
class ChannelSpec:
    """Node-local description of one broadcast channel.

    Attributes
    ----------
    parent_port: port toward the tree parent (``None`` at the root).
    child_ports: ports toward tree children.
    own: message ids this node initially holds on this channel.
    total: k_i — total messages on this channel (common knowledge after the
        Lemma 3 numbering step).
    """

    parent_port: int | None
    child_ports: list[int]
    own: list[int]
    total: int


class _ChannelState:
    __slots__ = ("spec", "up_queue", "down_queue", "recv_count", "recv_sum", "down_sent")

    def __init__(self, spec: ChannelSpec):
        self.spec = spec
        self.up_queue: deque[int] = deque(spec.own)
        self.down_queue: deque[int] = deque()
        # Every message reaches a non-root node exactly once *via DOWN*
        # (its own items included — they echo back from the root), so
        # non-root receive counters start at zero. The root never gets a
        # DOWN, so it counts its own items up front plus UP arrivals.
        is_root = spec.parent_port is None
        self.recv_count = len(spec.own) if is_root else 0
        self.recv_sum = sum(spec.own) if is_root else 0
        self.down_sent = 0


class PipelinedBroadcastProgram(NodeProgram):
    """Per-node pipelined upcast/downcast over any number of channels."""

    def __init__(self, node: int, channels: dict[int, ChannelSpec]):
        super().__init__()
        self.node = node
        self.ch: dict[int, _ChannelState] = {}
        for cid, spec in channels.items():
            st = _ChannelState(spec)
            if spec.parent_port is None:
                # Root: own messages go straight to the down stream.
                st.down_queue.extend(st.up_queue)
                st.up_queue.clear()
            self.ch[cid] = st

    # -- helpers ---------------------------------------------------------- #

    def _pump(self, ctx: Context) -> None:
        """Send one queued message per tree edge per channel; wake if busy."""
        busy = False
        for cid, st in self.ch.items():
            spec = st.spec
            if st.up_queue and spec.parent_port is not None:
                ctx.send(spec.parent_port, (_UP, cid, st.up_queue.popleft()))
                busy = busy or bool(st.up_queue)
            if st.down_queue:
                mid = st.down_queue.popleft()
                for p in spec.child_ports:
                    ctx.send(p, (_DOWN, cid, mid))
                st.down_sent += 1
                busy = busy or bool(st.down_queue)
        if busy:
            ctx.wake()

    def on_start(self, ctx: Context) -> None:
        self._pump(ctx)

    def on_round(self, ctx: Context) -> None:
        for port, payload in ctx.inbox:
            kind, cid, mid = payload
            st = self.ch.get(cid)
            if st is None:
                raise ProtocolError(f"node {self.node}: unknown channel {cid}")
            spec = st.spec
            if kind == _UP:
                if port not in spec.child_ports:
                    raise ProtocolError(
                        f"node {self.node}: UP on non-child port {port} (ch {cid})"
                    )
                if spec.parent_port is None:
                    st.down_queue.append(mid)  # root bounces into the stream
                    st.recv_count += 1
                    st.recv_sum += mid
                else:
                    st.up_queue.append(mid)
            elif kind == _DOWN:
                if port != spec.parent_port:
                    raise ProtocolError(
                        f"node {self.node}: DOWN on non-parent port {port} (ch {cid})"
                    )
                st.recv_count += 1
                st.recv_sum += mid
                st.down_queue.append(mid)
            else:
                raise ProtocolError(f"unknown pipeline payload kind {kind}")
        self._pump(ctx)

    def finalize(self) -> None:
        self.output["recv"] = {
            cid: (st.recv_count, st.recv_sum) for cid, st in self.ch.items()
        }


@dataclass
class TreeBroadcastOutcome:
    """Result of a (multi-channel) pipelined tree broadcast run."""

    rounds: int
    metrics: Metrics
    k_total: int
    per_channel_k: dict[int, int]

    @property
    def max_congestion(self) -> int:
        return self.metrics.max_congestion


def run_tree_broadcast(
    graph: Graph,
    trees: dict[int, BFSResult],
    messages: dict[int, dict[int, list[int]]],
    verify: bool = True,
) -> TreeBroadcastOutcome:
    """Broadcast messages over one or more edge-disjoint rooted trees.

    Parameters
    ----------
    graph: the communication graph.
    trees: ``channel -> BFSResult`` spanning trees (edge-disjoint across
        channels; the per-edge CONGEST constraint is enforced by the
        simulator, so overlapping trees fail loudly rather than silently).
    messages: ``channel -> {node -> [message ids]}`` initial placement.
    verify: check that every node received every channel's full id multiset
        (via count and sum, exact for distinct ids).

    Returns a :class:`TreeBroadcastOutcome` with certified round/congestion
    counts.
    """
    network = Network(graph)
    per_channel_k: dict[int, int] = {}
    expected_sum: dict[int, int] = {}
    for cid, placement in messages.items():
        if cid not in trees:
            raise ValidationError(f"messages given for unknown channel {cid}")
        ids = [m for msgs in placement.values() for m in msgs]
        if len(set(ids)) != len(ids):
            raise ValidationError(f"duplicate message ids on channel {cid}")
        per_channel_k[cid] = len(ids)
        expected_sum[cid] = sum(ids)
    for cid in trees:
        per_channel_k.setdefault(cid, 0)
        expected_sum.setdefault(cid, 0)
        if not trees[cid].spans():
            raise ValidationError(f"channel {cid} tree does not span the graph")

    programs: list[PipelinedBroadcastProgram] = []

    def factory(v: int) -> PipelinedBroadcastProgram:
        specs: dict[int, ChannelSpec] = {}
        for cid, tree in trees.items():
            parent = int(tree.parent[v])
            specs[cid] = ChannelSpec(
                parent_port=None if parent == v else network.port_to(v, parent),
                child_ports=[network.port_to(v, c) for c in tree.children[v]],
                own=list(messages.get(cid, {}).get(v, [])),
                total=per_channel_k[cid],
            )
        prog = PipelinedBroadcastProgram(v, specs)
        programs.append(prog)
        return prog

    sim = Simulator(network, factory)
    result = sim.run()
    for prog in programs:
        prog.finalize()

    if verify:
        for v, prog in enumerate(programs):
            for cid in trees:
                count, total = prog.ch[cid].recv_count, prog.ch[cid].recv_sum
                if count != per_channel_k[cid] or total != expected_sum[cid]:
                    raise ProtocolError(
                        f"node {v} missed messages on channel {cid}: "
                        f"got {count}/{per_channel_k[cid]}"
                    )

    return TreeBroadcastOutcome(
        rounds=result.metrics.rounds,
        metrics=result.metrics,
        k_total=sum(per_channel_k.values()),
        per_channel_k=per_channel_k,
    )
