"""Distributed CONGEST primitives: the paper's Section 2 toolbox.

* :mod:`~repro.primitives.bfs` — Lemma 2 BFS, single tree or many
  edge-disjoint trees concurrently.
* :mod:`~repro.primitives.leader` — leader election by min-ID flooding.
* :mod:`~repro.primitives.aggregation` — tree convergecast/downcast
  (Lemma 4's "learn δ").
* :mod:`~repro.primitives.numbering` — Lemma 3 unique item numbering.
* :mod:`~repro.primitives.pipeline` — Lemma 1 pipelined tree broadcast,
  multi-channel (the engine under Theorem 1).
* :mod:`~repro.primitives.scheduling` — Theorem 12 random-delay scheduling
  of overlapping broadcasts.
"""

from repro.primitives.bfs import BFSProgram, BFSResult, run_bfs, run_parallel_bfs
from repro.primitives.leader import MinIDFloodProgram, elect_leader
from repro.primitives.aggregation import (
    ConvergecastProgram,
    tree_aggregate,
    learn_min_degree,
)
from repro.primitives.numbering import NumberingProgram, assign_item_numbers
from repro.primitives.pipeline import (
    ChannelSpec,
    PipelinedBroadcastProgram,
    TreeBroadcastOutcome,
    run_tree_broadcast,
)
from repro.primitives.scheduling import (
    ScheduledBroadcastProgram,
    ScheduleOutcome,
    run_scheduled_broadcast,
)

__all__ = [
    "BFSProgram",
    "BFSResult",
    "run_bfs",
    "run_parallel_bfs",
    "MinIDFloodProgram",
    "elect_leader",
    "ConvergecastProgram",
    "tree_aggregate",
    "learn_min_degree",
    "NumberingProgram",
    "assign_item_numbers",
    "ChannelSpec",
    "PipelinedBroadcastProgram",
    "TreeBroadcastOutcome",
    "run_tree_broadcast",
    "ScheduledBroadcastProgram",
    "ScheduleOutcome",
    "run_scheduled_broadcast",
]
