"""Distributed breadth-first search (Lemma 2), with multi-channel support.

Lemma 2: a BFS tree rooted at a known node can be built in ``O(D)`` rounds;
each node ends up knowing which incident edges are tree edges. The protocol
is the classic flood: the root announces layer 0; a node adopting layer d+1
picks the first announcing port as its parent, notifies it ("child" message),
and announces d+1 on its other ports next round.

**Channels.** Theorem 2's broadcast needs λ' BFS computations running *in
parallel*, one per edge-disjoint color class. :class:`BFSProgram` therefore
multiplexes any number of channels, each restricted to its own port subset;
since color classes are edge-disjoint, each edge carries messages of exactly
one channel and the CONGEST bandwidth constraint is respected per edge — the
simulator verifies this by construction (a double-send would raise).

Round complexity: depth + O(1) per channel, all channels concurrently — the
``O((n log n)/δ)`` tree-packing construction cost quoted in Section 3.1.

**Backends.** ``backend="simulator"`` (default) runs the flood on the
CONGEST simulator; ``backend="vectorized"`` computes the identical result —
same parents, dists, children, and certified round count — with numpy
frontier sweeps (see :mod:`repro.engine`), two orders of magnitude faster.
"""

from __future__ import annotations

import numpy as np

from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.graphs.graph import Graph
from repro.util.errors import ProtocolError, ValidationError

__all__ = ["BFSProgram", "BFSResult", "run_bfs", "run_bfs_batch", "run_parallel_bfs"]

_ANNOUNCE = 0  # payload kind tags (ints keep messages small)
_CHILD = 1


class BFSResult:
    """Distributed BFS outcome for one channel.

    Attributes
    ----------
    root: the BFS root node.
    parent: ``parent[v]`` = BFS parent (root's parent is itself; ``-1`` if
        the channel's subgraph does not reach ``v``).
    dist: hop distance from the root within the channel subgraph (``-1`` if
        unreached).
    children: per-node list of child node ids. Constructing with
        ``children=None`` defers materialization: the lists are derived
        from ``parent`` (canonical ascending order) on first access. The
        simulator always passes its protocol-collected lists explicitly —
        under faults a dropped child-notice makes them a *strict subset* of
        the parent-derived ones — while fault-free vectorized paths pass
        ``None``, since the hot pipeline consumers never read ``children``
        and the Python lists are pure construction overhead at n ≈ 10⁶.
    rounds: rounds consumed by the simulation that produced this result
        (shared across channels when run in parallel).
    """

    __slots__ = ("root", "parent", "dist", "rounds", "_children")

    def __init__(
        self,
        root: int,
        parent: np.ndarray,
        dist: np.ndarray,
        children: list[list[int]] | None,
        rounds: int,
    ):
        self.root = root
        self.parent = parent
        self.dist = dist
        self.rounds = rounds
        self._children = children

    def __repr__(self):
        return (
            f"BFSResult(root={self.root}, rounds={self.rounds}, "
            f"depth={self.depth}, n={len(self.parent)})"
        )

    @property
    def children(self) -> list[list[int]]:
        if self._children is None:
            from repro.engine.kernels import children_lists

            self._children = children_lists(
                np.asarray(self.parent, dtype=np.int64)
            )
        return self._children

    def children_as_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indptr, flat_children)`` CSR of :attr:`children`.

        Identical content either way; when the lists were never
        materialized this skips Python entirely and builds the CSR
        straight from ``parent``.
        """
        from repro.engine.kernels import children_csr, lists_to_csr

        if self._children is None:
            return children_csr(np.asarray(self.parent, dtype=np.int64))
        return lists_to_csr(self._children)

    @property
    def depth(self) -> int:
        reached = self.dist[self.dist >= 0]
        return int(reached.max()) if reached.size else 0

    def spans(self) -> bool:
        """True iff every node was reached."""
        return bool((self.dist >= 0).all())

    def tree_edges(self) -> list[tuple[int, int]]:
        return [
            (int(self.parent[v]), v)
            for v in range(len(self.parent))
            if self.parent[v] >= 0 and self.parent[v] != v
        ]


class BFSProgram(NodeProgram):
    """Per-node state machine running BFS on one or more channels.

    Parameters
    ----------
    node: this node's id.
    channel_roots: mapping ``channel -> root node id``.
    channel_ports: mapping ``channel -> list of usable ports`` (``None``
        means all ports — the whole graph).
    """

    def __init__(
        self,
        node: int,
        channel_roots: dict[int, int],
        channel_ports: dict[int, list[int] | None],
    ):
        super().__init__()
        self.node = node
        self.channel_roots = channel_roots
        self.channel_ports = channel_ports
        # per-channel state
        self.dist: dict[int, int] = {}
        self.parent_port: dict[int, int | None] = {}
        self.child_ports: dict[int, list[int]] = {c: [] for c in channel_roots}
        self._pending_announce: dict[int, int] = {}

    def _ports(self, ctx: Context, channel: int) -> list[int]:
        ports = self.channel_ports.get(channel)
        return list(range(ctx.degree)) if ports is None else ports

    def on_start(self, ctx: Context) -> None:
        for channel, root in self.channel_roots.items():
            if root == self.node:
                self.dist[channel] = 0
                self.parent_port[channel] = None
                for p in self._ports(ctx, channel):
                    ctx.send(p, (_ANNOUNCE, channel, 0))

    def on_round(self, ctx: Context) -> None:
        # Gather this round's announcements per channel first, then adopt the
        # *smallest* announcing port (ports are sorted by neighbor id, so
        # this matches the deterministic centralized BFS tie-break: smallest
        # neighbor id in the previous layer).
        announces: dict[int, tuple[int, int]] = {}  # channel -> (port, dist)
        for port, payload in ctx.inbox:
            kind = payload[0]
            if kind == _ANNOUNCE:
                _, channel, d = payload
                if channel in self.dist:
                    continue
                best = announces.get(channel)
                if best is None or port < best[0]:
                    announces[channel] = (port, d)
            elif kind == _CHILD:
                _, channel = payload
                self.child_ports[channel].append(port)
            else:
                raise ProtocolError(f"BFS got unknown payload kind {kind}")
        adopted: list[tuple[int, int]] = []  # (channel, dist)
        for channel, (port, d) in announces.items():
            self.dist[channel] = d + 1
            self.parent_port[channel] = port
            adopted.append((channel, d + 1))
        # One round later: notify parent, announce to the rest.
        for channel, d in adopted:
            pport = self.parent_port[channel]
            ctx.send(pport, (_CHILD, channel))
            for p in self._ports(ctx, channel):
                if p != pport:
                    ctx.send(p, (_ANNOUNCE, channel, d))

    # -- output extraction ------------------------------------------------ #

    def finalize(self) -> None:
        self.output["dist"] = dict(self.dist)
        self.output["parent_port"] = dict(self.parent_port)
        self.output["child_ports"] = {c: list(ps) for c, ps in self.child_ports.items()}


def _collect_results(
    graph: Graph,
    network: Network,
    programs: list[BFSProgram],
    channel_roots: dict[int, int],
    rounds: int,
) -> dict[int, BFSResult]:
    results = {}
    for channel, root in channel_roots.items():
        parent = np.full(graph.n, -1, dtype=np.int64)
        dist = np.full(graph.n, -1, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(graph.n)]
        for v, prog in enumerate(programs):
            if channel in prog.dist:
                dist[v] = prog.dist[channel]
                pport = prog.parent_port[channel]
                parent[v] = v if pport is None else network.neighbor(v, pport)
            for p in prog.child_ports.get(channel, []):
                children[v].append(network.neighbor(v, p))
            # Canonical child order (ascending id): CHILD notices all land in
            # the same round, so their relative order is an artifact of the
            # delivery loop, not of the protocol; sorting makes the two
            # backends bit-identical.
            children[v].sort()
        results[channel] = BFSResult(
            root=root, parent=parent, dist=dist, children=children, rounds=rounds
        )
    return results


def run_bfs(
    graph: Graph,
    root: int,
    edge_mask: np.ndarray | None = None,
    backend: str = "simulator",
) -> BFSResult:
    """Run Lemma 2's BFS on ``graph`` (optionally restricted to an edge set).

    Returns a :class:`BFSResult`; ``result.rounds`` is the exact number of
    CONGEST rounds the flood took (depth + O(1)). ``backend="vectorized"``
    computes the identical result with numpy frontier sweeps.
    """
    from repro.engine import validate_backend

    if validate_backend(backend) == "vectorized":
        from repro.engine.fastpath import vectorized_bfs

        return vectorized_bfs(graph, root, edge_mask=edge_mask)
    if not (0 <= root < graph.n):
        raise ValidationError(f"root {root} out of range")
    network = Network(graph)
    if edge_mask is not None:
        mask = np.asarray(edge_mask, dtype=bool)
        ports = {v: network.ports_for_edges(v, mask) for v in range(graph.n)}
        channel_ports = lambda v: {0: ports[v]}  # noqa: E731
    else:
        channel_ports = lambda v: {0: None}  # noqa: E731

    programs: list[BFSProgram] = []

    def factory(v: int) -> BFSProgram:
        prog = BFSProgram(v, {0: root}, channel_ports(v))
        programs.append(prog)
        return prog

    sim = Simulator(network, factory)
    result = sim.run()
    for prog in programs:
        prog.finalize()
    return _collect_results(graph, network, programs, {0: root}, result.metrics.rounds)[0]


def run_bfs_batch(
    graph: Graph,
    roots,
    edge_mask: np.ndarray | None = None,
    backend: str = "simulator",
) -> list[BFSResult]:
    """Answer many single-root BFS queries over one (masked) graph.

    Element ``i`` of the returned list is bit-identical to
    ``run_bfs(graph, roots[i], edge_mask=edge_mask, backend=backend)``
    (parents, dists, children, rounds). Under ``backend="vectorized"``
    all queries share one :func:`~repro.engine.plane.plane_sweep` — a
    single layer loop over a bit-packed (queries × nodes) plane — so the
    per-call dispatch cost is paid once per batch instead of once per
    root; the simulator backend runs the reference loop of solo calls.
    Duplicate roots are answered by shared (read-only) result rows.
    """
    from repro.engine import validate_backend

    root_list = [int(r) for r in roots]
    if validate_backend(backend) != "vectorized":
        return [
            run_bfs(graph, r, edge_mask=edge_mask, backend=backend)
            for r in root_list
        ]
    for r in root_list:
        if not (0 <= r < graph.n):
            raise ValidationError(f"root {r} out of range")
    from repro.engine.plane import plane_sweep

    indptr, indices = graph.masked_csr(edge_mask)
    uniq, inverse = np.unique(np.asarray(root_list, dtype=np.int64), return_inverse=True)
    parent, dist, rounds = plane_sweep(graph.n, indptr, indices, uniq)
    return [
        BFSResult(
            root=root_list[i],
            parent=parent[inverse[i]],
            dist=dist[inverse[i]],
            children=None,
            rounds=int(rounds[inverse[i]]),
        )
        for i in range(len(root_list))
    ]


def run_parallel_bfs(
    graph: Graph,
    edge_masks: list[np.ndarray],
    roots: list[int] | None = None,
    backend: str = "simulator",
) -> tuple[list[BFSResult], int]:
    """BFS concurrently in each edge-disjoint subgraph (Theorem 2 step 2).

    ``edge_masks`` must be pairwise disjoint (each edge in at most one
    channel); this is validated because overlapping channels would make the
    per-edge bandwidth claim of Section 3.1 unsound.

    Returns ``(results_per_channel, total_rounds)`` — the rounds of the one
    joint execution, i.e. the *max* depth over channels, not the sum.
    ``backend="vectorized"`` computes identical results and round counts
    without instantiating the simulator.
    """
    from repro.engine import validate_backend

    if validate_backend(backend) == "vectorized":
        from repro.engine.fastpath import vectorized_parallel_bfs

        return vectorized_parallel_bfs(graph, edge_masks, roots=roots)
    masks = [np.asarray(m, dtype=bool) for m in edge_masks]
    if masks:
        stack = np.stack(masks)
        if stack.sum(axis=0).max() > 1:
            raise ValidationError("edge masks must be pairwise disjoint")
    if roots is None:
        roots = [0] * len(masks)
    if len(roots) != len(masks):
        raise ValidationError("need one root per channel")

    network = Network(graph)
    channel_roots = {c: roots[c] for c in range(len(masks))}
    programs: list[BFSProgram] = []

    def factory(v: int) -> BFSProgram:
        ports = {
            c: network.ports_for_edges(v, masks[c]) for c in range(len(masks))
        }
        prog = BFSProgram(v, channel_roots, ports)
        programs.append(prog)
        return prog

    sim = Simulator(network, factory)
    result = sim.run()
    for prog in programs:
        prog.finalize()
    per_channel = _collect_results(
        graph, network, programs, channel_roots, result.metrics.rounds
    )
    return [per_channel[c] for c in range(len(masks))], result.metrics.rounds
