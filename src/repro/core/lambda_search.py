"""Broadcast without knowing λ: the exponential-search remark of Section 1.1.

The paper's Remark: guess ``λ̃ = δ, δ/2, δ/4, …`` and for each guess build
the Theorem 2 decomposition with λ̃ and *check* it — every class must be a
connected spanning subgraph of depth ``O((n log n)/δ)``, verifiable by the
parallel BFS itself in ``O((n log n)/δ)`` rounds. The first valid guess is
used; since the true λ validates w.h.p., at most ``O(log(δ/λ))`` iterations
run and the total check cost telescopes to ``O((n log n)/λ)``.

The validity predicate needs an explicit constant: we accept a guess when
every class BFS spans and has depth ≤ ``check_factor · (n ln n)/δ`` (depth ≤
diameter, so this is the conservative direction: a class that passes is
certainly usable by the pipeline with the claimed cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.broadcast import BroadcastResult, fast_broadcast
from repro.core.decomposition import num_parts, random_partition
from repro.core.tree_packing import TreePacking, packing_from_bfs_results
from repro.graphs.graph import Graph
from repro.primitives.bfs import run_parallel_bfs
from repro.util.errors import ValidationError

__all__ = ["LambdaSearchOutcome", "find_packing_unknown_lambda", "broadcast_unknown_lambda"]


@dataclass
class LambdaSearchOutcome:
    """Trace of the exponential search (experiment E9 rows).

    ``seeds[i]`` is the partition seed used by iteration ``i`` — recorded so
    failed iterations are auditable and reproducible individually.
    """

    guesses: list[int] = field(default_factory=list)
    validation_rounds: list[int] = field(default_factory=list)
    seeds: list[int] = field(default_factory=list)
    accepted_guess: int = 0
    packing: TreePacking | None = None

    @property
    def iterations(self) -> int:
        return len(self.guesses)

    @property
    def total_validation_rounds(self) -> int:
        return sum(self.validation_rounds)


def find_packing_unknown_lambda(
    graph: Graph,
    seed: int = 0,
    C: float = 2.0,
    check_factor: float = 4.0,
    root: int = 0,
    backend: str = "simulator",
    lookahead: int = 1,
) -> LambdaSearchOutcome:
    """Exponential search for a valid Theorem 2 packing without knowing λ.

    Each iteration's validation is a genuine parallel BFS (on the simulator,
    or the equivalent vectorized backend); its certified round count is
    recorded. Depth acceptance threshold: ``check_factor · (n ln n)/δ`` (and
    for tiny graphs at least n, so the predicate is never vacuously
    unsatisfiable).

    Each iteration draws a *fresh* partition seed (``seed + 7919·iteration``,
    recorded in :attr:`LambdaSearchOutcome.seeds` — the same decorrelation
    stride as :func:`repro.core.tree_packing.build_packing_with_retry`, so
    sweeps over consecutive base seeds do not share partitions): reusing one
    seed for every guess would mean a guess that fails due to an unlucky
    partition is never re-randomized, so the w.h.p. argument would silently
    lean on the guess halving alone.

    ``lookahead > 1`` (vectorized backend only) validates that many guesses
    speculatively: the halving schedule is deterministic, so the next L
    iterations' decompositions are known upfront and their class BFS runs
    fuse into one :func:`~repro.engine.plane.masked_union_bfs` plane sweep.
    The recorded trace — guesses, per-iteration validation rounds, seeds,
    accepted guess, packing — is bit-identical to the sequential walk;
    probes past the accepted guess are discarded unrecorded.
    """
    delta = graph.min_degree()
    if delta < 1:
        raise ValidationError("graph must have minimum degree >= 1")
    depth_bound = max(
        float(graph.n), check_factor * graph.n * math.log(max(graph.n, 2)) / delta
    )

    if lookahead > 1 and backend == "vectorized" and graph.m:
        return _lookahead_search(
            graph, seed, C, depth_bound, root, delta, lookahead
        )

    outcome = LambdaSearchOutcome()
    guess = delta
    iteration = 0
    while True:
        parts = num_parts(guess, graph.n, C)
        iter_seed = seed + 7919 * iteration
        decomp = random_partition(graph, parts, iter_seed)
        results, rounds = run_parallel_bfs(
            graph, decomp.masks(), roots=[root] * parts, backend=backend
        )
        outcome.guesses.append(guess)
        outcome.validation_rounds.append(rounds)
        outcome.seeds.append(iter_seed)
        ok = all(r.spans() and r.depth <= depth_bound for r in results)
        if ok:
            outcome.accepted_guess = guess
            # The validation BFS we just ran *is* the packing construction
            # (same trees, same rounds): adopt its results instead of
            # re-traversing, and charge exactly its certified cost.
            outcome.packing = packing_from_bfs_results(graph, results, rounds)
            return outcome
        if guess == 1:
            raise ValidationError(
                "exponential search exhausted: even λ̃=1 failed validation "
                "(is the graph disconnected?)"
            )
        guess = max(1, guess // 2)
        iteration += 1


def _lookahead_search(
    graph: Graph,
    seed: int,
    C: float,
    depth_bound: float,
    root: int,
    delta: int,
    lookahead: int,
) -> LambdaSearchOutcome:
    """Speculative plane-batched twin of the sequential search loop.

    The halving schedule ``δ, δ/2, …, 1`` is deterministic, so up to
    ``lookahead`` iterations' partitions are drawn upfront and all their
    class BFS probes fuse into one union plane sweep. Iterations are then
    replayed in order against the probed results — accepted exactly where
    the sequential loop would accept, recording the identical trace.
    """
    from repro.engine.plane import masked_union_bfs

    outcome = LambdaSearchOutcome()
    schedule = []
    guess = delta
    while True:
        schedule.append(guess)
        if guess == 1:
            break
        guess = max(1, guess // 2)
    pos = 0
    while pos < len(schedule):
        block = schedule[pos : pos + lookahead]
        parts_list = [num_parts(g, graph.n, C) for g in block]
        seeds = [seed + 7919 * (pos + j) for j in range(len(block))]
        decomps = [
            random_partition(graph, p, s) for p, s in zip(parts_list, seeds)
        ]
        masks = [m for d in decomps for m in d.masks()]
        probes = masked_union_bfs(
            graph, masks, [root] * len(masks), group_sizes=parts_list
        )
        base = 0
        for g, parts, iter_seed in zip(block, parts_list, seeds):
            results = probes[base : base + parts]
            base += parts
            rounds = 0
            for r in results:
                if r.rounds > rounds:
                    rounds = r.rounds
            for r in results:
                r.rounds = rounds  # the joint clock is shared, as in solo runs
            outcome.guesses.append(g)
            outcome.validation_rounds.append(rounds)
            outcome.seeds.append(iter_seed)
            if all(r.spans() and r.depth <= depth_bound for r in results):
                outcome.accepted_guess = g
                outcome.packing = packing_from_bfs_results(graph, results, rounds)
                return outcome
        pos += len(block)
    raise ValidationError(
        "exponential search exhausted: even λ̃=1 failed validation "
        "(is the graph disconnected?)"
    )


def broadcast_unknown_lambda(
    graph: Graph,
    placement: dict[int, int],
    seed: int = 0,
    C: float = 2.0,
    check_factor: float = 4.0,
    verify: bool = True,
    backend: str = "simulator",
) -> tuple[BroadcastResult, LambdaSearchOutcome]:
    """k-broadcast in O(((n+k)/λ) log n) rounds with λ unknown (§1.1 Remark).

    Returns the broadcast result (with the search's validation rounds charged
    in a ``lambda_search`` phase) alongside the search trace.
    """
    search = find_packing_unknown_lambda(
        graph, seed=seed, C=C, check_factor=check_factor, backend=backend
    )
    result = fast_broadcast(
        graph, placement, packing=search.packing, verify=verify, backend=backend
    )
    # The accepted iteration's BFS *is* the packing construction; earlier
    # failed iterations are pure overhead, charged explicitly.
    result.phases["lambda_search"] = search.total_validation_rounds
    result.algorithm = "fast/unknown-lambda"
    return result, search
