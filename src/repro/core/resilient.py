"""Redundant broadcast over the tree packing: resilience from edge-disjointness.

The paper's packing feeds the Fischer–Parter compiler (Section 1.2); the
underlying mechanism is elementary and worth demonstrating directly: the
λ' trees are **edge-disjoint**, so an adversary must invest in *every* tree
carrying a message to suppress it. Assigning each message to ``r`` distinct
trees makes it survive the total loss of any ``r − 1`` color classes, at an
r× pipeline cost — rounds ≈ 2·depth + 2·r·k/λ'.

:func:`redundant_broadcast` runs exactly that on the (optionally faulty)
simulator and reports per-message delivery coverage, so experiments can
show the full redundancy/resilience trade-off: r = 1 loses precisely the
sabotaged tree's messages; r = 2 delivers everything through a dead class.

Scenarios come from :mod:`repro.congest.adversary` (static saboteur,
sweeping mobile adversary, i.i.d. loss, targeted-cut attacker), and
``backend="vectorized"`` replays the identical execution on the fault-aware
numpy engine (:mod:`repro.engine.faults`) — bit-identical
:class:`DeliveryReport`, same fault RNG stream — at n = 10⁵ scale
(benchmark E16, 600×+ over the simulator at n = 10⁴).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro import obs
from repro.congest.adversary import AdversarySchedule, FaultPlan
from repro.congest.faults import FaultySimulator
from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.core.broadcast import _bfs_view, _number_messages, _placement_ids
from repro.core.tree_packing import TreePacking
from repro.graphs.graph import Graph
from repro.primitives.pipeline import ChannelSpec
from repro.util.errors import ProtocolError, ValidationError

__all__ = [
    "DeliveryReport",
    "FaultCell",
    "RepairOutcome",
    "evaluate_fault_grid",
    "redundant_broadcast",
    "repair_coverage",
    "tree_edge_ids",
]

_UP = 0
_DOWN = 1


def tree_edge_ids(packing: TreePacking, index: int) -> set[int]:
    """Edge ids (in the host graph) of one packed tree — a sabotage target."""
    tree = packing.trees[index]
    return {
        packing.graph.edge_id(u, v) for u, v in tree.edges()
    }


class _TrackingProgram(NodeProgram):
    """Pipelined broadcast that records the exact id set each node received.

    A fault-tolerant variant of
    :class:`repro.primitives.pipeline.PipelinedBroadcastProgram`: receipts
    are sets (idempotent under the duplicate deliveries redundancy causes),
    and the node keeps pumping as long as any queue is non-empty, so drops
    upstream cannot wedge it.
    """

    def __init__(self, node: int, channels: dict[int, ChannelSpec]):
        super().__init__()
        self.node = node
        self.specs = channels
        self.up_queue: dict[int, deque[int]] = {}
        self.down_queue: dict[int, deque[int]] = {}
        self.received: set[int] = set()
        for cid, spec in channels.items():
            if spec.parent_port is None:
                self.up_queue[cid] = deque()
                self.down_queue[cid] = deque(spec.own)
                self.received.update(spec.own)
            else:
                self.up_queue[cid] = deque(spec.own)
                self.down_queue[cid] = deque()

    def _pump(self, ctx: Context) -> None:
        busy = False
        for cid, spec in self.specs.items():
            uq, dq = self.up_queue[cid], self.down_queue[cid]
            if uq and spec.parent_port is not None:
                ctx.send(spec.parent_port, (_UP, cid, uq.popleft()))
                busy = busy or bool(uq)
            if dq:
                mid = dq.popleft()
                for p in spec.child_ports:
                    ctx.send(p, (_DOWN, cid, mid))
                busy = busy or bool(dq)
        if busy:
            ctx.wake()

    def on_start(self, ctx: Context) -> None:
        self._pump(ctx)

    def on_round(self, ctx: Context) -> None:
        for _port, payload in ctx.inbox:
            kind, cid, mid = payload
            spec = self.specs.get(cid)
            if spec is None:
                raise ProtocolError(f"unknown channel {cid}")
            if kind == _UP:
                if spec.parent_port is None:
                    if mid not in self.received:
                        self.received.add(mid)
                    self.down_queue[cid].append(mid)
                else:
                    self.up_queue[cid].append(mid)
            elif kind == _DOWN:
                self.received.add(mid)
                self.down_queue[cid].append(mid)
            else:
                raise ProtocolError(f"unknown payload kind {kind}")
        self._pump(ctx)


@dataclass
class DeliveryReport:
    """Coverage statistics of a (possibly faulted) redundant broadcast.

    Both backends produce bit-identical reports: same rounds, same dropped
    count, same coverage fractions — and, when ``collect_receipts=True`` was
    passed, the same exact per-message receipt sets. ``fault_rng_state`` is
    the fault generator's final PCG64 state, recorded so the equivalence
    harness can assert the two backends consumed the stream identically.
    """

    k: int
    redundancy: int
    rounds: int
    dropped_messages: int
    per_message_coverage: dict[int, float] = field(default_factory=dict)
    backend: str = "simulator"
    receipts: dict[int, frozenset[int]] | None = None
    fault_rng_state: dict | None = None
    #: Certified send totals (drops included — a dropped message spent its
    #: bandwidth): the simulator's ``Metrics`` counters, matched bit for bit
    #: by the vectorized engine's send-time accounting.
    total_messages: int = 0
    total_bits: int = 0

    @property
    def fully_delivered(self) -> int:
        """Messages that reached *every* node."""
        return sum(1 for c in self.per_message_coverage.values() if c >= 1.0)

    @property
    def min_coverage(self) -> float:
        return min(self.per_message_coverage.values()) if self.k else 1.0


@obs.traced("redundant_broadcast")
def redundant_broadcast(
    graph: Graph,
    placement: dict[int, int],
    packing: TreePacking,
    redundancy: int = 1,
    dead_edges: Iterable[int] | None = None,
    drop_rate: float = 0.0,
    mobile: Mapping[int, Iterable[int]] | None = None,
    seed: int = 0,
    fault_seed: int | None = None,
    adversary: AdversarySchedule | None = None,
    backend: str = "simulator",
    collect_receipts: bool = False,
    step: str | None = None,
) -> DeliveryReport:
    """Broadcast with each message assigned to ``redundancy`` distinct trees.

    Message id j rides trees ``(h + i) mod parts`` for i < redundancy, where
    ``h = (j-1) // ⌈k/parts⌉`` is the Theorem 1 home tree — so redundant
    copies land on *distinct* edge-disjoint trees. Faults are injected at
    delivery time (see :class:`repro.congest.faults.FaultySimulator`);
    the report states, per message, the fraction of nodes that got it.

    Scenarios come from the explicit ``dead_edges`` / ``drop_rate`` /
    ``mobile`` triple, an :class:`~repro.congest.adversary.AdversarySchedule`
    (compiled against this graph and packing, then merged in), or both.
    ``fault_seed`` drives only the drop-rate coins (defaults to ``seed``;
    varying it alone never changes which messages exist, only which
    deliveries fail). ``backend="vectorized"`` runs the whole experiment on
    the fault-aware numpy engine (:mod:`repro.engine.faults`) and returns a
    bit-identical report — same receipts, drops, rounds, and fault RNG
    stream — at orders of magnitude larger n. ``step`` picks that engine's
    stepping strategy (:func:`repro.engine.kernels.resolve_step`); the
    simulator backend ignores it.
    """
    from repro.engine import validate_backend

    validate_backend(backend)
    parts = packing.size
    if not (1 <= redundancy <= parts):
        raise ValidationError("redundancy must be in [1, #trees]")
    plan = FaultPlan(
        dead_edges=frozenset(int(e) for e in (dead_edges or ())),
        drop_rate=float(drop_rate),
        mobile=dict(mobile or {}),
    )
    if adversary is not None:
        plan = plan.merged(adversary.compile(graph, packing=packing))
    if fault_seed is None:
        fault_seed = seed
    k = sum(placement.values())
    leader, _gtree, starts, _phases = _number_messages(graph, placement, backend)
    ids = _placement_ids(placement, starts)

    import math

    K = max(1, math.ceil(k / parts))
    per_channel: dict[int, dict[int, list[int]]] = {c: {} for c in range(parts)}
    for v, mids in ids.items():
        for j in mids:
            home = min((j - 1) // K, parts - 1)
            for i in range(redundancy):
                c = (home + i) % parts
                per_channel[c].setdefault(v, []).append(j)

    trees = {c: _bfs_view(packing, c) for c in range(parts)}
    all_ids = [j for mids in ids.values() for j in mids]

    if backend == "vectorized":
        from repro.engine.faults import vectorized_faulty_broadcast

        out = vectorized_faulty_broadcast(
            graph, trees, per_channel, plan=plan, fault_seed=fault_seed, step=step
        )
        import numpy as np

        rows = np.searchsorted(out.mids, np.asarray(all_ids, dtype=np.int64))
        coverage = {
            j: int(out.receipt_counts[r]) / graph.n
            for j, r in zip(all_ids, rows.tolist())
        }
        receipts = out.receipts() if collect_receipts else None
        return DeliveryReport(
            k=k,
            redundancy=redundancy,
            rounds=out.rounds,
            dropped_messages=out.dropped,
            per_message_coverage=coverage,
            backend=backend,
            receipts=receipts,
            fault_rng_state=out.fault_rng_state,
            total_messages=out.total_messages,
            total_bits=out.total_bits,
        )

    network = Network(graph)
    programs: list[_TrackingProgram] = []

    def factory(v: int) -> _TrackingProgram:
        specs: dict[int, ChannelSpec] = {}
        for cid, tree in trees.items():
            parent = int(tree.parent[v])
            specs[cid] = ChannelSpec(
                parent_port=None if parent == v else network.port_to(v, parent),
                child_ports=[network.port_to(v, c) for c in tree.children[v]],
                own=list(per_channel.get(cid, {}).get(v, [])),
                total=0,
            )
        prog = _TrackingProgram(v, specs)
        programs.append(prog)
        return prog

    sim = FaultySimulator(
        network,
        factory,
        plan=plan,
        fault_seed=fault_seed,
        seed=seed,
    )
    result = sim.run()

    coverage = {
        j: sum(1 for p in programs if j in p.received) / graph.n for j in all_ids
    }
    receipts = None
    if collect_receipts:
        receipts = {
            j: frozenset(v for v, p in enumerate(programs) if j in p.received)
            for j in all_ids
        }
    return DeliveryReport(
        k=k,
        redundancy=redundancy,
        rounds=result.metrics.rounds,
        dropped_messages=sim.dropped,
        per_message_coverage=coverage,
        backend=backend,
        receipts=receipts,
        fault_rng_state=sim._fault_rng.bit_generator.state,
        total_messages=result.metrics.total_messages,
        total_bits=result.metrics.total_bits,
    )


# --------------------------------------------------------------------------- #
# Grid evaluation — many (scenario × defense × seed) cells, one shared setup
# --------------------------------------------------------------------------- #

@dataclass
class FaultCell:
    """One cell of a resilience grid: scenario × defense × coin seed.

    ``fault_seed=None`` inherits the grid's base ``seed``, exactly like
    :func:`redundant_broadcast`'s default.
    """

    redundancy: int = 1
    dead_edges: Iterable[int] = ()
    drop_rate: float = 0.0
    mobile: Mapping[int, Iterable[int]] | None = None
    adversary: AdversarySchedule | None = None
    fault_seed: int | None = None


@obs.traced("fault_grid")
def evaluate_fault_grid(
    graph: Graph,
    placement: dict[int, int],
    packing: TreePacking,
    cells: Iterable[FaultCell],
    seed: int = 0,
    backend: str = "vectorized",
    collect_receipts: bool = False,
    step: str | None = None,
) -> list[DeliveryReport]:
    """Evaluate a whole resilience grid with the broadcast setup paid once.

    Report ``i`` is bit-identical to the corresponding solo
    :func:`redundant_broadcast` call with ``cells[i]``'s scenario, defense,
    and fault seed — same coverage, drops, rounds, send totals, and fault
    RNG state. The per-cell work a naive loop repeats — leader election and
    message numbering, placement-id assignment, the per-tree BFS views, and
    the per-redundancy message-to-tree split — is hoisted and shared across
    every cell that agrees on it; only the faulty broadcast engine itself
    runs per cell. The simulator backend has no shareable setup (the
    network is rebuilt per run by construction) and loops the solo calls.
    """
    from repro.engine import validate_backend

    cells = list(cells)
    if validate_backend(backend) != "vectorized":
        return [
            redundant_broadcast(
                graph,
                placement,
                packing,
                redundancy=c.redundancy,
                dead_edges=c.dead_edges,
                drop_rate=c.drop_rate,
                mobile=c.mobile,
                seed=seed,
                fault_seed=c.fault_seed,
                adversary=c.adversary,
                backend=backend,
                collect_receipts=collect_receipts,
                step=step,
            )
            for c in cells
        ]

    import math

    import numpy as np

    from repro.engine.faults import vectorized_faulty_broadcast

    parts = packing.size
    k = sum(placement.values())
    leader, _gtree, starts, _phases = _number_messages(graph, placement, backend)
    ids = _placement_ids(placement, starts)
    trees = {c: _bfs_view(packing, c) for c in range(parts)}
    all_ids = [j for mids in ids.values() for j in mids]
    K = max(1, math.ceil(k / parts))

    splits: dict[int, dict[int, dict[int, list[int]]]] = {}

    def split(redundancy: int) -> dict[int, dict[int, list[int]]]:
        pc = splits.get(redundancy)
        if pc is None:
            pc = {c: {} for c in range(parts)}
            for v, mids in ids.items():
                for j in mids:
                    home = min((j - 1) // K, parts - 1)
                    for i in range(redundancy):
                        pc[(home + i) % parts].setdefault(v, []).append(j)
            splits[redundancy] = pc
        return pc

    reports: list[DeliveryReport] = []
    for cell in cells:
        redundancy = int(cell.redundancy)
        if not (1 <= redundancy <= parts):
            raise ValidationError("redundancy must be in [1, #trees]")
        plan = FaultPlan(
            dead_edges=frozenset(int(e) for e in (cell.dead_edges or ())),
            drop_rate=float(cell.drop_rate),
            mobile=dict(cell.mobile or {}),
        )
        if cell.adversary is not None:
            plan = plan.merged(cell.adversary.compile(graph, packing=packing))
        fault_seed = seed if cell.fault_seed is None else cell.fault_seed
        out = vectorized_faulty_broadcast(
            graph, trees, split(redundancy), plan=plan, fault_seed=fault_seed, step=step
        )
        rows = np.searchsorted(out.mids, np.asarray(all_ids, dtype=np.int64))
        coverage = {
            j: int(out.receipt_counts[r]) / graph.n
            for j, r in zip(all_ids, rows.tolist())
        }
        reports.append(
            DeliveryReport(
                k=k,
                redundancy=redundancy,
                rounds=out.rounds,
                dropped_messages=out.dropped,
                per_message_coverage=coverage,
                backend=backend,
                receipts=out.receipts() if collect_receipts else None,
                fault_rng_state=out.fault_rng_state,
                total_messages=out.total_messages,
                total_bits=out.total_bits,
            )
        )
    return reports


# --------------------------------------------------------------------------- #
# Coverage repair — graceful degradation after a structural attack
# --------------------------------------------------------------------------- #

@dataclass
class RepairOutcome:
    """What the coverage-repair loop detected, did, and paid.

    ``repair_rounds`` is the certified CONGEST price of the repair itself
    (validity BFS per re-root attempt — charged even when the attempt
    fails — plus the fallback rebuild's construction rounds); the rerun's
    broadcast rounds are in ``final.rounds`` as usual.
    """

    initial: DeliveryReport
    final: DeliveryReport
    broken_channels: list[int]
    rerooted: dict[int, int]
    rebuilt: bool
    repair_rounds: int
    attempts: int
    packing: TreePacking

    @property
    def recovered(self) -> bool:
        """Did repair restore full delivery?"""
        return self.final.min_coverage >= 1.0

    @property
    def improvement(self) -> float:
        return self.final.min_coverage - self.initial.min_coverage


@obs.traced("coverage_repair")
def repair_coverage(
    graph: Graph,
    placement: dict[int, int],
    packing: TreePacking,
    redundancy: int = 1,
    dead_edges: Iterable[int] | None = None,
    drop_rate: float = 0.0,
    mobile: Mapping[int, Iterable[int]] | None = None,
    seed: int = 0,
    fault_seed: int | None = None,
    adversary: AdversarySchedule | None = None,
    backend: str = "simulator",
    max_reroots: int = 4,
    initial_report: DeliveryReport | None = None,
) -> RepairOutcome:
    """Detect dead color classes and rebuild only what broke (Section 1.2).

    Runs :func:`redundant_broadcast`, reads the :class:`DeliveryReport`, and
    if delivery is incomplete repairs the packing before one rerun:

    1. **Detect** — a channel is *broken* when it carried a message with
       coverage < 1 **and** its tree uses a statically dead edge. Transient
       loss (``drop_rate``/``mobile``) is not structural damage; nothing to
       re-root, so those channels are left alone.
    2. **Re-root** — for each broken channel (at most ``max_reroots``), one
       validity BFS on the class's *live* edges (``class_masks[c]`` minus the
       dead set), rooted at the highest-live-degree node (ties: smallest id)
       — the spot the damage touches least. A spanning result replaces the
       tree; the BFS rounds are charged either way.
    3. **Rebuild fallback** — when the certificate is truly broken (no class
       masks, more than ``max_reroots`` dead classes, or a live class that no
       longer spans), rebuild a whole packing on the live host graph with
       spread roots. If even that fails (the damage disconnected the graph),
       the partial repairs stand and the rerun reports how far they got.

    Both backends execute the identical repair: the detection reads the
    bit-identical report, the re-root BFS and rebuild are the certified
    packing primitives, and the rerun is :func:`redundant_broadcast` again —
    so the full :class:`RepairOutcome` matches across backends bit for bit.

    ``initial_report`` lets a caller that already evaluated this exact
    scenario (e.g. one :func:`evaluate_fault_grid` cell) hand the report in
    instead of paying the initial broadcast again — it must come from the
    same (graph, placement, packing, scenario, seeds, backend) tuple, which
    the grid guarantees bit-identically.
    """
    import numpy as np

    from repro.core.tree_packing import (
        SpanningTree,
        _packing_from_trees,
        build_packing_with_retry,
    )
    from repro.primitives.bfs import run_parallel_bfs

    parts = packing.size
    plan = FaultPlan(
        dead_edges=frozenset(int(e) for e in (dead_edges or ())),
        drop_rate=float(drop_rate),
        mobile=dict(mobile or {}),
    )
    if adversary is not None:
        plan = plan.merged(adversary.compile(graph, packing=packing))

    def run(pk: TreePacking) -> DeliveryReport:
        return redundant_broadcast(
            graph,
            placement,
            pk,
            redundancy=redundancy,
            dead_edges=plan.dead_edges,
            drop_rate=plan.drop_rate,
            mobile=plan.mobile,
            seed=seed,
            fault_seed=fault_seed,
            backend=backend,
        )

    initial = initial_report if initial_report is not None else run(packing)
    done = RepairOutcome(
        initial=initial, final=initial, broken_channels=[], rerooted={},
        rebuilt=False, repair_rounds=0, attempts=0, packing=packing,
    )
    if initial.min_coverage >= 1.0:
        return done

    dead_mask = np.zeros(graph.m, dtype=bool)
    if plan.dead_edges:
        dead_mask[np.fromiter(plan.dead_edges, dtype=np.int64)] = True

    # Detect: report-driven suspects ∩ structurally damaged trees.
    import math

    k = initial.k
    K = max(1, math.ceil(k / parts))
    suspects: set[int] = set()
    for j, cov in initial.per_message_coverage.items():
        if cov < 1.0:
            home = min((j - 1) // K, parts - 1)
            suspects.update((home + i) % parts for i in range(redundancy))
    structural = {
        c for c in suspects
        if any(dead_mask[e] for e in tree_edge_ids(packing, c))
    }
    broken = sorted(structural)
    if not broken:
        return done  # purely transient loss — nothing structural to repair

    trees = list(packing.trees)
    masks = packing.class_masks
    rerooted: dict[int, int] = {}
    repair_rounds = 0
    attempts = 0
    need_rebuild = masks is None or len(broken) > max_reroots
    if not need_rebuild:
        for c in broken:
            live = masks[c] & ~dead_mask
            deg = np.zeros(graph.n, dtype=np.int64)
            eids = np.nonzero(live)[0]
            np.add.at(deg, graph.edge_u[eids], 1)
            np.add.at(deg, graph.edge_v[eids], 1)
            new_root = int(np.lexsort((np.arange(graph.n), -deg))[0])
            attempts += 1
            results, rounds = run_parallel_bfs(
                graph, [live], roots=[new_root], backend=backend
            )
            repair_rounds += rounds
            if not results[0].spans():
                need_rebuild = True  # class certificate broken beyond re-rooting
                break
            res = results[0]
            trees[c] = SpanningTree(
                root=new_root, parent=res.parent.copy(), depth_of=res.dist.copy()
            )
            rerooted[c] = new_root

    rebuilt = False
    if need_rebuild:
        live_host = ~dead_mask
        sub, orig = graph.edge_subgraph_with_map(live_host)
        try:
            live_packing, _ = build_packing_with_retry(
                sub, parts, seed=seed, roots="spread", backend=backend
            )
        except ValidationError:
            pass  # damage disconnected the graph — partial repairs stand
        else:
            rebuilt = True
            rerooted = {}
            trees = live_packing.trees
            repair_rounds += live_packing.construction_rounds
            masks = None
            if live_packing.class_masks is not None:
                masks = []
                for lm in live_packing.class_masks:
                    hm = np.zeros(graph.m, dtype=bool)
                    hm[orig[np.nonzero(lm)[0]]] = True
                    masks.append(hm)

    if not rerooted and not rebuilt:
        return RepairOutcome(
            initial=initial, final=initial, broken_channels=broken, rerooted={},
            rebuilt=False, repair_rounds=repair_rounds, attempts=attempts,
            packing=packing,
        )
    repaired = _packing_from_trees(
        graph, trees, packing.construction_rounds, class_masks=masks
    )
    final = run(repaired)
    return RepairOutcome(
        initial=initial,
        final=final,
        broken_channels=broken,
        rerooted=rerooted,
        rebuilt=rebuilt,
        repair_rounds=repair_rounds,
        attempts=attempts,
        packing=repaired,
    )
