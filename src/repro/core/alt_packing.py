"""Appendix A: the alternative low-diameter tree packing (Theorem 10).

Appendix A proves *existence* of ≥ λ spanning trees of diameter
``O((n log n)/δ)`` with per-edge congestion O(log n), via two steps:

* **Lemma 9**: every simple graph with edge connectivity λ and minimum
  degree δ is ``(λ/5, 16n/δ)``-connected — any two nodes are joined by λ/5
  edge-disjoint paths of length ≤ 16n/δ.
* **Lemma 8** (CPT20): a (k, d)-connected graph packs k spanning trees of
  diameter O(d log n) with congestion O(log n).

This module makes both halves *checkable on concrete graphs* (DESIGN.md §2
documents the substitution for CPT20's internals):

* :func:`kd_connectivity_witness` constructs edge-disjoint bounded-length
  path systems by iterated shortest-path extraction (each extracted path is
  a shortest path in the remaining graph — the same greedy/exchange
  structure as the proof of Lemma 9), certifying (k, d)-connectivity
  empirically.
* :func:`greedy_low_diameter_packing` builds the Theorem 10 object: trees
  extracted one at a time as shortest-path trees under congestion-penalized
  edge lengths, so later trees avoid loaded edges. The E12 bench reports
  (#trees, max diameter, congestion) against the (λ, O(n log n/δ), O(log n))
  targets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.tree_packing import SpanningTree, TreePacking
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "PathSystem",
    "kd_connectivity_witness",
    "lemma9_parameters",
    "greedy_low_diameter_packing",
]


def lemma9_parameters(graph: Graph, lam: int) -> tuple[float, float]:
    """Lemma 9's claimed (k, d): k = λ/5 paths of length ≤ d = 16n/δ."""
    delta = graph.min_degree()
    if delta < 1:
        raise ValidationError("need δ >= 1")
    return lam / 5.0, 16.0 * graph.n / delta


@dataclass
class PathSystem:
    """Edge-disjoint u–v paths extracted from a graph."""

    u: int
    v: int
    paths: list[list[int]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.paths)

    @property
    def max_length(self) -> int:
        return max((len(p) - 1 for p in self.paths), default=0)

    def is_edge_disjoint(self) -> bool:
        seen: set[tuple[int, int]] = set()
        for path in self.paths:
            for a, b in zip(path, path[1:]):
                e = (min(a, b), max(a, b))
                if e in seen:
                    return False
                seen.add(e)
        return True


def kd_connectivity_witness(
    graph: Graph, u: int, v: int, max_paths: int | None = None
) -> PathSystem:
    """Greedy edge-disjoint shortest-path extraction between u and v.

    Repeatedly BFS in the remaining graph, record the shortest u–v path,
    delete its edges. Successive path lengths are non-decreasing — the same
    monotonicity the Lemma 9 proof engineers via its exchange argument — so
    if the first ⌈λ/5⌉ paths are short, the witness certifies
    (λ/5, ·)-connectivity with the observed max length.

    Greedy shortest-augmentation is exactly Edmonds–Karp, so it extracts a
    *maximum* edge-disjoint path system when run to exhaustion.
    """
    if u == v:
        raise ValidationError("u and v must differ")
    alive = np.ones(graph.m, dtype=bool)
    system = PathSystem(u=u, v=v)
    limit = max_paths if max_paths is not None else graph.m
    while system.count < limit:
        sub = graph.edge_subgraph(alive)
        dist = bfs_distances(sub, u)
        if dist[v] < 0:
            break
        # Walk back from v along decreasing distance.
        path = [v]
        cur = v
        while cur != u:
            nbrs = sub.neighbors(cur)
            prev = nbrs[dist[nbrs] == dist[cur] - 1]
            cur = int(prev[0])
            path.append(cur)
        path.reverse()
        for a, b in zip(path, path[1:]):
            alive[graph.edge_id(a, b)] = False
        system.paths.append(path)
    if not system.is_edge_disjoint():
        raise ValidationError("internal error: extracted paths share an edge")
    return system


def _dijkstra_tree(
    graph: Graph, root: int, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Shortest-path tree under per-edge ``lengths``; returns (parent, hops)."""
    n = graph.n
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    hops = np.full(n, -1, dtype=np.int64)
    dist[root] = 0.0
    parent[root] = root
    hops[root] = 0
    heap = [(0.0, root)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, x = heapq.heappop(heap)
        if done[x]:
            continue
        done[x] = True
        nbrs = graph.neighbors(x)
        eids = graph.incident_edge_ids(x)
        for y, eid in zip(nbrs.tolist(), eids.tolist()):
            nd = d + lengths[eid]
            if nd < dist[y] - 1e-12:
                dist[y] = nd
                parent[y] = x
                hops[y] = hops[x] + 1
                heapq.heappush(heap, (nd, y))
    if np.any(parent < 0):
        raise ValidationError("graph is disconnected; cannot pack spanning trees")
    return parent, hops


def greedy_low_diameter_packing(
    graph: Graph,
    num_trees: int,
    roots: list[int] | None = None,
    penalty: float = 2.0,
    seed=None,
) -> TreePacking:
    """Theorem 10-style packing: congestion-penalized shortest-path trees.

    Tree t is the shortest-path tree from root ``r_t`` under edge lengths
    ``1 + penalty · load(e) + ε`` (ε a tiny random jitter to break ties
    diversely); ``load(e)`` counts how many earlier trees used e. Loaded
    edges become expensive, so the packing spreads across the graph; the
    multiplicative-weights flavor is what keeps congestion logarithmic in
    practice (CPT20's Lemma 8 achieves O(log n) provably).

    Roots default to independently random nodes — a *shared* root would be
    structurally congested: every shortest-path tree from one fixed root
    attaches all root-neighbors via their direct edge (any detour costs one
    more loaded first hop plus an extra edge), so all ``deg(root)`` root
    edges would appear in every tree. Distinct roots break that symmetry.
    """
    if num_trees < 1:
        raise ValidationError("need at least one tree")
    rng = ensure_rng(seed)
    if roots is None:
        roots = [int(rng.integers(graph.n)) for _ in range(num_trees)]
    if len(roots) != num_trees:
        raise ValidationError("need one root per tree")
    load = np.zeros(graph.m, dtype=np.float64)
    trees: list[SpanningTree] = []
    for root in roots:
        jitter = rng.random(graph.m) * 1e-3
        lengths = 1.0 + penalty * load + jitter
        parent, hops = _dijkstra_tree(graph, root, lengths)
        tree = SpanningTree(root=root, parent=parent, depth_of=hops)
        trees.append(tree)
        for u, v in tree.edges():
            load[graph.edge_id(u, v)] += 1.0
    count = np.zeros(graph.m, dtype=np.int64)
    for tree in trees:
        for u, v in tree.edges():
            count[graph.edge_id(u, v)] += 1
    return TreePacking(
        graph=graph, trees=trees, construction_rounds=0, edge_tree_count=count
    )
