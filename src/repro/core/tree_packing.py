"""Low-diameter tree packings (Section 3.1).

Running a BFS inside each color class of a Theorem 2 decomposition — all
classes in parallel, since they are edge-disjoint — yields a **tree packing**
of ``Ω(λ/log n)`` edge-disjoint spanning trees of depth ``O((n log n)/δ)``
in ``O((n log n)/δ)`` rounds. This module builds that object, validates its
paper-promised properties, and exposes the fractional view used in the
comparison with Ghaffari [Gha15a] (integral unit weights, total weight λ').

The packing is also the interface to the Fischer–Parter mobile-adversary
compiler mentioned in Section 1.2: what their compiler needs is exactly
``(number of trees, per-edge congestion, max tree diameter)``, all certified
here.

**Root assignment.** Nothing in Section 3.1 requires the λ' floods to share
one root — each color class spans, so BFS from *any* node builds its tree in
the same O((n log n)/δ) rounds. Sharing a root is what E16 showed to be the
packing's single point of failure: one cheap cut around the root kills every
color class at once. :func:`resolve_roots` therefore exposes a root
*policy* — ``"shared"`` (the historical default), ``"spread"`` (a distinct,
evenly spaced root per class), ``"cut-aware"`` (roots steered away from the
light cuts Theorem 7's :func:`repro.cuts.approx.approx_all_cuts` reports),
or an explicit list — threaded through :func:`build_tree_packing` and
:func:`build_packing_with_retry` as the ``roots=`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.decomposition import Decomposition
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_tree
from repro.primitives.bfs import BFSResult, run_parallel_bfs
from repro.util.errors import ValidationError

__all__ = [
    "ROOT_POLICIES",
    "SpanningTree",
    "TreePacking",
    "build_tree_packing",
    "packing_from_bfs_results",
    "packing_from_masks",
    "resolve_roots",
]

#: Named root-assignment policies accepted by ``roots=`` (an explicit list
#: of node ids is always accepted as well).
ROOT_POLICIES = ("shared", "spread", "cut-aware")


@dataclass
class SpanningTree:
    """A rooted spanning tree given by parent pointers.

    ``parent[root] == root``; ``edge_ids`` are ids in the *host* graph, so
    edge-disjointness across trees is checkable exactly.
    """

    root: int
    parent: np.ndarray
    depth_of: np.ndarray

    def __post_init__(self):
        if np.any(self.parent < 0):
            raise ValidationError("tree does not span: node without parent")
        if self.parent[self.root] != self.root:
            raise ValidationError("root must be its own parent")

    @property
    def n(self) -> int:
        return len(self.parent)

    @property
    def depth(self) -> int:
        return int(self.depth_of.max())

    def edges(self) -> list[tuple[int, int]]:
        return [
            (int(self.parent[v]), v) for v in range(self.n) if v != self.root
        ]

    def diameter(self) -> int:
        """Exact tree diameter via two BFS sweeps (exact on trees)."""
        adj: list[list[int]] = [[] for _ in range(self.n)]
        for u, v in self.edges():
            adj[u].append(v)
            adj[v].append(u)

        def far(src: int) -> tuple[int, int]:
            dist = np.full(self.n, -1, dtype=np.int64)
            dist[src] = 0
            stack = [src]
            while stack:
                x = stack.pop()
                for y in adj[x]:
                    if dist[y] < 0:
                        dist[y] = dist[x] + 1
                        stack.append(y)
            w = int(np.argmax(dist))
            return w, int(dist[w])

        a, _ = far(self.root)
        _, d = far(a)
        return d

    def path_to_root(self, v: int) -> list[int]:
        path = [v]
        while path[-1] != self.root:
            path.append(int(self.parent[path[-1]]))
        return path


@dataclass
class TreePacking:
    """A collection of spanning trees of one host graph, with build cost.

    Attributes
    ----------
    graph: host graph.
    trees: the spanning trees.
    construction_rounds: certified CONGEST rounds spent building the packing
        (0 for the coloring itself + the parallel-BFS rounds).
    edge_tree_count: per host edge, in how many trees it appears — the
        packing's *congestion* (exactly ≤ 1 for Theorem 2 packings).
    class_masks: when built from a decomposition, the per-class edge masks
        (over host edge ids). A tree only uses n−1 of its class's edges, so
        the mask is what coverage repair re-roots within — without it a
        broken tree can only be fixed by a full rebuild.
    """

    graph: Graph
    trees: list[SpanningTree]
    construction_rounds: int
    edge_tree_count: np.ndarray
    class_masks: list[np.ndarray] | None = None

    @property
    def size(self) -> int:
        return len(self.trees)

    @property
    def roots(self) -> list[int]:
        """Per-tree root node ids (all equal under the shared-root policy)."""
        return [t.root for t in self.trees]

    @property
    def congestion(self) -> int:
        return int(self.edge_tree_count.max()) if self.graph.m else 0

    @property
    def is_edge_disjoint(self) -> bool:
        return self.congestion <= 1

    @property
    def max_depth(self) -> int:
        return max(t.depth for t in self.trees)

    @property
    def max_diameter(self) -> int:
        return max(t.diameter() for t in self.trees)

    def fractional_total_weight(self) -> float:
        """Fractional tree-packing weight: unit weight per tree, scaled so
        that per-edge total weight is ≤ 1 (divide by congestion)."""
        c = max(1, self.congestion)
        return self.size / c

    def validate(self) -> None:
        """Certify the Section 3.1 claims: spanning + consistent edge counts."""
        count = np.zeros(self.graph.m, dtype=np.int64)
        for tree in self.trees:
            if len(tree.parent) != self.graph.n:
                raise ValidationError("tree node count mismatch")
            for u, v in tree.edges():
                count[self.graph.edge_id(u, v)] += 1  # KeyError = non-edge
        if not np.array_equal(count, self.edge_tree_count):
            raise ValidationError("edge_tree_count is stale")


def _tree_from_bfs(result: BFSResult) -> SpanningTree:
    if not result.spans():
        raise ValidationError(
            "color class is not spanning — the w.h.p. event of Theorem 2 "
            "failed; retry with a larger C or a different seed"
        )
    return SpanningTree(
        root=result.root, parent=result.parent.copy(), depth_of=result.dist.copy()
    )


def resolve_roots(
    graph: Graph,
    parts: int,
    roots="shared",
    base_root: int = 0,
    seed: int = 0,
    eps: float = 0.4,
    backend: str = "simulator",
    cuts_result=None,
) -> list[int]:
    """Resolve a root policy to one BFS root per color class.

    * ``"shared"`` — every class floods from ``base_root`` (the Theorem 1
      default: the leader); this is the configuration E16's targeted-cut
      adversary exploits.
    * ``"spread"`` — evenly spaced distinct roots
      ``(base_root + ⌊c·n/parts⌋) mod n``: no single node failure (or cheap
      cut around one node) can behead more than one color class.
    * ``"cut-aware"`` — runs Theorem 7 (:func:`~repro.cuts.approx.approx_all_cuts`,
      reusable via ``cuts_result``), scores every singleton cut from the
      ε-sparsifier exactly as :class:`~repro.congest.adversary.TargetedCutAdversary`
      does, and spreads the roots over the *heaviest*-cut half of the nodes —
      the places a budgeted cut attacker can least afford to sever.
    * an explicit sequence of ``parts`` node ids is passed through verbatim.

    Deterministic per (graph, policy, seed) and bit-identical across
    backends (the Theorem 7 pipeline it leans on is itself certified), so
    multi-root packings stay reproducible in mixed-backend pipelines.
    """
    n = graph.n
    if parts < 1:
        raise ValidationError("parts must be >= 1")
    if not isinstance(roots, str):
        out = [int(r) for r in roots]
        if len(out) != parts:
            raise ValidationError(
                f"explicit roots list has {len(out)} entries for {parts} classes"
            )
        bad = [r for r in out if not (0 <= r < n)]
        if bad:
            raise ValidationError(f"root ids {bad[:4]} out of range [0, {n})")
        return out
    if not (0 <= base_root < n):
        raise ValidationError(f"root {base_root} out of range")
    if roots == "shared":
        return [base_root] * parts
    if roots == "spread":
        return [(base_root + (c * n) // parts) % n for c in range(parts)]
    if roots == "cut-aware":
        from repro.cuts.approx import approx_all_cuts

        res = cuts_result
        if res is None:
            res = approx_all_cuts(graph, eps=eps, seed=seed, backend=backend)
        H = res.sparsifier.sparsifier
        hw = H.weights if H.weights is not None else np.ones(H.m)
        deg_h = np.zeros(n)
        np.add.at(deg_h, H.edge_u, hw)
        np.add.at(deg_h, H.edge_v, hw)
        # Keep the heaviest-estimated-singleton-cut half (ties: smaller id),
        # then spread over it in node-id order — heavy AND apart.
        order = np.lexsort((np.arange(n), -deg_h))
        safe = np.sort(order[: max(parts, (n + 1) // 2)])
        return [int(safe[(c * len(safe)) // parts]) for c in range(parts)]
    raise ValidationError(
        f"unknown root policy {roots!r}; expected one of {ROOT_POLICIES} "
        "or an explicit list of node ids"
    )


@obs.traced("tree_packing.build")
def build_tree_packing(
    decomp: Decomposition,
    root: int = 0,
    distributed: bool = True,
    backend: str = "simulator",
    roots=None,
) -> TreePacking:
    """BFS per color class → tree packing (Section 3.1).

    ``backend="simulator"`` (default) honors ``distributed``:
    ``distributed=True`` runs the Lemma 2 floods concurrently on the CONGEST
    simulator (certified round count: all classes in parallel, so the cost
    is the *max* depth, not the sum); ``distributed=False`` uses the
    centralized BFS kernel and charges the same certified count — bit-for-bit
    the same trees (both pick the smallest-id parent in the previous layer)
    and the same max-depth + 1 rounds, two orders of magnitude faster for
    application pipelines; the tests assert the equivalence.

    ``backend="vectorized"`` computes the distributed semantics — identical
    trees *and* the simulator's exact round count — with the numpy fast path
    of :mod:`repro.engine`, ignoring ``distributed``.

    ``roots`` selects the root-assignment policy (see :func:`resolve_roots`;
    ``None`` keeps the historical shared root at ``root``). All policies
    cost the same certified rounds — the classes flood concurrently, so the
    price is still the max class depth regardless of where each flood starts.
    """
    from repro.engine import validate_backend

    g = decomp.graph
    masks = decomp.masks()
    root_list = resolve_roots(
        g,
        decomp.parts,
        roots if roots is not None else "shared",
        base_root=root,
        backend=backend,
    )
    if validate_backend(backend) == "vectorized":
        results, rounds = run_parallel_bfs(
            g, masks, roots=root_list, backend="vectorized"
        )
        trees = [_tree_from_bfs(r) for r in results]
    elif distributed:
        results, rounds = run_parallel_bfs(g, masks, roots=root_list)
        trees = [_tree_from_bfs(r) for r in results]
    else:
        trees = []
        for mask, r_c in zip(masks, root_list):
            sub, orig_ids = g.edge_subgraph_with_map(mask)
            parent, dist = bfs_tree(sub, r_c)
            if np.any(dist < 0):
                raise ValidationError(
                    "color class is not spanning — the w.h.p. event of "
                    "Theorem 2 failed; retry with a larger C or another seed"
                )
            trees.append(SpanningTree(root=r_c, parent=parent, depth_of=dist))
        # Charge exactly what the simulator certifies: flood depth + the one
        # round draining the deepest layer's child notices (0 for n = 1).
        rounds = max(t.depth for t in trees) + 1 if g.n > 1 else 0

    return _packing_from_trees(g, trees, rounds, class_masks=masks)


@obs.traced("tree_packing.retry")
def build_packing_with_retry(
    graph: Graph,
    parts: int,
    seed: int,
    root: int = 0,
    distributed: bool = True,
    max_tries: int = 8,
    backend: str = "simulator",
    roots=None,
    batch: int = 1,
) -> tuple[TreePacking, int]:
    """Theorem 2 packing with seed-retry on w.h.p. failure.

    The paper's validity-check remark (§1.1) licenses this: checking whether
    every class spans costs one parallel BFS, O((n log n)/δ) rounds, so a
    failed attempt is detected and re-randomized at that price. Returns
    ``(packing, attempts)``; the packing's ``construction_rounds`` already
    includes one BFS per *failed* attempt (charged at the successful
    attempt's BFS cost, the honest distributed price of each validity
    check).

    ``roots`` is the root-assignment policy of :func:`resolve_roots`. It is
    resolved to an explicit list *once*, before the retry loop — the roots
    depend only on the host graph, not on the decomposition attempt, and the
    cut-aware policy's Theorem 7 run is far too expensive to repeat per seed.

    ``batch > 1`` (vectorized backend only) probes that many retry
    candidates speculatively: the spanning check of every attempt in the
    batch runs as one :func:`~repro.engine.plane.masked_union_bfs` plane
    sweep, and the first spanning attempt is then built conventionally —
    the returned packing and attempt count are bit-identical to the
    sequential ``batch=1`` walk, only the failed attempts' dispatch
    overhead is amortized.
    """
    from repro.core.decomposition import random_partition

    root_list = resolve_roots(
        graph,
        parts,
        roots if roots is not None else "shared",
        base_root=root,
        seed=seed,
        backend=backend,
    )
    if batch > 1 and backend == "vectorized" and graph.m:
        from repro.engine.plane import masked_union_bfs

        for lo in range(0, max_tries, batch):
            attempts = list(range(lo, min(lo + batch, max_tries)))
            decomps = [
                random_partition(graph, parts, seed + 7919 * a) for a in attempts
            ]
            masks = [m for d in decomps for m in d.masks()]
            probes = masked_union_bfs(
                graph,
                masks,
                list(root_list) * len(decomps),
                group_sizes=[parts] * len(decomps),
            )
            for ai, attempt in enumerate(attempts):
                block = probes[ai * parts : (ai + 1) * parts]
                if all(r.spans() for r in block):
                    packing = build_tree_packing(
                        decomps[ai],
                        root=root,
                        distributed=distributed,
                        backend=backend,
                        roots=root_list,
                    )
                    packing.construction_rounds *= attempt + 1
                    obs.count("packing.attempts", attempt + 1)
                    return packing, attempt + 1
        raise ValidationError(
            f"no spanning {parts}-part decomposition in {max_tries} seeds — "
            "the per-class expected degree δ/parts is likely below the ln n "
            "connectivity threshold; use fewer parts (larger C)"
        )
    last_error: ValidationError | None = None
    for attempt in range(max_tries):
        decomp = random_partition(graph, parts, seed + 7919 * attempt)
        try:
            packing = build_tree_packing(
                decomp,
                root=root,
                distributed=distributed,
                backend=backend,
                roots=root_list,
            )
        except ValidationError as err:
            last_error = err
            continue
        packing.construction_rounds *= attempt + 1
        obs.count("packing.attempts", attempt + 1)
        return packing, attempt + 1
    raise ValidationError(
        f"no spanning {parts}-part decomposition in {max_tries} seeds — "
        "the per-class expected degree δ/parts is likely below the ln n "
        "connectivity threshold; use fewer parts (larger C)"
    ) from last_error


def _packing_from_trees(
    graph: Graph,
    trees: list[SpanningTree],
    rounds: int,
    enforce_disjoint: bool = True,
    class_masks: list[np.ndarray] | None = None,
) -> TreePacking:
    """Shared tail: per-edge tree counts + the Theorem 2 disjointness gate."""
    # One bincount over the concatenated tree-edge ids replaces a per-tree
    # unbuffered np.add.at scatter — identical counts, one pass over graph.m.
    nodes = np.arange(graph.n)
    eids = [
        graph.edge_ids_for_pairs(tree.parent[vs], vs)
        for tree in trees
        for vs in (np.nonzero(nodes != tree.root)[0],)
    ]
    if eids:
        count = np.bincount(np.concatenate(eids), minlength=graph.m).astype(
            np.int64, copy=False
        )
    else:
        count = np.zeros(graph.m, dtype=np.int64)
    packing = TreePacking(
        graph=graph,
        trees=trees,
        construction_rounds=rounds,
        edge_tree_count=count,
        class_masks=class_masks,
    )
    if enforce_disjoint and packing.congestion > 1:
        raise ValidationError(
            "Theorem 2 packing must be edge-disjoint", congestion=packing.congestion
        )
    return packing


def packing_from_bfs_results(
    graph: Graph, results: list[BFSResult], rounds: int
) -> TreePacking:
    """Packing from already-computed parallel-BFS results (no re-traversal).

    The unknown-λ search's validation BFS *is* the packing construction, so
    the trees in hand are adopted directly instead of being recomputed.
    """
    return _packing_from_trees(graph, [_tree_from_bfs(r) for r in results], rounds)


def packing_from_masks(
    graph: Graph, masks: list[np.ndarray], root: int = 0, rounds: int = 0
) -> TreePacking:
    """Build a packing from arbitrary (possibly overlapping) edge masks.

    Used by the Appendix A alternative construction, where trees share edges
    with congestion O(log n) rather than being disjoint.
    """
    trees = []
    for mask in masks:
        sub, _ = graph.edge_subgraph_with_map(mask)
        parent, dist = bfs_tree(sub, root)
        if np.any(dist < 0):
            raise ValidationError("mask does not induce a spanning subgraph")
        trees.append(SpanningTree(root=root, parent=parent, depth_of=dist))
    return _packing_from_trees(graph, trees, rounds, enforce_disjoint=False)
