"""Random edge sampling and its diameter guarantee (Lemma 5).

Lemma 5 is the paper's engine: sampling each edge independently with
probability ``p = C log n / λ`` yields, w.h.p., a *spanning* subgraph of
diameter ``O(C n log n / δ)``. (Karger's classical result gives only
connectivity; the diameter bound is the new part.)

The module provides the sampler plus the explicit constants from the proof:
``L = Θ(C log n)`` sampling iterations and the ``20 n L / δ`` diameter bound,
so experiment E1 can print measured-vs-proof-bound columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, is_connected
from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, rng_from_seed

__all__ = [
    "sampling_probability",
    "sample_edges",
    "lemma5_diameter_bound",
    "SampleReport",
    "analyze_sample",
]


def sampling_probability(n: int, lam: int, C: float = 2.0) -> float:
    """Lemma 5's ``p = C log n / λ`` (natural log, capped at 1)."""
    if lam < 1:
        raise ValidationError("λ must be >= 1")
    if n < 2:
        return 1.0
    return min(1.0, C * math.log(n) / lam)


def sample_edges(graph: Graph, p: float, seed: int) -> np.ndarray:
    """Independent p-sampling of edges, by *shared randomness*.

    Returns a boolean edge mask. The coins are one vectorized draw from a
    PRG keyed by the public seed, indexed by canonical edge ids (lexicographic
    rank of ``(u, v)``) — a pure function both endpoints can evaluate
    locally, so sampling needs no communication, exactly the property
    Theorem 2 exploits.
    """
    if not (0.0 <= p <= 1.0):
        raise ValidationError("p must lie in [0, 1]")
    rng = rng_from_seed(derive_seed(seed, "sample"))
    return rng.random(graph.m) < p


def lemma5_diameter_bound(n: int, delta: int, C: float = 2.0) -> float:
    """The proof's explicit diameter bound ``20 n L / δ``, ``L = ⌈C ln n⌉``.

    This is the quantity the contradiction argument in Lemma 5 bounds; E1
    reports measured diameters against it (they come out far below — the
    constant 20 is an artifact of the union-bound bookkeeping).
    """
    if delta < 1:
        raise ValidationError("δ must be >= 1")
    L = max(1, math.ceil(C * math.log(max(n, 2))))
    return 20.0 * n * L / delta


@dataclass
class SampleReport:
    """Measured properties of one sampled subgraph (experiment E1 row)."""

    n: int
    m_sampled: int
    p: float
    spanning: bool
    diameter: int  # -1 if disconnected
    bound: float

    @property
    def within_bound(self) -> bool:
        return self.spanning and self.diameter <= self.bound


def analyze_sample(graph: Graph, mask: np.ndarray, C: float = 2.0) -> SampleReport:
    """Check Lemma 5's two claims (spanning, diameter) on a sampled mask."""
    sub = graph.edge_subgraph(mask)
    spanning = is_connected(sub)
    if spanning:
        # Exact diameter via double sweep is not exact on general graphs;
        # use full BFS (these subgraphs are small in the experiments).
        diam = 0
        for v in range(sub.n):
            dist = bfs_distances(sub, v)
            diam = max(diam, int(dist.max()))
    else:
        diam = -1
    return SampleReport(
        n=graph.n,
        m_sampled=int(mask.sum()),
        p=float(mask.sum()) / max(1, graph.m),
        spanning=spanning,
        diameter=diam,
        bound=lemma5_diameter_bound(graph.n, graph.min_degree(), C),
    )
