"""Simulating the broadcast congested clique (Section 1.2, [DKO14]).

The *broadcast congested clique* (BCC) is the all-to-all model where, per
round, every node broadcasts one O(log n)-bit message to **all** other
nodes. The paper observes that Theorem 1 with k = n messages (one per node)
simulates one BCC round on any λ-connected graph in `O((n log n)/λ)` rounds
— universally optimal up to the log factor, since Theorem 8's Ω(n/λ)
ID-learning bound applies verbatim to BCC simulation.

This module provides:

* :class:`BCCAlgorithm` — the abstract per-node BCC program (round hook
  receives *all* n messages of the previous round),
* :func:`simulate_bcc` — runs a BCC algorithm over a physical λ-connected
  graph, one Theorem 1 broadcast per BCC round, with certified round
  accounting and an amortization option (the tree packing is built once and
  reused across BCC rounds — decompositions are input-independent),
* a reference BCC algorithm (:class:`MinimumSpanningForestBCC` is overkill
  here; we ship :class:`SumAndLeaderBCC`) used by tests and the example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.broadcast import fast_broadcast
from repro.core.decomposition import num_parts
from repro.core.tree_packing import TreePacking, build_packing_with_retry
from repro.graphs.graph import Graph
from repro.util.errors import ValidationError

__all__ = ["BCCAlgorithm", "BCCOutcome", "simulate_bcc", "SumAndLeaderBCC"]


class BCCAlgorithm:
    """A broadcast-congested-clique algorithm, one instance per node.

    Per BCC round the driver calls :meth:`broadcast_message` to collect this
    node's outgoing message (any payload of O(log n) bits — an int or a
    small tuple), then delivers the full message vector of the round to
    :meth:`on_messages`. Return ``True`` from :meth:`on_messages` to halt.
    """

    def __init__(self, node: int, n: int):
        self.node = node
        self.n = n
        self.output: dict[str, Any] = {}

    def broadcast_message(self, bcc_round: int) -> Any:  # pragma: no cover
        raise NotImplementedError

    def on_messages(self, bcc_round: int, messages: Sequence[Any]) -> bool:
        raise NotImplementedError  # pragma: no cover


@dataclass
class BCCOutcome:
    """Result of simulating a BCC algorithm on a physical network."""

    bcc_rounds: int
    congest_rounds: int
    per_bcc_round_cost: list[int] = field(default_factory=list)
    packing: TreePacking | None = None

    @property
    def amortized_cost(self) -> float:
        """CONGEST rounds per simulated BCC round."""
        if self.bcc_rounds == 0:
            return 0.0
        return self.congest_rounds / self.bcc_rounds


def simulate_bcc(
    graph: Graph,
    algorithms: Sequence[BCCAlgorithm],
    lam: int,
    max_bcc_rounds: int = 64,
    C: float = 2.0,
    seed: int = 0,
) -> BCCOutcome:
    """Run a BCC algorithm over ``graph``, one n-broadcast per BCC round.

    The Theorem 2 tree packing is built **once** (it does not depend on the
    messages) and reused by every round's broadcast — the amortization the
    paper's "any subsequent k-broadcast instance" phrasing points at. Each
    BCC round then costs one pipelined n-message broadcast:
    `O((n log n)/λ)` CONGEST rounds, measured exactly.

    The simulation is semantically faithful: message *contents* flow through
    the real broadcast id-space (message j of round r carries node j's
    payload, which the driver maps back), so a BCC algorithm cannot peek at
    data the physical network has not yet delivered.
    """
    if len(algorithms) != graph.n:
        raise ValidationError("need one BCCAlgorithm per node")
    parts = num_parts(lam, graph.n, C)
    packing, _ = build_packing_with_retry(graph, parts, seed, distributed=False)

    total = packing.construction_rounds
    per_round: list[int] = []
    placement = {v: 1 for v in range(graph.n)}
    halted = [False] * graph.n
    bcc_round = 0
    while bcc_round < max_bcc_rounds and not all(halted):
        # Collect the round's messages (local computation, 0 rounds). Each
        # must fit the O(log n)-bit BCC message size, same budget as the
        # physical links that will carry it.
        from repro.util.bits import bits_for_payload, message_bit_budget

        budget = message_bit_budget(graph.n)
        messages = []
        for alg in algorithms:
            msg = alg.broadcast_message(bcc_round)
            if bits_for_payload(msg) > budget:
                raise ValidationError(
                    f"BCC message of node {alg.node} exceeds the O(log n) "
                    f"budget ({bits_for_payload(msg)} > {budget} bits)"
                )
            messages.append(msg)
        # One n-message broadcast ships them everywhere.
        res = fast_broadcast(
            graph, placement, packing=packing, seed=seed, verify=True
        )
        per_round.append(res.rounds)
        total += res.rounds
        # Deliver the full vector to every node.
        done = True
        for v, alg in enumerate(algorithms):
            if halted[v]:
                continue
            halted[v] = bool(alg.on_messages(bcc_round, messages))
            done = done and halted[v]
        bcc_round += 1
        if done:
            break
    return BCCOutcome(
        bcc_rounds=bcc_round,
        congest_rounds=total,
        per_bcc_round_cost=per_round,
        packing=packing,
    )


class SumAndLeaderBCC(BCCAlgorithm):
    """Reference BCC algorithm: 2 rounds to agree on (sum, argmax) of inputs.

    Round 0: everyone broadcasts its input; round 1: everyone broadcasts the
    (sum, argmax) it computed — unanimity is checked and recorded. Used by
    tests to verify the simulation is semantically faithful end to end.
    """

    def __init__(self, node: int, n: int, value: int):
        super().__init__(node, n)
        self.value = value
        self._verdict: tuple[int, int] | None = None

    def broadcast_message(self, bcc_round: int) -> Any:
        if bcc_round == 0:
            return self.value
        return self._verdict

    def on_messages(self, bcc_round: int, messages: Sequence[Any]) -> bool:
        if bcc_round == 0:
            total = sum(messages)
            arg = max(range(self.n), key=lambda v: (messages[v], -v))
            self._verdict = (total, arg)
            self.output["sum"] = total
            self.output["argmax"] = arg
            return False
        # Round 1: cross-check unanimity.
        self.output["unanimous"] = all(m == self._verdict for m in messages)
        return True
