"""The zero-communication edge partition (Theorem 2).

Theorem 2: color every edge of G uniformly at random with one of
``λ' = λ/(C log n)`` colors; then w.h.p. **every** color class is a spanning
subgraph of diameter ``O((C n log n)/δ)``. Each color class is distributed
like a ``p = 1/λ'``-sample of E, so Lemma 5 applies per class and a union
bound over the λ' ≤ λ ≤ n classes finishes the proof.

Zero communication: the color of edge ``{u, v}`` is a pure function of the
public seed and the pair ``(u, v)`` (shared randomness), so both endpoints
agree on it without any message — the decomposition costs **0 rounds**, which
is what lets Theorem 1 beat the Õ(D + √(nλ))-round decompositions of
[CGK14a].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, is_connected
from repro.util.errors import ValidationError
from repro.util.rng import derive_seed, rng_from_seed

__all__ = [
    "num_parts",
    "theorem2_diameter_bound",
    "Decomposition",
    "random_partition",
    "DecompositionReport",
    "validate_decomposition",
]


def num_parts(lam: int, n: int, C: float = 2.0) -> int:
    """Theorem 2's ``λ' = λ / (C log n)``: natural log, clamped to [1, λ].

    The upper clamp matters for tiny n, where ``C·ln n < 1`` would yield
    more classes than λ — per-class expected degree below 1, which the
    theorem's analysis (and common sense) forbids.
    """
    if lam < 1:
        raise ValidationError("λ must be >= 1")
    if n < 3:
        return 1
    return min(lam, max(1, int(lam / (C * math.log(n)))))


def theorem2_diameter_bound(n: int, delta: int, C: float = 2.0) -> float:
    """Diameter bound ``O((C n log n)/δ)`` with the proof's constant 20·L/ln n.

    Matches :func:`repro.core.sampling.lemma5_diameter_bound` applied with
    the per-class sampling probability 1/λ'.
    """
    if delta < 1:
        raise ValidationError("δ must be >= 1")
    L = max(1, math.ceil(max(C, 1.0) * math.log(max(n, 2))))
    return 20.0 * n * L / delta


@dataclass
class Decomposition:
    """An edge coloring of G into ``parts`` classes (Theorem 2 object).

    ``colors[eid] ∈ [0, parts)``; class i is the spanning subgraph
    ``G_i = (V, {e : colors[e] = i})``.
    """

    graph: Graph
    parts: int
    colors: np.ndarray
    seed: int

    def mask(self, i: int) -> np.ndarray:
        if not (0 <= i < self.parts):
            raise ValidationError(f"no color {i} in a {self.parts}-part decomposition")
        return self.colors == i

    def masks(self) -> list[np.ndarray]:
        return [self.mask(i) for i in range(self.parts)]

    def subgraph(self, i: int) -> Graph:
        return self.graph.edge_subgraph(self.mask(i))

    def subgraphs(self) -> list[Graph]:
        return [self.subgraph(i) for i in range(self.parts)]

    def class_sizes(self) -> np.ndarray:
        return np.bincount(self.colors, minlength=self.parts)


def random_partition(graph: Graph, parts: int, seed: int) -> Decomposition:
    """Color each edge uniformly at random using shared randomness only.

    Deterministic in ``(graph, parts, seed)``: colors are one vectorized
    draw from a PRG keyed by the public seed, indexed by the edge's
    *canonical id* (its rank in the lexicographic order of ``(u, v)`` pairs,
    which both endpoints can compute locally from the IDs they already
    know). So the partition is round-free — Theorem 2's key property — and
    reproducible across processes.
    """
    if parts < 1:
        raise ValidationError("need at least one part")
    rng = rng_from_seed(derive_seed(seed, "partition", parts))
    colors = rng.integers(parts, size=graph.m)
    return Decomposition(graph=graph, parts=parts, colors=colors.astype(np.int64), seed=seed)


@dataclass
class DecompositionReport:
    """Validation outcome for one decomposition (experiment E2 rows)."""

    parts: int
    all_spanning: bool
    diameters: list[int] = field(default_factory=list)  # -1 = disconnected
    bound: float = 0.0

    @property
    def max_diameter(self) -> int:
        return max(self.diameters) if self.diameters else 0

    @property
    def ok(self) -> bool:
        return self.all_spanning and all(
            0 <= d <= self.bound for d in self.diameters
        )


def validate_decomposition(
    decomp: Decomposition, C: float = 2.0, exact_diameter: bool = False
) -> DecompositionReport:
    """Check Theorem 2's guarantee on every color class.

    ``exact_diameter=False`` (default) measures eccentricity from node 0 —
    within a factor 2 of the diameter and n× faster, the right trade-off for
    sweeps; tests use ``exact_diameter=True`` on small graphs.
    """
    g = decomp.graph
    diameters: list[int] = []
    all_spanning = True
    for i in range(decomp.parts):
        sub = g.edge_subgraph(decomp.mask(i))
        if not is_connected(sub):
            all_spanning = False
            diameters.append(-1)
            continue
        if exact_diameter:
            diam = 0
            for v in range(sub.n):
                diam = max(diam, int(bfs_distances(sub, v).max()))
        else:
            ecc = int(bfs_distances(sub, 0).max())
            diam = ecc  # a lower bound; ecc <= D <= 2*ecc
        diameters.append(diam)
    return DecompositionReport(
        parts=decomp.parts,
        all_spanning=all_spanning,
        diameters=diameters,
        bound=theorem2_diameter_bound(g.n, g.min_degree(), C),
    )
