"""The k-broadcast algorithms: textbook (Lemma 1) and fast (Theorem 1).

**Textbook** ``O(D + k)``: elect a leader, build one BFS tree, number the
messages (Lemma 3), pipeline everything over the single tree.

**Fast (Theorem 1)** ``O((n log n)/δ + (k log n)/λ)``:

1. elect a leader and number the messages over a global BFS tree — O(D),
2. color the edges with λ' = λ/(C log n) colors (Theorem 2) — **0 rounds**,
3. BFS inside every color class concurrently — O((n log n)/δ) rounds,
4. assign messages ``[(i-1)K+1, iK]`` (K = ⌈k/λ'⌉) to class i and run the
   Lemma 1 pipeline in all classes concurrently — O((n log n)/δ + (k log n)/λ).

**Combined** (Section 3.2): run whichever of the two the closed-form
predictions favor, realizing ``min(O(D+k), O(n log n/δ + k log n/λ))`` —
the bound that nearly matches the Ghaffari–Kuhn existential lower bound for
every k.

Every phase is executed on the CONGEST simulator and its exact round count
reported per phase; nothing is estimated. Delivery of all k messages to all
n nodes is verified after the pipeline phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.decomposition import (
    Decomposition,
    num_parts,
)
from repro.core.tree_packing import TreePacking, build_tree_packing
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult, run_bfs
from repro.primitives.leader import elect_leader
from repro.primitives.numbering import assign_item_numbers
from repro.primitives.pipeline import run_tree_broadcast
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "BroadcastResult",
    "uniform_random_placement",
    "single_source_placement",
    "cut_adversarial_placement",
    "textbook_broadcast",
    "textbook_broadcast_batch",
    "fast_broadcast",
    "fast_broadcast_batch",
    "combined_broadcast",
]


# --------------------------------------------------------------------------- #
# message placements (the "parametric input" of the universal-optimality
# definition in Section 3.2)
# --------------------------------------------------------------------------- #

def uniform_random_placement(n: int, k: int, seed=None) -> dict[int, int]:
    """k messages at independently uniform nodes: ``{node: count}``."""
    rng = ensure_rng(seed)
    placement: dict[int, int] = {}
    for v in rng.integers(n, size=k).tolist():
        placement[v] = placement.get(v, 0) + 1
    return placement


def single_source_placement(source: int, k: int) -> dict[int, int]:
    """All k messages at one node (the classic broadcast setting)."""
    return {source: k}


def cut_adversarial_placement(
    graph: Graph, side: np.ndarray, k: int
) -> dict[int, int]:
    """All k messages on one side of a (minimum) cut — the Theorem 3 worst
    case, where Ω(k/λ) is forced by the cut's bandwidth."""
    nodes = np.nonzero(np.asarray(side, dtype=bool))[0]
    if nodes.size == 0:
        raise ValidationError("cut side is empty")
    placement: dict[int, int] = {}
    per = k // len(nodes)
    extra = k - per * len(nodes)
    for i, v in enumerate(nodes.tolist()):
        cnt = per + (1 if i < extra else 0)
        if cnt:
            placement[v] = cnt
    return placement


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #

@dataclass
class BroadcastResult:
    """Outcome of one k-broadcast execution, with per-phase round counts."""

    algorithm: str
    n: int
    k: int
    parts: int
    phases: dict[str, int] = field(default_factory=dict)
    max_congestion: int = 0
    packing_max_depth: int = 0
    delivered: bool = False

    @property
    def rounds(self) -> int:
        return sum(self.phases.values())

    def __repr__(self):
        return (
            f"BroadcastResult({self.algorithm}, n={self.n}, k={self.k}, "
            f"rounds={self.rounds}, phases={self.phases})"
        )


def _number_messages_batch(
    graph: Graph, placements: list[dict[int, int]], backend: str = "simulator"
) -> list[tuple[int, BFSResult, np.ndarray, dict[str, int]]]:
    """Shared prologue: leader election, global BFS, Lemma 3 numbering.

    Both backends produce the same leader, tree, starts, and per-phase round
    counts; the vectorized one skips the per-node state machines entirely.
    The leader and its global BFS tree are placement-independent, so a batch
    of placements pays them once and reruns only the numbering — each
    element is bit-identical to its solo call (the tree object is shared
    read-only; every placement gets its own phase ledger).
    """
    counts_list = []
    for placement in placements:
        counts = np.zeros(graph.n, dtype=np.int64)
        for v, c in placement.items():
            if c < 0:
                raise ValidationError("message counts must be non-negative")
            counts[v] = c
        counts_list.append(counts)
    if backend == "vectorized":
        from repro.engine.fastpath import (
            vectorized_elect_leader as elect,
            vectorized_numbering as number,
        )
    else:
        elect, number = elect_leader, assign_item_numbers
    with obs.span("elect"):
        leader, r_leader = elect(graph)
    with obs.span("global_bfs"):
        tree = run_bfs(graph, leader, backend=backend)
    if not tree.spans():
        raise ValidationError("graph must be connected for broadcast")
    out = []
    with obs.span("numbering"):
        for counts in counts_list:
            starts, r_num = number(graph, tree, counts)
            phases = {
                "leader_election": r_leader,
                "global_bfs": tree.rounds,
                "numbering": r_num,
            }
            out.append((leader, tree, starts, phases))
    return out


def _number_messages(
    graph: Graph, placement: dict[int, int], backend: str = "simulator"
) -> tuple[int, BFSResult, np.ndarray, dict[str, int]]:
    """Solo prologue — a batch of one (see :func:`_number_messages_batch`)."""
    return _number_messages_batch(graph, [placement], backend)[0]


def _run_pipeline(graph, trees, per_channel, verify, backend, step=None):
    """Dispatch the Lemma 1 pipeline to the chosen backend.

    ``step`` picks the vectorized engine's stepping strategy
    (:func:`repro.engine.kernels.resolve_step`); the simulator is always
    per-round.
    """
    if backend == "vectorized":
        from repro.engine.fastpath import vectorized_tree_broadcast

        return vectorized_tree_broadcast(
            graph, trees, per_channel, verify=verify, step=step
        )
    return run_tree_broadcast(graph, trees, per_channel, verify=verify)


def _placement_ids(
    counts: dict[int, int], starts: np.ndarray
) -> dict[int, list[int]]:
    return {
        v: list(range(int(starts[v]), int(starts[v]) + c))
        for v, c in counts.items()
        if c > 0
    }


def _textbook_tail(graph, placement, tree, starts, phases, verify, backend, step):
    """Per-placement remainder of the textbook algorithm (post-numbering)."""
    k = sum(placement.values())
    if backend == "vectorized":
        # Same contiguous ranges as _placement_ids, as numpy arrays: the
        # engine consumes them array-natively (no per-id Python objects).
        ids = {
            v: np.arange(starts[v], starts[v] + c, dtype=np.int64)
            for v, c in placement.items()
            if c > 0
        }
    else:
        ids = _placement_ids(placement, starts)
    with obs.span("pipeline"):
        outcome = _run_pipeline(
            graph, {0: tree}, {0: ids}, verify, backend, step=step
        )
    phases["pipeline"] = outcome.rounds
    return BroadcastResult(
        algorithm="textbook",
        n=graph.n,
        k=k,
        parts=1,
        phases=phases,
        max_congestion=outcome.max_congestion,
        packing_max_depth=tree.depth,
        delivered=True,
    )


def textbook_broadcast(
    graph: Graph,
    placement: dict[int, int],
    verify: bool = True,
    backend: str = "simulator",
    step: str | None = None,
) -> BroadcastResult:
    """Lemma 1's O(D + k) pipeline over a single BFS tree."""
    return textbook_broadcast_batch(
        graph, [placement], verify=verify, backend=backend, step=step
    )[0]


def textbook_broadcast_batch(
    graph: Graph,
    placements,
    verify: bool = True,
    backend: str = "simulator",
    step: str | None = None,
) -> list[BroadcastResult]:
    """Many textbook broadcasts with the shared prologue paid once.

    Element ``i`` is bit-identical to
    ``textbook_broadcast(graph, placements[i], ...)`` — same phase ledger,
    congestion, and delivery flags. Leader election and the global BFS are
    placement-independent and run once; numbering and the pipeline run per
    placement.
    """
    from repro.engine import validate_backend

    validate_backend(backend)
    placements = list(placements)
    with obs.span("textbook_broadcast"):
        numbered = _number_messages_batch(graph, placements, backend)
        return [
            _textbook_tail(
                graph, placement, tree, starts, phases, verify, backend, step
            )
            for placement, (_leader, tree, starts, phases) in zip(
                placements, numbered
            )
        ]


def fast_broadcast(
    graph: Graph,
    placement: dict[int, int],
    lam: int | None = None,
    C: float = 2.0,
    seed: int = 0,
    verify: bool = True,
    distributed_packing: bool = True,
    decomposition: Decomposition | None = None,
    packing: TreePacking | None = None,
    backend: str = "simulator",
    step: str | None = None,
) -> BroadcastResult:
    """Theorem 1's Õ((n + k)/λ)-round broadcast.

    Parameters
    ----------
    lam: edge connectivity (common knowledge per the paper's Remark; pass
        ``None`` to have it computed centrally for convenience — use
        :func:`repro.core.lambda_search.broadcast_with_unknown_lambda` for
        the fully distributed unknown-λ variant).
    C: the constant in λ' = λ/(C log n); smaller C → more trees but a
        larger failure probability for the w.h.p. events.
    decomposition / packing: pre-built Theorem 2 artifacts to reuse (the
        decomposition is input-independent, so amortizing it across many
        broadcast instances is exactly what Section 1 suggests); their
        construction rounds are then charged as 0 here.
    distributed_packing: build trees on the simulator (certified rounds) or
        centrally with equivalent output (fast path for sweeps); only
        consulted under ``backend="simulator"``.
    backend: ``"simulator"`` executes every phase on the CONGEST simulator;
        ``"vectorized"`` computes the identical phase ledger with the numpy
        engine (see :mod:`repro.engine`).
    step: stepping strategy of the vectorized pipeline phase
        (:func:`repro.engine.kernels.resolve_step`); ignored by the
        simulator.
    """
    from repro.engine import validate_backend
    from repro.graphs.connectivity import edge_connectivity

    validate_backend(backend)
    k = sum(placement.values())
    with obs.span("fast_broadcast"):
        if lam is None and decomposition is None and packing is None:
            with obs.span("connectivity"):
                lam = edge_connectivity(graph)
        leader, gtree, starts, phases = _number_messages(graph, placement, backend)

        if packing is None:
            with obs.span("tree_packing"):
                if decomposition is not None:
                    packing = build_tree_packing(
                        decomposition,
                        root=leader,
                        distributed=distributed_packing,
                        backend=backend,
                    )
                else:
                    from repro.core.tree_packing import build_packing_with_retry

                    parts = num_parts(lam, graph.n, C)
                    packing, _attempts = build_packing_with_retry(
                        graph,
                        parts,
                        seed,
                        root=leader,
                        distributed=distributed_packing,
                        backend=backend,
                    )
            phases["tree_packing"] = packing.construction_rounds
        else:
            phases["tree_packing"] = 0
        return _fast_tail(
            graph, placement, starts, phases, packing, verify, backend, step
        )


def _fast_tail(graph, placement, starts, phases, packing, verify, backend, step):
    """Per-placement remainder of Theorem 1 (channel split + pipeline)."""
    k = sum(placement.values())
    parts = packing.size

    # Assign message id j (1-based) to class (j-1) // K, K = ceil(k / parts).
    # Each node's ids are one contiguous range (Lemma 3), so the split
    # never materializes id lists: j_arr reconstructs every id from
    # (node order, counts, starts) arithmetically, and the channel split
    # is a handful of contiguous chunks grouped in one lexsort instead of
    # k Python-dict appends. Under the vectorized backend the chunk
    # values stay numpy views of j_arr (zero-copy); the simulator gets
    # the plain int lists its payload tuples require.
    K = max(1, math.ceil(k / parts))
    per_channel: dict[int, dict[int, list[int] | np.ndarray]] = {
        c: {} for c in range(parts)
    }
    with obs.span("channel_split"):
        pairs = [(v, c) for v, c in placement.items() if c > 0]
        if pairs:
            v_arr = np.fromiter((v for v, _ in pairs), dtype=np.int64, count=len(pairs))
            cnt = np.fromiter((c for _, c in pairs), dtype=np.int64, count=len(pairs))
            node_arr = np.repeat(v_arr, cnt)
            base = np.repeat(starts[v_arr] - (np.cumsum(cnt) - cnt), cnt)
            j_arr = base + np.arange(int(cnt.sum()), dtype=np.int64)
            c_arr = np.minimum((j_arr - 1) // K, parts - 1)
            order = np.lexsort((j_arr, node_arr, c_arr))
            nod = node_arr[order]
            ch = c_arr[order]
            sorted_ids = j_arr[order]
            flat = sorted_ids if backend == "vectorized" else sorted_ids.tolist()
            brk = np.nonzero((ch[1:] != ch[:-1]) | (nod[1:] != nod[:-1]))[0] + 1
            bounds = np.concatenate(
                [[0], brk, [len(flat)]] if brk.size else [[0], [len(flat)]]
            ).tolist()
            for a, b in zip(bounds[:-1], bounds[1:]):
                per_channel[int(ch[a])][int(nod[a])] = flat[a:b]

        trees = {c: _bfs_view(packing, c) for c in range(parts)}
    with obs.span("pipeline"):
        outcome = _run_pipeline(graph, trees, per_channel, verify, backend, step=step)
    phases["pipeline"] = outcome.rounds
    return BroadcastResult(
        algorithm="fast",
        n=graph.n,
        k=k,
        parts=parts,
        phases=phases,
        max_congestion=outcome.max_congestion,
        packing_max_depth=packing.max_depth,
        delivered=True,
    )


def fast_broadcast_batch(
    graph: Graph,
    placements,
    lam: int | None = None,
    C: float = 2.0,
    seeds=0,
    verify: bool = True,
    distributed_packing: bool = True,
    backend: str = "simulator",
    step: str | None = None,
) -> list[BroadcastResult]:
    """Many Theorem 1 broadcasts with all placement-independent work shared.

    Element ``i`` is bit-identical to ``fast_broadcast(graph,
    placements[i], seed=seeds[i], ...)``: edge connectivity, the leader and
    its global tree, and the tree packing of each distinct seed are computed
    once (the packing via :func:`build_packing_with_retry` candidate
    batching under the vectorized backend — itself bit-identical to the
    sequential retry walk); numbering, the channel split, and the pipeline
    run per placement. ``seeds`` is one int for all placements or a
    per-placement list.
    """
    from repro.engine import validate_backend
    from repro.graphs.connectivity import edge_connectivity

    validate_backend(backend)
    placements = list(placements)
    if isinstance(seeds, int):
        seed_list = [seeds] * len(placements)
    else:
        seed_list = [int(s) for s in seeds]
        if len(seed_list) != len(placements):
            raise ValidationError(
                f"seeds length {len(seed_list)} != placements length {len(placements)}"
            )
    with obs.span("fast_broadcast"):
        if lam is None:
            with obs.span("connectivity"):
                lam = edge_connectivity(graph)
        numbered = _number_messages_batch(graph, placements, backend)
        parts = num_parts(lam, graph.n, C)
        packings: dict[int, TreePacking] = {}
        results = []
        for placement, seed, (leader, _gtree, starts, phases) in zip(
            placements, seed_list, numbered
        ):
            packing = packings.get(seed)
            if packing is None:
                from repro.core.tree_packing import build_packing_with_retry

                with obs.span("tree_packing"):
                    packing, _attempts = build_packing_with_retry(
                        graph,
                        parts,
                        seed,
                        root=leader,
                        distributed=distributed_packing,
                        backend=backend,
                        batch=4 if backend == "vectorized" else 1,
                    )
                packings[seed] = packing
            phases["tree_packing"] = packing.construction_rounds
            results.append(
                _fast_tail(
                    graph, placement, starts, phases, packing, verify, backend, step
                )
            )
        return results


def _bfs_view(packing: TreePacking, i: int) -> BFSResult:
    """Adapt a packed SpanningTree to the BFSResult shape the pipeline uses.

    ``children`` stays lazy: the vectorized pipeline reads only ``parent``,
    ``dist``, and ``spans()``, so the Python child lists materialize only
    if a simulator consumer asks for them.
    """
    tree = packing.trees[i]
    return BFSResult(
        root=tree.root,
        parent=tree.parent,
        dist=tree.depth_of,
        children=None,
        rounds=0,
    )


def combined_broadcast(
    graph: Graph,
    placement: dict[int, int],
    lam: int | None = None,
    C: float = 2.0,
    seed: int = 0,
    verify: bool = True,
    backend: str = "simulator",
    step: str | None = None,
) -> BroadcastResult:
    """Section 3.2's min(textbook, fast): predict, then run the winner.

    The prediction uses the closed forms of :mod:`repro.theory`; the chosen
    algorithm's *measured* rounds are returned (algorithm name records the
    choice as ``combined/textbook`` or ``combined/fast``).
    """
    from repro.graphs.connectivity import edge_connectivity
    from repro.graphs.properties import approx_diameter
    from repro.theory import predict_fast_rounds, predict_textbook_rounds

    if lam is None:
        with obs.span("connectivity"):
            lam = edge_connectivity(graph)
    k = sum(placement.values())
    D = approx_diameter(graph, samples=4, seed=seed)
    delta = graph.min_degree()
    t_text = predict_textbook_rounds(D, k)
    t_fast = predict_fast_rounds(graph.n, k, delta, lam, C)
    if t_text <= t_fast:
        result = textbook_broadcast(
            graph, placement, verify=verify, backend=backend, step=step
        )
        result.algorithm = "combined/textbook"
    else:
        result = fast_broadcast(
            graph,
            placement,
            lam=lam,
            C=C,
            seed=seed,
            verify=verify,
            backend=backend,
            step=step,
        )
        result.algorithm = "combined/fast"
    return result
