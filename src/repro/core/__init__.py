"""The paper's primary contribution (Section 3).

* :mod:`~repro.core.sampling` — Lemma 5: p-sampling yields spanning,
  low-diameter subgraphs.
* :mod:`~repro.core.decomposition` — Theorem 2: the zero-communication
  random edge partition.
* :mod:`~repro.core.tree_packing` — Section 3.1: BFS per color class →
  Ω(λ/log n) edge-disjoint low-diameter spanning trees.
* :mod:`~repro.core.broadcast` — Theorem 1: the Õ((n+k)/λ) k-broadcast,
  plus the Lemma 1 textbook baseline and the Section 3.2 combination.
* :mod:`~repro.core.lambda_search` — the unknown-λ exponential search.
* :mod:`~repro.core.alt_packing` — Appendix A: Lemma 9 witnesses and the
  Theorem 10 congestion-O(log n) packing.
"""

from repro.core.sampling import (
    sampling_probability,
    sample_edges,
    lemma5_diameter_bound,
    SampleReport,
    analyze_sample,
)
from repro.core.decomposition import (
    num_parts,
    theorem2_diameter_bound,
    Decomposition,
    random_partition,
    DecompositionReport,
    validate_decomposition,
)
from repro.core.tree_packing import (
    ROOT_POLICIES,
    SpanningTree,
    TreePacking,
    build_tree_packing,
    build_packing_with_retry,
    packing_from_masks,
    resolve_roots,
)
from repro.core.broadcast import (
    BroadcastResult,
    uniform_random_placement,
    single_source_placement,
    cut_adversarial_placement,
    textbook_broadcast,
    textbook_broadcast_batch,
    fast_broadcast,
    fast_broadcast_batch,
    combined_broadcast,
)
from repro.core.lambda_search import (
    LambdaSearchOutcome,
    find_packing_unknown_lambda,
    broadcast_unknown_lambda,
)
from repro.core.congested_clique import (
    BCCAlgorithm,
    BCCOutcome,
    simulate_bcc,
    SumAndLeaderBCC,
)
from repro.core.resilient import (
    DeliveryReport,
    FaultCell,
    RepairOutcome,
    evaluate_fault_grid,
    redundant_broadcast,
    repair_coverage,
    tree_edge_ids,
)
from repro.core.alt_packing import (
    PathSystem,
    kd_connectivity_witness,
    lemma9_parameters,
    greedy_low_diameter_packing,
)

__all__ = [
    "sampling_probability",
    "sample_edges",
    "lemma5_diameter_bound",
    "SampleReport",
    "analyze_sample",
    "num_parts",
    "theorem2_diameter_bound",
    "Decomposition",
    "random_partition",
    "DecompositionReport",
    "validate_decomposition",
    "ROOT_POLICIES",
    "SpanningTree",
    "TreePacking",
    "build_tree_packing",
    "build_packing_with_retry",
    "packing_from_masks",
    "resolve_roots",
    "BroadcastResult",
    "uniform_random_placement",
    "single_source_placement",
    "cut_adversarial_placement",
    "textbook_broadcast",
    "textbook_broadcast_batch",
    "fast_broadcast",
    "fast_broadcast_batch",
    "combined_broadcast",
    "LambdaSearchOutcome",
    "find_packing_unknown_lambda",
    "broadcast_unknown_lambda",
    "BCCAlgorithm",
    "BCCOutcome",
    "simulate_bcc",
    "SumAndLeaderBCC",
    "DeliveryReport",
    "FaultCell",
    "RepairOutcome",
    "evaluate_fault_grid",
    "redundant_broadcast",
    "repair_coverage",
    "tree_edge_ids",
    "PathSystem",
    "kd_connectivity_witness",
    "lemma9_parameters",
    "greedy_low_diameter_packing",
]
