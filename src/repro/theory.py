"""Closed-form round-complexity predictions for every theorem.

The benchmark harness prints *predicted vs measured* columns; the predictors
here are the paper's bounds with the library's explicit constants:

* textbook (Lemma 1): leader + BFS + numbering + pipeline ≈ 4D + 2k,
* fast (Theorem 1): prologue O(D) + packing depth + pipeline
  ≈ 4D + 3·diam_bound + 2⌈k/λ'⌉ with diam_bound = O((n log n)/δ),
* the min-combination of Section 3.2,
* lower bounds Ω(k/λ) (Theorem 3), Ω(n/λ) (Theorem 8), Ω(n/(λ log α))
  (Theorem 9), Ω(min(K/log²n, n/λ)) (Theorem 11).

These are *predictions with explicit constants*, not asymptotics: the E-suite
checks the measured/predicted ratio stays Θ(1) across sweeps, which is what
"the shape holds" means for a theory paper.
"""

from __future__ import annotations

import math

from repro.core.decomposition import num_parts
from repro.util.errors import ValidationError

__all__ = [
    "predict_textbook_rounds",
    "predict_fast_rounds",
    "predict_combined_rounds",
    "theorem3_lower_bound",
    "theorem8_lower_bound",
    "theorem9_lower_bound",
    "theorem11_lower_bound",
    "universal_optimality_ratio",
]


def predict_textbook_rounds(D: int, k: int) -> float:
    """Lemma 1 with this library's constants: ≈ 4D + 2k.

    Leader election D + BFS D + numbering 2D would be 4D; the pipeline is
    ≤ 2·depth + 2k ≤ 2D + 2k. We fold the depth terms into 6D but keep the
    headline 2k: prediction = 6D + 2k.
    """
    return 6.0 * D + 2.0 * k


def predict_fast_rounds(
    n: int, k: int, delta: int, lam: int, C: float = 2.0
) -> float:
    """Theorem 1 with explicit constants.

    prologue 4D ≤ 4·3n/δ (Observation 1) + packing BFS depth ≤ diam bound
    + pipeline ≤ 2·diam bound + 2⌈k/λ'⌉, with the Theorem 2 diameter bound.
    The Theorem 2 bound's constant 20L is loose by design (proof bookkeeping);
    empirically measured diameters sit ≈ 50× below it, so for *prediction*
    we use the observed-scale n·ln n/δ with a constant-2 safety factor and
    let the benches report the ratio.
    """
    if delta < lam:
        raise ValidationError("δ >= λ always; check inputs")
    parts = num_parts(lam, n, C)
    diam_scale = 2.0 * n * math.log(max(n, 2)) / delta  # Θ((n log n)/δ)
    per_tree_k = math.ceil(k / parts)
    prologue = 12.0 * n / delta  # 4 phases × Observation 1's D ≤ 3n/δ
    return prologue + 3.0 * diam_scale + 2.0 * per_tree_k


def predict_combined_rounds(
    n: int, k: int, delta: int, lam: int, D: int, C: float = 2.0
) -> float:
    """Section 3.2: min(textbook, fast)."""
    return min(
        predict_textbook_rounds(D, k), predict_fast_rounds(n, k, delta, lam, C)
    )


def theorem3_lower_bound(k: int, lam: int) -> float:
    """Ω(k/λ): with s-bit messages and w-bit edge bandwidth both Θ(log n),
    the proof needs ``2 t w λ ≥ sk/2 - 4``, i.e. t ≥ (k/λ)·(s/4w) - O(1).
    With s = w this is ``t ≥ k/(4λ) - 1``."""
    if lam < 1:
        raise ValidationError("λ must be >= 1")
    return max(0.0, k / (4.0 * lam) - 1.0)


def theorem8_lower_bound(n: int, lam: int) -> float:
    """Ω(n/λ) for learning all IDs (Theorem 8): |M| = 2^{Ω(n log n)} over a
    λ·O(log n) bits/round cut gives t ≥ n/(4λ) - O(1) with our constants."""
    if lam < 1:
        raise ValidationError("λ must be >= 1")
    return max(0.0, n / (4.0 * lam) - 1.0)


def theorem9_lower_bound(n: int, lam: int, alpha: float, c: int = 3) -> float:
    """Ω(n/(λ log α)) for α-approximate weighted APSP (Theorem 9).

    kmax = Θ(log n / log(2α)) choices per random exponent; v₁ must learn
    (n-2)·log₂(kmax) bits over λ·log₂(n^c) bits per round.
    """
    if alpha < 1:
        raise ValidationError("α must be >= 1")
    kmax = max(2, int(c * math.log(max(n, 2)) / math.log(2 * alpha)))
    bits_needed = (n - 2) * math.log2(kmax)
    bits_per_round = lam * c * math.log2(max(n, 2))
    return max(0.0, bits_needed / bits_per_round)


def theorem11_lower_bound(K_bits: int, n: int, lam: int) -> float:
    """Ghaffari–Kuhn: Ω(min(K/log²n, n/λ)) rounds to ship K bits s→t."""
    log2n = max(1.0, math.log2(max(n, 2)))
    return min(K_bits / (log2n**2), n / lam)


def universal_optimality_ratio(measured_rounds: int, k: int, lam: int) -> float:
    """measured / (k/λ): Theorem 1 promises this is O(log n) for k = Ω(n)."""
    if k < 1:
        raise ValidationError("k must be >= 1")
    return measured_rounds / (k / lam)
