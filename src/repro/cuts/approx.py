"""(1+ε)-approximation of *all* cut values in Õ(n/(λε²)) rounds (Theorem 7).

Pipeline: build the Koutis–Xu sparsifier H (Õ(1/ε²) rounds charged), then
broadcast its Õ(n/ε²) edges with the Theorem 1 broadcast (real simulation,
one message per sparsifier edge — this Õ(n/(λε²)) term dominates). Every
node then holds H and can answer ``cut_G(S) ≈ cut_H(S)`` for *any* S ⊆ V
locally — simultaneously for all cuts, which is what distinguishes
Theorem 7 from prior single-min-cut results.

Validation sweeps three cut families: uniformly random sides, single-node
(degree) cuts, and the minimum cut — the mix exercises both balanced and
skewed cuts, where sparsifier error behaves differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.broadcast import fast_broadcast
from repro.cuts.sparsifier import SparsifierResult, koutis_xu_sparsifier
from repro.graphs.graph import Graph
from repro.graphs.properties import cut_value
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = ["CutApproxResult", "approx_all_cuts", "evaluate_cut_quality"]


@dataclass
class CutApproxResult:
    """The broadcasted sparsifier plus the round ledger."""

    sparsifier: SparsifierResult
    simulated_rounds: dict[str, int] = field(default_factory=dict)
    charged_rounds: dict[str, int] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return sum(self.simulated_rounds.values()) + sum(self.charged_rounds.values())

    def estimate_cut(self, side: np.ndarray) -> float:
        """What every node can now compute locally: cut_H(S)."""
        return cut_value(self.sparsifier.sparsifier, side)


def approx_all_cuts(
    graph: Graph,
    eps: float,
    lam: int | None = None,
    C: float = 2.0,
    seed: int = 0,
    tau: int | None = None,
    backend: str = "simulator",
) -> CutApproxResult:
    """Theorem 7: sparsify, broadcast, estimate everything locally.

    backend: ``"simulator"`` (default) runs the per-node sparsifier loops
        and the CONGEST-simulated broadcast; ``"vectorized"`` computes the
        bit-identical sparsifier and round ledgers with the numpy engine
        (:mod:`repro.engine`), which is what lets E8 scale past the
        simulator's toy sizes.
    """
    from repro.engine import validate_backend

    validate_backend(backend)
    sp = koutis_xu_sparsifier(graph, eps, seed=seed, tau=tau, backend=backend)
    placement: dict[int, int] = {}
    for u in sp.sparsifier.edge_u.tolist():
        placement[u] = placement.get(u, 0) + 1
    bres = fast_broadcast(
        graph,
        placement,
        lam=lam,
        C=C,
        seed=seed,
        distributed_packing=False,
        backend=backend,
    )
    return CutApproxResult(
        sparsifier=sp,
        simulated_rounds={"broadcast_sparsifier": bres.rounds},
        charged_rounds={"koutis_xu": sp.charged_rounds},
    )


def evaluate_cut_quality(
    graph: Graph,
    sparsifier: Graph,
    num_random_cuts: int = 50,
    seed=None,
    include_min_cut: bool = True,
) -> dict[str, float]:
    """Max relative error of cut_H vs cut_G over a diverse cut family.

    Returns ``{"max_rel_error": ..., "mean_rel_error": ..., "cuts": ...}``;
    Theorem 7 promises max_rel_error ≤ ε for *all* cuts, so the sampled
    families give a certified lower bound on the true worst case.
    """
    if sparsifier.n != graph.n:
        raise ValidationError("sparsifier must share the node set")
    rng = ensure_rng(seed)
    sides: list[np.ndarray] = []
    for _ in range(num_random_cuts):
        side = rng.random(graph.n) < 0.5
        if side.any() and not side.all():
            sides.append(side)
    for v in range(min(graph.n, 25)):  # degree cuts
        side = np.zeros(graph.n, dtype=bool)
        side[v] = True
        sides.append(side)
    if include_min_cut:
        from repro.graphs.connectivity import min_cut

        side, _ = min_cut(graph)
        sides.append(side)

    errors = []
    for side in sides:
        g_val = cut_value(graph, side)
        h_val = cut_value(sparsifier, side)
        if g_val <= 0:
            continue
        errors.append(abs(h_val - g_val) / g_val)
    if not errors:
        raise ValidationError("no nontrivial cuts evaluated")
    return {
        "max_rel_error": float(max(errors)),
        "mean_rel_error": float(np.mean(errors)),
        "cuts": float(len(errors)),
    }
