"""Cut-approximation application (Section 4.3, Theorems 6–7).

* :mod:`~repro.cuts.sparsifier` — Koutis–Xu spanner-bundle sparsifier and a
  Spielman–Srivastava effective-resistance cross-check.
* :mod:`~repro.cuts.approx` — Theorem 7: broadcast the sparsifier, estimate
  every cut locally.
"""

from repro.cuts.sparsifier import (
    SparsifierResult,
    koutis_xu_sparsifier,
    effective_resistance_sparsifier,
    bundle_size,
)
from repro.cuts.approx import CutApproxResult, approx_all_cuts, evaluate_cut_quality

__all__ = [
    "SparsifierResult",
    "koutis_xu_sparsifier",
    "effective_resistance_sparsifier",
    "bundle_size",
    "CutApproxResult",
    "approx_all_cuts",
    "evaluate_cut_quality",
]
