"""Graph sparsifiers preserving all cuts (Theorem 6, Koutis–Xu [KX16]).

Koutis–Xu build a spectral sparsifier by **spanner bundles**: repeatedly
(a) peel off a bundle of τ edge-disjoint spanners — these certify enough
connectivity that every remaining edge has small effective resistance —
keep the bundle at current weights, then (b) keep each off-bundle edge with
probability 1/4 at 4× weight. After O(log n) levels only the bundles remain.
The result H satisfies ``(1−ε)·cut_H(S) ≤ cut_G(S) ≤ (1+ε)·cut_H(S)`` for
every S (Theorem 6 statement, adapted from [AG21]) with
``Õ(n/ε²)`` edges, in ``Õ(1/ε²)`` CONGEST rounds.

We implement the spanner-bundle scheme directly (τ controls accuracy), plus
a Spielman–Srivastava effective-resistance sampler as an independent
cross-check (scipy pseudo-inverse Laplacian — centralized, used only for
validation; DESIGN.md §2 documents this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.apsp.spanner import baswana_sen_spanner
from repro.graphs.graph import Graph
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "SparsifierResult",
    "koutis_xu_sparsifier",
    "effective_resistance_sparsifier",
    "bundle_size",
]


def bundle_size(n: int, eps: float, c: float = 0.25) -> int:
    """τ = O(log²n / ε²): number of spanners per bundle.

    ``c`` trades sparsifier size against accuracy; the default keeps the
    E8 experiment's sparsifiers comfortably inside the (1±ε) envelope while
    still shrinking the graph (τ spanners ≈ τ·k·n^{1+1/k} edges per level).
    """
    if not (0 < eps <= 1):
        raise ValidationError("need 0 < ε <= 1")
    ln = math.log(max(n, 3))
    return max(1, int(math.ceil(c * ln * ln / (eps * eps))))


@dataclass
class SparsifierResult:
    """A reweighted subgraph H approximating all cuts of G."""

    sparsifier: Graph
    eps: float
    levels: int
    charged_rounds: int
    bundle_sizes: list[int] = field(default_factory=list)

    @property
    def m(self) -> int:
        return self.sparsifier.m


def koutis_xu_sparsifier(
    graph: Graph,
    eps: float,
    seed=None,
    spanner_k: int | None = None,
    tau: int | None = None,
    max_levels: int | None = None,
    backend: str = "simulator",
) -> SparsifierResult:
    """Spanner-bundle cut sparsifier (the Theorem 6 object).

    Works on weighted or unweighted graphs (unweighted = all weights 1).
    The per-level round charge is ``τ · O(spanner_k²)`` (τ spanner
    constructions, [BS07] cost each), totaling the Õ(1/ε²) of Theorem 6.

    backend: ``"simulator"`` (default) builds each bundle spanner with the
        per-node [BS07] loops; ``"vectorized"`` uses the whole-array twin
        (:mod:`repro.engine.pipelines`). One RNG stream threads through the
        τ spanner builds and the level's sampling round identically on both
        backends, so the resulting sparsifier — edges, weights, levels,
        charged rounds — is bit-identical for equal seeds.
    """
    from repro.engine import validate_backend

    validate_backend(backend)
    rng = ensure_rng(seed)
    n = graph.n
    if spanner_k is None:
        spanner_k = max(2, int(math.ceil(math.log(max(n, 3)))))
    if tau is None:
        tau = bundle_size(n, eps)
    if max_levels is None:
        max_levels = max(1, int(math.ceil(math.log2(max(graph.m, 2)))))

    # Current residual graph, tracked as (edge endpoint arrays, weights).
    cur_u = graph.edge_u.copy()
    cur_v = graph.edge_v.copy()
    cur_w = (
        graph.weights.copy() if graph.weights is not None else np.ones(graph.m)
    )

    keep_u: list[np.ndarray] = []
    keep_v: list[np.ndarray] = []
    keep_w: list[np.ndarray] = []
    charged = 0
    bundles: list[int] = []
    levels = 0

    for _level in range(max_levels):
        m_cur = len(cur_u)
        if m_cur <= tau * n:  # residual small enough: keep everything
            break
        levels += 1
        g_cur = Graph(n, np.stack([cur_u, cur_v], axis=1), weights=cur_w)
        in_bundle = np.zeros(m_cur, dtype=bool)
        remaining = np.ones(m_cur, dtype=bool)
        bundle_count = 0
        for _j in range(tau):
            if not remaining.any():
                break
            sub, orig = g_cur.edge_subgraph_with_map(remaining)
            sp = baswana_sen_spanner(sub, spanner_k, seed=rng, backend=backend)
            charged += sp.charged_rounds
            chosen = orig[sp.edge_ids]
            in_bundle[chosen] = True
            remaining[chosen] = False
            bundle_count += 1
        bundles.append(bundle_count)

        keep_u.append(cur_u[in_bundle])
        keep_v.append(cur_v[in_bundle])
        keep_w.append(cur_w[in_bundle])

        off = ~in_bundle
        coins = rng.random(m_cur) < 0.25
        sampled = off & coins
        cur_u = cur_u[sampled]
        cur_v = cur_v[sampled]
        cur_w = cur_w[sampled] * 4.0
        charged += 1  # the sampling round

    keep_u.append(cur_u)
    keep_v.append(cur_v)
    keep_w.append(cur_w)

    all_u = np.concatenate(keep_u)
    all_v = np.concatenate(keep_v)
    all_w = np.concatenate(keep_w)
    # Merge parallel accumulations (same edge can only appear once since each
    # host edge survives on exactly one path through the levels, but be
    # defensive and sum duplicates).
    key = all_u * n + all_v
    order = np.argsort(key, kind="stable")
    key, all_u, all_v, all_w = key[order], all_u[order], all_v[order], all_w[order]
    uniq, first = np.unique(key, return_index=True)
    summed = np.add.reduceat(all_w, first)
    sparsifier = Graph(
        n, np.stack([all_u[first], all_v[first]], axis=1), weights=summed
    )
    return SparsifierResult(
        sparsifier=sparsifier,
        eps=eps,
        levels=levels,
        charged_rounds=charged,
        bundle_sizes=bundles,
    )


def effective_resistance_sparsifier(
    graph: Graph, eps: float, seed=None, oversample: float = 1.0
) -> SparsifierResult:
    """Spielman–Srivastava sampling by effective resistance (cross-check).

    Centralized (dense Laplacian pseudo-inverse): q = O(n log n/ε²) samples
    with probability ∝ w_e·R_eff(e), each kept edge reweighted by
    w_e/(q·p_e). Used by tests/benches to sanity-check the Koutis–Xu output
    on the same instances; not part of the distributed pipeline.
    """
    rng = ensure_rng(seed)
    n = graph.n
    if n > 2000:
        raise ValidationError("dense ER sampler is for validation-scale graphs")
    w = graph.weights if graph.weights is not None else np.ones(graph.m)
    L = np.zeros((n, n))
    L[graph.edge_u, graph.edge_v] -= w
    L[graph.edge_v, graph.edge_u] -= w
    np.fill_diagonal(L, -L.sum(axis=1))
    Lpinv = np.linalg.pinv(L)
    d = Lpinv[graph.edge_u, graph.edge_u] + Lpinv[graph.edge_v, graph.edge_v] \
        - 2 * Lpinv[graph.edge_u, graph.edge_v]
    reff = np.maximum(d, 1e-15)
    probs = w * reff
    probs = probs / probs.sum()
    q = max(1, int(oversample * 9 * n * math.log(max(n, 3)) / (eps * eps)))
    counts = rng.multinomial(q, probs)
    kept = counts > 0
    new_w = w[kept] * counts[kept] / (q * probs[kept])
    sparsifier = Graph(
        n,
        np.stack([graph.edge_u[kept], graph.edge_v[kept]], axis=1),
        weights=new_w,
    )
    return SparsifierResult(
        sparsifier=sparsifier, eps=eps, levels=1, charged_rounds=0
    )
