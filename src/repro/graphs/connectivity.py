"""Exact edge-connectivity computation (the paper's λ).

λ drives everything in the paper: the number of color classes in Theorem 2 is
``λ/(C log n)`` and the broadcast bound is ``Õ((n+k)/λ)``. The benchmark
harness therefore needs *certified* λ values for its workloads, not
estimates. We implement:

* :func:`local_edge_connectivity` — unit-capacity max-flow between two nodes
  (Edmonds–Karp: BFS augmenting paths, so each augmentation is a shortest
  path), with an optional ``cutoff`` for early termination;
* :func:`edge_connectivity` — global λ as ``min_v maxflow(s, v)`` from a
  minimum-degree node ``s``, with the running minimum used as the cutoff
  (the standard Even–Tarjan scheme);
* :func:`min_cut` — a concrete minimum cut ``(S, cut_edge_ids)``, the witness
  set the Theorem 3 / Theorem 8 lower-bound harnesses count bits across;
* :func:`stoer_wagner` — weighted global min cut, used by the cut-sparsifier
  validators on weighted graphs.

Cross-checks against :func:`networkx.edge_connectivity` live in the tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.graph import Graph
from repro.util.errors import ValidationError

__all__ = [
    "local_edge_connectivity",
    "edge_connectivity",
    "min_cut",
    "stoer_wagner",
    "greedy_dominating_set",
]


class _UnitFlowNetwork:
    """Residual network for unit-capacity undirected max-flow.

    Each undirected edge becomes two directed arcs with capacity 1 each
    (the correct reduction for *edge*-connectivity in undirected graphs).
    Arc ``2e`` runs u→v, arc ``2e+1`` runs v→u; ``flow`` is +1/-1/0 per arc
    pair encoded as a single int per undirected edge: residual capacity of
    u→v is ``1 - f`` and of v→u is ``1 + f`` with ``f ∈ {-1, 0, 1}``.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.f = np.zeros(graph.m, dtype=np.int8)

    def reset(self) -> None:
        self.f[:] = 0

    def residual(self, eid: int, from_u: bool) -> int:
        return 1 - self.f[eid] if from_u else 1 + self.f[eid]

    def push(self, eid: int, from_u: bool) -> None:
        self.f[eid] += 1 if from_u else -1

    def bfs_augment(self, s: int, t: int) -> bool:
        """Find one shortest augmenting path and push a unit of flow."""
        g = self.graph
        prev_edge = np.full(g.n, -1, dtype=np.int64)
        prev_node = np.full(g.n, -1, dtype=np.int64)
        prev_edge[s] = -2
        queue = deque([s])
        while queue:
            v = queue.popleft()
            if v == t:
                break
            nbrs = g.neighbors(v)
            eids = g.incident_edge_ids(v)
            for w, eid in zip(nbrs.tolist(), eids.tolist()):
                if prev_edge[w] != -1:
                    continue
                from_u = g.edge_u[eid] == v
                if self.residual(eid, from_u) > 0:
                    prev_edge[w] = eid
                    prev_node[w] = v
                    queue.append(w)
        if prev_edge[t] == -1:
            return False
        v = t
        while v != s:
            eid = int(prev_edge[v])
            u = int(prev_node[v])
            self.push(eid, from_u=(self.graph.edge_u[eid] == u))
            v = u
        return True

    def reachable_in_residual(self, s: int) -> np.ndarray:
        """Nodes reachable from ``s`` in the residual graph (min-cut side)."""
        g = self.graph
        seen = np.zeros(g.n, dtype=bool)
        seen[s] = True
        queue = deque([s])
        while queue:
            v = queue.popleft()
            nbrs = g.neighbors(v)
            eids = g.incident_edge_ids(v)
            for w, eid in zip(nbrs.tolist(), eids.tolist()):
                if seen[w]:
                    continue
                if self.residual(eid, from_u=(g.edge_u[eid] == v)) > 0:
                    seen[w] = True
                    queue.append(w)
        return seen


def _scipy_unit_maxflow(graph: Graph, s: int, t: int):
    """Unit-capacity max flow via scipy's Cython Dinic implementation.

    Returns ``(flow_value, flow_matrix)`` where ``flow_matrix`` is the
    directed sparse flow (for residual reachability).
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_flow

    row = np.concatenate([graph.edge_u, graph.edge_v])
    col = np.concatenate([graph.edge_v, graph.edge_u])
    cap = np.ones(2 * graph.m, dtype=np.int32)
    csgraph = csr_matrix((cap, (row, col)), shape=(graph.n, graph.n))
    result = maximum_flow(csgraph, s, t)
    return int(result.flow_value), result.flow


def local_edge_connectivity(
    graph: Graph,
    s: int,
    t: int,
    cutoff: int | None = None,
    method: str = "scipy",
) -> int:
    """Max number of edge-disjoint s–t paths (= s–t edge connectivity).

    ``method="scipy"`` (default) uses scipy's compiled Dinic max-flow;
    ``method="reference"`` runs the pure-Python Edmonds–Karp in this module
    (the tests cross-validate the two). ``cutoff`` (reference method only)
    stops early once the flow reaches that value.
    """
    if s == t:
        raise ValidationError("s and t must differ")
    if method == "scipy":
        value, _ = _scipy_unit_maxflow(graph, s, t)
        return value
    if method == "reference":
        net = _UnitFlowNetwork(graph)
        flow = 0
        limit = cutoff if cutoff is not None else graph.m + 1
        while flow < limit and net.bfs_augment(s, t):
            flow += 1
        return flow
    raise ValidationError(f"unknown method {method!r}")


def greedy_dominating_set(graph: Graph) -> list[int]:
    """Greedy dominating set (max-residual-coverage first).

    Matula's reduction computes λ with ``|D|`` max-flows instead of ``n``;
    for the d-regular workloads of the experiment suite ``|D| = O(n log d/d)``.
    """
    covered = np.zeros(graph.n, dtype=bool)
    dom: list[int] = []
    # Precompute coverage counts; greedy with lazy updates.
    order = np.argsort(-graph.degrees(), kind="stable")
    for v in order:
        v = int(v)
        if covered[v] and bool(covered[graph.neighbors(v)].all()):
            continue
        dom.append(v)
        covered[v] = True
        covered[graph.neighbors(v)] = True
        if covered.all():
            break
    return dom


def edge_connectivity(graph: Graph, method: str = "scipy") -> int:
    """Global edge connectivity λ (0 for disconnected graphs, n=1 → 0).

    Uses Matula's dominating-set reduction: for any dominating set ``D`` and
    any ``s ∈ D``, ``λ = min(δ, min_{v ∈ D\\{s}} maxflow(s, v))``. The key
    fact is that when λ < δ, both sides of a minimum cut contain more than δ
    nodes and hence (every node being dominated) both sides intersect D.
    """
    if graph.n <= 1:
        return 0
    degs = graph.degrees()
    if degs.min() == 0:
        return 0
    dom = greedy_dominating_set(graph)
    s = dom[0]
    best = int(degs.min())  # λ <= δ always
    for t in dom[1:]:
        if best == 0:
            break
        flow = local_edge_connectivity(graph, s, t, cutoff=best, method=method)
        best = min(best, flow)
    # A dominating set can be a single node (s adjacent to everyone); λ = δ
    # is then correct only if no non-degree cut is smaller, which requires
    # checking s against a second node. Handle |D| == 1 explicitly.
    if len(dom) == 1:
        for t in range(graph.n):
            if t != s:
                flow = local_edge_connectivity(graph, s, t, cutoff=best, method=method)
                best = min(best, flow)
                break
    return best


def _residual_reachable(graph: Graph, flow, s: int) -> np.ndarray:
    """Nodes reachable from ``s`` in the residual of a scipy flow matrix."""
    from scipy.sparse import csr_matrix

    # Residual capacity of arc (u, v) = cap(u, v) - flow(u, v); with unit
    # symmetric capacities, residual(u→v) = 1 - flow[u, v] (flow is
    # antisymmetric in scipy's output).
    flow = flow.tocsr()
    seen = np.zeros(graph.n, dtype=bool)
    seen[s] = True
    stack = [s]
    while stack:
        v = stack.pop()
        nbrs = graph.neighbors(v)
        if len(nbrs) == 0:
            continue
        fv = np.asarray(flow[v, nbrs].todense()).ravel()
        usable = nbrs[(1 - fv) > 0]
        for w in usable.tolist():
            if not seen[w]:
                seen[w] = True
                stack.append(w)
    return seen


def min_cut(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """A concrete minimum edge cut: ``(side_mask, cut_edge_ids)``.

    ``side_mask`` is the boolean indicator of the source-side set ``S`` and
    ``cut_edge_ids`` the ids of the ``λ`` edges crossing ``E(S, V\\S)``.
    This is the witness the Theorem 3 information-theoretic bound is charged
    against.
    """
    if graph.n <= 1:
        raise ValidationError("min cut undefined for single-node graphs")
    degs = graph.degrees()
    if degs.min() == 0:
        side = np.zeros(graph.n, dtype=bool)
        side[int(np.argmin(degs))] = True
        return side, np.array([], dtype=np.int64)

    lam = edge_connectivity(graph)
    delta_node = int(np.argmin(degs))
    if lam == int(degs[delta_node]):
        # A minimum-degree node's star is a minimum cut.
        side = np.zeros(graph.n, dtype=bool)
        side[delta_node] = True
        cut_ids = graph.incident_edge_ids(delta_node).copy()
        return side, np.asarray(cut_ids, dtype=np.int64)

    # Otherwise find a witness pair realizing λ among dominating-set flows.
    dom = greedy_dominating_set(graph)
    s = dom[0]
    for t in dom[1:]:
        value, flow = _scipy_unit_maxflow(graph, s, t)
        if value == lam:
            side = _residual_reachable(graph, flow, s)
            crossing = side[graph.edge_u] != side[graph.edge_v]
            cut_ids = np.nonzero(crossing)[0]
            if len(cut_ids) != lam:
                raise ValidationError(
                    "max-flow/min-cut mismatch", flow=lam, cut=len(cut_ids)
                )
            return side, cut_ids
    raise ValidationError("no witness pair found for the minimum cut")


def stoer_wagner(graph: Graph) -> tuple[float, np.ndarray]:
    """Weighted global min cut (Stoer–Wagner), returns ``(value, side_mask)``.

    O(n^3) with dense numpy adjacency — intended for the validation of cut
    sparsifiers on small/medium graphs, not as a production min-cut engine
    (λ computations for the broadcast algorithm use :func:`edge_connectivity`).
    """
    n = graph.n
    if n < 2:
        raise ValidationError("min cut undefined for single-node graphs")
    w = np.zeros((n, n), dtype=np.float64)
    wts = graph.weights if graph.weights is not None else np.ones(graph.m)
    w[graph.edge_u, graph.edge_v] = wts
    w[graph.edge_v, graph.edge_u] = wts

    groups: list[list[int]] = [[v] for v in range(n)]
    active = list(range(n))
    best_val = np.inf
    best_side: list[int] = []

    while len(active) > 1:
        # Maximum adjacency (minimum cut phase) ordering.
        a = active[0]
        weights_to_a = w[a, active].copy()
        in_a = {a}
        order = [a]
        for _ in range(len(active) - 1):
            idx = int(np.argmax(weights_to_a))
            nxt = active[idx]
            while nxt in in_a:
                weights_to_a[idx] = -np.inf
                idx = int(np.argmax(weights_to_a))
                nxt = active[idx]
            in_a.add(nxt)
            order.append(nxt)
            weights_to_a[idx] = -np.inf
            weights_to_a += w[nxt, active]
        s_node, t_node = order[-2], order[-1]
        cut_of_phase = float(w[t_node, [v for v in active if v != t_node]].sum())
        if cut_of_phase < best_val:
            best_val = cut_of_phase
            best_side = list(groups[t_node])
        # Merge t into s.
        w[s_node, :] += w[t_node, :]
        w[:, s_node] += w[:, t_node]
        w[s_node, s_node] = 0.0
        groups[s_node].extend(groups[t_node])
        active.remove(t_node)

    side = np.zeros(n, dtype=bool)
    side[best_side] = True
    return best_val, side
