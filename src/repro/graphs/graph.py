"""Immutable simple-graph container used by every subsystem.

``Graph`` stores an undirected simple graph on nodes ``0..n-1`` in CSR form
(numpy arrays), which makes BFS layers, degree queries, and edge-mask
subgraph extraction vectorizable — the hot paths identified by profiling the
CONGEST simulator (see DESIGN.md §6 and the hpc-parallel guide's
"measure, then optimize the bottleneck" workflow).

Design points:

* **Edges are first-class**: each undirected edge has an integer id
  ``0..m-1``; adjacency entries carry the edge id so protocols can map a
  neighbor slot back to the edge (needed for the Theorem 2 edge coloring,
  where the *edge*, not the endpoint, owns the random color).
* **Immutability**: algorithms never mutate a graph; they derive subgraphs
  via :meth:`Graph.edge_subgraph` (same node set, subset of edges), which is
  exactly the object Theorem 2's color classes are.
* **Weights** are optional (`None` for unweighted); weighted graphs are used
  by the spanner/sparsifier applications.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.util.errors import ValidationError

__all__ = ["Graph"]

# Masked-CSR cache bound: oldest entries are evicted FIFO past this many
# masks, which comfortably covers one decomposition's λ' classes.
_MASKED_CSR_CACHE_LIMIT = 64


class Graph:
    """An undirected simple graph on nodes ``0..n-1`` with optional weights.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs, ``0 <= u, v < n``, ``u != v``. Parallel
        edges and self-loops are rejected (the paper's results are for simple
        graphs — footnote 1 of Lemma 5 breaks for multigraphs).
    weights:
        Optional per-edge positive weights, aligned with ``edges``.
    """

    __slots__ = (
        "n",
        "m",
        "edge_u",
        "edge_v",
        "weights",
        "_indptr",
        "_indices",
        "_adj_edge_id",
        "_arc_keys",
        "_arc_sources",
        "_masked_csr_cache",
        "masked_csr_hits",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        weights: Sequence[float] | np.ndarray | None = None,
    ):
        if n < 1:
            raise ValidationError(f"graph needs at least one node, got n={n}")
        if isinstance(edges, np.ndarray):
            edge_arr = edges.astype(np.int64, copy=False)
        else:
            edge_arr = np.asarray(list(edges), dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise ValidationError("edges must be (u, v) pairs")
        u = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
        v = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
        if edge_arr.size and (u.min() < 0 or v.max() >= n):
            raise ValidationError("edge endpoint out of range")
        if np.any(u == v):
            raise ValidationError("self-loops are not allowed in a simple graph")
        key = u * n + v
        key_sorted = np.sort(key)
        if np.any(key_sorted[1:] == key_sorted[:-1]):
            raise ValidationError("parallel edges are not allowed in a simple graph")

        self.n = int(n)
        self.m = int(len(u))
        self.edge_u = u
        self.edge_v = v

        if weights is not None:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (self.m,):
                raise ValidationError(
                    f"weights shape {w.shape} does not match m={self.m}"
                )
            if np.any(w <= 0):
                raise ValidationError("edge weights must be positive")
            self.weights = w
        else:
            self.weights = None

        # Build CSR adjacency, fully vectorized: one lexsort of the 2m
        # directed arcs yields per-node blocks already sorted by neighbor id
        # (deterministic port numbering for the CONGEST layer).
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        eids = np.concatenate([np.arange(self.m), np.arange(self.m)])
        # Arc keys row·n + col are unique (simple graph), so one flat argsort
        # equals the (rows, cols) lexsort at roughly half the cost.
        order = np.argsort(rows * np.int64(n) + cols)
        self._indices = cols[order]
        self._adj_edge_id = eids[order]
        deg = np.bincount(rows, minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        self._indptr = indptr
        self._arc_keys = None  # lazy: sorted (u·n + v) keys of directed arcs
        self._arc_sources = None  # lazy: source node of each directed arc
        self._masked_csr_cache: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        self.masked_csr_hits = 0  # cache-hit counter (observable by tests)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def degree(self, v: int) -> int:
        """Number of edges incident to ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Degree of every node, as an ``(n,)`` array."""
        return np.diff(self._indptr)

    def min_degree(self) -> int:
        """The paper's δ. Zero-degree nodes are legal in subgraphs."""
        return int(self.degrees().min()) if self.n else 0

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of ``v`` (a view — do not mutate)."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def incident_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids aligned with :meth:`neighbors` (a view)."""
        return self._adj_edge_id[self._indptr[v] : self._indptr[v + 1]]

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """The ``(u, v)`` endpoints of edge ``eid`` with ``u < v``."""
        return int(self.edge_u[eid]), int(self.edge_v[eid])

    def edge_weight(self, eid: int) -> float:
        return 1.0 if self.weights is None else float(self.weights[eid])

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        return i < len(nbrs) and nbrs[i] == v

    def edge_id(self, u: int, v: int) -> int:
        """Edge id of ``{u, v}``; raises ``KeyError`` if absent."""
        nbrs = self.neighbors(u)
        i = int(np.searchsorted(nbrs, v))
        if i >= len(nbrs) or nbrs[i] != v:
            raise KeyError(f"no edge {{{u}, {v}}}")
        return int(self.incident_edge_ids(u)[i])

    def arc_sources(self) -> np.ndarray:
        """Source node of each directed arc, aligned with the CSR arrays.

        ``arc_sources()[i]`` is the node whose adjacency block position
        ``i`` falls in — i.e. ``repeat(arange(n), degrees)`` — memoized
        because every whole-array sweep over the adjacency needs it.
        """
        if self._arc_sources is None:
            self._arc_sources = np.repeat(
                np.arange(self.n), np.diff(self._indptr)
            )
        return self._arc_sources

    def edge_ids_for_pairs(self, us, vs) -> np.ndarray:
        """Vectorized :meth:`edge_id` over aligned endpoint arrays.

        The CSR layout is one lexsort of the 2m directed arcs, so the keys
        ``u·n + v`` are already sorted and every lookup is one searchsorted
        over them. Raises ``KeyError`` if any pair is not an edge.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.m == 0:
            raise KeyError(f"no edge {{{int(us[0])}, {int(vs[0])}}}")
        if us.min() < 0 or vs.min() < 0 or us.max() >= self.n or vs.max() >= self.n:
            raise KeyError("edge endpoint out of range")
        if self._arc_keys is None:
            self._arc_keys = self.arc_sources() * self.n + self._indices
        keys = us * self.n + vs
        pos = np.searchsorted(self._arc_keys, keys)
        pos_clipped = np.minimum(pos, self._arc_keys.size - 1)
        missing = (pos >= self._arc_keys.size) | (self._arc_keys[pos_clipped] != keys)
        if np.any(missing):
            i = int(np.nonzero(missing)[0][0])
            raise KeyError(f"no edge {{{int(us[i])}, {int(vs[i])}}}")
        return self._adj_edge_id[pos]

    def masked_csr(
        self, edge_mask: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``(indptr, indices)`` of the subgraph keeping only masked edges.

        Neighbor order inside each block is preserved (sorted by id), so the
        smallest-port tie-break of the CONGEST layer survives the filtering.
        Results are **memoized per (graph, mask) pair**: protocols that
        repeatedly traverse the same decomposition (parallel BFS channels,
        packing validation, both-backend equivalence sweeps) get the arrays
        back without rebuilding them. Keys are bit-packed (m/8 bytes) and
        the cache holds the most recent ``_MASKED_CSR_CACHE_LIMIT`` masks —
        a decomposition has at most λ' ≲ a few dozen classes, so the working
        set always fits while one-shot masks (packing retries, λ-search
        guesses) cannot pin memory forever. ``masked_csr_hits`` counts
        cache hits. ``edge_mask=None`` returns the full adjacency (never
        copied).
        """
        if edge_mask is None:
            return self._indptr, self._indices
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValidationError(
                f"edge mask shape {mask.shape} does not match m={self.m}"
            )
        key = np.packbits(mask).tobytes()
        hit = self._masked_csr_cache.get(key)
        if hit is not None:
            self.masked_csr_hits += 1
            obs.count("graph.masked_csr_hits")
            return hit
        return self._build_masked_csr(key, mask[self._adj_edge_id])

    def _build_masked_csr(
        self, key: bytes, allowed: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Compress the adjacency to ``allowed`` arcs and cache under ``key``."""
        obs.count("graph.masked_csr_misses")
        indices = self._indices[allowed]
        # Per-row survivor counts as a segment sum of the allowed flags over
        # each adjacency block — the arcs of node v are exactly
        # [indptr[v], indptr[v+1]), so this equals
        # bincount(arc_sources()[allowed]) without a second 2m-element
        # compress. reduceat quirk: an empty segment yields a[start], not 0
        # (and a start index of len(a) is out of bounds), so clip the
        # starts and zero the empty rows explicitly.
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        if allowed.size:
            starts = np.minimum(self._indptr[:-1], allowed.size - 1)
            counts = np.add.reduceat(allowed, starts, dtype=np.int64)
            counts[np.diff(self._indptr) == 0] = 0
            np.cumsum(counts, out=indptr[1:])
        while len(self._masked_csr_cache) >= _MASKED_CSR_CACHE_LIMIT:
            self._masked_csr_cache.pop(next(iter(self._masked_csr_cache)))
        # The same arrays are handed to every caller: freeze them so an
        # in-place edit cannot silently corrupt the cache.
        indptr.setflags(write=False)
        indices.setflags(write=False)
        self._masked_csr_cache[key] = (indptr, indices)
        return indptr, indices

    def disjoint_masked_csrs(
        self, edge_masks: list[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """:meth:`masked_csr` for pairwise-disjoint masks, one arc pass total.

        Building C channel CSRs one at a time costs C full gathers of the
        2m-long ``mask[arc_edge_id]`` array; for the disjoint masks of a
        decomposition one shared label gather serves every build. Cache
        keys, cached arrays, and hit accounting are exactly those of
        per-mask :meth:`masked_csr` calls — only the construction of cache
        *misses* is fused. Raises if the masks overlap (the label scatter
        cannot represent an overlap, so the Theorem 2 invariant is checked
        rather than assumed).
        """
        masks: list[np.ndarray] = []
        keys: list[bytes] = []
        for edge_mask in edge_masks:
            mask = np.asarray(edge_mask, dtype=bool)
            if mask.shape != (self.m,):
                raise ValidationError(
                    f"edge mask shape {mask.shape} does not match m={self.m}"
                )
            masks.append(mask)
            keys.append(np.packbits(mask).tobytes())
        out: list[tuple[np.ndarray, np.ndarray] | None] = [None] * len(masks)
        missing: list[int] = []
        for i, key in enumerate(keys):
            hit = self._masked_csr_cache.get(key)
            if hit is not None:
                self.masked_csr_hits += 1
                obs.count("graph.masked_csr_hits")
                out[i] = hit
            else:
                missing.append(i)
        if len(missing) == 1:
            i = missing[0]
            out[i] = self._build_masked_csr(keys[i], masks[i][self._adj_edge_id])
        elif missing:
            label = np.full(self.m, -1, dtype=np.int32)
            total = 0
            for j, i in enumerate(missing):
                label[masks[i]] = j
                total += int(masks[i].sum())
            if int((label >= 0).sum()) != total:
                raise ValidationError("edge masks must be pairwise disjoint")
            arc_label = label[self._adj_edge_id]
            for j, i in enumerate(missing):
                out[i] = self._build_masked_csr(keys[i], arc_label == j)
        return out  # type: ignore[return-value]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for eid in range(self.m):
            yield int(self.edge_u[eid]), int(self.edge_v[eid])

    def total_weight(self) -> float:
        if self.weights is None:
            return float(self.m)
        return float(self.weights.sum())

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #

    def edge_subgraph(self, edge_mask: np.ndarray) -> "Graph":
        """Spanning-node subgraph keeping only edges where ``edge_mask`` is True.

        This is the object Theorem 2 manipulates: same node set ``V``, edge
        set ``E_i ⊆ E``. Edge ids are *renumbered* in the subgraph; use
        :meth:`edge_subgraph_with_map` when the original ids are needed.
        """
        sub, _ = self.edge_subgraph_with_map(edge_mask)
        return sub

    def edge_subgraph_with_map(
        self, edge_mask: np.ndarray
    ) -> tuple["Graph", np.ndarray]:
        """Like :meth:`edge_subgraph`, also returning original edge ids.

        Returns ``(subgraph, orig_ids)`` where ``orig_ids[i]`` is the id in
        ``self`` of the subgraph's edge ``i``.
        """
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValidationError(
                f"edge mask shape {mask.shape} does not match m={self.m}"
            )
        ids = np.nonzero(mask)[0]
        pairs = np.stack([self.edge_u[ids], self.edge_v[ids]], axis=1)
        w = None if self.weights is None else self.weights[ids]
        sub = Graph(self.n, pairs, weights=w)
        return sub, ids

    def reweighted(self, weights: Sequence[float] | np.ndarray) -> "Graph":
        """Copy of this graph with new per-edge weights."""
        pairs = np.stack([self.edge_u, self.edge_v], axis=1)
        return Graph(self.n, pairs, weights=np.asarray(weights, dtype=np.float64))

    def unweighted(self) -> "Graph":
        """Copy of this graph with weights dropped."""
        pairs = np.stack([self.edge_u, self.edge_v], axis=1)
        return Graph(self.n, pairs)

    # ------------------------------------------------------------------ #
    # interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Convert to :class:`networkx.Graph` (weights as ``weight`` attr)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        if self.weights is None:
            g.add_edges_from(zip(self.edge_u.tolist(), self.edge_v.tolist()))
        else:
            g.add_weighted_edges_from(
                zip(self.edge_u.tolist(), self.edge_v.tolist(), self.weights.tolist())
            )
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :class:`networkx.Graph` with integer nodes 0..n-1.

        Nodes are relabelled to ``0..n-1`` in sorted order if necessary;
        ``weight`` attributes (when present on every edge) become weights.
        """
        nodes = sorted(g.nodes())
        relabel = {u: i for i, u in enumerate(nodes)}
        edges = []
        weights = []
        weighted = all("weight" in d for _, _, d in g.edges(data=True)) and g.number_of_edges() > 0
        for u, v, data in g.edges(data=True):
            edges.append((relabel[u], relabel[v]))
            if weighted:
                weights.append(float(data["weight"]))
        return cls(len(nodes), edges, weights=weights if weighted else None)

    def to_scipy_csr(self):
        """Symmetric scipy CSR adjacency (weights, or 1s if unweighted)."""
        from scipy.sparse import csr_matrix

        w = self.weights if self.weights is not None else np.ones(self.m)
        row = np.concatenate([self.edge_u, self.edge_v])
        col = np.concatenate([self.edge_v, self.edge_u])
        dat = np.concatenate([w, w])
        return csr_matrix((dat, (row, col)), shape=(self.n, self.n))

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:
        kind = "weighted" if self.is_weighted else "unweighted"
        return f"Graph(n={self.n}, m={self.m}, {kind})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n != other.n or self.m != other.m:
            return False
        if not (
            np.array_equal(self.edge_u, other.edge_u)
            and np.array_equal(self.edge_v, other.edge_v)
        ):
            # Edge order may differ; compare canonical sorted edge sets.
            a = np.lexsort((self.edge_v, self.edge_u))
            b = np.lexsort((other.edge_v, other.edge_u))
            if not (
                np.array_equal(self.edge_u[a], other.edge_u[b])
                and np.array_equal(self.edge_v[a], other.edge_v[b])
            ):
                return False
        if (self.weights is None) != (other.weights is None):
            return False
        return True

    def __hash__(self):
        return hash((self.n, self.m))
