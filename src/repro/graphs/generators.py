"""Workload graph families for the experiments.

The paper's theorems are parameterized by ``(n, δ, λ, D)``; the experiment
suite (DESIGN.md §5) sweeps these independently, which requires families
where each parameter is controlled by construction:

* :func:`random_regular` — the main high-connectivity workload: a random
  d-regular graph has λ = δ = d w.h.p. and diameter O(log n / log d).
* :func:`gnp_random` — Erdős–Rényi; above the connectivity threshold,
  λ ≈ δ ≈ np.
* :func:`hypercube` — λ = δ = dim, D = dim: deterministic and exactly
  analyzable.
* :func:`torus_grid` — λ = δ = 4 with D = Θ(√n): a low-connectivity,
  high-diameter stressor.
* :func:`thick_cycle` — a ring of groups with adjacent groups fully joined:
  λ = 2g with D = Θ(n/g²)·g; lets λ grow while the diameter stays large,
  the regime where the paper's algorithm wins big over the textbook bound.
* :func:`barbell` / :func:`path_of_cliques` — λ = 1 (resp. = bridge width)
  controls, where the paper *predicts no speedup*: the Ω(k/λ) bound bites.
* :func:`ghaffari_kuhn_family` — the Theorem 11/13 lower-bound family
  (λ near-disjoint s–t paths plus O(log n) shortcuts), see
  :mod:`repro.lower_bounds.gk13` for the measurement harness.

All generators take explicit seeds and return :class:`repro.graphs.Graph`.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "hypercube",
    "torus_grid",
    "random_regular",
    "gnp_random",
    "connected_gnp",
    "thick_cycle",
    "barbell",
    "path_of_cliques",
    "ghaffari_kuhn_family",
    "random_weights",
]


def complete_graph(n: int) -> Graph:
    """K_n: λ = δ = n-1, D = 1."""
    return Graph(n, list(combinations(range(n), 2)))


def cycle_graph(n: int) -> Graph:
    """C_n: λ = δ = 2, D = ⌊n/2⌋."""
    if n < 3:
        raise ValidationError("cycle needs n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """P_n: λ = 1, D = n-1 — the worst case the paper's intro motivates."""
    if n < 2:
        raise ValidationError("path needs n >= 2")
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def star_graph(n: int) -> Graph:
    """K_{1,n-1}: λ = δ = 1, D = 2."""
    if n < 2:
        raise ValidationError("star needs n >= 2")
    return Graph(n, [(0, i) for i in range(1, n)])


def hypercube(dim: int) -> Graph:
    """The dim-dimensional hypercube: n = 2^dim, λ = δ = dim, D = dim."""
    if dim < 1:
        raise ValidationError("hypercube needs dim >= 1")
    n = 1 << dim
    edges = []
    for v in range(n):
        for b in range(dim):
            w = v ^ (1 << b)
            if v < w:
                edges.append((v, w))
    return Graph(n, edges)


def torus_grid(rows: int, cols: int) -> Graph:
    """rows×cols torus: λ = δ = 4 (for rows, cols >= 3), D = Θ(rows+cols)."""
    if rows < 3 or cols < 3:
        raise ValidationError("torus needs rows, cols >= 3")
    n = rows * cols
    edges = set()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            for w in (right, down):
                if v != w:
                    edges.add((min(v, w), max(v, w)))
    return Graph(n, sorted(edges))


def random_regular(n: int, d: int, seed=None, max_tries: int = 200) -> Graph:
    """Random d-regular simple graph (Steger–Wormald incremental pairing).

    Stubs are matched one pair at a time, always choosing among pairs that
    keep the graph simple; a deadlocked attempt (only forbidden pairs remain)
    restarts. This succeeds in O(1) expected restarts for d = o(√n), unlike
    naive configuration-model rejection whose success probability decays as
    exp(-Θ(d²)). A random d-regular graph is d-connected w.h.p. [Bollobás];
    the tests verify λ = d exactly.
    """
    if n * d % 2 != 0:
        raise ValidationError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ValidationError("need d < n")
    if d < 1:
        raise ValidationError("need d >= 1")
    rng = ensure_rng(seed)
    for _ in range(max_tries):
        stubs = np.repeat(np.arange(n, dtype=np.int64), d)
        rng.shuffle(stubs)
        stubs = stubs.tolist()
        seen: set[tuple[int, int]] = set()
        edges: list[tuple[int, int]] = []
        dead = False
        while stubs:
            # Try to pop a compatible pair; reshuffle-and-retry a few times
            # before declaring deadlock.
            placed = False
            for _attempt in range(30):
                if len(stubs) < 2:
                    dead = True
                    break
                i = int(rng.integers(len(stubs)))
                j = int(rng.integers(len(stubs) - 1))
                if j >= i:
                    j += 1
                a, b = stubs[i], stubs[j]
                key = (min(a, b), max(a, b))
                if a != b and key not in seen:
                    seen.add(key)
                    edges.append(key)
                    for idx in sorted((i, j), reverse=True):
                        stubs[idx] = stubs[-1]
                        stubs.pop()
                    placed = True
                    break
            if dead or not placed:
                dead = True
                break
        if dead:
            continue
        g = Graph(n, edges)
        if d >= 2 and not is_connected(g):
            continue
        return g
    raise ValidationError(
        f"failed to generate a simple {d}-regular graph on {n} nodes "
        f"after {max_tries} attempts"
    )


def gnp_random(n: int, p: float, seed=None) -> Graph:
    """Erdős–Rényi G(n, p) via geometric edge skipping (O(m) expected)."""
    if not (0.0 <= p <= 1.0):
        raise ValidationError("p must lie in [0, 1]")
    rng = ensure_rng(seed)
    edges = []
    if p >= 1.0:
        return complete_graph(n)
    if p > 0.0:
        total = n * (n - 1) // 2
        logq = math.log1p(-p)
        idx = -1
        while True:
            r = rng.random()
            skip = int(math.floor(math.log(max(r, 1e-300)) / logq))
            idx += skip + 1
            if idx >= total:
                break
            # Unrank the idx-th pair (u < v) in lexicographic order.
            u = int((2 * n - 1 - math.sqrt((2 * n - 1) ** 2 - 8 * idx)) // 2)
            base = u * n - u * (u + 1) // 2
            v = int(u + 1 + (idx - base))
            edges.append((u, v))
    return Graph(n, edges)


def connected_gnp(n: int, p: float, seed=None, max_tries: int = 100) -> Graph:
    """G(n, p) conditioned on connectivity (rejection sampling)."""
    rng = ensure_rng(seed)
    for _ in range(max_tries):
        g = gnp_random(n, p, rng)
        if is_connected(g):
            return g
    raise ValidationError(
        f"no connected G({n}, {p}) sample in {max_tries} tries; increase p"
    )


def thick_cycle(groups: int, group_size: int) -> Graph:
    """A cycle of ``groups`` node-groups, adjacent groups completely joined.

    Properties: n = groups·group_size, δ = 2·group_size (inner-group edges
    are absent), λ = 2·group_size (cutting the ring needs two group-group
    bundles), D ≈ groups/2. This family decouples λ from the diameter: λ
    grows with ``group_size`` while D stays Θ(groups) — precisely the regime
    where Theorem 1's Õ((n+k)/λ) beats the textbook O(D+k) for large k.
    """
    if groups < 3:
        raise ValidationError("thick cycle needs >= 3 groups")
    if group_size < 1:
        raise ValidationError("group_size must be >= 1")
    n = groups * group_size
    # One vectorized sweep builds all groups·size² inter-group pairs; the
    # canonical (min, max) + lexsort reproduces the edge order (and hence the
    # edge ids) of the original sorted(set(...)) Python loop exactly.
    gidx = np.arange(groups, dtype=np.int64)
    a, b = np.meshgrid(
        np.arange(group_size, dtype=np.int64),
        np.arange(group_size, dtype=np.int64),
        indexing="ij",
    )
    raw_u = (gidx[:, None, None] * group_size + a[None]).ravel()
    raw_v = (((gidx + 1) % groups)[:, None, None] * group_size + b[None]).ravel()
    u = np.minimum(raw_u, raw_v)
    v = np.maximum(raw_u, raw_v)
    order = np.lexsort((v, u))
    return Graph(n, np.stack([u[order], v[order]], axis=1))


def barbell(clique_size: int, bridge_len: int = 1) -> Graph:
    """Two cliques joined by a path: λ = 1, the paper's hard control case."""
    if clique_size < 2:
        raise ValidationError("cliques need >= 2 nodes")
    if bridge_len < 1:
        raise ValidationError("bridge needs >= 1 edge")
    n = 2 * clique_size + (bridge_len - 1)
    edges = list(combinations(range(clique_size), 2))
    offset = clique_size + (bridge_len - 1)
    edges += [(offset + a, offset + b) for a, b in combinations(range(clique_size), 2)]
    chain = [clique_size - 1] + list(range(clique_size, offset)) + [offset]
    edges += [(min(a, b), max(a, b)) for a, b in zip(chain, chain[1:])]
    return Graph(n, sorted(set(edges)))


def path_of_cliques(num_cliques: int, clique_size: int, bridge_width: int) -> Graph:
    """Cliques in a row, consecutive ones joined by ``bridge_width`` edges.

    λ = bridge_width by construction (any inter-clique bundle is a cut),
    δ = clique_size - 1; D = Θ(num_cliques). Sweeping ``bridge_width``
    sweeps λ with everything else pinned.
    """
    if bridge_width > clique_size:
        raise ValidationError("bridge_width cannot exceed clique_size")
    if num_cliques < 2:
        raise ValidationError("need >= 2 cliques")
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        edges += [
            (base + a, base + b) for a, b in combinations(range(clique_size), 2)
        ]
        if c + 1 < num_cliques:
            nxt = (c + 1) * clique_size
            edges += [(base + i, nxt + i) for i in range(bridge_width)]
    return Graph(num_cliques * clique_size, edges)


def ghaffari_kuhn_family(length: int, lam: int) -> Graph:
    """The Theorem 11/13 tree-packing lower-bound family (GK13-style).

    Construction (see DESIGN.md §2 for the substitution note): a **thick
    path** of ``length`` groups with ``lam`` nodes each, consecutive groups
    completely bipartitely joined, plus *doubling shortcut* edges between
    group representatives: ``(rep(i), rep(i + 2^j))`` for every power of two.

    Resulting parameters, all verified in the tests:

    * n = length·lam; minimum degree δ = lam (the end groups).
    * Edge connectivity λ = lam: isolating one end-group node cuts ``lam``
      edges, while every "vertical" cut between positions i, i+1 is crossed
      by lam² bipartite edges plus shortcuts.
    * Diameter O(log length) thanks to the shortcut hierarchy.
    * Every vertical cut is crossed by only O(log length) shortcut edges, so
      in any spanning tree packing all but O(log n) trees must traverse the
      thick path itself, forcing diameter Ω(length) = Ω(n/λ) — the
      Theorem 13 phenomenon, measured by experiment E10.

    Node ids: position ``i`` group occupies ``i*lam .. (i+1)*lam - 1``; the
    representative of position i is node ``i*lam``.
    """
    if lam < 2 or length < 3:
        raise ValidationError("need lam >= 2 and length >= 3")

    def member(i: int, a: int) -> int:
        return i * lam + a

    edges: set[tuple[int, int]] = set()
    for i in range(length - 1):
        for a in range(lam):
            for b in range(lam):
                u, v = member(i, a), member(i + 1, b)
                edges.add((min(u, v), max(u, v)))
    jump = 2
    while jump < length:
        for i in range(0, length - jump, jump):
            u, v = member(i, 0), member(i + jump, 0)
            edges.add((min(u, v), max(u, v)))
        jump *= 2
    return Graph(length * lam, sorted(edges))


def random_weights(
    graph: Graph, low: float = 1.0, high: float = 100.0, seed=None
) -> Graph:
    """Attach i.i.d. uniform integer weights in [low, high] to a graph."""
    rng = ensure_rng(seed)
    w = rng.integers(int(low), int(high) + 1, size=graph.m).astype(np.float64)
    return graph.reweighted(w)
