"""Graph substrate: container, generators, connectivity, and properties.

This package is the foundation every other subsystem builds on:

* :class:`~repro.graphs.graph.Graph` — immutable CSR simple graph with
  first-class edge ids (the Theorem 2 coloring colors *edges*).
* :mod:`~repro.graphs.generators` — the workload families of the experiment
  suite, each with (n, δ, λ, D) controlled by construction.
* :mod:`~repro.graphs.connectivity` — exact λ via unit-capacity max-flow,
  concrete minimum cuts (lower-bound witnesses), Stoer–Wagner.
* :mod:`~repro.graphs.traversal` — centralized BFS kernels (ground truth for
  the distributed protocols).
* :mod:`~repro.graphs.properties` — diameter, Observation 1, conductance.
"""

from repro.graphs.graph import Graph
from repro.graphs.traversal import (
    bfs_distances,
    bfs_tree,
    all_pairs_distances,
    eccentricity,
    connected_components,
    is_connected,
)
from repro.graphs.connectivity import (
    edge_connectivity,
    local_edge_connectivity,
    min_cut,
    stoer_wagner,
)
from repro.graphs.properties import (
    diameter,
    approx_diameter,
    observation1_bound,
    check_observation1,
    conductance_upper_bound,
    cut_value,
    volume,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    hypercube,
    torus_grid,
    random_regular,
    gnp_random,
    connected_gnp,
    thick_cycle,
    barbell,
    path_of_cliques,
    ghaffari_kuhn_family,
    random_weights,
)

__all__ = [
    "Graph",
    "bfs_distances",
    "bfs_tree",
    "all_pairs_distances",
    "eccentricity",
    "connected_components",
    "is_connected",
    "edge_connectivity",
    "local_edge_connectivity",
    "min_cut",
    "stoer_wagner",
    "diameter",
    "approx_diameter",
    "observation1_bound",
    "check_observation1",
    "conductance_upper_bound",
    "cut_value",
    "volume",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "hypercube",
    "torus_grid",
    "random_regular",
    "gnp_random",
    "connected_gnp",
    "thick_cycle",
    "barbell",
    "path_of_cliques",
    "ghaffari_kuhn_family",
    "random_weights",
]
