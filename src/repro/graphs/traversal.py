"""Centralized BFS/traversal kernels shared by validators and applications.

These are *centralized* (single-process) routines used to (a) validate the
outputs of distributed protocols against ground truth and (b) implement the
"local computation" steps the paper's applications perform after a broadcast
(e.g. every node computing APSP on a received spanner). The distributed BFS
of Lemma 2 lives in :mod:`repro.primitives.bfs`.

BFS is the hottest kernel in the library (diameter checks run it from every
node), so :func:`bfs_distances` is a frontier-vectorized implementation over
the CSR arrays rather than a per-node Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "all_pairs_distances",
    "eccentricity",
    "connected_components",
    "is_connected",
]

UNREACHED = -1


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source``; ``-1`` marks unreachable nodes."""
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    indptr, indices = graph._indptr, graph._indices
    d = 0
    while frontier.size:
        # Gather all frontier adjacency blocks in one vectorized sweep:
        # positions = repeat(starts, counts) + (0,1,2,... within each block).
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        base = np.repeat(starts, counts)
        block_off = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        out = indices[base + block_off]
        fresh = out[dist[out] == UNREACHED]
        if fresh.size == 0:
            break
        d += 1
        # Dedup by sort-and-diff: an O(n) full-array rescan per layer would
        # dominate on deep graphs (depth · n at n = 10⁶).
        fresh = np.sort(fresh)
        keep = np.empty(fresh.size, dtype=bool)
        keep[0] = True
        np.not_equal(fresh[1:], fresh[:-1], out=keep[1:])
        frontier = fresh[keep]
        dist[frontier] = d
    return dist


def bfs_tree(graph: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """BFS parent pointers and distances from ``source``.

    Returns ``(parent, dist)``; ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable ``v``. Parents are chosen as the
    smallest-id neighbor in the previous layer, making the tree deterministic
    (matching the port-ordered distributed BFS of Lemma 2).
    """
    dist = bfs_distances(graph, source)
    parent = np.full(graph.n, UNREACHED, dtype=np.int64)
    parent[source] = source
    order = np.argsort(dist, kind="stable")
    for v in order:
        v = int(v)
        if dist[v] <= 0:
            continue
        nbrs = graph.neighbors(v)
        prev = nbrs[dist[nbrs] == dist[v] - 1]
        if prev.size:
            parent[v] = int(prev[0])
    return parent, dist


def all_pairs_distances(graph: Graph) -> np.ndarray:
    """Exact unweighted APSP as an ``(n, n)`` matrix (``-1`` = unreachable)."""
    out = np.empty((graph.n, graph.n), dtype=np.int64)
    for v in range(graph.n):
        out[v] = bfs_distances(graph, v)
    return out


def eccentricity(graph: Graph, source: int) -> int:
    """Max hop distance from ``source``; ``-1`` if the graph is disconnected."""
    dist = bfs_distances(graph, source)
    if np.any(dist == UNREACHED):
        return -1
    return int(dist.max())


def connected_components(graph: Graph) -> np.ndarray:
    """Component label per node (labels are the component's smallest node)."""
    label = np.full(graph.n, UNREACHED, dtype=np.int64)
    for v in range(graph.n):
        if label[v] != UNREACHED:
            continue
        dist = bfs_distances(graph, v)
        label[dist != UNREACHED] = v
    return label


def is_connected(graph: Graph) -> bool:
    """True iff the graph is connected (n=1 graphs are connected)."""
    if graph.n <= 1:
        return True
    return not np.any(bfs_distances(graph, 0) == UNREACHED)
