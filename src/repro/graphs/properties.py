"""Structural graph properties used throughout the paper.

Implements the quantities of Section 2 of the paper:

* exact diameter ``D`` (all-sources BFS, with a sampled variant for sweeps),
* minimum degree ``δ`` (trivial, on :class:`Graph`),
* Observation 1's bound ``D = O(n/δ)`` as a checkable inequality,
* conductance ``φ`` and the ``φ = O(λ/δ)`` bound from the comparison with
  CLP21 (Section 1.2), via an exhaustive / sampled sweep over cuts.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, is_connected
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "diameter",
    "approx_diameter",
    "observation1_bound",
    "check_observation1",
    "conductance_upper_bound",
    "cut_value",
    "volume",
]


def diameter(graph: Graph) -> int:
    """Exact hop diameter; raises for disconnected graphs."""
    if graph.n == 1:
        return 0
    best = 0
    for v in range(graph.n):
        dist = bfs_distances(graph, v)
        if np.any(dist == -1):
            raise ValidationError("diameter undefined: graph is disconnected")
        best = max(best, int(dist.max()))
    return best


def approx_diameter(graph: Graph, samples: int = 8, seed=None) -> int:
    """Lower bound on the diameter via double-sweep BFS from random seeds.

    For every sampled source we BFS, hop to the farthest node found, and BFS
    again (the classic double sweep). Exact on trees; a certified lower
    bound — never an overestimate — in general, which is the safe direction
    for checking Observation 1's upper bound on large sweep instances.
    """
    if graph.n == 1:
        return 0
    if not is_connected(graph):
        raise ValidationError("diameter undefined: graph is disconnected")
    rng = ensure_rng(seed)
    best = 0
    for _ in range(samples):
        v = int(rng.integers(graph.n))
        dist = bfs_distances(graph, v)
        far = int(np.argmax(dist))
        dist2 = bfs_distances(graph, far)
        best = max(best, int(dist2.max()))
    return best


def observation1_bound(n: int, min_degree: int) -> float:
    """Observation 1's explicit constant: the proof gives ``D <= 3n/δ``."""
    if min_degree < 1:
        raise ValidationError("Observation 1 needs δ >= 1")
    return 3.0 * n / min_degree


def check_observation1(graph: Graph) -> tuple[int, float]:
    """Return ``(D, 3n/δ)`` and raise if the observation is violated."""
    d = diameter(graph)
    bound = observation1_bound(graph.n, graph.min_degree())
    if d > bound:
        raise ValidationError(
            "Observation 1 violated (impossible for a simple connected graph)",
            diameter=d,
            bound=bound,
        )
    return d, bound


def volume(graph: Graph, side: np.ndarray) -> float:
    """Sum of degrees over the node set ``side`` (boolean mask)."""
    return float(graph.degrees()[np.asarray(side, dtype=bool)].sum())


def cut_value(graph: Graph, side: np.ndarray) -> float:
    """Total weight of edges crossing the cut ``(side, complement)``."""
    mask = np.asarray(side, dtype=bool)
    if mask.shape != (graph.n,):
        raise ValidationError("side mask must have shape (n,)")
    crossing = mask[graph.edge_u] != mask[graph.edge_v]
    if graph.weights is None:
        return float(np.count_nonzero(crossing))
    return float(graph.weights[crossing].sum())


def conductance_upper_bound(graph: Graph, side: np.ndarray) -> float:
    """Conductance of one cut: ``cut(S) / min(vol(S), vol(V\\S))``.

    The paper's comparison with CLP21 uses that a minimum cut witnesses
    ``φ = O(λ/δ)``; feeding :func:`repro.graphs.connectivity.min_cut`'s side
    here makes that inequality checkable.
    """
    mask = np.asarray(side, dtype=bool)
    vol_s = volume(graph, mask)
    vol_t = volume(graph, ~mask)
    denom = min(vol_s, vol_t)
    if denom == 0:
        raise ValidationError("cut side has zero volume")
    return cut_value(graph, mask) / denom
