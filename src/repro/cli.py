"""Command-line interface: ``python -m repro <command> ...``.

Gives the library a shell-usable surface for quick experiments:

* ``info``       — graph family parameters (n, m, δ, λ, D),
* ``broadcast``  — run a k-broadcast (fast / textbook / combined /
  unknown-lambda) and print the certified per-phase round ledger,
* ``packing``    — build and report a Theorem 2 tree packing,
* ``apsp``       — the Theorem 4 or Theorem 5 distance pipeline,
* ``cuts``       — the Theorem 7 all-cuts pipeline,
* ``resilience`` — a redundant broadcast under an adversary scenario
  (Section 1.2 / FP23 flavor) with the per-message delivery report.

Graph specs are ``family:key=value,...`` — e.g. ``reg:n=200,d=16,seed=1``,
``thick:groups=12,size=10``, ``hypercube:dim=8``, ``torus:rows=8,cols=9``,
``cliques:num=4,size=12,bridge=3``, ``gk13:length=32,lam=16``,
``barbell:clique=10,bridge=2``.
"""

from __future__ import annotations

import argparse
import sys

from repro.graphs import (
    Graph,
    barbell,
    diameter,
    edge_connectivity,
    ghaffari_kuhn_family,
    hypercube,
    path_of_cliques,
    random_regular,
    random_weights,
    thick_cycle,
    torus_grid,
)
from repro.util.errors import ReproError

__all__ = ["parse_graph_spec", "main"]


def _kwargs(spec: str) -> dict[str, int]:
    out: dict[str, int] = {}
    if not spec:
        return out
    for part in spec.split(","):
        if "=" not in part:
            raise ValueError(f"bad spec fragment {part!r} (expected key=value)")
        key, value = part.split("=", 1)
        out[key.strip()] = int(value)
    return out


def parse_graph_spec(spec: str) -> Graph:
    """Build a graph from a ``family:key=value,...`` spec string."""
    family, _, rest = spec.partition(":")
    kw = _kwargs(rest)
    try:
        if family == "reg":
            return random_regular(kw["n"], kw["d"], seed=kw.get("seed", 0))
        if family == "thick":
            return thick_cycle(kw["groups"], kw["size"])
        if family == "hypercube":
            return hypercube(kw["dim"])
        if family == "torus":
            return torus_grid(kw["rows"], kw["cols"])
        if family == "cliques":
            return path_of_cliques(kw["num"], kw["size"], kw["bridge"])
        if family == "gk13":
            return ghaffari_kuhn_family(kw["length"], kw["lam"])
        if family == "barbell":
            return barbell(kw["clique"], kw.get("bridge", 1))
    except KeyError as err:
        raise ValueError(f"graph spec {spec!r} is missing parameter {err}") from None
    raise ValueError(
        f"unknown graph family {family!r}; "
        "use reg | thick | hypercube | torus | cliques | gk13 | barbell"
    )


def _cmd_info(args) -> int:
    g = parse_graph_spec(args.graph)
    lam = edge_connectivity(g)
    print(f"n={g.n} m={g.m} delta={g.min_degree()} lambda={lam} D={diameter(g)}")
    return 0


def _cmd_broadcast(args) -> int:
    from repro.core import (
        broadcast_unknown_lambda,
        combined_broadcast,
        fast_broadcast,
        textbook_broadcast,
        uniform_random_placement,
    )

    g = parse_graph_spec(args.graph)
    placement = uniform_random_placement(g.n, args.k, seed=args.seed)
    if args.algorithm == "textbook":
        res = textbook_broadcast(g, placement, backend=args.backend)
    elif args.algorithm == "fast":
        res = fast_broadcast(g, placement, C=args.C, seed=args.seed, backend=args.backend)
    elif args.algorithm == "combined":
        res = combined_broadcast(g, placement, C=args.C, seed=args.seed, backend=args.backend)
    else:
        res, _search = broadcast_unknown_lambda(
            g, placement, seed=args.seed, C=args.C, backend=args.backend
        )
    print(f"algorithm: {res.algorithm}")
    print(f"backend: {args.backend}")
    print(f"n={res.n} k={res.k} trees={res.parts}")
    for phase, rounds in res.phases.items():
        print(f"  {phase:<18} {rounds}")
    print(f"total rounds: {res.rounds}")
    print(f"max edge congestion: {res.max_congestion}")
    return 0


def _cmd_packing(args) -> int:
    from repro.core import build_packing_with_retry, num_parts

    g = parse_graph_spec(args.graph)
    lam = edge_connectivity(g)
    parts = args.parts if args.parts else num_parts(lam, g.n, args.C)
    packing, attempts = build_packing_with_retry(
        g, parts, seed=args.seed, distributed=True, backend=args.backend,
        roots=args.roots, batch=args.batch,
    )
    print(f"lambda={lam} parts={parts} attempts={attempts}")
    print(f"roots={args.roots} {packing.roots if parts <= 8 else ''}")
    print(f"edge_disjoint={packing.is_edge_disjoint} congestion={packing.congestion}")
    print(f"max_depth={packing.max_depth} max_diameter={packing.max_diameter}")
    print(f"construction_rounds={packing.construction_rounds}")
    return 0


def _cmd_apsp(args) -> int:
    g = parse_graph_spec(args.graph)
    if args.weighted:
        from repro.apsp import approx_apsp_weighted, check_weighted_stretch, corollary1_k

        gw = random_weights(g, seed=args.seed)
        k = args.spanner_k or corollary1_k(g.n)
        res = approx_apsp_weighted(
            gw, k=k, C=args.C, seed=args.seed, backend=args.backend
        )
        ok, worst = check_weighted_stretch(gw, res.estimate, k)
        print(f"weighted APSP: k={k} stretch_bound={2*k-1} measured={worst:.2f} ok={ok}")
        print(f"spanner edges broadcast: {res.messages_broadcast}")
    else:
        from repro.apsp import approx_apsp_unweighted, check_32_approximation

        res = approx_apsp_unweighted(
            g, C=args.C, seed=args.seed, backend=args.backend
        )
        ok, worst = check_32_approximation(g, res.estimate)
        print(f"(3,2)-approx APSP: envelope_ok={ok} worst_mult={worst:.2f}")
        print(f"clusters: {res.k_clusters}")
    print(f"backend: {args.backend}")
    print(f"simulated rounds: {res.simulated_rounds}")
    print(f"charged rounds:   {res.charged_rounds}")
    print(f"total rounds:     {res.rounds}")
    return 0


def _cmd_cuts(args) -> int:
    from repro.cuts import approx_all_cuts, evaluate_cut_quality

    g = parse_graph_spec(args.graph)
    res = approx_all_cuts(
        g, eps=args.eps, C=args.C, seed=args.seed, tau=args.tau,
        backend=args.backend,
    )
    quality = evaluate_cut_quality(g, res.sparsifier.sparsifier, seed=args.seed)
    print(f"sparsifier: {res.sparsifier.m} of {g.m} edges")
    print(f"backend: {args.backend}")
    print(f"rounds: {res.rounds} (simulated {res.simulated_rounds})")
    print(
        f"cut error: max={quality['max_rel_error']:.3f} "
        f"mean={quality['mean_rel_error']:.3f} over {quality['cuts']:.0f} cuts "
        f"(target eps={args.eps})"
    )
    return 0


def _scenario_none(args, g):
    """fault-free baseline (only --drop-rate, if given, applies)"""
    return None


def _scenario_dead_tree(args, g):
    """kill one whole packed tree (--tree) permanently"""
    from repro.congest import StaticSaboteur

    return StaticSaboteur(tree_index=args.tree)


def _scenario_mobile(args, g):
    """sweeping round-scoped adversary: --budget edges per delivery round"""
    from repro.congest import MobileAdversary

    return MobileAdversary.sweeping(
        range(g.m), budget=max(1, args.budget), rounds=args.mobile_rounds
    )


def _scenario_loss(args, g):
    """i.i.d. per-delivery loss at --drop-rate"""
    from repro.congest import RandomLoss

    return RandomLoss(args.drop_rate)


def _scenario_targeted_cut(args, g):
    """kill the lightest approximate cut found via Theorem 7 (--budget edges)"""
    from repro.congest import TargetedCutAdversary

    return TargetedCutAdversary(
        eps=args.eps,
        budget=args.budget or None,
        seed=args.seed,
        backend=args.backend,
    )


#: ``repro resilience`` scenario registry: name -> builder(args, graph).
_SCENARIOS = {
    "none": _scenario_none,
    "dead-tree": _scenario_dead_tree,
    "mobile": _scenario_mobile,
    "loss": _scenario_loss,
    "targeted-cut": _scenario_targeted_cut,
}


def _print_scenarios() -> None:
    width = max(len(s) for s in _SCENARIOS)
    for name, builder in _SCENARIOS.items():
        print(f"{name:<{width}}  {builder.__doc__}")


def _cmd_resilience(args) -> int:
    from repro.core import (
        build_packing_with_retry,
        num_parts,
        redundant_broadcast,
        uniform_random_placement,
    )

    if args.list_scenarios:
        _print_scenarios()
        return 0
    if args.graph is None:
        print("error: a graph spec is required (or use --list-scenarios)",
              file=sys.stderr)
        return 2
    if args.adversary not in _SCENARIOS:
        print(
            f"error: unknown scenario {args.adversary!r}; known scenarios: "
            f"{', '.join(_SCENARIOS)} (see --list-scenarios)",
            file=sys.stderr,
        )
        return 2
    g = parse_graph_spec(args.graph)
    lam = edge_connectivity(g)
    parts = args.parts if args.parts else num_parts(lam, g.n, args.C)
    packing, _ = build_packing_with_retry(
        g, parts, seed=args.seed, distributed=False, backend=args.backend,
        roots=args.roots,
    )
    placement = uniform_random_placement(g.n, args.k, seed=args.seed)

    adversary = _SCENARIOS[args.adversary](args, g)
    rep = redundant_broadcast(
        g,
        placement,
        packing,
        redundancy=args.redundancy,
        drop_rate=args.drop_rate if args.adversary != "loss" else 0.0,
        adversary=adversary,
        seed=args.seed,
        fault_seed=args.fault_seed,
        backend=args.backend,
    )
    print(f"adversary: {args.adversary}  redundancy: {rep.redundancy}")
    print(f"backend: {args.backend}")
    print(f"roots: {args.roots} {packing.roots if packing.size <= 8 else ''}")
    print(f"n={g.n} lambda={lam} trees={packing.size} k={rep.k}")
    print(f"rounds: {rep.rounds}")
    print(f"deliveries dropped: {rep.dropped_messages}")
    print(f"fully delivered: {rep.fully_delivered}/{rep.k}")
    print(f"min coverage: {rep.min_coverage:.2%}")
    return 0


def _cmd_tournament(args) -> int:
    import json

    from repro.congest.tournament import (
        DEFAULT_ADVERSARIES,
        DEFAULT_DEFENSES,
        SCENARIOS,
        run_tournament,
    )

    if args.list_scenarios:
        width = max(len(s) for s in SCENARIOS)
        for name, (doc, _fn) in SCENARIOS.items():
            print(f"{name:<{width}}  {doc}")
        print(f"default defenses: {', '.join(DEFAULT_DEFENSES)}")
        return 0
    if args.graph is None:
        print("error: a graph spec is required (or use --list-scenarios)",
              file=sys.stderr)
        return 2
    adversaries = (
        args.adversaries.split(",") if args.adversaries else list(DEFAULT_ADVERSARIES)
    )
    unknown = [a for a in adversaries if a not in SCENARIOS]
    if unknown:
        print(
            f"error: unknown scenario(s) {', '.join(unknown)}; known: "
            f"{', '.join(SCENARIOS)} (see --list-scenarios)",
            file=sys.stderr,
        )
        return 2
    defenses = args.defenses.split(",") if args.defenses else list(DEFAULT_DEFENSES)
    g = parse_graph_spec(args.graph)
    res = run_tournament(
        g,
        k=args.k,
        parts=args.parts,
        budget=args.budget or None,
        adversaries=adversaries,
        defenses=defenses,
        seed=args.seed,
        backend=args.backend,
        mobile_rounds=args.mobile_rounds,
    )
    if args.json:
        print(json.dumps(res.to_payload(), indent=2))
        return 0
    print(f"tournament: n={res.n} k={res.k} trees={res.parts} "
          f"budget={res.budget} backend={res.backend}")
    header = (f"{'adversary':<13} {'defense':<13} {'min_cov':>8} {'mean':>7} "
              f"{'full':>9} {'rounds':>7} {'bits':>10} {'repaired':>9} {'repair':>7}")
    print(header)
    for c in res.cells:
        repair = "rebuild" if c.rebuilt else (f"reroot:{c.rerooted}" if c.rerooted else "-")
        print(f"{c.adversary:<13} {c.defense:<13} {c.min_coverage:>8.3f} "
              f"{c.mean_coverage:>7.3f} {c.fully_delivered:>5}/{c.k:<3} "
              f"{c.rounds:>7} {c.total_bits:>10} "
              f"{c.repaired_min_coverage:>9.3f} {repair:>7}")
    for name in res.adversaries:
        best = res.best_defense(name)
        print(f"best vs {name}: {best.defense} "
              f"(repaired min coverage {best.repaired_min_coverage:.3f})")
    return 0


def _cmd_trace(args) -> int:
    from repro import obs

    data = obs.load_trace(args.trace_file)
    print(obs.format_report(data, top_counters=args.top))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import RULES, run_lint

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:<{width}}  {desc}")
        return 0
    report = run_lint(args.paths or None, project_root=args.project_root)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_text())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast Broadcast in Highly Connected Networks — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("graph", help="graph spec, e.g. thick:groups=12,size=10")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--C", type=float, default=2.0, help="Theorem 2 constant")

    def trace_opt(p):
        p.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="record phase spans + kernel counters while the command "
            "runs and write the artifact to PATH (.jsonl = JSONL, "
            "anything else = Chrome trace-event JSON for Perfetto); "
            "inspect it with `repro trace PATH`",
        )

    def backend_opt(p):
        p.add_argument(
            "--backend",
            choices=["simulator", "vectorized"],
            default="simulator",
            help="simulator = certified CONGEST execution (per-node "
            "programs); vectorized = bit-identical results — same "
            "estimates/sparsifiers, same round ledgers — via the numpy "
            "fast-path engine, orders of magnitude faster",
        )

    p = sub.add_parser("info", help="graph family parameters")
    p.add_argument("graph")
    trace_opt(p)
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("broadcast", help="run a k-broadcast")
    common(p)
    backend_opt(p)
    p.add_argument("-k", type=int, required=True, help="number of messages")
    p.add_argument(
        "--algorithm",
        choices=["fast", "textbook", "combined", "unknown-lambda"],
        default="fast",
    )
    trace_opt(p)
    p.set_defaults(fn=_cmd_broadcast)

    def roots_opt(p):
        p.add_argument(
            "--roots",
            default="shared",
            help="root-assignment policy: shared (historical single root) | "
            "spread (distinct evenly spaced root per tree) | cut-aware "
            "(roots steered away from Theorem 7's light cuts)",
        )

    p = sub.add_parser("packing", help="build a Theorem 2 tree packing")
    common(p)
    backend_opt(p)
    roots_opt(p)
    p.add_argument("--parts", type=int, default=0)
    p.add_argument(
        "--batch", type=int, default=1,
        help="retry candidates probed per attempt through one multi-query "
        "plane sweep (bit-identical to batch=1; >1 needs the vectorized "
        "backend to pay off)",
    )
    trace_opt(p)
    p.set_defaults(fn=_cmd_packing)

    p = sub.add_parser("apsp", help="approximate APSP (Theorem 4 / 5)")
    common(p)
    backend_opt(p)
    p.add_argument("--weighted", action="store_true")
    p.add_argument("--spanner-k", type=int, default=0)
    trace_opt(p)
    p.set_defaults(fn=_cmd_apsp)

    p = sub.add_parser("cuts", help="all-cuts approximation (Theorem 7)")
    common(p)
    backend_opt(p)
    p.add_argument("--eps", type=float, default=0.4)
    p.add_argument("--tau", type=int, default=3)
    trace_opt(p)
    p.set_defaults(fn=_cmd_cuts)

    p = sub.add_parser(
        "resilience",
        help="redundant broadcast under an adversary (Section 1.2 / FP23)",
    )
    p.add_argument("graph", nargs="?", default=None,
                   help="graph spec, e.g. thick:groups=12,size=10")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--C", type=float, default=2.0, help="Theorem 2 constant")
    backend_opt(p)
    roots_opt(p)
    p.add_argument("-k", type=int, default=20, help="number of messages")
    p.add_argument("--redundancy", "-r", type=int, default=1,
                   help="trees carrying each message (1..#trees)")
    p.add_argument(
        "--adversary",
        default="none",
        help="scenario name: none | dead-tree | mobile | loss | targeted-cut "
        "(see --list-scenarios)",
    )
    p.add_argument("--list-scenarios", action="store_true",
                   help="print every scenario name with a description and exit")
    p.add_argument("--tree", type=int, default=0,
                   help="which packed tree the dead-tree saboteur kills")
    p.add_argument("--budget", type=int, default=0,
                   help="edge budget (mobile per-round / targeted-cut total)")
    p.add_argument("--mobile-rounds", type=int, default=64,
                   help="how many delivery rounds the mobile adversary acts")
    p.add_argument("--drop-rate", type=float, default=0.0,
                   help="i.i.d. per-delivery loss probability in [0, 1]")
    p.add_argument("--eps", type=float, default=0.4,
                   help="targeted-cut sparsifier accuracy")
    p.add_argument("--parts", type=int, default=0,
                   help="trees in the packing (0 = Theorem 2 default)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="fault-coin seed (defaults to --seed; independent "
                   "of the protocol RNG)")
    trace_opt(p)
    p.set_defaults(fn=_cmd_resilience)

    p = sub.add_parser(
        "tournament",
        help="round-robin every adversary against every root-policy/"
        "redundancy defense at a matched budget; scored grid",
    )
    p.add_argument("graph", nargs="?", default=None,
                   help="graph spec, e.g. thick:groups=12,size=10")
    p.add_argument("--seed", type=int, default=0)
    backend_opt(p)
    p.add_argument("-k", type=int, default=40, help="number of messages")
    p.add_argument("--parts", type=int, default=3,
                   help="trees in each defense packing")
    p.add_argument("--budget", type=int, default=0,
                   help="matched fault budget (0 = node 0's degree, the E16 "
                   "leader-degree cut)")
    p.add_argument("--adversaries", default="",
                   help="comma-separated scenario names (default: all)")
    p.add_argument("--defenses", default="",
                   help="comma-separated <policy>-r<N> entries, e.g. "
                   "shared-r1,spread-r2 (default: the standard grid)")
    p.add_argument("--mobile-rounds", type=int, default=4096,
                   help="delivery rounds the mobile adversary stays active")
    p.add_argument("--list-scenarios", action="store_true",
                   help="print scenario registry + default defenses and exit")
    p.add_argument("--json", action="store_true",
                   help="emit the full scored payload as JSON")
    trace_opt(p)
    p.set_defaults(fn=_cmd_tournament)

    p = sub.add_parser(
        "lint",
        help="static invariant checks: CONGEST legality, RNG discipline, "
        "bit accounting, backend parity",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: src benchmarks examples "
        "under --project-root)",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--project-root",
        default=".",
        help="anchor for display paths and the backend-parity "
        "cross-references (default: cwd)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print every rule id and exit"
    )
    trace_opt(p)
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "trace",
        help="report on a --trace artifact: per-phase wall-clock table "
        "plus the top counters",
    )
    p.add_argument("trace_file", help="JSONL or Chrome trace-event JSON path")
    p.add_argument("--top", type=int, default=20,
                   help="number of counters to show (default 20)")
    p.set_defaults(fn=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    try:
        if trace_path:
            from repro import obs

            with obs.use_tracer() as tracer:
                rc = args.fn(args)
            tracer.write(trace_path)
            return rc
        return args.fn(args)
    except (ReproError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
