"""repro — reproduction of "Fast Broadcast in Highly Connected Networks" (SPAA 2024).

Public API highlights (see README.md for the tour):

* :mod:`repro.graphs` — graph substrate and workload generators.
* :mod:`repro.congest` — the CONGEST round simulator.
* :mod:`repro.primitives` — BFS, leader election, pipelined tree broadcast,
  aggregation, random-delay scheduling (Lemmas 1–4, Theorem 12).
* :mod:`repro.core` — the paper's contribution: random low-diameter
  edge-partitions (Theorem 2 / Lemma 5), tree packings, and the
  Õ((n+k)/λ)-round k-broadcast (Theorem 1).
* :mod:`repro.apsp` — approximate APSP applications (Theorems 4, 5, Cor. 1).
* :mod:`repro.cuts` — (1+ε) all-cuts approximation (Theorem 7).
* :mod:`repro.lower_bounds` — the paper's lower bounds (Theorems 3, 8, 9,
  11, 13) as checkable bounds and hard-instance generators.
* :mod:`repro.engine` — vectorized fast-path backend: bit-identical results
  and round counts via numpy frontier sweeps (``backend="vectorized"``).
* :mod:`repro.theory` — closed-form round-complexity predictions used by the
  benchmark harness.
"""

__version__ = "1.0.0"

from repro.graphs import Graph
from repro.congest import Network, Simulator, NodeProgram

__all__ = ["Graph", "Network", "Simulator", "NodeProgram", "__version__"]
