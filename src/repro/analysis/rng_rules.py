"""RNG discipline: all randomness flows through ``repro.util.rng``.

The backends' bit-identity guarantee covers *RNG consumption*: simulator
and vectorized runs must draw the same numbers in the same order. That only
holds if every random draw comes from an explicitly-threaded
``np.random.Generator`` built by ``ensure_rng``/``rng_from_seed`` and split
with ``spawn_rngs``/``derive_seed``. A single ``np.random.rand()`` (hidden
global stream) or ad-hoc ``np.random.default_rng()`` breaks replay without
failing any functional test — exactly the drift class this checker kills:

* ``rng-module-call`` — calls into the ``np.random`` module surface
  (``np.random.seed``, ``np.random.rand``, ``np.random.default_rng``, ...),
  including ``from numpy.random import default_rng``-style imports.
* ``rng-stdlib-random`` — stdlib ``random`` imported at all (its global
  Mersenne Twister is invisible to the replay machinery).
* ``rng-generator-construct`` — ``np.random.Generator`` / bit-generator
  construction anywhere outside ``repro/util/rng.py``, the one blessed
  construction site.

``repro/util/rng.py`` itself is exempt: it is the discipline's home.
Non-call references (type annotations, ``isinstance`` checks against
``np.random.Generator``) are always legal.
"""

from __future__ import annotations

import ast

from repro.analysis.model import Finding
from repro.analysis.walker import ModuleInfo

__all__ = ["check_rng_discipline"]

#: Constructing any of these outside util/rng.py is rng-generator-construct.
GENERATOR_CONSTRUCTORS = frozenset(
    {
        "Generator", "BitGenerator", "SeedSequence", "RandomState",
        "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
    }
)


def _is_rng_home(info: ModuleInfo) -> bool:
    return info.path.as_posix().endswith("repro/util/rng.py")


def _np_random_value(info: ModuleInfo, node: ast.expr) -> bool:
    """True when ``node`` syntactically denotes the ``numpy.random`` module."""
    if isinstance(node, ast.Name):
        return node.id in info.numpy_random_aliases
    if isinstance(node, ast.Attribute):
        return node.attr == "random" and isinstance(node.value, ast.Name) and (
            node.value.id in info.numpy_aliases
        )
    return False


def check_rng_discipline(info: ModuleInfo) -> list[Finding]:
    if _is_rng_home(info):
        return []
    findings: list[Finding] = []
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    findings += info.finding(
                        "rng-stdlib-random",
                        node,
                        "stdlib random imported; use "
                        "repro.util.rng.ensure_rng/spawn_rngs instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module.startswith("random."):
                findings += info.finding(
                    "rng-stdlib-random",
                    node,
                    "stdlib random imported; use "
                    "repro.util.rng.ensure_rng/spawn_rngs instead",
                )
            elif module == "numpy.random":
                for alias in node.names:
                    if alias.name in GENERATOR_CONSTRUCTORS:
                        findings += info.finding(
                            "rng-generator-construct",
                            node,
                            f"numpy.random.{alias.name} imported for "
                            "construction outside repro/util/rng.py; build "
                            "generators with rng_from_seed/ensure_rng",
                        )
                    else:
                        findings += info.finding(
                            "rng-module-call",
                            node,
                            f"numpy.random.{alias.name} imported; route "
                            "randomness through repro.util.rng "
                            "(ensure_rng/rng_from_seed/spawn_rngs/derive_seed)",
                        )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and _np_random_value(info, func.value):
                if func.attr in GENERATOR_CONSTRUCTORS:
                    findings += info.finding(
                        "rng-generator-construct",
                        func,
                        f"np.random.{func.attr}(...) constructed outside "
                        "repro/util/rng.py; use rng_from_seed/ensure_rng so "
                        "streams stay replayable",
                    )
                else:
                    findings += info.finding(
                        "rng-module-call",
                        func,
                        f"np.random.{func.attr}(...) call; module-level "
                        "np.random state breaks the identical-RNG-consumption "
                        "guarantee — use repro.util.rng "
                        "(ensure_rng/rng_from_seed/spawn_rngs/derive_seed)",
                    )
    return findings
