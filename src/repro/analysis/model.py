"""Findings and report model for ``repro lint``.

A :class:`Finding` is one rule violation anchored to a file/line; a
:class:`LintReport` aggregates them with the scan inventory. The JSON shape
emitted by :meth:`LintReport.to_json` is a stable contract (documented in
README "Static invariants") so CI and editor tooling can consume it:

.. code-block:: json

    {
      "version": 1,
      "files_scanned": 57,
      "findings": [
        {"rule": "rng-module-call", "path": "benchmarks/x.py",
         "line": 12, "col": 8, "message": "..."}
      ],
      "counts": {"rng-module-call": 1}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding", "LintReport", "RULES"]

#: Registry of every rule id with a one-line description. ``repro lint
#: --list-rules`` prints it; the suppression parser validates against it.
RULES: dict[str, str] = {
    "parse-error": "file could not be parsed as Python",
    "congest-global-read": (
        "NodeProgram method reads module-level mutable state or driver "
        "closure state (nodes may only see self + Context)"
    ),
    "congest-graph-state": (
        "NodeProgram receives or touches Graph/Network state (nodes must "
        "not see the global topology)"
    ),
    "congest-context-api": (
        "NodeProgram touches a Context attribute outside the public API "
        "(send/send_all/wake/halt/node/n/degree/round/inbox/shared/rng)"
    ),
    "rng-module-call": (
        "call into the np.random module-level stream (ban includes "
        "np.random.seed / default_rng); use repro.util.rng instead"
    ),
    "rng-stdlib-random": (
        "stdlib random module imported; all randomness must flow through "
        "repro.util.rng generators"
    ),
    "rng-generator-construct": (
        "np.random.Generator / bit-generator constructed outside "
        "repro/util/rng.py (breaks the identical-RNG-consumption guarantee)"
    ),
    "bits-unpriced-payload": (
        "payload sent via ctx.send/send_all has a type with no pricing "
        "rule in repro.util.bits.bits_for_payload"
    ),
    "parity-unverified-backend": (
        "public function declares backend= but no engine/verify.py check_* "
        "exercises it and tests/test_engine_equivalence.py never references "
        "it (new backend entry points need an equivalence check)"
    ),
    "parity-untested-check": (
        "engine/verify.py check_* is neither referenced by "
        "tests/test_engine_equivalence.py nor run by verify_equivalence"
    ),
    "obs-discipline": (
        "time.perf_counter / resource / tracemalloc used in library code "
        "outside repro/obs/; route timing and memory probes through "
        "obs.span(...) so they land in the trace ledger"
    ),
    "parity-unverified-kernel": (
        "public engine/kernels.py entry point is neither called by an "
        "engine/verify.py check_* nor referenced by "
        "tests/test_engine_equivalence.py (batched kernels need a "
        "bit-identity check before the engine may use them)"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation: ``rule`` at ``path:line:col`` with a message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=lambda f: (f.path, f.line, f.col, f.rule))

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [f.as_dict() for f in self.sorted_findings()],
            "counts": self.counts(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [f.format() for f in self.sorted_findings()]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_scanned} files"
        )
        return "\n".join(lines)
