"""Backend parity: every ``backend=`` entry point needs an equivalence check.

The two-backend architecture only stays honest while every function that
accepts ``backend=`` is cross-checked — a new vectorized twin that nobody
registered in :mod:`repro.engine.verify` ships uncertified and can drift
silently. This checker closes the loop statically:

* ``parity-unverified-backend`` — a public module-level function under the
  ``repro`` package declares a ``backend`` parameter, but no ``check_*``
  function in ``engine/verify.py`` calls it and
  ``tests/test_engine_equivalence.py`` never references it.
* ``parity-untested-check`` — a public ``check_*`` in ``engine/verify.py``
  is neither referenced by ``tests/test_engine_equivalence.py`` nor invoked
  by :func:`repro.engine.verify.verify_equivalence` (the sweep CI runs) —
  a check that exists but never executes is as good as absent.
* ``parity-unverified-kernel`` — a public top-level function of
  ``engine/kernels.py`` (the shared span/SpMV primitives every batched
  path is built from) that no ``check_*`` calls and the equivalence test
  file never references. Kernels have no ``backend=`` parameter, so the
  first rule cannot see them — yet a drifting kernel corrupts every
  strategy at once.

Coverage is computed syntactically (call/reference names), so the checker
never imports the code under analysis.
"""

from __future__ import annotations

import ast

from repro.analysis.model import Finding
from repro.analysis.walker import ModuleInfo

__all__ = ["check_backend_parity", "backend_entry_points"]


def _top_level_functions(info: ModuleInfo) -> list[ast.FunctionDef]:
    return [n for n in info.tree.body if isinstance(n, ast.FunctionDef)]


def backend_entry_points(info: ModuleInfo) -> list[ast.FunctionDef]:
    """Public module-level functions of ``info`` declaring ``backend=``."""
    out = []
    for func in _top_level_functions(info):
        if func.name.startswith("_"):
            continue
        argnames = {
            a.arg
            for a in func.args.posonlyargs + func.args.args + func.args.kwonlyargs
        }
        if "backend" in argnames:
            out.append(func)
    return out


def _called_names(node: ast.AST) -> set[str]:
    """Names invoked anywhere under ``node`` (``f(...)`` and ``m.f(...)``)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name):
                out.add(func.id)
            elif isinstance(func, ast.Attribute):
                out.add(func.attr)
    return out


def _referenced_names(node: ast.AST) -> set[str]:
    """Every identifier mentioned under ``node`` (names + attribute names +
    ``from x import y`` names)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                out.add(alias.asname or alias.name.split(".")[-1])
    return out


def check_backend_parity(
    src_modules: list[ModuleInfo],
    verify_module: ModuleInfo,
    equivalence_test_module: ModuleInfo,
) -> list[Finding]:
    """Cross-reference ``backend=`` entry points, verify checks, and tests."""
    findings: list[Finding] = []

    verify_funcs = _top_level_functions(verify_module)
    check_funcs = [f for f in verify_funcs if f.name.startswith("check_")]
    check_covered: set[str] = set()
    for func in check_funcs:
        check_covered |= _called_names(func)
    test_referenced = _referenced_names(equivalence_test_module.tree)

    verify_path = verify_module.path.resolve()
    for info in src_modules:
        if info.path.resolve() == verify_path:
            continue
        if "repro" not in info.path.parts:
            continue
        for func in backend_entry_points(info):
            if func.name in check_covered or func.name in test_referenced:
                continue
            findings += info.finding(
                "parity-unverified-backend",
                func,
                f"{func.name}() declares backend= but no engine/verify.py "
                "check_* calls it and tests/test_engine_equivalence.py never "
                "references it; add an equivalence check before shipping a "
                "second backend",
            )

    for info in src_modules:
        if not info.path.as_posix().endswith("repro/engine/kernels.py"):
            continue
        for func in _top_level_functions(info):
            if func.name.startswith("_"):
                continue
            if func.name in check_covered or func.name in test_referenced:
                continue
            findings += info.finding(
                "parity-unverified-kernel",
                func,
                f"{func.name}() is a public engine/kernels.py primitive but "
                "no engine/verify.py check_* calls it and "
                "tests/test_engine_equivalence.py never references it; add "
                "a bit-identity check before batched paths may rely on it",
            )

    sweep = next((f for f in verify_funcs if f.name == "verify_equivalence"), None)
    sweep_covered = _called_names(sweep) if sweep is not None else set()
    for func in check_funcs:
        if func.name.startswith("_"):
            continue
        if func.name in test_referenced or func.name in sweep_covered:
            continue
        findings += verify_module.finding(
            "parity-untested-check",
            func,
            f"{func.name}() is registered in engine/verify.py but neither "
            "tests/test_engine_equivalence.py nor the verify_equivalence "
            "sweep runs it; wire it into both",
        )
    return findings
