"""Observability discipline: timing/memory probes live in ``repro/obs/``.

The tracer (:mod:`repro.obs`) is the one blessed home for wall-clock and
memory measurement inside the library. Ad-hoc ``time.perf_counter()``
calls sprinkled through algorithm code bypass the span ledger — their
cost never shows up in ``repro trace`` reports, and (worse) they tempt
conditional logic on measured time, which breaks run-to-run determinism.
The same goes for ``resource.getrusage`` and ``tracemalloc``:

* ``obs-discipline`` — a ``time.perf_counter``/``perf_counter_ns`` call,
  or any ``resource``/``tracemalloc`` import, in library code
  (``repro/`` modules) outside ``repro/obs/``. Wrap the region in
  ``obs.span(...)`` instead so the measurement lands in the trace.

Benchmarks, examples, and tests are harness code — they time whole runs
from the outside and are exempt. ``repro/obs/`` itself is the
discipline's home and is exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.model import Finding
from repro.analysis.walker import ModuleInfo

__all__ = ["check_obs_discipline"]

#: ``time`` module attributes whose call is a finding.
TIMER_CALLS = frozenset({"perf_counter", "perf_counter_ns"})

#: Modules whose import (in scoped library code) is a finding.
PROBE_MODULES = frozenset({"resource", "tracemalloc"})


def _in_scope(info: ModuleInfo) -> bool:
    """Library modules only: ``repro/`` paths outside ``repro/obs/``."""
    posix = info.path.as_posix()
    if "repro/obs/" in posix:
        return False
    return "/repro/" in posix or posix.startswith("repro/")


def check_obs_discipline(info: ModuleInfo) -> list[Finding]:
    if not _in_scope(info):
        return []
    findings: list[Finding] = []
    time_aliases: set[str] = set()
    timer_names: set[str] = set()
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in PROBE_MODULES:
                    findings += info.finding(
                        "obs-discipline",
                        node,
                        f"{root} imported in library code; RSS/allocation "
                        "probes belong in repro/obs/ — record the region "
                        "with obs.span(...) instead",
                    )
                elif alias.name == "time":
                    time_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            module = (node.module or "").split(".", 1)[0]
            if module in PROBE_MODULES:
                findings += info.finding(
                    "obs-discipline",
                    node,
                    f"{module} imported in library code; RSS/allocation "
                    "probes belong in repro/obs/ — record the region with "
                    "obs.span(...) instead",
                )
            elif module == "time":
                for alias in node.names:
                    if alias.name in TIMER_CALLS:
                        timer_names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in TIMER_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id in (time_aliases or {"time"})
            ):
                findings += info.finding(
                    "obs-discipline",
                    func,
                    f"time.{func.attr}() in library code; wall-clock "
                    "measurement belongs in repro/obs/ — wrap the region in "
                    "obs.span(...) so it lands in the trace ledger",
                )
            elif isinstance(func, ast.Name) and func.id in timer_names:
                findings += info.finding(
                    "obs-discipline",
                    func,
                    f"{func.id}() in library code; wall-clock measurement "
                    "belongs in repro/obs/ — wrap the region in "
                    "obs.span(...) so it lands in the trace ledger",
                )
    return findings
