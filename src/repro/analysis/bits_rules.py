"""Bit accounting: every sent payload must have a registered pricing rule.

Round counts are only *certified* because the simulator prices every
payload via :func:`repro.util.bits.bits_for_payload` before transport. A
payload type without a pricing rule either raises at runtime (best case) or
— the bug class the PR 1 bool/int conflation belonged to — gets priced as
something it is not. This checker flags, at every ``ctx.send(port, payload)``
/ ``ctx.send_all(payload)`` site, payload expressions whose *statically
known* type has no pricing rule.

The priced-type registry is not hardcoded: it is parsed out of
``bits_for_payload``'s own ``isinstance`` ladder (plus the ``is None``
branch), so registering a new payload type in ``util/bits.py`` is
automatically reflected here. Expressions whose type cannot be determined
statically (names, attribute loads, arbitrary calls) are never flagged —
the dynamic pricing in the simulator remains the backstop for those.
"""

from __future__ import annotations

import ast
import importlib.util
from functools import lru_cache

from repro.analysis.model import Finding
from repro.analysis.walker import ModuleInfo

__all__ = ["check_bit_accounting", "priced_type_names"]

#: Fallback mirror of util/bits.py, used only if its source is unavailable.
_FALLBACK_PRICED = frozenset(
    {"NoneType", "bool", "int", "float", "str", "tuple", "list"}
)

#: Calls that statically produce a priced type.
_PRICED_CALLS = frozenset(
    {
        "int", "str", "bool", "float", "tuple", "list", "len", "min", "max",
        "sum", "abs", "round", "sorted", "ord", "repr", "format",
    }
)

#: Constructor calls that statically produce an unpriced type.
_UNPRICED_CALLS = frozenset(
    {"dict", "set", "frozenset", "bytes", "bytearray", "complex", "object"}
)

#: numpy array factories (ndarray payloads have no pricing rule).
_NUMPY_ARRAY_CALLS = frozenset(
    {"array", "asarray", "zeros", "ones", "full", "empty", "arange", "linspace"}
)


@lru_cache(maxsize=1)
def priced_type_names() -> frozenset[str]:
    """Type names priced by ``bits_for_payload``, read from its own AST."""
    spec = importlib.util.find_spec("repro.util.bits")
    if spec is None or spec.origin is None:
        return _FALLBACK_PRICED
    try:
        tree = ast.parse(open(spec.origin, encoding="utf-8").read())
    except (OSError, SyntaxError):
        return _FALLBACK_PRICED
    priced: set[str] = set()
    func = next(
        (
            n
            for n in tree.body
            if isinstance(n, ast.FunctionDef) and n.name == "bits_for_payload"
        ),
        None,
    )
    if func is None:
        return _FALLBACK_PRICED
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            types = node.args[1]
            elts = types.elts if isinstance(types, ast.Tuple) else [types]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    priced.add(elt.id)
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, ast.Is) for op in node.ops
        ):
            if any(
                isinstance(c, ast.Constant) and c.value is None
                for c in node.comparators
            ):
                priced.add("NoneType")
    return frozenset(priced) if priced else _FALLBACK_PRICED


def _classify(info: ModuleInfo, expr: ast.expr) -> str | None:
    """Statically known type name of ``expr``, or ``None`` when unknown.

    Only returns a name when the type is certain; uncertainty is never a
    finding.
    """
    if isinstance(expr, ast.Constant):
        return type(expr.value).__name__
    if isinstance(expr, ast.JoinedStr):
        return "str"
    if isinstance(expr, (ast.Tuple, ast.List)):
        # the container itself is priced; recurse for unpriced elements
        for elt in expr.elts:
            if isinstance(elt, ast.Starred):
                continue
            inner = _classify(info, elt)
            if inner is not None and inner not in priced_type_names():
                return inner
        return "tuple" if isinstance(expr, ast.Tuple) else "list"
    if isinstance(expr, ast.ListComp):
        return "list"
    if isinstance(expr, ast.Dict) or isinstance(expr, ast.DictComp):
        return "dict"
    if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
        return "set"
    if isinstance(expr, ast.GeneratorExp):
        return "generator"
    if isinstance(expr, ast.Lambda):
        return "function"
    if isinstance(expr, ast.IfExp):
        for branch in (expr.body, expr.orelse):
            t = _classify(info, branch)
            if t is not None and t not in priced_type_names():
                return t
        return None
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in _UNPRICED_CALLS:
                return func.id
            if func.id in _PRICED_CALLS:
                return None  # priced or int-like; never flag
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if (
                func.value.id in info.numpy_aliases
                and func.attr in _NUMPY_ARRAY_CALLS
            ):
                return "ndarray"
        return None
    return None


def _ctx_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    out = set()
    for a in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
        if a.arg == "ctx":
            out.add(a.arg)
        elif a.annotation is not None and "Context" in ast.unparse(a.annotation):
            out.add(a.arg)
    return out


def _payload_args(call: ast.Call, method: str) -> list[ast.expr]:
    """The payload expression(s) of one send call."""
    out: list[ast.expr] = []
    wanted_pos = 1 if method == "send" else 0
    for i, arg in enumerate(call.args):
        if i == wanted_pos and not isinstance(arg, ast.Starred):
            out.append(arg)
    for kw in call.keywords:
        if kw.arg == "payload":
            out.append(kw.value)
    return out


def check_bit_accounting(info: ModuleInfo) -> list[Finding]:
    """Flag statically-unpriced payloads at every Context send site."""
    findings: list[Finding] = []
    priced = priced_type_names()
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        ctx_names = _ctx_params(node)
        if not ctx_names:
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("send", "send_all")
                and isinstance(func.value, ast.Name)
                and func.value.id in ctx_names
            ):
                continue
            for payload in _payload_args(call, func.attr):
                typename = _classify(info, payload)
                if typename is not None and typename not in priced:
                    findings += info.finding(
                        "bits-unpriced-payload",
                        payload,
                        f"payload of type {typename!r} reaches "
                        f"ctx.{func.attr} but bits_for_payload has no "
                        "pricing rule for it; send ints/strs/tuples or "
                        "register a rule in repro/util/bits.py",
                    )
    return findings
