"""``repro lint`` — static invariant checks for the reproduction codebase.

Five AST-based rule families protect the guarantees the dynamic
equivalence harness (:mod:`repro.engine.verify`) can only spot-check:

1. **CONGEST legality** (:mod:`repro.analysis.congest_rules`) — node
   programs see only ``self`` and the Context, never the graph or driver
   state.
2. **RNG discipline** (:mod:`repro.analysis.rng_rules`) — all randomness
   flows through :mod:`repro.util.rng`; no hidden global streams.
3. **Bit accounting** (:mod:`repro.analysis.bits_rules`) — every sent
   payload has a pricing rule in :func:`repro.util.bits.bits_for_payload`.
4. **Backend parity** (:mod:`repro.analysis.parity_rules`) — every
   ``backend=`` entry point is wired into the equivalence harness.
5. **Observability discipline** (:mod:`repro.analysis.obs_rules`) —
   timing/memory probes in library code route through ``repro.obs``
   spans, never ad-hoc ``time.perf_counter``.

Findings can be suppressed per line with ``# repro-lint: disable=<rule>``
(comma-separate several rules) or per file with
``# repro-lint: disable-file=<rule>`` within the first ten lines.
CLI: ``python -m repro lint [paths ...] --format={text,json}``; exit code
0 = clean, 1 = findings, 2 = bad invocation.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.bits_rules import check_bit_accounting
from repro.analysis.congest_rules import check_congest_legality
from repro.analysis.model import RULES, Finding, LintReport
from repro.analysis.obs_rules import check_obs_discipline
from repro.analysis.parity_rules import check_backend_parity
from repro.analysis.rng_rules import check_rng_discipline
from repro.analysis.walker import ModuleInfo, iter_python_files, parse_module

__all__ = [
    "RULES",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "run_lint",
    "check_congest_legality",
    "check_rng_discipline",
    "check_bit_accounting",
    "check_backend_parity",
    "check_obs_discipline",
]

#: Where the parity rule finds its two cross-reference anchors, relative to
#: the project root.
VERIFY_SUFFIX = "repro/engine/verify.py"
EQUIVALENCE_TEST = Path("tests") / "test_engine_equivalence.py"


def _display(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    paths: list[str | Path] | None = None,
    project_root: str | Path | None = None,
) -> LintReport:
    """Run every checker over ``paths`` (default: src, benchmarks, examples).

    ``project_root`` anchors display paths and the backend-parity
    cross-references (``engine/verify.py`` among the scanned files plus
    ``tests/test_engine_equivalence.py`` under the root); the parity rules
    are skipped when either anchor is missing.
    """
    root = Path(project_root) if project_root is not None else Path.cwd()
    if paths is None:
        candidates = [root / "src", root / "benchmarks", root / "examples"]
        scan = [p for p in candidates if p.exists()]
    else:
        scan = [Path(p) for p in paths]

    report = LintReport()
    modules: list[ModuleInfo] = []
    for path in iter_python_files(scan):
        parsed = parse_module(path, display_path=_display(path, root))
        if isinstance(parsed, Finding):
            report.findings.append(parsed)
            continue
        modules.append(parsed)
    report.files_scanned = len(modules)

    for info in modules:
        report.findings.extend(check_congest_legality(info))
        report.findings.extend(check_rng_discipline(info))
        report.findings.extend(check_bit_accounting(info))
        report.findings.extend(check_obs_discipline(info))

    verify_module = next(
        (m for m in modules if m.path.as_posix().endswith(VERIFY_SUFFIX)), None
    )
    test_path = root / EQUIVALENCE_TEST
    if verify_module is not None and test_path.exists():
        parsed = parse_module(test_path, display_path=_display(test_path, root))
        if isinstance(parsed, Finding):
            report.findings.append(parsed)
        else:
            report.findings.extend(
                check_backend_parity(modules, verify_module, parsed)
            )
    return report
