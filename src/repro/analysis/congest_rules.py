"""CONGEST legality: node programs may only see ``self`` and the Context.

The model (``congest/program.py``) promises that a node "cannot see the
graph, other nodes' state, or the future". Dynamically nothing enforces
that — a :class:`~repro.congest.program.NodeProgram` is ordinary Python and
*could* read module globals or a captured ``Graph``. This checker is the
static race-detector for that promise. Inside every method of every
``NodeProgram`` subclass it flags:

* ``congest-global-read`` — reads of module-level **mutable** state
  (lowercase module variables), ``global``/``nonlocal`` declarations, and
  reads of names that resolve to an enclosing function's scope (a driver
  closure smuggling state into the node). Imports, ``def``/``class``
  names, and ALL_CAPS constants are legal: they are code and protocol
  constants, not runtime state.
* ``congest-graph-state`` — a method parameter named/annotated as the
  global topology (``graph``/``network``/``net``/``g``, or annotated
  ``Graph``/``Network``) or any ``self.graph``-style attribute access.
  Nodes receive *local* facts (their ports, their counts); handing them
  the ``Graph`` is the distributed analog of sharing memory across ranks.
* ``congest-context-api`` — touching a ``Context`` attribute outside the
  public API (e.g. ``ctx._outbox``), or assigning to any ``Context``
  attribute. The Context surface is the model's only legal channel.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.model import Finding
from repro.analysis.walker import ModuleInfo

__all__ = ["check_congest_legality", "CONTEXT_API"]

#: The public per-round surface of repro.congest.program.Context.
CONTEXT_API = frozenset(
    {
        "node", "n", "degree", "round", "inbox", "shared", "rng",
        "send", "send_all", "wake", "halt",
    }
)

GRAPH_PARAM_NAMES = frozenset({"graph", "network", "net", "g"})
GRAPH_TYPE_TOKENS = ("Graph", "Network")

_BUILTINS = frozenset(dir(builtins))


def _annotation_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """ids of every AST node living inside a type annotation (skipped when
    resolving name reads — annotations are types, not runtime state)."""
    ignored: set[int] = set()
    roots: list[ast.AST] = []
    all_args = (
        func.args.posonlyargs + func.args.args + func.args.kwonlyargs
        + ([func.args.vararg] if func.args.vararg else [])
        + ([func.args.kwarg] if func.args.kwarg else [])
    )
    for a in all_args:
        if a.annotation is not None:
            roots.append(a.annotation)
    if func.returns is not None:
        roots.append(func.returns)
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            roots.append(node.annotation)
    for root in roots:
        for node in ast.walk(root):
            ignored.add(id(node))
    return ignored


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Every name bound anywhere inside the method (args, assignments,
    loop/with/except targets, comprehension vars, nested defs and their
    args). A conservative superset: anything bound locally is never
    reported as a global read."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
            args = node.args
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                names.add(a.arg)
        elif isinstance(node, ast.Lambda):
            args = node.args
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                names.add(a.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
    return names


def _annotation_mentions_graph(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation)
    return any(token in text for token in GRAPH_TYPE_TOKENS)


def _ctx_param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    out = set()
    for a in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
        if a.arg == "ctx":
            out.add(a.arg)
        elif a.annotation is not None and "Context" in ast.unparse(a.annotation):
            out.add(a.arg)
    return out


def _check_method(
    info: ModuleInfo, cls: ast.ClassDef, func: ast.FunctionDef | ast.AsyncFunctionDef
) -> list[Finding]:
    findings: list[Finding] = []
    where = f"{cls.name}.{func.name}"

    # -- graph-state: parameters carrying the global topology ------------- #
    for a in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
        if a.arg == "self":
            continue
        if a.arg in GRAPH_PARAM_NAMES or _annotation_mentions_graph(a.annotation):
            findings += info.finding(
                "congest-graph-state",
                a,
                f"{where} takes parameter {a.arg!r} carrying global "
                "graph/network state; node programs may only receive "
                "node-local inputs",
            )

    ignored = _annotation_nodes(func)
    local = _local_names(func)
    ctx_names = _ctx_param_names(func)
    bindings = info.module_bindings

    for node in ast.walk(func):
        if id(node) in ignored:
            continue
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            findings += info.finding(
                "congest-global-read",
                node,
                f"{where} declares {'global' if isinstance(node, ast.Global) else 'nonlocal'} "
                f"{', '.join(node.names)}; node programs must keep all state on self",
            )
            continue
        if isinstance(node, ast.Attribute):
            value = node.value
            # Context surface
            if isinstance(value, ast.Name) and value.id in ctx_names:
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    findings += info.finding(
                        "congest-context-api",
                        node,
                        f"{where} assigns to ctx.{node.attr}; Context "
                        "attributes are simulator-owned and read-only",
                    )
                elif node.attr not in CONTEXT_API:
                    findings += info.finding(
                        "congest-context-api",
                        node,
                        f"{where} touches ctx.{node.attr}, which is not part "
                        "of the public Context API "
                        f"({', '.join(sorted(CONTEXT_API))})",
                    )
            # self.graph / self.network / self.net
            elif (
                isinstance(value, ast.Name)
                and value.id == "self"
                and node.attr in GRAPH_PARAM_NAMES
                and node.attr != "g"
            ):
                findings += info.finding(
                    "congest-graph-state",
                    node,
                    f"{where} touches self.{node.attr}; storing the global "
                    "graph/network on a node program defeats CONGEST locality",
                )
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            name = node.id
            if name in local or name in ctx_names:
                continue
            kind = bindings.get(name)
            if kind == "mutable":
                findings += info.finding(
                    "congest-global-read",
                    node,
                    f"{where} reads module-level mutable state {name!r}; "
                    "nodes may only see self and the Context (make it an "
                    "ALL_CAPS constant if it is protocol-static)",
                )
            elif kind is None and name not in _BUILTINS:
                findings += info.finding(
                    "congest-global-read",
                    node,
                    f"{where} reads {name!r}, which is neither local, "
                    "module-level, nor a builtin — a driver closure is "
                    "smuggling state into the node program",
                )
    return findings


def check_congest_legality(info: ModuleInfo) -> list[Finding]:
    """Run the three ``congest-*`` rules over one module."""
    findings: list[Finding] = []
    for cls in info.program_classes:
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings += _check_method(info, cls, item)
    return findings
