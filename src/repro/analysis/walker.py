"""Shared AST infrastructure for the ``repro lint`` checkers.

Each scanned file is parsed once into a :class:`ModuleInfo` carrying the
tree plus the derived facts every checker needs:

* suppression comments — ``# repro-lint: disable=<rule>[,<rule>]`` on the
  offending line (or the ``def``/``class`` line for definition-anchored
  findings) and ``# repro-lint: disable-file=<rule>`` anywhere in the first
  ten lines of the file;
* import aliases — which local names are bound to ``numpy``, to the
  ``numpy.random`` submodule, or to the stdlib ``random`` module;
* module-scope bindings — name → kind (``import`` / ``def`` / ``const`` /
  ``mutable``), the resolution table the CONGEST-legality checker uses to
  tell a constant lookup from a read of driver state;
* the :class:`~repro.congest.program.NodeProgram` subclasses defined in the
  module (matched syntactically by base-class name, so the checkers never
  import the code under analysis).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.model import RULES, Finding

__all__ = ["ModuleInfo", "parse_module", "iter_python_files"]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable(?P<file>-file)?\s*=\s*(?P<rules>[\w,\- ]+)")

#: Base-class names that mark a class as a per-node CONGEST program.
PROGRAM_BASES = frozenset({"NodeProgram"})


def _is_const_name(name: str) -> bool:
    """Module-level ALL_CAPS names (``_ANNOUNCE``, ``_OPS``) are constants."""
    stripped = name.strip("_")
    return bool(stripped) and stripped == stripped.upper()


@dataclass
class ModuleInfo:
    """One parsed file plus the cross-checker derived facts."""

    path: Path
    display_path: str
    tree: ast.Module
    source_lines: list[str]
    #: line number -> set of suppressed rule ids ("all" wildcards everything)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)
    #: local names bound to the numpy package (``import numpy as np``)
    numpy_aliases: set[str] = field(default_factory=set)
    #: local names bound to the numpy.random submodule
    numpy_random_aliases: set[str] = field(default_factory=set)
    #: module-scope bindings: name -> "import" | "def" | "const" | "mutable"
    module_bindings: dict[str, str] = field(default_factory=dict)
    program_classes: list[ast.ClassDef] = field(default_factory=list)

    def suppressed(self, rule: str, line: int) -> bool:
        if "all" in self.file_suppressions or rule in self.file_suppressions:
            return True
        rules = self.suppressions.get(line)
        return rules is not None and ("all" in rules or rule in rules)

    def finding(self, rule: str, node: ast.AST, message: str) -> list[Finding]:
        """Build a one-element finding list unless suppressed (empty then)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(rule, line):
            return []
        return [Finding(rule, self.display_path, line, col, message)]


def _collect_suppressions(info: ModuleInfo) -> None:
    for lineno, text in enumerate(info.source_lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        rules = {r for r in rules if r == "all" or r in RULES}
        if not rules:
            continue
        if m.group("file"):
            if lineno <= 10:
                info.file_suppressions |= rules
        else:
            info.suppressions.setdefault(lineno, set()).update(rules)


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                bound = alias.asname or top
                if alias.name == "numpy.random" and alias.asname:
                    info.numpy_random_aliases.add(alias.asname)
                elif top == "numpy":
                    info.numpy_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        info.numpy_random_aliases.add(alias.asname or "random")


def _collect_module_bindings(info: ModuleInfo) -> None:
    """Top-level name resolution table (no recursion into defs)."""
    bindings = info.module_bindings
    for node in info.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[(alias.asname or alias.name).split(".")[0]] = "import"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings[node.name] = "def"
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        kind = "const" if _is_const_name(sub.id) else "mutable"
                        bindings.setdefault(sub.id, kind)
        elif isinstance(node, (ast.For, ast.While, ast.If, ast.Try, ast.With)):
            # names bound inside top-level control flow are still module
            # state; treat them like plain assignments
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                    kind = "const" if _is_const_name(sub.id) else "mutable"
                    bindings.setdefault(sub.id, kind)


def _collect_program_classes(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else ""
            )
            if name in PROGRAM_BASES:
                info.program_classes.append(node)
                break


def parse_module(path: Path, display_path: str | None = None) -> ModuleInfo | Finding:
    """Parse one file; returns a :class:`ModuleInfo`, or a single
    ``parse-error`` :class:`Finding` when the file is not valid Python."""
    display = display_path if display_path is not None else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return Finding(
            "parse-error", display, err.lineno or 1, err.offset or 0,
            f"syntax error: {err.msg}",
        )
    info = ModuleInfo(
        path=path,
        display_path=display,
        tree=tree,
        source_lines=source.splitlines(),
    )
    _collect_suppressions(info)
    _collect_imports(info)
    _collect_module_bindings(info)
    _collect_program_classes(info)
    return info


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    out: list[Path] = []
    for path in paths:
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            )
        for p in candidates:
            resolved = p.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(p)
    return out
