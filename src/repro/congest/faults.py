"""Fault injection for the CONGEST simulator.

The paper's tree packing is the input to resilient-computation compilers
(Section 1.2, Fischer–Parter [FP23]): with λ edge-disjoint trees, an
adversary controlling fewer than a tree-count's worth of edges cannot stop
information that is replicated across trees. To *demonstrate* that on real
executions, :class:`FaultySimulator` drops messages:

* on a static set of **dead edges** (a crashed link / a sabotaged color
  class), and/or
* independently at a given **drop rate** (a lossy network), and/or
* on a per-round adversarial schedule (``mobile`` mapping rounds to edge
  sets — the FP23 mobile-adversary shape).

Faults act at delivery time, so metrics still count the send (the bandwidth
was spent); protocols built for the fault-free model may stall — that is
the point, and :func:`repro.core.resilient.redundant_broadcast` shows how
tree redundancy buys the deliveries back.

Scenarios are usually described as an
:class:`~repro.congest.adversary.AdversarySchedule` compiled to a
:class:`~repro.congest.adversary.FaultPlan` (pass it as ``plan=``); the
vectorized fault engine (:mod:`repro.engine.faults`) consumes the same plan
and replicates this class's delivery decisions — including the fault RNG
stream, drawn in delivery order — bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro import obs
from repro.congest.adversary import FaultPlan
from repro.congest.network import Network
from repro.congest.simulator import Simulator
from repro.util.rng import ensure_rng

__all__ = ["FaultySimulator"]


class FaultySimulator(Simulator):
    """A :class:`Simulator` whose deliveries can fail.

    Parameters (beyond the base class):

    dead_edges:
        Edge ids that never deliver (static link failures).
    drop_rate:
        Independent per-message drop probability, in the closed interval
        [0, 1] — ``1.0`` is the total-loss boundary adversary (every
        delivery fails; no redundancy can help, by design).
    mobile:
        Optional ``round -> iterable of edge ids`` mapping: edges controlled
        by the adversary in that round only.
    plan:
        A compiled :class:`~repro.congest.adversary.FaultPlan`; merged with
        the explicit ``dead_edges``/``drop_rate``/``mobile`` arguments
        (rates combine as independent coins).
    fault_seed:
        Seed for the drop-rate coin flips. Kept on a dedicated stream,
        independent of the protocol RNG (``seed=``), so varying it never
        changes protocol behavior — only which deliveries fail.
    """

    def __init__(
        self,
        network: Network,
        program_factory,
        dead_edges: Iterable[int] = (),
        drop_rate: float = 0.0,
        mobile: Mapping[int, Iterable[int]] | None = None,
        plan: FaultPlan | None = None,
        fault_seed=0,
        **kwargs,
    ):
        super().__init__(network, program_factory, **kwargs)
        merged = FaultPlan(
            dead_edges=frozenset(int(e) for e in dead_edges),
            drop_rate=float(drop_rate),
            mobile=dict(mobile or {}),
        )
        if plan is not None:
            merged = merged.merged(plan)
        self.plan = merged.validate_for(network.graph.m)
        self.dead_edges = merged.dead_edges
        self.drop_rate = merged.drop_rate
        self._mobile = merged.mobile
        self._fault_rng = ensure_rng(fault_seed)
        self.dropped = 0

    def _deliverable(self, rnd: int, eid: int) -> bool:
        if eid in self.dead_edges:
            self.dropped += 1
            obs.count("faults.dropped")
            return False
        spot = self._mobile.get(rnd)
        if spot is not None and eid in spot:
            self.dropped += 1
            obs.count("faults.dropped")
            return False
        if self.drop_rate > 0.0:
            obs.count("rng.fault_coins")
            if self._fault_rng.random() < self.drop_rate:
                self.dropped += 1
                obs.count("faults.dropped")
                return False
        return True
