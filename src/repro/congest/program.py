"""Node-program API: how a distributed algorithm is expressed.

A CONGEST algorithm is a :class:`NodeProgram` subclass instantiated once per
node. The simulator drives it through two hooks:

* :meth:`NodeProgram.on_start` — round 0, before any message flows; the node
  may send its first messages here.
* :meth:`NodeProgram.on_round` — called in every round in which the node is
  *active* (it received messages, or it asked to be woken via
  :meth:`Context.wake`).

All interaction with the world goes through the :class:`Context` handed to
the hooks — nodes cannot see the graph, other nodes' state, or the future,
enforcing the locality of the model. Shared *common knowledge* (``n``, and
when the paper assumes them, ``δ``, ``λ``, and the public seed of Theorem 2's
zero-communication partition) is exposed read-only via ``ctx.shared``.
"""

from __future__ import annotations

from typing import Any


from repro.util.errors import BandwidthExceeded, ProtocolError

__all__ = ["Context", "NodeProgram"]


class Context:
    """Per-node, per-round interface to the simulator.

    Attributes
    ----------
    node: this node's id (``0..n-1``; doubles as its O(log n)-bit ID).
    n: number of nodes (common knowledge, standard in CONGEST).
    degree: number of ports.
    round: current round number (0-based).
    inbox: list of ``(port, payload)`` delivered this round.
    shared: read-only mapping of common knowledge.
    rng: per-node independent random stream.
    """

    __slots__ = (
        "node",
        "n",
        "degree",
        "round",
        "inbox",
        "shared",
        "rng",
        "_outbox",
        "_wake",
        "_halted",
    )

    def __init__(self, node: int, n: int, degree: int, shared: dict, rng):
        self.node = node
        self.n = n
        self.degree = degree
        self.round = 0
        self.inbox: list[tuple[int, Any]] = []
        self.shared = shared
        self.rng = rng
        self._outbox: dict[int, Any] = {}
        self._wake = False
        self._halted = False

    # -- actions ------------------------------------------------------- #

    def send(self, port: int, payload: Any) -> None:
        """Queue one message on ``port`` for delivery next round.

        At most one message per port per round (CONGEST); a second send on
        the same port in the same round raises :class:`BandwidthExceeded`.
        """
        if not (0 <= port < self.degree):
            raise ProtocolError(
                f"node {self.node} tried to send on nonexistent port {port}"
            )
        if port in self._outbox:
            raise BandwidthExceeded(
                f"node {self.node} sent twice on port {port} in round {self.round}"
            )
        self._outbox[port] = payload

    def send_all(self, payload: Any) -> None:
        """Send the same payload on every port (a local broadcast)."""
        for port in range(self.degree):
            self.send(port, payload)

    def wake(self) -> None:
        """Request activation next round even if no message arrives."""
        self._wake = True

    def halt(self) -> None:
        """Mark this node finished; it will not be activated again."""
        self._halted = True


class NodeProgram:
    """Base class for per-node algorithm state machines.

    Subclasses override :meth:`on_start` and :meth:`on_round`, keep their
    state on ``self``, and publish results into ``self.output`` (a dict the
    driver reads after the run). ``self.output`` is the node's "local
    output" in the sense of the model definition in Section 2 of the paper.
    """

    def __init__(self):
        self.output: dict[str, Any] = {}

    def on_start(self, ctx: Context) -> None:  # pragma: no cover - interface
        """Round-0 hook; override to send initial messages."""

    def on_round(self, ctx: Context) -> None:  # pragma: no cover - interface
        """Per-round hook; override to process ``ctx.inbox`` and reply."""
        raise NotImplementedError
