"""The CONGEST model substrate: a certified synchronous message-passing simulator.

The paper's algorithms live in the CONGEST model [Pel00]: an n-node network,
synchronous rounds, one O(log n)-bit message per edge per round. This package
implements that model directly:

* :class:`~repro.congest.network.Network` — port-numbered topology view,
* :class:`~repro.congest.program.NodeProgram` / ``Context`` — per-node
  algorithm API (nodes see only their ports and inbox),
* :class:`~repro.congest.simulator.Simulator` — the round loop, with
  per-edge bandwidth *enforcement* (violations raise, so reported round
  counts are certified executions),
* :class:`~repro.congest.metrics.Metrics` — rounds, congestion, bits.
"""

from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.congest.simulator import Simulator, SimulationResult
from repro.congest.metrics import Metrics
from repro.congest.adversary import (
    AdversarySchedule,
    FaultPlan,
    MobileAdversary,
    RandomLoss,
    StaticSaboteur,
    TargetedCutAdversary,
    compose_schedules,
)
from repro.congest.faults import FaultySimulator

__all__ = [
    "Network",
    "Context",
    "NodeProgram",
    "Simulator",
    "SimulationResult",
    "Metrics",
    "FaultySimulator",
    "AdversarySchedule",
    "FaultPlan",
    "MobileAdversary",
    "RandomLoss",
    "StaticSaboteur",
    "TargetedCutAdversary",
    "compose_schedules",
    "TournamentCell",
    "TournamentResult",
    "run_tournament",
]

_TOURNAMENT_NAMES = {"TournamentCell", "TournamentResult", "run_tournament"}


def __getattr__(name):
    # Lazy: tournament imports repro.core (which imports this package), so a
    # module-level import here would be circular.
    if name in _TOURNAMENT_NAMES:
        from repro.congest import tournament

        return getattr(tournament, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
