"""Synchronous round-driven CONGEST simulator.

The simulator *is* the model (DESIGN.md §2): per round every node may send
one message of at most ``B = bandwidth_factor · ⌈log₂ n⌉`` bits per incident
edge; messages sent in round r are delivered at the start of round r+1.
Oversized payloads and double-sends raise :class:`BandwidthExceeded` — round
counts reported by a completed run are therefore certified CONGEST
executions, never estimates.

Performance notes (per the hpc-parallel optimization guide — make it work,
measure, then optimize the bottleneck): the loop maintains an **active set**
so rounds where only a frontier of nodes acts cost O(frontier), not O(n);
payload bit-sizing is memoized per run for repeated payload shapes; and
metric updates are O(1) per message. Profiling shows >80% of time is spent
inside the node programs themselves, which is where it should be.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import obs
from repro.congest.metrics import Metrics
from repro.congest.network import Network
from repro.congest.program import Context, NodeProgram
from repro.util.bits import bits_for_payload, message_bit_budget
from repro.util.errors import BandwidthExceeded, ReproError
from repro.util.rng import ensure_rng, spawn_rngs

__all__ = ["Simulator", "SimulationResult"]


def _typed_cache_key(payload):
    """Hashable cache key distinguishing equal-but-differently-typed values.

    ``bits_for_payload`` prices by type (bool: 1 bit, int: magnitude+sign),
    so the memo key must carry element types, not just values.
    """
    cls = payload.__class__
    if cls is tuple or cls is list:
        return (cls.__name__, tuple(_typed_cache_key(item) for item in payload))
    return (cls.__name__, payload)


class SimulationResult:
    """Outcome of one run: per-node programs (with outputs) plus metrics."""

    __slots__ = ("programs", "metrics", "halted")

    def __init__(self, programs: Sequence[NodeProgram], metrics: Metrics, halted: bool):
        self.programs = list(programs)
        self.metrics = metrics
        self.halted = halted

    def outputs(self, key: str) -> list:
        """Collect ``program.output[key]`` from every node."""
        return [p.output.get(key) for p in self.programs]

    def __repr__(self):
        return f"SimulationResult({self.metrics!r}, halted={self.halted})"


class Simulator:
    """Run a :class:`NodeProgram` per node on a :class:`Network`.

    Parameters
    ----------
    network:
        The communication topology.
    program_factory:
        Callable ``node_id -> NodeProgram`` building each node's state
        machine (one fresh instance per node).
    shared:
        Common-knowledge mapping exposed to every node (``n`` is always
        added). The paper's algorithms assume nodes know ``δ`` and ``λ``
        (learnable in Õ(n/δ) rounds, Lemma 4); callers model that by
        placing them here and, if they want end-to-end counts, adding the
        Lemma 4 cost to their round totals.
    bandwidth_factor:
        Hidden constant of the O(log n) bandwidth; see
        :func:`repro.util.bits.message_bit_budget`.
    seed:
        Root seed for the per-node independent random streams.
    """

    def __init__(
        self,
        network: Network,
        program_factory: Callable[[int], NodeProgram],
        shared: dict | None = None,
        bandwidth_factor: int = 8,
        seed=None,
    ):
        self.network = network
        self.n = network.n
        self.budget = message_bit_budget(self.n, bandwidth_factor)
        shared = dict(shared or {})
        shared.setdefault("n", self.n)
        self.shared = shared

        rng = ensure_rng(seed)
        node_rngs = spawn_rngs(rng, self.n)
        self.programs: list[NodeProgram] = []
        self.contexts: list[Context] = []
        for v in range(self.n):
            prog = program_factory(v)
            if not isinstance(prog, NodeProgram):
                raise ReproError(
                    f"program_factory returned {type(prog).__name__}, "
                    "expected a NodeProgram"
                )
            self.programs.append(prog)
            self.contexts.append(
                Context(v, self.n, network.degree(v), self.shared, node_rngs[v])
            )
        self._bitsize_cache: dict = {}

    # ------------------------------------------------------------------ #

    def _payload_bits(self, payload) -> int:
        """Memoized bit size (payloads are overwhelmingly repeated shapes).

        The cache key is *type-aware*: plain value keys would conflate
        payloads that compare equal across types — ``hash(True) == hash(1)``
        and ``(0, 1) == (False, True)`` — and a bool-carrying payload would
        be charged the cached bit size of an equal int payload (1 bit vs 2).
        """
        try:
            key = _typed_cache_key(payload)
            cached = self._bitsize_cache.get(key)
        except TypeError:  # unhashable payload: compute directly
            return bits_for_payload(payload)
        if cached is None:
            cached = bits_for_payload(payload)
            self._bitsize_cache[key] = cached
        return cached

    def run(self, max_rounds: int = 1_000_000) -> SimulationResult:
        """Execute until quiescence, all-halt, or ``max_rounds``.

        Quiescence = no message in flight and no node requesting a wakeup.
        Raises :class:`ReproError` if ``max_rounds`` is hit (a protocol that
        should have terminated didn't — always a bug, never swallowed).
        """
        net = self.network
        graph = net.graph
        metrics = Metrics(m=graph.m)
        budget = self.budget

        with obs.span("simulate.run"):
            result = self._run_rounds(max_rounds, metrics, budget)
        obs.count("simulate.rounds", metrics.rounds)
        obs.count("simulate.messages", metrics.total_messages)
        obs.count("simulate.bits", metrics.total_bits)
        return result

    def _run_rounds(
        self, max_rounds: int, metrics: Metrics, budget: int
    ) -> SimulationResult:
        # round 0: on_start everywhere
        pending: list[tuple[int, int, object, int]] = []  # (dst, port, payload, eid)
        for v in range(self.n):
            ctx = self.contexts[v]
            ctx.round = 0
            self.programs[v].on_start(ctx)
            pending.extend(self._drain_outbox(v, ctx, metrics, budget))
        metrics.rounds = 0

        wake_set = {
            v for v in range(self.n) if self.contexts[v]._wake and not self.contexts[v]._halted
        }
        for ctx in self.contexts:
            ctx._wake = False

        rnd = 0
        while pending or wake_set:
            rnd += 1
            if rnd > max_rounds:
                raise ReproError(
                    f"simulation exceeded max_rounds={max_rounds}; "
                    "protocol failed to terminate"
                )
            # Deliver round (rnd-1) messages; the fault hook may drop some
            # (base implementation delivers everything).
            inboxes: dict[int, list[tuple[int, object]]] = {}
            for dst, dst_port, payload, eid in pending:
                if self._deliverable(rnd, eid):
                    inboxes.setdefault(dst, []).append((dst_port, payload))
            pending = []

            # Canonical activation order (ascending node id). Protocol
            # outputs never depend on it (per-node state is isolated), but
            # the order of the sends it produces fixes next round's delivery
            # order — and therefore the fault RNG consumption order of
            # :class:`repro.congest.faults.FaultySimulator` — so it must be
            # deterministic for the vectorized fault engine
            # (:mod:`repro.engine.faults`) to replicate it bit for bit.
            active = sorted(set(inboxes) | wake_set)
            obs.count("simulate.activations", len(active))
            obs.count("simulate.active_peak", len(active), "max")
            wake_set = set()
            for v in active:
                ctx = self.contexts[v]
                if ctx._halted:
                    # Messages to halted nodes are dropped (they produced
                    # their output already); this matches the convention
                    # that a terminated node ignores its links.
                    continue
                ctx.round = rnd
                ctx.inbox = inboxes.get(v, [])
                self.programs[v].on_round(ctx)
                pending.extend(self._drain_outbox(v, ctx, metrics, budget))
                if ctx._wake and not ctx._halted:
                    wake_set.add(v)
                ctx._wake = False
                ctx.inbox = []
            metrics.rounds = rnd

        halted = all(ctx._halted for ctx in self.contexts)
        return SimulationResult(self.programs, metrics, halted)

    def _drain_outbox(self, v: int, ctx: Context, metrics: Metrics, budget: int):
        """Validate and route node ``v``'s sends; returns delivery triples."""
        net = self.network
        out = []
        for port, payload in ctx._outbox.items():
            bits = self._payload_bits(payload)
            if bits > budget:
                raise BandwidthExceeded(
                    f"node {v} round {ctx.round}: payload of {bits} bits exceeds "
                    f"budget {budget} (payload={payload!r})"
                )
            u = net.neighbor(v, port)
            eid = net.edge_of_port(v, port)
            metrics.record_message(eid, bits)
            out.append((u, net.port_to(u, v), payload, eid))
        ctx._outbox = {}
        return out

    def _deliverable(self, rnd: int, eid: int) -> bool:
        """Fault hook: return False to drop a message on edge ``eid`` at
        delivery time. The base simulator is fault-free; see
        :class:`repro.congest.faults.FaultySimulator`."""
        return True
