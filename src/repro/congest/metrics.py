"""Execution metrics: rounds, congestion, message/bit totals.

The paper reasons about two resources:

* **rounds** — the number of synchronous rounds executed (the headline
  complexity of every theorem), and
* **congestion** — the maximum number of messages any single edge carries
  over the whole execution (Lemma 1 promises O(k); Theorem 12 schedules
  multiple algorithms subject to total congestion).

:class:`Metrics` tracks both exactly, per directed edge, plus total message
and bit counts for the information-theoretic lower-bound harnesses
(Theorem 3 counts bits across a minimum cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Counters accumulated by one :class:`~repro.congest.Simulator` run."""

    m: int
    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    edge_messages: np.ndarray | None = field(default=None)  # per undirected edge

    def __post_init__(self):
        if self.edge_messages is None:
            self.edge_messages = np.zeros(self.m, dtype=np.int64)

    def record_message(self, eid: int, bits: int) -> None:
        self.total_messages += 1
        self.total_bits += bits
        self.edge_messages[eid] += 1

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold ``other`` into self (rounds add; per-edge arrays must match).

        Used by the tracer's counter aggregation and anywhere several
        sub-executions (e.g. per-tree simulator runs) roll up into one
        ledger.
        """
        if other.m != self.m:
            raise ValueError(
                f"cannot merge Metrics over different edge sets "
                f"(m={self.m} vs m={other.m})"
            )
        self.rounds += other.rounds
        self.total_messages += other.total_messages
        self.total_bits += other.total_bits
        self.edge_messages += other.edge_messages
        return self

    @property
    def max_congestion(self) -> int:
        """Max messages over any undirected edge across the execution."""
        return int(self.edge_messages.max()) if self.m else 0

    def bits_across(self, edge_ids: np.ndarray, per_message_bits: int | None = None) -> int:
        """Upper bound on bits sent across the given edge set.

        With ``per_message_bits`` given, charges that many bits per message
        (the Theorem 3 accounting); otherwise returns message count only.
        """
        count = int(self.edge_messages[np.asarray(edge_ids, dtype=np.int64)].sum())
        if per_message_bits is None:
            return count
        return count * per_message_bits

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "messages": self.total_messages,
            "bits": self.total_bits,
            "max_congestion": self.max_congestion,
        }

    def __repr__(self):
        s = self.summary()
        return (
            f"Metrics(rounds={s['rounds']}, messages={s['messages']}, "
            f"max_congestion={s['max_congestion']})"
        )
