"""Port-numbered communication network wrapping a :class:`Graph`.

In the CONGEST model a node does not a-priori know its neighbors' IDs; it
owns *ports* ``0..deg(v)-1``, one per incident edge. The :class:`Network`
fixes a deterministic port numbering (ports sorted by neighbor id, which the
CSR layout of :class:`Graph` already provides) and exposes the three lookups
every protocol needs:

* ``neighbor(v, port)``   — who is at the other end of a port,
* ``port_to(v, u)``       — which local port reaches a known neighbor,
* ``edge_of_port(v, port)`` — the global edge id (used to intersect with the
  Theorem 2 color classes, which are sets of *edges*).

Protocols are free to learn neighbor IDs by exchanging them in round one
(an O(1)-round, O(log n)-bit-per-edge step), matching standard CONGEST
conventions.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.util.errors import ValidationError

__all__ = ["Network"]


class Network:
    """Immutable port-numbered view of a graph."""

    __slots__ = ("graph", "n")

    def __init__(self, graph: Graph):
        self.graph = graph
        self.n = graph.n

    def degree(self, v: int) -> int:
        return self.graph.degree(v)

    def neighbor(self, v: int, port: int) -> int:
        """Node at the far end of ``(v, port)``."""
        nbrs = self.graph.neighbors(v)
        if not (0 <= port < len(nbrs)):
            raise ValidationError(f"node {v} has no port {port}")
        return int(nbrs[port])

    def neighbors(self, v: int) -> np.ndarray:
        """All neighbors of ``v`` in port order (a view)."""
        return self.graph.neighbors(v)

    def port_to(self, v: int, u: int) -> int:
        """Local port of ``v`` whose edge reaches ``u``."""
        nbrs = self.graph.neighbors(v)
        i = int(np.searchsorted(nbrs, u))
        if i >= len(nbrs) or nbrs[i] != u:
            raise ValidationError(f"{u} is not a neighbor of {v}")
        return i

    def edge_of_port(self, v: int, port: int) -> int:
        """Global edge id behind ``(v, port)``."""
        eids = self.graph.incident_edge_ids(v)
        if not (0 <= port < len(eids)):
            raise ValidationError(f"node {v} has no port {port}")
        return int(eids[port])

    def ports_for_edges(self, v: int, edge_ids) -> list[int]:
        """Ports of ``v`` whose edges are in ``edge_ids`` (for color classes).

        ``edge_ids`` may be a boolean edge mask of shape ``(m,)`` (one fancy
        gather), or any set/sequence of edge ids (``np.isin`` over the port
        edge-id array). Both are vectorized — this is called O(n·λ') times
        during parallel-BFS setup, so the old per-port Python loop dominated
        channel construction.
        """
        eids = self.graph.incident_edge_ids(v)
        if isinstance(edge_ids, np.ndarray) and edge_ids.dtype == np.bool_:
            if edge_ids.shape != (self.graph.m,):
                raise ValidationError(
                    f"edge mask shape {edge_ids.shape} does not match "
                    f"m={self.graph.m}"
                )
            selected = edge_ids[eids]
        else:
            if isinstance(edge_ids, (set, frozenset)):
                edge_ids = np.fromiter(
                    edge_ids, dtype=np.int64, count=len(edge_ids)
                )
            ids = np.asarray(edge_ids, dtype=np.int64)
            if (
                ids.shape == (self.graph.m,)
                and ids.size > 2
                and np.isin(ids, (0, 1)).all()
            ):
                raise ValidationError(
                    "ambiguous edge selector: a 0/1 sequence of length m "
                    "looks like a mask but is not bool-typed; pass a bool "
                    "mask or explicit edge ids"
                )
            selected = np.isin(eids, ids)
        return np.nonzero(selected)[0].tolist()
