"""Composable adversary scenario library for resilience experiments.

The paper's tree packing exists to feed resilient computation (Section 1.2,
the Fischer–Parter [FP23] compiler); :mod:`repro.congest.faults` injects the
failures and :func:`repro.core.resilient.redundant_broadcast` measures what
redundancy buys back. This module names the *adversaries* themselves, so an
experiment reads as "run scenario X at redundancy r" instead of hand-rolled
edge sets:

* :class:`StaticSaboteur` — a fixed set of dead links (a crashed switch, a
  sabotaged packing color class via :func:`repro.core.resilient.tree_edge_ids`).
* :class:`MobileAdversary` — the FP23 mobile-adversary shape: a round-scoped
  ``round -> edge set`` schedule, with :meth:`MobileAdversary.sweeping` as a
  convenience builder that rotates a budget of controlled edges over a pool.
* :class:`RandomLoss` — i.i.d. per-message loss (a lossy network rather than
  an adversary proper, but the standard baseline).
* :class:`TargetedCutAdversary` — connects Theorem 7 back to Theorems 1/2:
  the attacker runs :func:`repro.cuts.approx.approx_all_cuts`, estimates cut
  values *from the sparsifier alone* (what a compromised node could actually
  compute), and saboteurs the lightest cut it can afford — the worst place
  to lose edges, since the cut's bandwidth is exactly what Theorem 1's
  pipeline leans on.

Every schedule compiles down to a :class:`FaultPlan` — the
``(dead_edges, drop_rate, mobile)`` triple that both
:class:`repro.congest.faults.FaultySimulator` and the vectorized fault
engine (:mod:`repro.engine.faults`) consume, so one scenario definition
drives both backends. Schedules compose with ``+`` (dead edges and mobile
rounds union; independent loss rates combine as ``1 - prod(1 - p_i)``, which
keeps the single-coin-per-message delivery semantics of the simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.graphs.graph import Graph
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "FaultPlan",
    "AdversarySchedule",
    "StaticSaboteur",
    "MobileAdversary",
    "RandomLoss",
    "TargetedCutAdversary",
    "compose_schedules",
]


@dataclass(frozen=True)
class FaultPlan:
    """A compiled fault scenario: exactly what the delivery hook checks.

    ``dead_edges`` never deliver; ``mobile[r]`` are the adversary's edges in
    (delivery) round ``r`` only; ``drop_rate`` is the i.i.d. per-message loss
    probability, decided by one fault-RNG coin per surviving message in
    delivery order — the contract both backends implement identically.
    """

    dead_edges: frozenset[int] = frozenset()
    drop_rate: float = 0.0
    mobile: Mapping[int, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(
            self, "dead_edges", frozenset(int(e) for e in self.dead_edges)
        )
        if not (0.0 <= self.drop_rate <= 1.0):
            raise ValidationError("drop_rate must be in [0, 1]")
        object.__setattr__(
            self,
            "mobile",
            {
                int(r): frozenset(int(e) for e in es)
                for r, es in dict(self.mobile).items()
            },
        )

    @property
    def is_null(self) -> bool:
        return not self.dead_edges and not self.mobile and self.drop_rate == 0.0

    def validate_for(self, m: int) -> "FaultPlan":
        """Check every edge id targets a real edge of an ``m``-edge graph.

        Both delivery hooks call this, so a typo'd edge id fails loudly and
        identically on both backends instead of being silently ignored by
        the simulator's set-membership test and crashing (positive overflow)
        or aliasing a real edge (negative id) in the vectorized mask.
        """
        bad = [e for e in self.dead_edges if not (0 <= e < m)]
        for r, es in self.mobile.items():
            bad.extend(e for e in es if not (0 <= e < m))
        if bad:
            raise ValidationError(
                f"fault plan targets nonexistent edge ids {sorted(set(bad))[:8]} "
                f"(graph has {m} edges)"
            )
        return self

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans (loss rates combine as independent coins)."""
        mobile: dict[int, frozenset[int]] = dict(self.mobile)
        for r, es in other.mobile.items():
            mobile[r] = mobile.get(r, frozenset()) | es
        rate = 1.0 - (1.0 - self.drop_rate) * (1.0 - other.drop_rate)
        return FaultPlan(self.dead_edges | other.dead_edges, rate, mobile)

    def to_json(self) -> dict:
        """JSON-able form (sorted lists, string round keys) for artifacts."""
        return {
            "dead_edges": sorted(self.dead_edges),
            "drop_rate": self.drop_rate,
            "mobile": {str(r): sorted(es) for r, es in sorted(self.mobile.items())},
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultPlan":
        return cls(
            dead_edges=frozenset(data.get("dead_edges", ())),
            drop_rate=float(data.get("drop_rate", 0.0)),
            mobile={int(r): frozenset(es) for r, es in data.get("mobile", {}).items()},
        )


class AdversarySchedule:
    """Base class: a scenario that compiles to a :class:`FaultPlan`.

    ``compile`` receives the host graph and (optionally) the tree packing
    under attack, so informed adversaries — the targeted-cut attacker, a
    tree saboteur — can aim; oblivious ones ignore both.
    """

    def compile(self, graph: Graph, packing=None) -> FaultPlan:
        raise NotImplementedError

    def to_json(self) -> dict:
        """Tagged JSON-able form; ``from_json`` inverts it.

        Round-trip contract (tested): ``from_json(s.to_json())`` compiles to
        the same :class:`FaultPlan` as ``s`` on any graph/packing.
        """
        raise NotImplementedError

    @staticmethod
    def from_json(data: Mapping) -> "AdversarySchedule":
        """Rebuild any schedule from its :meth:`to_json` dict."""
        kind = data.get("type")
        if kind == "static":
            return StaticSaboteur(
                dead_edges=data.get("dead_edges", ()),
                tree_index=data.get("tree_index"),
            )
        if kind == "mobile":
            return MobileAdversary(
                {int(r): es for r, es in data.get("mobile", {}).items()}
            )
        if kind == "loss":
            return RandomLoss(float(data["rate"]))
        if kind == "targeted-cut":
            return TargetedCutAdversary(
                eps=float(data.get("eps", 0.4)),
                budget=data.get("budget"),
                candidates=int(data.get("candidates", 32)),
                seed=int(data.get("seed", 0)),
                tau=data.get("tau"),
                backend=data.get("backend", "vectorized"),
            )
        if kind == "composed":
            return _Composed(
                [AdversarySchedule.from_json(p) for p in data.get("parts", ())]
            )
        raise ValidationError(f"unknown adversary schedule type {kind!r}")

    def __add__(self, other: "AdversarySchedule") -> "AdversarySchedule":
        if not isinstance(other, AdversarySchedule):
            return NotImplemented
        return _Composed([self, other])


class _Composed(AdversarySchedule):
    def __init__(self, parts: list[AdversarySchedule]):
        self.parts: list[AdversarySchedule] = []
        for p in parts:  # flatten so a + b + c keeps one level
            self.parts.extend(p.parts if isinstance(p, _Composed) else [p])

    def compile(self, graph: Graph, packing=None) -> FaultPlan:
        plan = FaultPlan()
        for p in self.parts:
            plan = plan.merged(p.compile(graph, packing=packing))
        return plan

    def to_json(self) -> dict:
        return {"type": "composed", "parts": [p.to_json() for p in self.parts]}


def compose_schedules(*schedules: AdversarySchedule) -> AdversarySchedule:
    """Explicit n-ary composition (equivalent to summing with ``+``)."""
    return _Composed(list(schedules))


class StaticSaboteur(AdversarySchedule):
    """Permanently dead links. ``tree_index`` (with a packing) kills one
    whole color class — the canonical Section 1.2 saboteur."""

    def __init__(self, dead_edges: Iterable[int] = (), tree_index: int | None = None):
        self.dead_edges = frozenset(int(e) for e in dead_edges)
        self.tree_index = tree_index

    def compile(self, graph: Graph, packing=None) -> FaultPlan:
        dead = self.dead_edges
        if self.tree_index is not None:
            if packing is None:
                raise ValidationError(
                    "StaticSaboteur(tree_index=...) needs the packing under attack"
                )
            from repro.core.resilient import tree_edge_ids

            dead = dead | tree_edge_ids(packing, self.tree_index)
        return FaultPlan(dead_edges=dead)

    def to_json(self) -> dict:
        return {
            "type": "static",
            "dead_edges": sorted(self.dead_edges),
            "tree_index": self.tree_index,
        }


class MobileAdversary(AdversarySchedule):
    """Round-scoped control: ``mobile[r]`` edges drop deliveries of round r."""

    def __init__(self, mobile: Mapping[int, Iterable[int]]):
        self.mobile = {
            int(r): frozenset(int(e) for e in es) for r, es in dict(mobile).items()
        }

    @classmethod
    def sweeping(
        cls,
        edge_ids: Iterable[int],
        budget: int,
        rounds: int,
        start: int = 1,
    ) -> "MobileAdversary":
        """Rotate a ``budget``-edge foothold over ``edge_ids`` for ``rounds``
        delivery rounds starting at ``start`` — the FP23 mobile shape where
        the adversary moves but never controls more than its budget at once.
        """
        pool = [int(e) for e in edge_ids]
        if budget < 1 or not pool:
            raise ValidationError("sweeping adversary needs a pool and budget >= 1")
        sched: dict[int, set[int]] = {}
        for i in range(rounds):
            lo = (i * budget) % len(pool)
            window = [pool[(lo + j) % len(pool)] for j in range(min(budget, len(pool)))]
            sched[start + i] = set(window)
        return cls(sched)

    def compile(self, graph: Graph, packing=None) -> FaultPlan:
        return FaultPlan(mobile=self.mobile)

    def to_json(self) -> dict:
        return {
            "type": "mobile",
            "mobile": {str(r): sorted(es) for r, es in sorted(self.mobile.items())},
        }


class RandomLoss(AdversarySchedule):
    """i.i.d. loss: each delivery independently dropped with prob ``rate``
    (closed interval — ``rate=1.0`` is the total-loss boundary case)."""

    def __init__(self, rate: float):
        if not (0.0 <= rate <= 1.0):
            raise ValidationError("drop_rate must be in [0, 1]")
        self.rate = float(rate)

    def compile(self, graph: Graph, packing=None) -> FaultPlan:
        return FaultPlan(drop_rate=self.rate)

    def to_json(self) -> dict:
        return {"type": "loss", "rate": self.rate}


class TargetedCutAdversary(AdversarySchedule):
    """Kill the lightest approximate cut (Theorem 7 turned against Theorem 1).

    The attacker runs :func:`repro.cuts.approx.approx_all_cuts` — so it only
    ever sees the ε-sparsifier every node ends up holding — scores candidate
    cuts on it (all single-node cuts plus ``candidates`` random sides), and
    statically kills the crossing edges of the cheapest side it can afford:

    * with ``budget=None`` it takes the overall lightest candidate cut;
    * with a budget it prefers the lightest candidate whose whole crossing
      set fits the budget (actually disconnecting something), falling back
      to the ``budget`` lowest-weight crossing edges of the lightest cut.

    ``cuts_result`` lets callers reuse an existing Theorem 7 run (the
    amortization Section 1 suggests); otherwise one is computed with the
    given backend.
    """

    def __init__(
        self,
        eps: float = 0.4,
        budget: int | None = None,
        candidates: int = 32,
        seed: int = 0,
        tau: int | None = None,
        backend: str = "vectorized",
        cuts_result=None,
    ):
        if budget is not None and budget < 1:
            raise ValidationError("budget must be >= 1 (or None for unlimited)")
        self.eps = float(eps)
        self.budget = budget
        self.candidates = int(candidates)
        self.seed = int(seed)
        self.tau = tau
        self.backend = backend
        self.cuts_result = cuts_result
        # compile() is deterministic per graph but runs the whole Theorem 7
        # pipeline; memoize so a redundancy sweep pays for it once.
        self._plan_cache: dict[Graph, FaultPlan] = {}

    def to_json(self) -> dict:
        # cuts_result (a live Theorem 7 object) is deliberately not
        # serialized — from_json recomputes it, deterministically, from the
        # recorded (eps, seed, tau, backend).
        return {
            "type": "targeted-cut",
            "eps": self.eps,
            "budget": self.budget,
            "candidates": self.candidates,
            "seed": self.seed,
            "tau": self.tau,
            "backend": self.backend,
        }

    # -- internals --------------------------------------------------------- #

    @staticmethod
    def _crossing_edges(graph: Graph, side: np.ndarray) -> np.ndarray:
        u = graph.edge_u
        v = graph.edge_v
        return np.nonzero(side[u] != side[v])[0]

    def compile(self, graph: Graph, packing=None) -> FaultPlan:
        from repro.cuts.approx import approx_all_cuts

        cached = self._plan_cache.get(graph)
        if cached is not None:
            return cached
        res = self.cuts_result
        if res is None:
            res = approx_all_cuts(
                graph,
                eps=self.eps,
                seed=self.seed,
                tau=self.tau,
                backend=self.backend,
            )
        n = graph.n
        H = res.sparsifier.sparsifier
        # All n degree cuts scored in one pass: cut_H({v}) is just v's
        # weighted degree in the sparsifier — never materialize n side
        # vectors (that would be O(n^2) memory at the scale E16 targets).
        hw = H.weights if H.weights is not None else np.ones(H.m)
        deg_h = np.zeros(n)
        np.add.at(deg_h, H.edge_u, hw)
        np.add.at(deg_h, H.edge_v, hw)
        # Candidate stream: (estimated value, first-seen order, side-or-node),
        # singletons first (order = node id), then the random balanced sides.
        scored: list[tuple[float, int, object]] = [
            (float(deg_h[v]), v, v) for v in range(n)
        ]
        rng = ensure_rng(self.seed)
        for j in range(self.candidates):
            side = rng.random(n) < 0.5
            if side.any() and not side.all():
                scored.append((float(res.estimate_cut(side)), n + j, side))
        scored.sort(key=lambda t: (t[0], t[1]))

        def crossing(entry) -> np.ndarray:
            return (
                graph.incident_edge_ids(entry)
                if isinstance(entry, int)
                else self._crossing_edges(graph, entry)
            )

        choice = None
        if self.budget is not None:
            degrees = graph.degrees()
            for _value, _i, entry in scored:
                size = (
                    int(degrees[entry])
                    if isinstance(entry, int)
                    else self._crossing_edges(graph, entry).size
                )
                if size <= self.budget:
                    choice = entry
                    break
        if choice is None:
            choice = scored[0][2]
        crossing_ids = np.sort(crossing(choice))
        if self.budget is not None and crossing_ids.size > self.budget:
            w = (
                graph.weights[crossing_ids]
                if graph.weights is not None
                else np.zeros(crossing_ids.size)
            )
            order = np.lexsort((crossing_ids, w))  # lightest first, ids break ties
            crossing_ids = crossing_ids[order][: self.budget]
        plan = FaultPlan(dead_edges=frozenset(int(e) for e in crossing_ids))
        self._plan_cache[graph] = plan
        return plan
