"""Adversary tournament: every attack vs every countermeasure, scored.

E16 ended one-sided: the targeted-cut adversary (Theorem 7 turned against
Theorem 1) beheads a shared-root packing for the price of one node's degree,
and no redundancy level helps, because every color class pipes through the
same root. This module closes the loop. It round-robins the scenario library
of :mod:`repro.congest.adversary` against the countermeasure grid the repo
now has — root policies (:func:`repro.core.tree_packing.resolve_roots`),
redundancy levels, and the coverage-repair loop
(:func:`repro.core.resilient.repair_coverage`) — at *matched fault budgets*,
so every cell answers "what does this defense buy against this attack for
the same adversarial spend?".

Each cell scores:

* ``min_coverage`` — the attack's headline damage (before repair),
* ``repaired_min_coverage`` — what graceful degradation buys back,
* ``rounds`` / ``total_bits`` — the certified CONGEST price actually paid,
* ``repair_rounds`` / ``rebuilt`` / ``rerooted`` — what the repair cost.

Wall clocks deliberately stay *out* of the cells: a
:class:`TournamentResult` is bit-identical across backends (asserted by
``engine/verify.py``'s ``check_tournament``), and timing belongs to the
bench layer (``benchmarks/bench_e17_tournament.py``).

Budgets are matched as follows, for a tournament budget ``B`` (default: the
degree of node 0 — the leader-degree cut E16 exploited): the static
saboteur kills the first ``B`` edges of packed tree 0; the mobile adversary
sweeps tree 0's edges with a ``B``-edge per-round foothold; i.i.d. loss runs
at rate ``B/m`` (the same expected number of controlled edges); the
targeted-cut attacker gets a ``B``-edge cut budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.congest.adversary import (
    AdversarySchedule,
    MobileAdversary,
    RandomLoss,
    StaticSaboteur,
    TargetedCutAdversary,
)
from repro.graphs.graph import Graph
from repro.util.errors import ValidationError

__all__ = [
    "DEFAULT_ADVERSARIES",
    "DEFAULT_DEFENSES",
    "SCENARIOS",
    "TournamentCell",
    "TournamentResult",
    "parse_defense",
    "run_tournament",
]


# --------------------------------------------------------------------------- #
# Scenario registry — name -> (doc, budget-matched factory)
# --------------------------------------------------------------------------- #

def _scenario_dead_tree(ctx, packing) -> AdversarySchedule:
    from repro.core.resilient import tree_edge_ids

    ids = sorted(tree_edge_ids(packing, 0))[: ctx.budget]
    return StaticSaboteur(dead_edges=ids)


def _scenario_mobile(ctx, packing) -> AdversarySchedule:
    from repro.core.resilient import tree_edge_ids

    pool = sorted(tree_edge_ids(packing, 0))
    return MobileAdversary.sweeping(
        pool, budget=min(ctx.budget, len(pool)), rounds=ctx.mobile_rounds
    )


def _scenario_loss(ctx, packing) -> AdversarySchedule:
    return RandomLoss(min(1.0, ctx.budget / max(1, ctx.graph.m)))


def _scenario_targeted_cut(ctx, packing) -> AdversarySchedule:
    # One shared instance per tournament: compile() memoizes the Theorem 7
    # run per graph, so the defense sweep pays for the attacker's cut
    # computation exactly once.
    return ctx.targeted


#: name -> (description, factory(ctx, packing)). Factories are private —
#: the scored surface is :func:`run_tournament`.
SCENARIOS: dict[str, tuple[str, object]] = {
    "dead-tree": (
        "static saboteur: the first B edges of packed tree 0 stay dead",
        _scenario_dead_tree,
    ),
    "mobile": (
        "FP23 mobile adversary: a B-edge foothold sweeping tree 0's edges",
        _scenario_mobile,
    ),
    "loss": (
        "i.i.d. delivery loss at rate B/m (same expected adversarial spend)",
        _scenario_loss,
    ),
    "targeted-cut": (
        "Theorem 7 attacker: kills the lightest approximate cut within B edges",
        _scenario_targeted_cut,
    ),
}

DEFAULT_ADVERSARIES = ("dead-tree", "mobile", "loss", "targeted-cut")

#: Defense grid entries are ``<root-policy>-r<redundancy>`` strings.
DEFAULT_DEFENSES = (
    "shared-r1",
    "shared-r2",
    "spread-r1",
    "spread-r2",
    "cut-aware-r2",
)


def parse_defense(spec: str) -> tuple[str, int]:
    """``"spread-r2"`` -> ``("spread", 2)``; validates both halves."""
    from repro.core.tree_packing import ROOT_POLICIES

    policy, sep, r = spec.rpartition("-r")
    if not sep or not r.isdigit() or policy not in ROOT_POLICIES:
        raise ValidationError(
            f"unknown defense {spec!r}; expected <policy>-r<int> with policy "
            f"in {ROOT_POLICIES}, e.g. 'spread-r2'"
        )
    return policy, int(r)


@dataclass
class TournamentCell:
    """One (adversary, defense) match at a fixed budget."""

    adversary: str
    defense: str
    budget: int
    min_coverage: float
    mean_coverage: float
    fully_delivered: int
    k: int
    rounds: int
    dropped: int
    total_messages: int
    total_bits: int
    repaired_min_coverage: float
    repair_rounds: int
    repair_attempts: int
    rerooted: int
    rebuilt: bool

    def to_row(self) -> dict:
        return {
            "adversary": self.adversary,
            "defense": self.defense,
            "budget": self.budget,
            "min_coverage": round(self.min_coverage, 6),
            "mean_coverage": round(self.mean_coverage, 6),
            "fully_delivered": self.fully_delivered,
            "k": self.k,
            "rounds": self.rounds,
            "dropped": self.dropped,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "repaired_min_coverage": round(self.repaired_min_coverage, 6),
            "repair_rounds": self.repair_rounds,
            "repair_attempts": self.repair_attempts,
            "rerooted": self.rerooted,
            "rebuilt": self.rebuilt,
        }


@dataclass
class TournamentResult:
    """The full scored surface of one tournament run."""

    n: int
    k: int
    parts: int
    budget: int
    backend: str
    adversaries: list[str]
    defenses: list[str]
    cells: list[TournamentCell] = field(default_factory=list)
    attacks: dict[str, dict] = field(default_factory=dict)

    def cell(self, adversary: str, defense: str) -> TournamentCell:
        for c in self.cells:
            if c.adversary == adversary and c.defense == defense:
                return c
        raise KeyError((adversary, defense))

    def best_defense(self, adversary: str) -> TournamentCell:
        """Highest post-repair min-coverage; ties go to fewer repair rounds."""
        cells = [c for c in self.cells if c.adversary == adversary]
        return max(
            cells, key=lambda c: (c.repaired_min_coverage, -c.repair_rounds)
        )

    def to_payload(self) -> dict:
        """JSON-able artifact: the scored grid plus the exact attacks run."""
        return {
            "n": self.n,
            "k": self.k,
            "parts": self.parts,
            "budget": self.budget,
            "backend": self.backend,
            "adversaries": list(self.adversaries),
            "defenses": list(self.defenses),
            "attacks": dict(self.attacks),
            "cells": [c.to_row() for c in self.cells],
        }


class _TournamentContext:
    """Per-run shared state handed to the scenario factories."""

    def __init__(self, graph: Graph, budget: int, seed: int, mobile_rounds: int):
        self.graph = graph
        self.budget = budget
        self.seed = seed
        self.mobile_rounds = mobile_rounds
        # The attacker's Theorem 7 run always uses the (certified
        # bit-identical) vectorized pipeline, so the recorded attack — and
        # with it the whole payload modulo the report backend — is the same
        # whichever backend the *protocol* runs on.
        self.targeted = TargetedCutAdversary(budget=budget, seed=seed)


def run_tournament(
    graph: Graph,
    k: int,
    parts: int,
    budget: int | None = None,
    adversaries=None,
    defenses=None,
    seed: int = 0,
    backend: str = "simulator",
    mobile_rounds: int = 4096,
    max_reroots: int = 4,
    placement: dict[int, int] | None = None,
) -> TournamentResult:
    """Round-robin every adversary against every defense at one budget.

    One packing is built per root policy appearing in ``defenses`` (all on
    the same decomposition seed, so the only degree of freedom between
    defenses is what the defense actually claims to change), one placement
    is drawn (or taken from ``placement`` — e.g. to keep sources off the
    node a cut attacker isolates, where *no* defense can deliver from), and
    every (adversary, defense) pair runs
    :func:`repro.core.resilient.repair_coverage` — the cell scores both the
    raw attack damage and what detection + re-rooting bought back.

    Unknown adversary names raise :class:`~repro.util.errors.ValidationError`
    listing the registry. Deterministic per (graph, seed, budget) and
    bit-identical across backends — no wall clocks inside.
    """
    from repro.core.broadcast import uniform_random_placement
    from repro.core.resilient import FaultCell, evaluate_fault_grid, repair_coverage
    from repro.core.tree_packing import build_packing_with_retry

    adversaries = list(adversaries if adversaries is not None else DEFAULT_ADVERSARIES)
    defenses = list(defenses if defenses is not None else DEFAULT_DEFENSES)
    unknown = [a for a in adversaries if a not in SCENARIOS]
    if unknown:
        raise ValidationError(
            f"unknown adversary scenario(s) {unknown}; known: {sorted(SCENARIOS)}"
        )
    parsed = {d: parse_defense(d) for d in defenses}
    if budget is None:
        budget = int(graph.degrees()[0])  # the E16 leader-degree cut
    if budget < 1:
        raise ValidationError("tournament budget must be >= 1")

    ctx = _TournamentContext(graph, budget, seed, mobile_rounds)
    packings = {}
    for policy in {p for p, _r in parsed.values()}:
        packings[policy], _ = build_packing_with_retry(
            graph, parts, seed=seed, roots=policy, backend=backend
        )
    if placement is None:
        placement = uniform_random_placement(graph.n, k, seed=seed + 1)
    k = sum(placement.values())

    result = TournamentResult(
        n=graph.n, k=k, parts=parts, budget=budget, backend=backend,
        adversaries=adversaries, defenses=defenses,
    )
    jobs = []
    for name in adversaries:
        _doc, factory = SCENARIOS[name]
        for d in defenses:
            policy, r = parsed[d]
            adv = factory(ctx, packings[policy])
            if name not in result.attacks:
                result.attacks[name] = adv.to_json()
            jobs.append((name, d, policy, r, adv))

    # Initial (pre-repair) reports: one evaluate_fault_grid call per packing,
    # so every cell sharing a root policy also shares the broadcast prologue
    # (numbering, tree views, channel splits) — bit-identical to the solo
    # redundant_broadcast each repair_coverage call would otherwise run.
    by_policy: dict[str, list[int]] = {}
    for i, (_name, _d, policy, _r, _adv) in enumerate(jobs):
        by_policy.setdefault(policy, []).append(i)
    initial_reports = [None] * len(jobs)
    for policy, idxs in by_policy.items():
        grid = evaluate_fault_grid(
            graph,
            placement,
            packings[policy],
            [FaultCell(redundancy=jobs[i][3], adversary=jobs[i][4]) for i in idxs],
            seed=seed,
            backend=backend,
        )
        for i, rep in zip(idxs, grid):
            initial_reports[i] = rep

    for (name, d, policy, r, adv), rep0 in zip(jobs, initial_reports):
        out = repair_coverage(
            graph,
            placement,
            packings[policy],
            redundancy=r,
            adversary=adv,
            seed=seed,
            backend=backend,
            max_reroots=max_reroots,
            initial_report=rep0,
        )
        rep = out.initial
        covs = list(rep.per_message_coverage.values())
        result.cells.append(TournamentCell(
            adversary=name,
            defense=d,
            budget=budget,
            min_coverage=rep.min_coverage,
            mean_coverage=sum(covs) / len(covs) if covs else 1.0,
            fully_delivered=rep.fully_delivered,
            k=rep.k,
            rounds=rep.rounds,
            dropped=rep.dropped_messages,
            total_messages=rep.total_messages,
            total_bits=rep.total_bits,
            repaired_min_coverage=out.final.min_coverage,
            repair_rounds=out.repair_rounds,
            repair_attempts=out.attempts,
            rerooted=len(out.rerooted),
            rebuilt=out.rebuilt,
        ))
    return result
