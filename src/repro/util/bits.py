"""Bit-size accounting for CONGEST messages.

The CONGEST model allows each edge to carry ``O(log n)`` bits per round. To
make round counts *certified* rather than estimated, every payload the
simulator transports must have a computable bit size; the transport compares
it against the budget :func:`message_bit_budget` and refuses oversized
messages.

Payloads are plain Python data (ints, strings, tuples/lists thereof, and
``None``). Sizes are charged conservatively:

* ``int x``   → ``max(1, bit_length(|x|)) + 1`` (sign bit),
* ``str s``   → ``8 * len(utf8(s))``,
* ``None``    → 1 bit (presence flag),
* sequences   → sum of element sizes (framing is charged to the protocol's
  constant factor, consistent with the paper's ``O(log n)``-bit messages).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

__all__ = [
    "bits_for_int",
    "bits_for_int_array",
    "bits_for_payload",
    "message_bit_budget",
]


def bits_for_int(x: int) -> int:
    """Bits to encode a (signed) integer: magnitude bits plus a sign bit."""
    return max(1, int(x).bit_length()) + 1


def bits_for_int_array(xs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bits_for_int` over an int64 array.

    Uses ``frexp`` for the bit length (exact for magnitudes below 2**53,
    far beyond any message id the protocols carry).
    """
    xs = np.abs(np.asarray(xs, dtype=np.int64))
    if xs.size and xs.max() >= (1 << 53):
        return np.array([bits_for_int(int(x)) for x in xs], dtype=np.int64)
    _, exponents = np.frexp(xs.astype(np.float64))
    return np.maximum(1, exponents).astype(np.int64) + 1


def bits_for_payload(payload: Any) -> int:
    """Conservative bit size of an arbitrary nested payload."""
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return bits_for_int(payload)
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, 8 * len(payload.encode("utf-8")))
    if isinstance(payload, (tuple, list)):
        # An empty frame still occupies at least a presence bit.
        return max(1, sum(bits_for_payload(item) for item in payload))
    # numpy scalar integers quack like ints
    try:
        return bits_for_int(int(payload))
    except (TypeError, ValueError):
        raise TypeError(
            f"payload element of type {type(payload).__name__} has no defined bit size"
        ) from None


def message_bit_budget(n: int, bandwidth_factor: int = 8) -> int:
    """Per-edge-per-round budget ``B = bandwidth_factor * ceil(log2 n)``.

    ``bandwidth_factor`` is the hidden constant of the model's ``O(log n)``;
    the default 8 comfortably fits a small tagged tuple of node IDs — e.g.
    ``(channel, kind, node_id, distance)`` — which is what the protocols in
    this library actually send.
    """
    # Floor the log factor at 4 so protocols on toy graphs (n < 16) are not
    # starved below any realistic word size; the model constant only matters
    # asymptotically.
    if n < 2:
        return 4 * bandwidth_factor
    return bandwidth_factor * max(4, math.ceil(math.log2(n)))
