"""Exception hierarchy for the repro package.

Errors are deliberately loud: the CONGEST simulator raises
:class:`BandwidthExceeded` instead of silently truncating a message, and
validators raise :class:`ValidationError` with a human-readable account of
which invariant failed. This mirrors the paper's "with high probability"
guarantees — when a w.h.p. event fails (it can, for tiny constants), the
caller finds out immediately.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError):
    """An invariant promised by a theorem/lemma failed to hold.

    Carries optional structured ``details`` so tests and benchmark harnesses
    can introspect what went wrong without parsing the message string.
    """

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.details = details


class BandwidthExceeded(ReproError):
    """A node attempted to violate the CONGEST bandwidth constraint.

    Raised when a payload exceeds the per-edge-per-round bit budget, or when
    a node tries to enqueue a second message on the same directed edge in a
    single round.
    """


class ProtocolError(ReproError):
    """A distributed protocol reached a state its specification forbids.

    Examples: a BFS node receiving a layer announcement from a non-neighbor,
    or a pipelined broadcast receiving an out-of-order packet.
    """
