"""Deterministic randomness plumbing.

Every randomized algorithm in the library accepts either an integer seed or a
ready-made :class:`numpy.random.Generator`. Independent sub-streams (e.g. one
per spanning subgraph, one per node) are derived with :func:`spawn_rngs`,
which uses NumPy's ``Generator.spawn`` — the recommended way to obtain
statistically independent child streams — so that no two components ever
share a stream by accident.

The paper's Theorem 2 relies on *shared* randomness: both endpoints of an
edge must agree on the edge's color without communication. We model that
with :func:`derive_seed`, a pure function of ``(root_seed, *key)`` — any
party that knows the public seed and the edge identity computes the same
color, exactly like the paper's "let u decide" convention but symmetric.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["ensure_rng", "rng_from_seed", "spawn_rngs", "derive_seed"]


def rng_from_seed(seed: int | None) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed (or fresh entropy)."""
    return np.random.Generator(np.random.PCG64(seed))


def ensure_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an ``int`` seed, or an existing
    generator (returned unchanged, so callers can thread one stream through
    a pipeline).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None or isinstance(seed_or_rng, (int, np.integer)):
        return rng_from_seed(None if seed_or_rng is None else int(seed_or_rng))
    raise TypeError(
        f"expected int seed, numpy Generator, or None; got {type(seed_or_rng).__name__}"
    )


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(rng.spawn(count))


def derive_seed(root_seed: int, *key: int | str) -> int:
    """Pure function mapping ``(root_seed, key...)`` to a 63-bit seed.

    Used for the zero-communication edge coloring of Theorem 2: both
    endpoints of edge ``{u, v}`` call ``derive_seed(seed, "edge", eid)`` and
    obtain the same stream, so the partition needs no messages. SHA-256 is
    used (rather than Python ``hash``) for cross-process stability.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for part in key:
        h.update(b"\x1f")
        h.update(str(part).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)
