"""Minimal plain-text table rendering for benchmark harness output.

Every benchmark in :mod:`benchmarks` prints the rows it measured in a fixed
column layout so that EXPERIMENTS.md can quote the output verbatim. No
third-party tabulation dependency is used (offline environment).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_float"]


def format_float(x: float | None, digits: int = 3) -> str:
    """Compact float formatting: integers render bare, others fixed-point."""
    if x is None:
        return "-"
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.{digits}f}"


class Table:
    """Accumulate rows, then render with aligned columns.

    >>> t = Table(["n", "rounds"], title="demo")
    >>> t.add_row([100, 42])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        self.columns = list(columns)
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        row = [format_float(v) if isinstance(v, float) else str(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render() + "\n", flush=True)
