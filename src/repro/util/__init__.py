"""Shared utilities: seeded RNG streams, bit accounting, table formatting.

These helpers are deliberately tiny and dependency-light; every randomized
component in :mod:`repro` threads its randomness through :func:`rng_from_seed`
/ :func:`spawn_rngs` so that experiments are exactly reproducible.
"""

from repro.util.bits import bits_for_int, bits_for_payload, message_bit_budget
from repro.util.errors import (
    ReproError,
    ValidationError,
    BandwidthExceeded,
    ProtocolError,
)
from repro.util.rng import ensure_rng, rng_from_seed, spawn_rngs, derive_seed
from repro.util.tables import Table, format_float

__all__ = [
    "bits_for_int",
    "bits_for_payload",
    "message_bit_budget",
    "ReproError",
    "ValidationError",
    "BandwidthExceeded",
    "ProtocolError",
    "ensure_rng",
    "rng_from_seed",
    "spawn_rngs",
    "derive_seed",
    "Table",
    "format_float",
]
