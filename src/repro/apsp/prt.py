"""Peleg–Roditty–Tal exact unweighted APSP via delayed BFS waves [PRT12].

The algorithm Theorem 4 simulates on the cluster graph:

1. A DFS from an arbitrary node assigns each node ``u`` the timestamp
   ``π(u)`` at which the DFS tour first reaches it (tour length ≤ 2(n-1)).
2. Every node starts a BFS *wave* at time ``2·π(u)``; waves flood one hop
   per round. PRT's theorem: **no node is hit by two different waves in the
   same round**, so each node forwards at most one wave origin per round and
   O(log n) bits per edge suffice.
3. Node ``v`` hit by a wave at time ``t`` learns ``d(u, v) = t - 2π(u)``.

We execute the schedule and *assert* the collision-freeness invariant —
i.e. the simulation is certified, not assumed. Virtual round count is
``max_{u,v} (2π(u) + d(u,v)) = O(n)``; the paper's Lemma 6 charges 3 real
CONGEST rounds per virtual round when run over the cluster graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.util.errors import ProtocolError, ValidationError

__all__ = ["PRTResult", "dfs_timestamps", "prt_apsp"]


def dfs_timestamps(graph: Graph, start: int = 0) -> np.ndarray:
    """First-visit times π(u) of an iterative DFS tour from ``start``.

    The tour advances one edge per time unit; retreating along a tree edge
    also costs one unit (the walk is physical — it is executed by a token
    moving in the network), so all timestamps are ≤ 2(n-1).
    """
    n = graph.n
    pi = np.full(n, -1, dtype=np.int64)
    pi[start] = 0
    clock = 0
    # Iterative DFS keeping an explicit path for the retreat cost.
    stack = [(start, iter(graph.neighbors(start).tolist()))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if pi[nxt] < 0:
                clock += 1
                pi[nxt] = clock
                stack.append((nxt, iter(graph.neighbors(nxt).tolist())))
                advanced = True
                break
        if not advanced:
            stack.pop()
            if stack:
                clock += 1  # retreat edge
    if np.any(pi < 0):
        raise ValidationError("DFS did not reach every node (disconnected?)")
    return pi


@dataclass
class PRTResult:
    """Exact APSP plus the certified schedule statistics."""

    dist: np.ndarray  # (n, n) exact hop distances
    pi: np.ndarray  # DFS timestamps
    virtual_rounds: int  # completion time of the last wave
    collisions_checked: bool

    @property
    def n(self) -> int:
        return self.dist.shape[0]


def prt_apsp(graph: Graph, start: int = 0) -> PRTResult:
    """Run the PRT12 schedule and certify its no-collision invariant.

    Raises :class:`ProtocolError` if two waves would hit one node in the
    same round (PRT prove this cannot happen; hitting the assertion would
    mean our DFS timestamps violate their precondition).
    """
    n = graph.n
    pi = dfs_timestamps(graph, start)
    dist = np.empty((n, n), dtype=np.int64)
    for u in range(n):
        du = bfs_distances(graph, u)
        if np.any(du < 0):
            raise ValidationError("PRT needs a connected graph")
        dist[u] = du

    # Arrival time of wave u at node v: 2π(u) + d(u, v).
    arrivals = 2 * pi[:, None] + dist  # (u, v)
    # Collision check: for each v, all arrival times distinct — one sort per
    # column instead of n python-level np.unique calls.
    ordered = np.sort(arrivals, axis=0)
    collided = (ordered[1:] == ordered[:-1]).any(axis=0)
    if collided.any():
        v = int(np.nonzero(collided)[0][0])
        raise ProtocolError(
            f"PRT collision at node {v}: two waves in one round "
            "(violates [PRT12] Lemma 3.1)"
        )
    virtual_rounds = int(arrivals.max()) + 1
    return PRTResult(
        dist=dist, pi=pi, virtual_rounds=virtual_rounds, collisions_checked=True
    )
