"""Approximate weighted APSP via spanner broadcast (Theorem 5, Corollary 1).

Pipeline: build a Baswana–Sen (2k−1)-spanner (O(k²) rounds charged), then
broadcast its ``m̃ = O(k·n^{1+1/k})`` edges with the Theorem 1 broadcast
(real simulation — one message per spanner edge), after which every node
knows the whole spanner and computes all distances locally. Total:
``O(k²) + Õ(m̃/λ)`` rounds — Theorem 5. Corollary 1 instantiates
``k = ⌈log n / log log n⌉`` for Õ(n/λ) rounds and O(log n/log log n) stretch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.apsp.spanner import SpannerResult, baswana_sen_spanner
from repro.core.broadcast import fast_broadcast
from repro.graphs.graph import Graph
from repro.util.errors import ValidationError

__all__ = [
    "WeightedAPSPResult",
    "approx_apsp_weighted",
    "corollary1_k",
    "check_weighted_stretch",
]


def corollary1_k(n: int) -> int:
    """Corollary 1's ``k = ⌈log n / log log n⌉`` (at least 2)."""
    if n < 3:
        return 2
    ln = math.log(n)
    return max(2, math.ceil(ln / math.log(max(math.e, ln))))


@dataclass
class WeightedAPSPResult:
    """Spanner-based distance estimates with the round ledger."""

    estimate: np.ndarray  # (n, n) spanner distances (every node knows these)
    spanner: SpannerResult
    k: int
    simulated_rounds: dict[str, int] = field(default_factory=dict)
    charged_rounds: dict[str, int] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return sum(self.simulated_rounds.values()) + sum(self.charged_rounds.values())

    @property
    def messages_broadcast(self) -> int:
        return self.spanner.m


def approx_apsp_weighted(
    graph: Graph,
    k: int,
    lam: int | None = None,
    C: float = 2.0,
    seed: int = 0,
    backend: str = "simulator",
) -> WeightedAPSPResult:
    """Theorem 5: (2k−1)-approximate weighted APSP in Õ(n^{1+1/k}/λ) rounds.

    The spanner edges are the broadcast payload: one message per edge,
    placed at the edge's lower-id endpoint (that node knows the edge and its
    weight locally).

    backend: ``"simulator"`` (default) runs the per-node [BS07] rules and
        the CONGEST-simulated broadcast; ``"vectorized"`` computes the
        bit-identical spanner, estimates, and round ledgers with the numpy
        engine (:mod:`repro.engine`).
    """
    from scipy.sparse.csgraph import dijkstra

    if graph.weights is None:
        raise ValidationError(
            "approx_apsp_weighted expects a weighted graph; "
            "use approx_apsp_unweighted for unweighted inputs"
        )
    sp = baswana_sen_spanner(graph, k, seed=seed, backend=backend)

    # Broadcast one message per spanner edge, held by its lower endpoint.
    placement: dict[int, int] = {}
    for eid in sp.edge_ids.tolist():
        u, _v = graph.edge_endpoints(eid)
        placement[u] = placement.get(u, 0) + 1
    bres = fast_broadcast(
        graph,
        placement,
        lam=lam,
        C=C,
        seed=seed,
        distributed_packing=False,
        backend=backend,
    )

    estimate = dijkstra(sp.spanner.to_scipy_csr(), directed=False)
    return WeightedAPSPResult(
        estimate=estimate,
        spanner=sp,
        k=k,
        simulated_rounds={"broadcast_spanner": bres.rounds},
        charged_rounds={"baswana_sen": sp.charged_rounds},
    )


def check_weighted_stretch(
    graph: Graph, estimate: np.ndarray, k: int
) -> tuple[bool, float]:
    """Verify ``d ≤ d̃ ≤ (2k−1)·d`` for all pairs; returns (ok, max stretch)."""
    from scipy.sparse.csgraph import dijkstra

    exact = dijkstra(graph.to_scipy_csr(), directed=False)
    if np.isinf(exact).any():
        raise ValidationError("graph must be connected")
    lower_ok = bool((estimate >= exact - 1e-9).all())
    with np.errstate(divide="ignore", invalid="ignore"):
        stretch = np.where(exact > 0, estimate / np.maximum(exact, 1e-300), 1.0)
    worst = float(stretch.max())
    return lower_ok and worst <= 2 * k - 1 + 1e-9, worst
