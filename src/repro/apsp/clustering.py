"""Constant-diameter clustering for Theorem 4 (Section 4.1).

Sample every node as a *center* independently with probability
``p = c ln n / δ``; since every node has ≥ δ neighbors, w.h.p. every node is
adjacent to a center (union bound: failure ≤ n · (1-p)^δ ≤ n^{1-c}).
Every non-center joins a neighboring center's cluster via ``s(v)``; centers
join themselves. The **cluster graph** G_c has the centers as nodes and an
edge {c_i, c_j} whenever some G-edge runs between their clusters — so
d_G(s(u), s(v)) ≤ 3·d_{G_c}(s(u), s(v)) (each virtual edge expands to ≤ 3
G-edges), the key inequality behind the (3, 2)-approximation (Lemma 7).

The whole construction costs **one CONGEST round**: centers announce
themselves to their neighbors; everything else is local choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = ["Clustering", "build_clustering", "center_sampling_probability"]


def center_sampling_probability(n: int, delta: int, c: float = 3.0) -> float:
    """Theorem 4's ``p = c ln n / δ`` (capped at 1)."""
    if delta < 1:
        raise ValidationError("δ must be >= 1")
    return min(1.0, c * math.log(max(n, 2)) / delta)


@dataclass
class Clustering:
    """Clusters, the membership map s(·), and the virtual cluster graph.

    Attributes
    ----------
    centers: node ids of the sampled centers, sorted; cluster ``i`` is
        centered at ``centers[i]``.
    s: ``s[v]`` = cluster index (into ``centers``) of node v's cluster.
    cluster_graph: the virtual graph G_c on cluster indices.
    rounds: CONGEST rounds spent (1: the center announcement).
    """

    graph: Graph
    centers: list[int]
    s: np.ndarray
    cluster_graph: Graph
    rounds: int

    @property
    def k(self) -> int:
        """Number of clusters (the paper's k in Section 4.1)."""
        return len(self.centers)

    def center_of(self, v: int) -> int:
        return self.centers[int(self.s[v])]

    def members(self, i: int) -> np.ndarray:
        return np.nonzero(self.s == i)[0]

    def validate(self) -> None:
        """Check the structural invariants Lemma 7's proof uses."""
        g = self.graph
        for v in range(g.n):
            cv = self.center_of(v)
            if v != cv and not g.has_edge(v, cv):
                raise ValidationError(
                    f"node {v} joined non-adjacent center {cv}"
                )
        # Every cluster-graph edge is witnessed by a G-edge and vice versa.
        expected = set()
        for u, v in g.edges():
            cu, cv = int(self.s[u]), int(self.s[v])
            if cu != cv:
                expected.add((min(cu, cv), max(cu, cv)))
        actual = set(self.cluster_graph.edges())
        if expected != actual:
            raise ValidationError("cluster graph edges inconsistent with G")


def build_clustering(graph: Graph, c: float = 3.0, seed=None, max_tries: int = 20) -> Clustering:
    """Sample centers and build the cluster graph (Theorem 4, step 1).

    Retries (fresh coins) if some node has no center neighbor — the paper's
    w.h.p. event; with the default c = 3 a retry is rare already at n ≈ 100.
    Ties (several center neighbors) resolve to the smallest center id,
    matching the deterministic conventions used elsewhere.

    The center assignment and cluster-graph contraction run as O(n + m)
    whole-array sweeps (:mod:`repro.engine.pipelines`) — a straight port of
    the per-node/per-edge reference loops with identical outputs for every
    seed; ``tests/test_engine_equivalence.py`` cross-checks the port against
    :func:`_reference_attempt` on random graphs. Both backends of the APSP
    pipeline share this construction (it is one local CONGEST round, not a
    simulated protocol).
    """
    from repro.engine.pipelines import assign_centers, contract_clusters

    rng = ensure_rng(seed)
    delta = graph.min_degree()
    p = center_sampling_probability(graph.n, delta, c)
    for _ in range(max_tries):
        is_center = rng.random(graph.n) < p
        if not is_center.any():
            continue
        assigned = assign_centers(graph, is_center)
        if assigned is None:  # some node saw no center neighbor: fresh coins
            continue
        centers, s = assigned
        cluster_graph = contract_clusters(graph, s, len(centers))
        return Clustering(
            graph=graph,
            centers=[int(v) for v in centers.tolist()],
            s=s,
            cluster_graph=cluster_graph,
            rounds=1,
        )
    raise ValidationError(
        "clustering failed: some node had no center neighbor in "
        f"{max_tries} attempts (increase c; δ={delta} may be too small "
        f"for n={graph.n})"
    )


def _reference_attempt(
    graph: Graph, is_center: np.ndarray
) -> tuple[list[int], np.ndarray, Graph] | None:
    """Per-node/per-edge reference for one clustering attempt.

    The pre-vectorization loops, kept verbatim as the ground truth the
    equivalence suite certifies the O(n + m) port against. Returns
    ``(centers, s, cluster_graph)`` or ``None`` on the retry event.
    """
    centers = np.nonzero(is_center)[0]
    index_of = {int(v): i for i, v in enumerate(centers.tolist())}
    s = np.full(graph.n, -1, dtype=np.int64)
    for v in range(graph.n):
        if is_center[v]:
            s[v] = index_of[v]
            continue
        nbrs = graph.neighbors(v)
        center_nbrs = nbrs[is_center[nbrs]]
        if center_nbrs.size == 0:
            return None
        s[v] = index_of[int(center_nbrs[0])]
    edges = set()
    for u, v in graph.edges():
        cu, cv = int(s[u]), int(s[v])
        if cu != cv:
            edges.add((min(cu, cv), max(cu, cv)))
    return [int(v) for v in centers.tolist()], s, Graph(len(centers), sorted(edges))
