"""Baswana–Sen (2k−1)-spanners for weighted graphs [BS07].

Theorem 5 broadcasts a spanner, so the substrate must *build* one: this is a
full implementation of the Baswana–Sen randomized clustering algorithm —
k−1 cluster-sampling phases followed by the cluster-joining phase — which
produces a (2k−1)-spanner with expected ``O(k · n^{1+1/k})`` edges. The
distributed version runs in O(k²) CONGEST rounds (the paper's charge); the
computation here follows the per-node local rules verbatim, so the output
distribution matches the distributed execution.

Invariants tested in ``tests/test_spanner.py``:

* stretch: ``d_H(u,v) ≤ (2k−1)·d_G(u,v)`` for all pairs,
* size: |E_H| concentrated around ``k·n^{1+1/k}``,
* H ⊆ G with original weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = ["SpannerResult", "baswana_sen_spanner", "check_spanner_stretch"]


@dataclass
class SpannerResult:
    """A spanner subgraph plus its construction accounting."""

    spanner: Graph
    k: int
    edge_ids: np.ndarray  # ids (in the host graph) of the spanner edges
    charged_rounds: int  # O(k²), the paper's CONGEST cost for [BS07]

    @property
    def m(self) -> int:
        return self.spanner.m

    def expected_size_bound(self, n: int) -> float:
        return self.k * n ** (1.0 + 1.0 / self.k)


def _lightest_per_cluster(
    graph: Graph, v: int, cluster_of: np.ndarray
) -> dict[int, tuple[float, int]]:
    """For node v: cluster -> (weight, edge id) of the lightest edge into it.

    Clusters are identified by center id; ``-1`` entries in ``cluster_of``
    (unclustered neighbors) are skipped. Ties break toward the smaller edge
    id for determinism.
    """
    best: dict[int, tuple[float, int]] = {}
    nbrs = graph.neighbors(v)
    eids = graph.incident_edge_ids(v)
    for u, eid in zip(nbrs.tolist(), eids.tolist()):
        cu = int(cluster_of[u])
        if cu < 0:
            continue
        w = graph.edge_weight(eid)
        cur = best.get(cu)
        if cur is None or (w, eid) < cur:
            best[cu] = (w, eid)
    return best


def baswana_sen_spanner(
    graph: Graph, k: int, seed=None, backend: str = "simulator"
) -> SpannerResult:
    """Construct a (2k−1)-spanner with expected O(k·n^{1+1/k}) edges.

    ``k = 1`` returns the graph itself (stretch 1). Unweighted graphs are
    treated as weight-1 graphs (the standard reduction).

    backend: ``"simulator"`` (default) executes the per-node local rules
        verbatim, one node at a time — the faithful rendering of the
        distributed [BS07] execution; ``"vectorized"`` computes the
        bit-identical edge set (same RNG draws, same tie-breaks) with the
        whole-array sweeps of :mod:`repro.engine.pipelines`, which is what
        lets the Koutis–Xu sparsifier and Theorem 5 APSP run at sizes the
        per-node loops cannot reach.
    """
    from repro.engine import validate_backend

    validate_backend(backend)
    if k < 1:
        raise ValidationError("k must be >= 1")
    n = graph.n
    if k == 1:
        return SpannerResult(
            spanner=graph,
            k=1,
            edge_ids=np.arange(graph.m, dtype=np.int64),
            charged_rounds=1,
        )
    rng = ensure_rng(seed)
    p = n ** (-1.0 / k)

    if backend == "vectorized":
        from repro.engine.pipelines import vectorized_spanner_edges

        ids = vectorized_spanner_edges(graph, k, rng, p)
    else:
        ids = _reference_spanner_edges(graph, k, rng, p)
    mask = np.zeros(graph.m, dtype=bool)
    mask[ids] = True
    sub = graph.edge_subgraph(mask)
    return SpannerResult(spanner=sub, k=k, edge_ids=ids, charged_rounds=k * k)


def _reference_spanner_edges(
    graph: Graph, k: int, rng, p: float
) -> np.ndarray:
    """Per-node-loop [BS07] execution: the ``backend="simulator"`` path."""
    n = graph.n
    spanner_edges: set[int] = set()
    # cluster_of[v] = center id of v's cluster at the current level, -1 if v
    # has left the clustering.
    cluster_of = np.arange(n, dtype=np.int64)  # level 0: singletons
    active = np.ones(n, dtype=bool)  # still clustered

    for _phase in range(k - 1):
        centers = np.unique(cluster_of[active & (cluster_of >= 0)])
        sampled_mask = rng.random(len(centers)) < p
        sampled = set(centers[sampled_mask].tolist())

        new_cluster = np.full(n, -1, dtype=np.int64)
        # Sampled clusters survive wholesale.
        for v in range(n):
            if active[v] and int(cluster_of[v]) in sampled:
                new_cluster[v] = cluster_of[v]

        for v in range(n):
            if not active[v] or int(cluster_of[v]) in sampled:
                continue
            best = _lightest_per_cluster(graph, v, np.where(active, cluster_of, -1))
            best_sampled: tuple[float, int, int] | None = None  # (w, eid, center)
            for center, (w, eid) in best.items():
                if center in sampled:
                    cand = (w, eid, center)
                    if best_sampled is None or cand < best_sampled:
                        best_sampled = cand
            if best_sampled is None:
                # No sampled neighbor cluster: add lightest edge to *every*
                # neighboring cluster; v leaves the clustering.
                for center, (w, eid) in best.items():
                    spanner_edges.add(eid)
                new_cluster[v] = -1
            else:
                # Join the lightest sampled cluster; also add the lightest
                # edge to each neighboring cluster strictly lighter than it.
                w_s, eid_s, center_s = best_sampled
                spanner_edges.add(eid_s)
                new_cluster[v] = center_s
                for center, (w, eid) in best.items():
                    if (w, eid) < (w_s, eid_s):
                        spanner_edges.add(eid)
        cluster_of = new_cluster
        active = cluster_of >= 0

    # Phase 2: every node (clustered or not) connects to each adjacent
    # surviving cluster with its lightest edge.
    final_clusters = np.where(active, cluster_of, -1)
    for v in range(n):
        best = _lightest_per_cluster(graph, v, final_clusters)
        for center, (w, eid) in best.items():
            if active[v] and int(cluster_of[v]) == center:
                continue  # intra-cluster edges are not needed
            spanner_edges.add(eid)

    return np.array(sorted(spanner_edges), dtype=np.int64)


def check_spanner_stretch(graph: Graph, spanner: Graph, k: int) -> tuple[bool, float]:
    """Verify ``d_H ≤ (2k−1)·d_G`` for all pairs; returns (ok, max stretch).

    Uses scipy's compiled Dijkstra on both graphs; infinite spanner
    distances (disconnection) fail immediately.
    """
    from scipy.sparse.csgraph import dijkstra

    dg = dijkstra(graph.to_scipy_csr(), directed=False)
    dh = dijkstra(spanner.to_scipy_csr(), directed=False)
    if np.isinf(dh).any():
        return False, float("inf")
    with np.errstate(divide="ignore", invalid="ignore"):
        stretch = np.where(dg > 0, dh / np.maximum(dg, 1e-300), 1.0)
    worst = float(stretch.max())
    return worst <= 2 * k - 1 + 1e-9, worst
