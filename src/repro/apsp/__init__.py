"""Approximate APSP applications of the broadcast algorithm (Section 4).

* :mod:`~repro.apsp.clustering` — Õ(n/δ) constant-diameter clusters.
* :mod:`~repro.apsp.prt` — Peleg–Roditty–Tal exact APSP (delayed BFS waves),
  run on the cluster graph.
* :mod:`~repro.apsp.unweighted` — Theorem 4: (3, 2)-approximation in Õ(n/λ).
* :mod:`~repro.apsp.spanner` — Baswana–Sen (2k−1)-spanners.
* :mod:`~repro.apsp.weighted` — Theorem 5 / Corollary 1: weighted APSP via
  spanner broadcast.
"""

from repro.apsp.clustering import (
    Clustering,
    build_clustering,
    center_sampling_probability,
)
from repro.apsp.prt import PRTResult, dfs_timestamps, prt_apsp
from repro.apsp.unweighted import (
    ApproxAPSPResult,
    approx_apsp_unweighted,
    check_32_approximation,
)
from repro.apsp.spanner import SpannerResult, baswana_sen_spanner, check_spanner_stretch
from repro.apsp.weighted import (
    WeightedAPSPResult,
    approx_apsp_weighted,
    corollary1_k,
    check_weighted_stretch,
)

__all__ = [
    "Clustering",
    "build_clustering",
    "center_sampling_probability",
    "PRTResult",
    "dfs_timestamps",
    "prt_apsp",
    "ApproxAPSPResult",
    "approx_apsp_unweighted",
    "check_32_approximation",
    "SpannerResult",
    "baswana_sen_spanner",
    "check_spanner_stretch",
    "WeightedAPSPResult",
    "approx_apsp_weighted",
    "corollary1_k",
    "check_weighted_stretch",
]
