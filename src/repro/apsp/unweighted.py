"""(3, 2)-approximate unweighted APSP in Õ(n/λ) rounds (Theorem 4).

Pipeline (Section 4.1), with the round ledger split into *simulated* phases
(executed on the CONGEST simulator, certified counts) and *charged* phases
(cluster-graph computations the paper itself accounts analytically via its
3-rounds-per-virtual-round simulation, Lemma 6):

1. **Clustering** — 1 round (center announcement), then local choice.
2. **Cluster graph neighbor discovery** — centers gather their G_c
   neighborhoods; O(k) rounds charged (k = number of clusters = Õ(n/δ)).
3. **PRT12 APSP on G_c** — executed and certified by
   :mod:`repro.apsp.prt`; charged 3 G-rounds per virtual round (Lemma 6).
4. **Broadcast of s(·)** — n messages through the *real* Theorem 1
   broadcast on the simulator (this is where the paper's own broadcast
   result does the heavy lifting).
5. **Intra-cluster dissemination** — each center streams its k distances to
   its members over the direct member–center edges; k + O(1) rounds charged
   (all clusters in parallel, disjoint stars).
6. Locally: ``d'(u, v) = 3·d_{G_c}(s(u), s(v)) + 2`` (Lemma 7), 0 on the
   diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apsp.clustering import Clustering, build_clustering
from repro.apsp.prt import PRTResult, prt_apsp
from repro.core.broadcast import fast_broadcast
from repro.graphs.graph import Graph
from repro.graphs.traversal import all_pairs_distances
from repro.util.errors import ValidationError

__all__ = ["ApproxAPSPResult", "approx_apsp_unweighted", "check_32_approximation"]


@dataclass
class ApproxAPSPResult:
    """Distance estimates plus the complete round ledger."""

    estimate: np.ndarray  # (n, n) estimated distances
    clustering: Clustering
    prt: PRTResult
    simulated_rounds: dict[str, int] = field(default_factory=dict)
    charged_rounds: dict[str, int] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return sum(self.simulated_rounds.values()) + sum(self.charged_rounds.values())

    @property
    def k_clusters(self) -> int:
        return self.clustering.k


def approx_apsp_unweighted(
    graph: Graph,
    lam: int | None = None,
    c: float = 3.0,
    C: float = 2.0,
    seed: int = 0,
    backend: str = "simulator",
) -> ApproxAPSPResult:
    """Theorem 4: (3, 2)-approximate APSP in Õ(n/λ) rounds.

    backend: ``"simulator"`` (default) runs the broadcast phase — the
        simulated, round-dominating part of the pipeline — on the CONGEST
        simulator; ``"vectorized"`` produces the bit-identical result
        (same estimates, same cluster assignments, same simulated + charged
        ledgers) via the numpy engine (:mod:`repro.engine`). Clustering and
        PRT are shared local computations, identical on both backends.
    """
    from repro.engine import validate_backend

    validate_backend(backend)
    clustering = build_clustering(graph, c=c, seed=seed)
    k = clustering.k

    prt = prt_apsp(clustering.cluster_graph)

    # Phase 4: broadcast s(v) for every v — n messages, one per node, via
    # the real Theorem 1 machinery.
    placement = {v: 1 for v in range(graph.n)}
    bres = fast_broadcast(
        graph,
        placement,
        lam=lam,
        C=C,
        seed=seed,
        distributed_packing=False,
        backend=backend,
    )

    s = clustering.s
    dgc = prt.dist  # exact distances on the cluster graph
    estimate = 3 * dgc[s][:, s] + 2
    np.fill_diagonal(estimate, 0)

    return ApproxAPSPResult(
        estimate=estimate,
        clustering=clustering,
        prt=prt,
        simulated_rounds={"broadcast_s": bres.rounds},
        charged_rounds={
            "clustering": clustering.rounds,
            "learn_cluster_neighbors": k,
            "prt_on_cluster_graph": 3 * prt.virtual_rounds,
            "intra_cluster_distances": k + 2,
        },
    )


def check_32_approximation(graph: Graph, estimate: np.ndarray) -> tuple[bool, float]:
    """Verify ``d ≤ d̃ ≤ 3d + 2`` for all pairs; returns (ok, worst ratio).

    The worst ratio reported is ``max (d̃ - 2)/d`` over pairs with d ≥ 1 —
    ≤ 3 exactly when the multiplicative part of the guarantee holds.
    """
    exact = all_pairs_distances(graph)
    if np.any(exact < 0):
        raise ValidationError("graph must be connected")
    n = graph.n
    off = ~np.eye(n, dtype=bool)
    lower_ok = bool((estimate[off] >= exact[off]).all())
    upper_ok = bool((estimate[off] <= 3 * exact[off] + 2).all())
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = (estimate - 2) / np.maximum(exact, 1)
    worst = float(ratios[off & (exact >= 1)].max())
    return lower_ok and upper_ok, worst
