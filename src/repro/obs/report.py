"""Loading and summarizing trace artifacts (``repro trace``).

Reads either artifact format the :class:`~repro.obs.tracer.Tracer` emits —
JSONL (``.jsonl``) or Chrome trace-event JSON — back into a uniform
``(spans, counters)`` shape, validates the schema, and renders the
per-phase attribution table plus the top counters. The loader is also the
schema smoke test CI runs against the E13 quick-mode trace artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.tracer import SpanRecord
from repro.util.errors import ValidationError

__all__ = ["PhaseStats", "TraceData", "format_report", "load_trace", "phase_stats"]


@dataclass
class TraceData:
    """One loaded trace: finished spans plus ``{name: (mode, value)}``."""

    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, tuple[str, int | float]] = field(default_factory=dict)

    @property
    def wall_clock(self) -> float:
        """End of the last span minus start of the first (seconds)."""
        if not self.spans:
            return 0.0
        start = min(rec.start for rec in self.spans)
        end = max(rec.start + rec.dur for rec in self.spans)
        return end - start


def _span_from_dict(rec: dict, where: str) -> SpanRecord:
    try:
        return SpanRecord(
            sid=int(rec["sid"]),
            parent=None if rec.get("parent") is None else int(rec["parent"]),
            depth=int(rec["depth"]),
            name=str(rec["name"]),
            start=float(rec["start"]),
            dur=float(rec["dur"]),
            rss_kb=int(rec.get("rss_kb", 0)),
        )
    except (KeyError, TypeError, ValueError) as err:
        raise ValidationError(f"{where}: malformed span record {rec!r}") from err


def _load_jsonl(lines: list[str], where: str) -> TraceData:
    data = TraceData()
    for i, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValidationError(f"{where}:{i}: not JSON: {err}") from err
        kind = rec.get("type")
        if kind == "meta":
            continue
        if kind == "span":
            data.spans.append(_span_from_dict(rec, f"{where}:{i}"))
        elif kind == "counter":
            data.counters[str(rec["name"])] = (
                str(rec.get("mode", "sum")),
                rec["value"],
            )
        else:
            raise ValidationError(f"{where}:{i}: unknown record type {kind!r}")
    return data


def _load_chrome(payload: dict, where: str) -> TraceData:
    if not isinstance(payload, dict):
        raise ValidationError(f"{where}: not a Chrome trace object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValidationError(f"{where}: no traceEvents array — not a Chrome trace")
    data = TraceData()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValidationError(f"{where}: traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph == "X":
            args = ev.get("args") or {}
            data.spans.append(
                _span_from_dict(
                    {
                        "sid": args.get("sid", i),
                        "parent": args.get("parent"),
                        "depth": args.get("depth", 0),
                        "name": ev.get("name"),
                        "start": float(ev.get("ts", 0.0)) / 1e6,
                        "dur": float(ev.get("dur", 0.0)) / 1e6,
                        "rss_kb": args.get("rss_kb", 0),
                    },
                    f"{where}: traceEvents[{i}]",
                )
            )
        elif ph == "C":
            name = str(ev.get("name"))
            args = ev.get("args") or {}
            if name not in args:
                raise ValidationError(
                    f"{where}: counter event {name!r} lacks its value"
                )
            data.counters[name] = (str(args.get("mode", "sum")), args[name])
    return data


def load_trace(path: str | Path) -> TraceData:
    """Load a trace artifact in either format (raises ``ValidationError``)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise ValidationError(f"cannot read trace {path}: {err}") from err
    stripped = text.lstrip()
    if not stripped:
        raise ValidationError(f"{path}: empty trace file")
    if path.suffix == ".jsonl" or stripped.splitlines()[0].lstrip().startswith(
        '{"type"'
    ):
        return _load_jsonl(text.splitlines(), str(path))
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as err:
        raise ValidationError(f"{path}: not JSON: {err}") from err
    return _load_chrome(payload, str(path))


@dataclass
class PhaseStats:
    """Aggregate of every span sharing one name."""

    name: str
    calls: int = 0
    total: float = 0.0  # summed durations (seconds)
    self_time: float = 0.0  # total minus direct children (seconds)
    rss_kb: int = 0  # summed peak-RSS deltas


def phase_stats(data: TraceData) -> list[PhaseStats]:
    """Per-phase aggregation, sorted by total time descending.

    Self time subtracts each span's *direct* children from its own
    duration, so a parent phase that merely wraps instrumented subphases
    reports only its bookkeeping overhead as self time.
    """
    child_time: dict[int, float] = {}
    for rec in data.spans:
        if rec.parent is not None:
            child_time[rec.parent] = child_time.get(rec.parent, 0.0) + rec.dur
    stats: dict[str, PhaseStats] = {}
    for rec in data.spans:
        st = stats.setdefault(rec.name, PhaseStats(rec.name))
        st.calls += 1
        st.total += rec.dur
        st.self_time += rec.dur - child_time.get(rec.sid, 0.0)
        st.rss_kb += rec.rss_kb
    return sorted(stats.values(), key=lambda s: (-s.total, s.name))


def format_report(data: TraceData, top_counters: int = 20) -> str:
    """Human-readable per-phase table + top counters for ``repro trace``."""
    lines: list[str] = []
    wall = data.wall_clock
    lines.append(
        f"trace: {len(data.spans)} spans, {len(data.counters)} counters, "
        f"wall {wall:.4f}s"
    )
    stats = phase_stats(data)
    if stats:
        name_w = max(5, max(len(s.name) for s in stats))
        lines.append(
            f"{'phase':<{name_w}} {'calls':>6} {'total_s':>9} {'self_s':>9} "
            f"{'share':>6} {'rss_kb':>8}"
        )
        for st in stats:
            share = st.total / wall if wall > 0 else 0.0
            lines.append(
                f"{st.name:<{name_w}} {st.calls:>6} {st.total:>9.4f} "
                f"{st.self_time:>9.4f} {share:>6.1%} {st.rss_kb:>8}"
            )
    if data.counters:
        lines.append("")
        lines.append("counters:")
        by_magnitude = sorted(
            data.counters.items(), key=lambda kv: (-abs(float(kv[1][1])), kv[0])
        )[:top_counters]
        name_w = max(7, max(len(name) for name, _ in by_magnitude))
        for name, (mode, value) in by_magnitude:
            shown = f"{value:.4f}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{name_w}} {shown:>14}  ({mode})")
    return "\n".join(lines)
