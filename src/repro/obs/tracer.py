"""The tracing/metrics core: context-var-scoped :class:`Tracer`.

One tracer records two kinds of telemetry:

* **Spans** — named wall-clock intervals with nesting. Each span captures
  ``time.perf_counter`` at entry/exit plus the peak-RSS delta across the
  interval (``resource.getrusage`` where available). Spans form a tree via
  parent ids, so per-phase *self* time (total minus children) is
  recoverable by :mod:`repro.obs.report`.

* **Typed counters** — named scalars with an aggregation mode: ``"sum"``
  accumulates (SpMV passes, frontier populations, memo hits), ``"max"``
  keeps the peak (queue depths, span-batch peaks). Values may be ints or
  floats; the type is preserved in the emitted artifacts.

Scoping is a :class:`contextvars.ContextVar`: :func:`use_tracer` installs a
tracer for the dynamic extent of a ``with`` block and instrumentation sites
call the module-level :func:`span` / :func:`count` fast paths. When no
tracer is installed (the default — the "null tracer"), those fast paths do
one context-var read and return a shared no-op object, so instrumented code
pays near-zero overhead and stays **bit-identical** to uninstrumented code:
the tracer only ever *reads* clocks and process stats, never an RNG, so
traced and untraced runs produce identical outputs, receipts, and RNG
states (property-tested in ``tests/test_obs.py`` and enforced in the
equivalence sweep by ``check_trace_transparency``).

Artifacts:

* :meth:`Tracer.write_jsonl` — one JSON object per line (``meta`` header,
  then ``span`` and ``counter`` records), the append-friendly archival
  format.
* :meth:`Tracer.write_chrome` — Chrome trace-event JSON (``traceEvents``
  with ``ph: "X"`` complete events and ``ph: "C"`` counter samples),
  loadable in Perfetto / ``chrome://tracing``.

Timing primitives (``time.perf_counter``, ``resource``) are deliberately
confined to this package; the ``obs-discipline`` lint rule keeps them out
of protocol code.
"""

from __future__ import annotations

import functools
import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

try:  # Unix only; Windows runs fall back to rss_kb = 0
    import resource as _resource
except ImportError:  # pragma: no cover - POSIX dev image
    _resource = None  # type: ignore[assignment]

__all__ = [
    "COUNTER_MODES",
    "SpanRecord",
    "Tracer",
    "count",
    "current",
    "enabled",
    "span",
    "traced",
    "use_tracer",
]

#: Counter aggregation modes: ``sum`` accumulates, ``max`` keeps the peak.
COUNTER_MODES = ("sum", "max")

_CURRENT: ContextVar["Tracer | None"] = ContextVar("repro_obs_tracer", default=None)


def _peak_rss_kb() -> int:
    """Process peak RSS in KB (monotonic non-decreasing), 0 if unknown."""
    if _resource is None:  # pragma: no cover - POSIX dev image
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class SpanRecord:
    """One finished span: name, interval, nesting, peak-RSS delta."""

    sid: int
    parent: int | None
    depth: int
    name: str
    start: float  # seconds since the tracer epoch
    dur: float  # seconds
    rss_kb: int  # peak-RSS growth across the span (KB, >= 0)

    def as_dict(self) -> dict:
        return {
            "type": "span",
            "sid": self.sid,
            "parent": self.parent,
            "depth": self.depth,
            "name": self.name,
            "start": round(self.start, 9),
            "dur": round(self.dur, 9),
            "rss_kb": self.rss_kb,
        }


class _Span:
    """Context manager for one live span (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_name", "_sid", "_parent", "_depth", "_t0", "_rss0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._sid = tracer._next_sid
        tracer._next_sid += 1
        stack = tracer._stack
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._sid)
        self._rss0 = _peak_rss_kb()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        tracer = self._tracer
        tracer._stack.pop()
        tracer.spans.append(
            SpanRecord(
                sid=self._sid,
                parent=self._parent,
                depth=self._depth,
                name=self._name,
                start=self._t0 - tracer.epoch,
                dur=t1 - self._t0,
                rss_kb=max(0, _peak_rss_kb() - self._rss0),
            )
        )
        return False


class _NullSpan:
    """Shared reentrant no-op span — the whole null-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and typed counters for one traced execution."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: list[SpanRecord] = []
        #: counter name -> (mode, value); value int or float
        self.counters: dict[str, tuple[str, int | float]] = {}
        self._stack: list[int] = []
        self._next_sid = 0

    # -- recording ------------------------------------------------------- #

    def span(self, name: str) -> _Span:
        """A context manager timing one named phase (nested freely)."""
        return _Span(self, name)

    def count(self, name: str, value: int | float = 1, mode: str = "sum") -> None:
        """Fold ``value`` into counter ``name`` under ``mode``.

        The mode is fixed by the first call for a given name; later calls
        reuse it (instrumentation sites always pass a consistent mode).
        """
        slot = self.counters.get(name)
        if slot is None:
            if mode not in COUNTER_MODES:
                raise ValueError(
                    f"unknown counter mode {mode!r}; expected one of {COUNTER_MODES}"
                )
            self.counters[name] = (mode, value)
        elif slot[0] == "max":
            if value > slot[1]:
                self.counters[name] = (slot[0], value)
        else:
            self.counters[name] = (slot[0], slot[1] + value)

    # -- aggregation ----------------------------------------------------- #

    def phase_totals(self) -> dict[str, float]:
        """Total seconds per span name (all occurrences summed)."""
        out: dict[str, float] = {}
        for rec in self.spans:
            out[rec.name] = out.get(rec.name, 0.0) + rec.dur
        return out

    def counter_values(self) -> dict[str, int | float]:
        """Plain ``{name: value}`` view of the typed counters."""
        return {name: value for name, (_mode, value) in self.counters.items()}

    # -- artifacts ------------------------------------------------------- #

    def _meta(self) -> dict:
        return {
            "type": "meta",
            "format": "repro-trace",
            "version": 1,
            "spans": len(self.spans),
            "counters": len(self.counters),
        }

    def jsonl_records(self) -> Iterator[dict]:
        yield self._meta()
        for rec in self.spans:
            yield rec.as_dict()
        for name in sorted(self.counters):
            mode, value = self.counters[name]
            yield {"type": "counter", "name": name, "mode": mode, "value": value}

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the archival JSONL artifact; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self.jsonl_records():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path

    def chrome_payload(self) -> dict:
        """The Chrome trace-event payload (Perfetto-loadable)."""
        events: list[dict] = []
        end_us = 0.0
        for rec in self.spans:
            ts = rec.start * 1e6
            dur = rec.dur * 1e6
            end_us = max(end_us, ts + dur)
            events.append(
                {
                    "name": rec.name,
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": 0,
                    "tid": 0,
                    "args": {"rss_kb": rec.rss_kb, "sid": rec.sid,
                             "parent": rec.parent, "depth": rec.depth},
                }
            )
        for name in sorted(self.counters):
            mode, value = self.counters[name]
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": end_us,
                    "pid": 0,
                    "args": {name: value, "mode": mode},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"format": "repro-trace", "version": 1},
        }

    def write_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace-event JSON artifact; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_payload(), sort_keys=True) + "\n")
        return path

    def write(self, path: str | Path) -> Path:
        """Format by extension: ``.jsonl`` -> JSONL, anything else Chrome."""
        path = Path(path)
        if path.suffix == ".jsonl":
            return self.write_jsonl(path)
        return self.write_chrome(path)


# --------------------------------------------------------------------------- #
# Module-level fast paths (the instrumentation surface)
# --------------------------------------------------------------------------- #

def current() -> Tracer | None:
    """The tracer installed for this context, or ``None`` (null tracer)."""
    return _CURRENT.get()


def enabled() -> bool:
    """True when a tracer is installed — gate for *computing* costly
    counter values (cheap counters can call :func:`count` unconditionally)."""
    return _CURRENT.get() is not None


def span(name: str):
    """Span under the current tracer, or the shared no-op when untraced."""
    tracer = _CURRENT.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name)


def count(name: str, value: int | float = 1, mode: str = "sum") -> None:
    """Counter update under the current tracer; no-op when untraced."""
    tracer = _CURRENT.get()
    if tracer is not None:
        tracer.count(name, value, mode)


def traced(name: str):
    """Decorator running the whole function under :func:`span` ``name`` —
    the zero-reindentation way to trace entry points with many returns."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _CURRENT.get()
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return deco


@contextmanager
def use_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (default: a fresh one) for the enclosed block."""
    if tracer is None:
        tracer = Tracer()
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
