"""Observability: phase-scoped tracing and typed counters.

Instrumentation sites import this package and write::

    from repro import obs

    with obs.span("tree_packing"):
        ...
    obs.count("kernels.spmv_layers")                    # sum (default)
    obs.count("engine.queue_depth_peak", depth, "max")  # keep the peak

With no tracer installed (the default), :func:`span` returns a shared
no-op context manager and :func:`count` returns immediately — one
context-var read each — so instrumented code is bit-identical to, and
within noise of, uninstrumented code. :func:`use_tracer` installs a
:class:`Tracer` for a dynamic extent; :func:`enabled` gates computing
*expensive* counter values (e.g. plane occupancy popcounts).

Artifacts and reporting live in :mod:`repro.obs.tracer` (JSONL +
Chrome-trace writers) and :mod:`repro.obs.report` (``repro trace``).
"""

from repro.obs.report import TraceData, format_report, load_trace, phase_stats
from repro.obs.tracer import (
    COUNTER_MODES,
    SpanRecord,
    Tracer,
    count,
    current,
    enabled,
    span,
    traced,
    use_tracer,
)

__all__ = [
    "COUNTER_MODES",
    "SpanRecord",
    "TraceData",
    "Tracer",
    "count",
    "current",
    "enabled",
    "format_report",
    "load_trace",
    "phase_stats",
    "span",
    "traced",
    "use_tracer",
]
