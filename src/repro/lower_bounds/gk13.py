"""Tree-packing diameter lower bounds (Theorems 11 & 13, Appendix B).

Ghaffari–Kuhn [GK13] exhibit λ-edge-connected, O(log n)-diameter graphs
where *every* tree packing has all-but-O(log n) trees of diameter Ω(n/λ);
Appendix B extends the bound to packings with congestion ≤ λ/log⁴n
(Theorem 13). This shows the O((n log n)/δ) diameter of the paper's own
packing (Theorem 2) is optimal up to the log factor.

The measurement harness here runs the paper's *upper-bound* construction on
the lower-bound family (:func:`repro.graphs.generators.ghaffari_kuhn_family`)
and reports the per-tree diameter distribution: the prediction — confirmed
by experiment E10 — is that almost every tree has diameter Ω(length) =
Ω(n/λ) even though the host graph's diameter is O(log n). Only trees lucky
enough to grab shortcut edges near their root can be shallow, and there are
only O(log n) shortcuts in total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.decomposition import num_parts, random_partition
from repro.core.tree_packing import build_tree_packing
from repro.graphs.generators import ghaffari_kuhn_family
from repro.graphs.properties import approx_diameter

__all__ = ["PackingDiameterReport", "measure_packing_diameters", "theorem13_prediction"]


@dataclass
class PackingDiameterReport:
    """Per-tree diameters of a packing on the GK13 family (E10 rows)."""

    n: int
    lam: int
    length: int  # thick-path length = Θ(n/λ)
    host_diameter: int
    parts: int
    tree_diameters: list[int] = field(default_factory=list)

    def trees_above(self, fraction_of_length: float = 0.5) -> int:
        """How many trees have diameter ≥ fraction·length (the Ω(n/λ) mass)."""
        threshold = fraction_of_length * self.length
        return sum(1 for d in self.tree_diameters if d >= threshold)

    @property
    def min_tree_diameter(self) -> int:
        return min(self.tree_diameters)

    @property
    def max_tree_diameter(self) -> int:
        return max(self.tree_diameters)


def theorem13_prediction(n: int, lam: int) -> tuple[float, float]:
    """(min trees that must be deep, the Ω(n/λ) depth scale).

    All but O(log n) trees must have diameter Ω(n/λ); we report
    ``(parts − ceil(log2 n), n/λ)`` as the concrete prediction to check.
    """
    return (max(0.0, -math.ceil(math.log2(max(n, 2)))), n / lam)


def measure_packing_diameters(
    length: int, lam: int, C: float = 1.0, seed: int = 0, max_tries: int = 10
) -> PackingDiameterReport:
    """Build the GK13 instance, pack trees via Theorem 2, measure diameters.

    The packing uses the paper's own randomized partition — the relevant
    regime for Theorem 13, whose statement quantifies over *all* packings
    (so any packing, including ours, must exhibit the predicted shape).
    Retries fresh seeds when a color class fails to span (the per-class
    degree on this family sits near the connectivity threshold, so the
    w.h.p. event fails noticeably often at bench scales).
    """
    from repro.util.errors import ValidationError

    g = ghaffari_kuhn_family(length, lam)
    parts = num_parts(lam, g.n, C)
    packing = None
    for attempt in range(max_tries):
        decomp = random_partition(g, parts, seed + attempt)
        try:
            packing = build_tree_packing(decomp, distributed=False)
            break
        except ValidationError:
            continue
    if packing is None:
        raise ValidationError(
            f"no spanning partition of the GK13 family in {max_tries} seeds; "
            "decrease parts (larger C) or increase lam"
        )
    return PackingDiameterReport(
        n=g.n,
        lam=lam,
        length=length,
        # Double-sweep BFS: a certified *lower* bound on the host diameter,
        # the safe direction for reporting "host D = O(log n) yet trees are
        # Ω(n/λ) deep".
        host_diameter=approx_diameter(g, samples=4, seed=seed),
        parts=parts,
        tree_diameters=[t.diameter() for t in packing.trees],
    )
