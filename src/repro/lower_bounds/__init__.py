"""The paper's lower bounds as executable artifacts (Sections 3.2, 4.4, App. B).

* :mod:`~repro.lower_bounds.broadcast_lb` — Theorem 3's Ω(k/λ) with
  per-execution certificates (bits counted across a real minimum cut).
* :mod:`~repro.lower_bounds.id_lb` — Theorem 8's Ω(n/λ) for learning IDs.
* :mod:`~repro.lower_bounds.weighted_apsp_lb` — Theorem 9's hard weighted
  instance, with the decoding argument implemented (α-approximate distances
  provably reveal the hidden exponents).
* :mod:`~repro.lower_bounds.gk13` — Theorems 11/13 packing-diameter
  measurements on the Ghaffari–Kuhn family.
"""

from repro.lower_bounds.broadcast_lb import (
    theorem3_rounds_bound,
    cut_bits_required,
    verify_broadcast_meets_bound,
    Theorem3Certificate,
)
from repro.lower_bounds.id_lb import id_entropy_bits, theorem8_rounds_bound
from repro.lower_bounds.weighted_apsp_lb import (
    Theorem9Instance,
    theorem9_instance,
    decode_exponents,
    kmax_for,
)
from repro.lower_bounds.gk13 import (
    PackingDiameterReport,
    measure_packing_diameters,
    theorem13_prediction,
)

__all__ = [
    "theorem3_rounds_bound",
    "cut_bits_required",
    "verify_broadcast_meets_bound",
    "Theorem3Certificate",
    "id_entropy_bits",
    "theorem8_rounds_bound",
    "Theorem9Instance",
    "theorem9_instance",
    "decode_exponents",
    "kmax_for",
    "PackingDiameterReport",
    "measure_packing_diameters",
    "theorem13_prediction",
]
