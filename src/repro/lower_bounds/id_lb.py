"""The universal Ω(n/λ) lower bound for learning all IDs (Theorem 8).

Theorem 8: with IDs drawn uniformly from [n^c], learning the full ID list
requires Ω(n/λ) rounds on *every* graph — which is why the paper's Õ(n/λ)
APSP algorithms are universally optimal: writing down "the distance to every
node" presupposes knowing every node's ID.

The entropy count: conditioned on the IDs inside S,
``|M| = C(n^c − |S|, |V∖S|) ≥ 2^{Ω(n log n)}`` choices remain for the other
side, and only ``λ · O(log n)`` bits/round cross the cut.
"""

from __future__ import annotations

import math

from repro.util.errors import ValidationError

__all__ = ["id_entropy_bits", "theorem8_rounds_bound"]


def id_entropy_bits(n: int, c: float = 2.0) -> float:
    """log2 |M| ≥ log2 C(n^c/2, n/2) ≥ (n/2)·log2(n^{c-1}) bits.

    Follows the display in the Theorem 8 proof:
    C(n^c/2, n/2) ≥ (n^c/2 / (n/2))^{n/2} = n^{(c-1)n/2}.
    """
    if n < 2 or c <= 1:
        raise ValidationError("need n >= 2 and c > 1")
    return (n / 2.0) * (c - 1.0) * math.log2(n)


def theorem8_rounds_bound(n: int, lam: int, c: float = 2.0, bandwidth_bits: int | None = None) -> float:
    """Explicit Theorem 8 bound: entropy / (2·λ·w) rounds.

    ``bandwidth_bits`` defaults to ``c·log2 n`` (IDs must fit in a message).
    The factor 2 accounts for both directions of each cut edge.
    """
    if lam < 1:
        raise ValidationError("λ must be >= 1")
    w = bandwidth_bits if bandwidth_bits is not None else c * math.log2(max(n, 2))
    return id_entropy_bits(n, c) / (2.0 * lam * w)
