"""The universal Ω(k/λ) broadcast lower bound (Theorem 3).

Theorem 3: for *any* graph, any k, and any initial message placement, an
algorithm solving k-broadcast with probability ≥ 1/2 needs Ω(k/λ) rounds —
even knowing the topology and placement. The proof counts bits across a
minimum cut: at least k/2 of the s-bit random messages start on one side,
and per round only λ·w bits cross (w = edge bandwidth), so
``2·t·w·λ ≥ s·k/2 − 4``.

This module turns the proof into a *checkable certificate* on concrete runs:
:func:`cut_crossing_bits` counts the bits an execution actually moved across
a given minimum cut (from simulator metrics), and
:func:`verify_broadcast_meets_bound` asserts the measured rounds respect the
bound — a consistency check between the simulator, the algorithms, and the
information-theoretic argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.connectivity import min_cut
from repro.graphs.graph import Graph
from repro.util.errors import ValidationError

__all__ = [
    "theorem3_rounds_bound",
    "cut_bits_required",
    "verify_broadcast_meets_bound",
    "Theorem3Certificate",
]


def theorem3_rounds_bound(
    k: int, lam: int, message_bits: int, bandwidth_bits: int
) -> float:
    """Explicit Theorem 3 bound: ``t ≥ (s·k/2 − 4) / (2·w·λ)``."""
    if lam < 1 or k < 0:
        raise ValidationError("need λ >= 1 and k >= 0")
    return max(0.0, (message_bits * k / 2.0 - 4.0) / (2.0 * bandwidth_bits * lam))


def cut_bits_required(k: int, message_bits: int) -> float:
    """Bits that must cross the cut: s·k/2 − 4 (the |B| < 2^{sk/2-4} step)."""
    return max(0.0, message_bits * k / 2.0 - 4.0)


@dataclass
class Theorem3Certificate:
    """One verified instance of the lower-bound inequality."""

    k: int
    lam: int
    cut_size: int
    measured_rounds: int
    bound_rounds: float
    bits_across_cut: int | None = None

    @property
    def holds(self) -> bool:
        return self.measured_rounds >= self.bound_rounds

    @property
    def slack(self) -> float:
        """measured / bound (≥ 1 when the bound holds; ∞ if bound is 0)."""
        if self.bound_rounds <= 0:
            return math.inf
        return self.measured_rounds / self.bound_rounds


def verify_broadcast_meets_bound(
    graph: Graph,
    k: int,
    measured_rounds: int,
    message_bits: int,
    bandwidth_bits: int,
    metrics=None,
) -> Theorem3Certificate:
    """Check a broadcast execution against Theorem 3's bound.

    When ``metrics`` (simulator :class:`~repro.congest.Metrics`) is given,
    additionally counts the messages the run pushed across a concrete
    minimum cut — the physical quantity the proof bounds.
    """
    side, cut_ids = min_cut(graph)
    lam = len(cut_ids)
    bound = theorem3_rounds_bound(k, lam, message_bits, bandwidth_bits)
    bits = None
    if metrics is not None:
        bits = metrics.bits_across(np.asarray(cut_ids), per_message_bits=None)
    cert = Theorem3Certificate(
        k=k,
        lam=lam,
        cut_size=lam,
        measured_rounds=measured_rounds,
        bound_rounds=bound,
        bits_across_cut=bits,
    )
    if not cert.holds:
        raise ValidationError(
            "Theorem 3 violated?! A correct CONGEST execution cannot beat "
            "the information-theoretic bound — simulator accounting bug.",
            certificate=cert,
        )
    return cert
