"""The Ω(n/(λ log α)) weighted-APSP lower bound instance (Theorem 9).

Theorem 9 constructs, for any (n, λ), a λ-edge-connected weighted graph
where α-approximating all distances from v₁ forces v₁ to learn the exact
random exponents ``k_3..k_n`` — ``(n−2)·log2(kmax)`` bits — through only λ
incident edges.

This module builds the instance *and* implements the decoding argument as
executable code: :func:`decode_exponents` recovers every ``k_i`` from any
α-approximate distance vector, proving (constructively, per instance) that
approximate APSP here is as hard as learning the exponents. The E5 bench
reports the resulting bound next to the measured cost of actually shipping
that much information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = ["Theorem9Instance", "theorem9_instance", "decode_exponents", "kmax_for"]


def kmax_for(n: int, alpha: float, c: int = 3) -> int:
    """Largest integer with ``(2α)^kmax < n^c`` (the paper's kmax)."""
    if alpha < 1:
        raise ValidationError("α must be >= 1")
    kmax = int(math.floor(c * math.log(max(n, 2)) / math.log(2 * alpha)))
    return max(1, kmax)


@dataclass
class Theorem9Instance:
    """The hard instance: graph + hidden exponents + parameters.

    Node roles (paper numbering shifted to 0-based): node 0 = v₁ (the
    learner), node 1 = v₂ (the conduit), nodes 2..n−1 form the clique.
    ``d(v₁, v_i) = 1 + (2α)^{k_i}`` for clique nodes i, which pins k_i.
    """

    graph: Graph
    alpha: float
    lam: int
    kmax: int
    exponents: np.ndarray  # k_i for i in 2..n-1 (index i-2)
    heavy_weight: float  # n^c

    @property
    def n(self) -> int:
        return self.graph.n

    def exact_distances_from_v1(self) -> np.ndarray:
        """d(v₁, ·) in closed form (validated against Dijkstra in tests)."""
        d = np.empty(self.n)
        d[0] = 0.0
        d[1] = 1.0
        d[2:] = 1.0 + (2.0 * self.alpha) ** self.exponents
        return d

    def information_bits(self) -> float:
        """Bits v₁ must learn: (n−2)·log2(kmax)."""
        return (self.n - 2) * math.log2(max(self.kmax, 2))

    def rounds_bound(self, bandwidth_bits: float | None = None) -> float:
        """Ω(n/(λ log α)) with explicit constants: bits/(λ·w)."""
        w = bandwidth_bits if bandwidth_bits is not None else 3 * math.log2(max(self.n, 2))
        return self.information_bits() / (self.lam * w)


def theorem9_instance(
    n: int, lam: int, alpha: float = 2.0, c: int = 3, seed=None
) -> Theorem9Instance:
    """Build the Theorem 9 graph with uniformly random exponents.

    Construction (paper, 0-based): v₁–v₂ weight 1; v₁ to the first λ clique
    nodes with weight n^c; nodes 2..n−1 a clique with weight n^c; v₂ to each
    clique node i with weight ``(2α)^{k_i}``.
    """
    if n < lam + 2:
        raise ValidationError("need n >= λ + 2")
    if lam < 2:
        raise ValidationError("λ must be >= 2 (v₁ needs the v₂ edge plus heavies)")
    rng = ensure_rng(seed)
    kmax = kmax_for(n, alpha, c)
    exponents = rng.integers(1, kmax + 1, size=n - 2)
    heavy = float(n) ** c

    # v₁'s degree is exactly λ: the v₂ edge plus λ−1 heavy edges into the
    # clique (paper: "connect v₁ to {v₃..v_{λ+1}}"), so isolating v₁ is a
    # minimum cut and the edge connectivity equals λ.
    edges: list[tuple[int, int]] = [(0, 1)]
    weights: list[float] = [1.0]
    for i in range(2, 1 + lam):
        edges.append((0, i))
        weights.append(heavy)
    for i in range(2, n):  # clique
        for j in range(i + 1, n):
            edges.append((i, j))
            weights.append(heavy)
    for i in range(2, n):  # the information-carrying edges
        edges.append((1, i))
        weights.append((2.0 * alpha) ** int(exponents[i - 2]))
    graph = Graph(n, edges, weights=weights)
    return Theorem9Instance(
        graph=graph,
        alpha=alpha,
        lam=lam,
        kmax=kmax,
        exponents=exponents,
        heavy_weight=heavy,
    )


def decode_exponents(
    instance: Theorem9Instance, approx_from_v1: np.ndarray
) -> np.ndarray:
    """Recover every k_i exactly from *any* α-approximate distance vector.

    The decoding argument: the true distance is ``1 + (2α)^{k}`` and the
    estimate lies in ``[d, α·d]``. Candidate intervals for consecutive k are
    disjoint — ``1 + (2α)^{k+1} > α·(1 + (2α)^k)`` for (2α)^k ≥ 1, α ≥ 1 —
    so the estimate pins k uniquely. Returns the decoded exponent array;
    tests assert it equals the hidden one (i.e. the instance really forces
    learning all the bits).
    """
    a = instance.alpha
    decoded = np.empty(instance.n - 2, dtype=np.int64)
    for i in range(2, instance.n):
        est = float(approx_from_v1[i])
        best_k, best_err = None, math.inf
        for k in range(1, instance.kmax + 1):
            d = 1.0 + (2.0 * a) ** k
            if d <= est <= a * d + 1e-9:
                err = est - d
                if err < best_err:
                    best_k, best_err = k, err
        if best_k is None:
            raise ValidationError(
                f"estimate {est} for node {i} is not α-approximate for any k"
            )
        decoded[i - 2] = best_k
    return decoded
