"""Vectorized fast-path backend for the simulator's hot protocols.

The library has **two backends** for every protocol whose output and round
count are deterministic functions of the input:

* ``backend="simulator"`` (the default everywhere) runs the actual per-node
  :class:`~repro.congest.program.NodeProgram` state machines on the CONGEST
  simulator. Round counts are *certified by execution*: every message is
  transported, bit-priced, and bandwidth-checked, so a completed run is a
  genuine CONGEST execution. This is the ground truth — and, per the
  simulator's own profiling notes, >80% of wall time is spent inside the
  per-node Python programs, which caps experiments at toy sizes.

* ``backend="vectorized"`` (this package) computes the *same* results with
  whole-frontier numpy sweeps over the :class:`~repro.graphs.graph.Graph`
  CSR arrays — the idiom used by DGL's ``ImmutableGraphIndex``: keep the
  graph in ``indptr``/``indices`` form and drive traversals with array ops
  instead of per-node message objects. No messages exist at runtime, so the
  round counts are *reconstructed* from the protocols' deterministic
  structure:

  - **BFS flood (Lemma 2)** — per-channel hop distances via frontier
    sweeps; parents take the smallest-id neighbor in the previous layer
    (ports are sorted by neighbor id, so this is exactly the simulator's
    first-announcing-port tie-break); rounds = max channel depth + 1 (the
    final round delivers the deepest layer's child-notifications).
  - **Leader election (min-ID flood)** — the minimum id (node 0) wins;
    rounds = ecc(0) + 1 (the farthest node's last improvement floods out
    one more round).
  - **Item numbering (Lemma 3)** — convergecast + range split computed
    layer-by-layer; rounds = 2 · depth(T).
  - **Pipelined tree broadcast (Lemma 1 / Theorem 1 step 4)** — the round
    count depends only on per-node queue *lengths*, never on message
    identity, so a vectorized per-round queue-length recurrence over all
    nodes and channels reproduces the simulator's round count exactly;
    congestion and message/bit totals follow in closed form (each message
    crosses each tree edge once downward, and its root-path once upward).

**Certification relationship.** The vectorized backend inherits the
simulator's certification *by testing, not by construction*: the
equivalence harness (:mod:`repro.engine.verify`, exercised by
``tests/test_engine_equivalence.py``) cross-checks parent arrays, dists,
round counts, congestion, and message/bit totals against the simulator on
random graphs, edge masks, and multi-channel configurations — results must
match bit-for-bit. Anything the fast path cannot reproduce exactly must
stay on the simulator.

The loop-bound *application* pipelines have twins too
(:mod:`repro.engine.pipelines`): cluster growth for Theorem 4, the
Baswana–Sen spanner behind Theorem 5 and the Koutis–Xu sparsifier, all
bit-identical in outputs **and RNG consumption**, so mixed-backend pipelines
stay reproducible.

Fault injection has a twin as well (:mod:`repro.engine.faults`): per-round
edge drop masks threaded through the frontier sweeps and the Lemma 1 queue
recurrence, replicating :class:`~repro.congest.faults.FaultySimulator`
executions — receipt sets, drop counts, round totals, and the fault RNG
stream — bit for bit, which is what lets the Section 1.2 resilience
experiments (``redundant_broadcast``, E16) run at n = 10⁵.

Within the vectorized backend, loop-heavy paths additionally pick a **step
strategy** (:mod:`repro.engine.kernels`): ``"round"`` advances one numpy
step per round, ``"span"`` advances one step per *event* — queue evolution
between events is closed-form, so the Lemma 1 recurrence and the rate-0
fault engine batch thousands of rounds into a handful of array ops. Both
strategies are bit-identical (same rounds, bits, receipts, RNG stream);
``step=None``/``"auto"`` defers to the ``REPRO_STEP`` env var (default
``"span"``), and span paths silently fall back to ``"round"`` where the
closed form does not apply (drop_rate > 0, irregular layerings).

Callers opt in via the ``backend=`` parameter threaded through
:func:`repro.primitives.bfs.run_bfs`,
:func:`repro.primitives.bfs.run_parallel_bfs`,
:func:`repro.core.tree_packing.build_tree_packing`,
:func:`repro.core.lambda_search.find_packing_unknown_lambda`, the broadcast
drivers in :mod:`repro.core.broadcast`, the APSP pipelines
(:func:`repro.apsp.approx_apsp_unweighted`,
:func:`repro.apsp.approx_apsp_weighted`,
:func:`repro.apsp.baswana_sen_spanner`) and the cut pipelines
(:func:`repro.cuts.koutis_xu_sparsifier`,
:func:`repro.cuts.approx_all_cuts`); the CLI exposes it as ``--backend``
on the ``broadcast``, ``packing``, ``apsp``, and ``cuts`` subcommands.
"""

from __future__ import annotations

from repro.engine.kernels import (
    STEP_STRATEGIES,
    frontier_sweep,
    resolve_step,
)
from repro.engine.fastpath import (
    vectorized_bfs,
    vectorized_elect_leader,
    vectorized_numbering,
    vectorized_parallel_bfs,
    vectorized_tree_broadcast,
)
from repro.engine.pipelines import (
    assign_centers,
    contract_clusters,
    vectorized_spanner_edges,
)
from repro.util.errors import ValidationError

__all__ = [
    "BACKENDS",
    "STEP_STRATEGIES",
    "frontier_sweep",
    "resolve_step",
    "validate_backend",
    "vectorized_bfs",
    "vectorized_parallel_bfs",
    "vectorized_elect_leader",
    "vectorized_numbering",
    "vectorized_tree_broadcast",
    "assign_centers",
    "contract_clusters",
    "vectorized_spanner_edges",
    "faulty_bfs",
    "vectorized_faulty_bfs",
    "vectorized_faulty_broadcast",
]


def __getattr__(name):
    # engine.faults pulls in primitives/congest modules; import lazily so
    # the package stays cheap for fault-free callers.
    if name in ("faulty_bfs", "vectorized_faulty_bfs", "vectorized_faulty_broadcast"):
        from repro.engine import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

BACKENDS = ("simulator", "vectorized")


def validate_backend(backend: str) -> str:
    """Check a ``backend=`` argument, returning it unchanged if valid."""
    if backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend
