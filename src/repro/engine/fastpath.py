"""Whole-frontier numpy kernels replicating the simulator protocols exactly.

Every function here is a drop-in for a simulator-driven primitive and must
return *bit-identical* results — same parents, same dists, same certified
round counts, same metrics — on every input. The equivalence contract is
enforced by :mod:`repro.engine.verify` and ``tests/test_engine_equivalence.py``;
see the package docstring for the round-count derivations.
"""

from __future__ import annotations

import numpy as np

from repro.congest.metrics import Metrics
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult
from repro.primitives.pipeline import TreeBroadcastOutcome
from repro.util.bits import bits_for_int, bits_for_int_array, message_bit_budget
from repro.util.errors import BandwidthExceeded, ValidationError

__all__ = [
    "expand_csr_rows",
    "vectorized_bfs",
    "vectorized_parallel_bfs",
    "vectorized_elect_leader",
    "vectorized_numbering",
    "vectorized_tree_broadcast",
]


# --------------------------------------------------------------------------- #
# CSR helpers
# --------------------------------------------------------------------------- #

def _channel_adjacency(
    graph: Graph, edge_mask: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, indices) of the subgraph keeping only masked edges.

    Thin wrapper over :meth:`Graph.masked_csr`, which memoizes the filtered
    arrays per (graph, mask) pair — repeated traversals of one decomposition
    (parallel channels, packing retries, both-backend sweeps) reuse them.
    """
    return graph.masked_csr(edge_mask)


def expand_csr_rows(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat slot indices of all CSR adjacency entries of ``rows``.

    Returns ``(sel, counts, offs)``: ``sel`` indexes the CSR data array with
    each row's block contiguous in row order, ``counts`` is the per-row
    block length, and ``offs`` the within-block rank of each entry. Shared
    by every whole-frontier sweep here and in :mod:`repro.engine.faults`.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    base = np.repeat(indptr[rows], counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return base + offs, counts, offs


def _frontier_sweep(
    n: int, indptr: np.ndarray, indices: np.ndarray, root: int
) -> tuple[np.ndarray, np.ndarray]:
    """BFS (parent, dist) with the smallest-previous-layer-neighbor parent.

    One vectorized gather per layer: all frontier adjacency blocks are
    expanded at once, then a lexsort picks, per newly reached node, the
    smallest announcing neighbor — exactly the simulator's first-port
    adoption, since ports are numbered in neighbor-id order.
    """
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[root] = 0
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    d = 0
    while frontier.size:
        sel, counts, _offs = expand_csr_rows(indptr, frontier)
        if sel.size == 0:
            break
        dst = indices[sel]
        src = np.repeat(frontier, counts)
        fresh = dist[dst] < 0
        if not fresh.any():
            break
        dst = dst[fresh]
        src = src[fresh]
        order = np.lexsort((src, dst))
        dst = dst[order]
        src = src[order]
        first = np.ones(dst.size, dtype=bool)
        first[1:] = dst[1:] != dst[:-1]
        d += 1
        frontier = dst[first]
        dist[frontier] = d
        parent[frontier] = src[first]
    return parent, dist


def _children_lists(parent: np.ndarray) -> list[list[int]]:
    """Per-node sorted child lists from a parent array (canonical order)."""
    n = len(parent)
    children: list[list[int]] = [[] for _ in range(n)]
    ids = np.arange(n)
    kids = np.nonzero((parent >= 0) & (parent != ids))[0]
    order = np.argsort(parent[kids], kind="stable")  # kids already ascending
    for p, v in zip(parent[kids][order].tolist(), kids[order].tolist()):
        children[p].append(v)
    return children


# --------------------------------------------------------------------------- #
# Lemma 2 — BFS flood
# --------------------------------------------------------------------------- #

def vectorized_bfs(
    graph: Graph, root: int, edge_mask: np.ndarray | None = None
) -> BFSResult:
    """Fast-path :func:`repro.primitives.bfs.run_bfs` (single channel).

    Rounds = depth + 1: the deepest layer adopts in round ``depth`` and its
    child-notifications drain in one further round — or 0 when the root has
    no usable port and the flood never starts.
    """
    if not (0 <= root < graph.n):
        raise ValidationError(f"root {root} out of range")
    indptr, indices = _channel_adjacency(graph, edge_mask)
    parent, dist = _frontier_sweep(graph.n, indptr, indices, root)
    depth = int(dist.max())
    rounds = depth + 1 if indptr[root + 1] > indptr[root] else 0
    return BFSResult(
        root=root,
        parent=parent,
        dist=dist,
        children=_children_lists(parent),
        rounds=rounds,
    )


def vectorized_parallel_bfs(
    graph: Graph,
    edge_masks: list[np.ndarray],
    roots: list[int] | None = None,
) -> tuple[list[BFSResult], int]:
    """Fast-path :func:`repro.primitives.bfs.run_parallel_bfs`.

    All channels share one clock, so the joint execution costs the *max*
    channel depth + 1 — the Section 3.1 claim that edge-disjoint floods run
    concurrently for free.
    """
    masks = [np.asarray(m, dtype=bool) for m in edge_masks]
    if masks:
        stack = np.stack(masks)
        if stack.sum(axis=0).max() > 1:
            raise ValidationError("edge masks must be pairwise disjoint")
    if roots is None:
        roots = [0] * len(masks)
    if len(roots) != len(masks):
        raise ValidationError("need one root per channel")

    results: list[BFSResult] = []
    rounds = 0
    for mask, root in zip(masks, roots):
        if not (0 <= root < graph.n):
            raise ValidationError(f"root {root} out of range")
        indptr, indices = _channel_adjacency(graph, mask)
        parent, dist = _frontier_sweep(graph.n, indptr, indices, root)
        if indptr[root + 1] > indptr[root]:
            rounds = max(rounds, int(dist.max()) + 1)
        results.append(
            BFSResult(
                root=root,
                parent=parent,
                dist=dist,
                children=_children_lists(parent),
                rounds=0,  # patched below: the joint clock is shared
            )
        )
    for r in results:
        r.rounds = rounds
    return results, rounds


# --------------------------------------------------------------------------- #
# Leader election — min-ID flood
# --------------------------------------------------------------------------- #

def vectorized_elect_leader(graph: Graph) -> tuple[int, int]:
    """Fast-path :func:`repro.primitives.leader.elect_leader`.

    The global minimum id (node 0) always wins; its value reaches a node at
    distance d in round d, triggering that node's last improvement-and-send,
    so the final delivery lands in round ecc(0) + 1.
    """
    from repro.graphs.traversal import bfs_distances, connected_components

    dist = bfs_distances(graph, 0)
    if np.any(dist < 0):
        leaders = sorted(set(connected_components(graph).tolist()))
        raise RuntimeError(f"no unanimous leader: {leaders}")
    rounds = int(dist.max()) + 1 if graph.n > 1 else 0
    return 0, rounds


# --------------------------------------------------------------------------- #
# Lemma 3 — item numbering over a BFS tree
# --------------------------------------------------------------------------- #

def _layer_slices(dist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nodes grouped by BFS layer: (order, bounds) with layer d at
    ``order[bounds[d]:bounds[d+1]]``, each layer sorted by node id."""
    order = np.argsort(dist, kind="stable")
    maxd = int(dist.max())
    bounds = np.searchsorted(dist[order], np.arange(maxd + 2))
    return order, bounds


def _subtree_sums(parent: np.ndarray, dist: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-node sum of ``values`` over the node's subtree (layer-wise
    convergecast: deepest layer first, each layer folded into its parents)."""
    acc = np.asarray(values, dtype=np.int64).copy()
    order, bounds = _layer_slices(dist)
    for d in range(int(dist.max()), 0, -1):
        layer = order[bounds[d] : bounds[d + 1]]
        np.add.at(acc, parent[layer], acc[layer])
    return acc


def vectorized_numbering(
    graph: Graph, tree: BFSResult, counts: np.ndarray
) -> tuple[np.ndarray, int]:
    """Fast-path :func:`repro.primitives.numbering.assign_item_numbers`.

    Up phase: a node fires its subtree count at round height(v), so the root
    splits at round depth(T); the RANGE wave then takes depth(T) more rounds
    to reach the deepest leaves — 2·depth(T) rounds total. Ranges are handed
    to children in increasing child id, matching the simulator's child-port
    order (ports are sorted by neighbor id).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != (graph.n,):
        raise ValidationError("need one item count per node")
    if np.any(counts < 0):
        raise ValidationError("item counts must be non-negative")
    if not tree.spans():
        raise ValidationError("numbering requires a spanning tree")

    n = graph.n
    parent = tree.parent
    dist = tree.dist
    order, bounds = _layer_slices(dist)
    maxd = int(dist.max())

    subtree = _subtree_sums(parent, dist, counts)

    starts = np.zeros(n, dtype=np.int64)
    starts[tree.root] = 1
    for d in range(1, maxd + 1):
        vs = order[bounds[d] : bounds[d + 1]]  # ascending ids within the layer
        sibling = np.argsort(parent[vs], kind="stable")
        vs = vs[sibling]
        ps = parent[vs]
        cum = np.cumsum(subtree[vs]) - subtree[vs]
        head = np.ones(vs.size, dtype=bool)
        head[1:] = ps[1:] != ps[:-1]
        group_base = cum[head][np.cumsum(head) - 1]
        starts[vs] = starts[ps] + counts[ps] + (cum - group_base)

    # Certify the Lemma 3 guarantee (ids are exactly the partition 1..X),
    # mirroring the simulator driver's post-check. Zero-count nodes hold an
    # empty range and may share a cursor position, so only positive ranges
    # participate.
    holders = np.nonzero(counts > 0)[0]
    by_start = holders[np.argsort(starts[holders], kind="stable")]
    expected = np.cumsum(counts[by_start]) - counts[by_start] + 1
    if not np.array_equal(starts[by_start], expected):
        raise ValidationError("identifier ranges are not a partition of [X]")
    return starts, 2 * maxd


# --------------------------------------------------------------------------- #
# Lemma 1 / Theorem 1 step 4 — pipelined tree broadcast
# --------------------------------------------------------------------------- #

def _last_send_round(arrival_rounds: np.ndarray, arrival_counts: np.ndarray) -> int:
    """Last send round of a work-conserving unit-rate queue fed by batches.

    ``arrival_counts[j]`` items land in round ``arrival_rounds[j]`` (rounds
    strictly increasing, at least one batch); the server sends one item per
    round whenever its queue is nonempty, and an item arriving in round r can
    already be sent in round r. Folding the per-item recurrence
    ``t_i = max(a_i, t_{i-1} + 1)`` over whole batches gives the closed form
    ``t_last = max_j (a_j + (K - cum_{<j})) - 1`` with K the total item count.
    """
    cum_before = np.cumsum(arrival_counts) - arrival_counts
    total = int(arrival_counts[-1] + cum_before[-1])
    return int((arrival_rounds + (total - cum_before)).max()) - 1

def vectorized_tree_broadcast(
    graph: Graph,
    trees: dict[int, BFSResult],
    messages: dict[int, dict[int, list[int]]],
    verify: bool = True,
    bandwidth_factor: int = 8,
) -> TreeBroadcastOutcome:
    """Fast-path :func:`repro.primitives.pipeline.run_tree_broadcast`.

    The pipeline's round count depends only on per-node queue *lengths*
    (message identity never influences when a queue drains): each round,
    every nonempty up-queue sends one message to its parent and every
    nonempty down-queue pops one (forwarded to children, if any); arrivals
    land one round after sends. The count is reproduced exactly without
    pumping every queue every round: a sparse sweep over the nonempty
    up-queues yields the root's arrival stream, the root's service is the
    closed-form :func:`_last_send_round`, and the downcast is a pure
    pipeline (non-root down-queues never exceed one item), finishing
    ``depth(T)`` rounds after the root's last send.

    Metrics are closed-form: each message crosses every tree edge once on the
    downcast and its origin-to-root path once on the upcast, so the edge
    ``(parent(v), v)`` in channel c carries ``k_c + (messages originating in
    subtree(v))`` messages in total.

    ``verify`` is accepted for signature parity; delivery holds by
    construction once every tree spans (checked below), which the
    equivalence suite cross-validates against the simulator's counters.
    """
    n = graph.n
    cids = sorted(trees)
    per_channel_k: dict[int, int] = {}
    for cid, placement in messages.items():
        if cid not in trees:
            raise ValidationError(f"messages given for unknown channel {cid}")
        ids = [m for msgs in placement.values() for m in msgs]
        if len(set(ids)) != len(ids):
            raise ValidationError(f"duplicate message ids on channel {cid}")
        per_channel_k[cid] = len(ids)
    for cid in cids:
        per_channel_k.setdefault(cid, 0)
        if not trees[cid].spans():
            raise ValidationError(f"channel {cid} tree does not span the graph")

    metrics = Metrics(m=graph.m)
    if not cids:
        return TreeBroadcastOutcome(
            rounds=0, metrics=metrics, k_total=0, per_channel_k=per_channel_k
        )

    C = len(cids)
    parents = np.empty((C, n), dtype=np.int64)
    dists = np.empty((C, n), dtype=np.int64)
    own = np.zeros((C, n), dtype=np.int64)
    nonroot = np.empty((C, n), dtype=bool)
    for ci, cid in enumerate(cids):
        tree = trees[cid]
        parents[ci] = tree.parent
        dists[ci] = tree.dist
        nonroot[ci] = tree.parent != np.arange(n)
        for v, msgs in messages.get(cid, {}).items():
            own[ci, v] = len(msgs)

    # The simulator would raise BandwidthExceeded on the first double-send
    # over a shared edge; the fast path rejects overlap up front.
    if n > 1 and C > 1:
        tree_eids = [
            graph.edge_ids_for_pairs(
                parents[ci][nonroot[ci]], np.nonzero(nonroot[ci])[0]
            )
            for ci in range(C)
        ]
        use = np.zeros(graph.m, dtype=np.int64)
        for eids in tree_eids:
            use[eids] += 1
        if use.max() > 1:
            raise ValidationError(
                "trees must be edge-disjoint (the simulator would refuse the "
                "double-send)"
            )

    # Per-channel message-id arrays, one pass each: they feed both the
    # bandwidth gate here and the closed-form bit totals below. Every id is
    # eventually sent (the downcast reaches every tree edge), priced as the
    # (kind, channel, id) tuple the simulator transports.
    budget = message_bit_budget(n, bandwidth_factor)
    chan_origins: list[np.ndarray] = []
    chan_bits: list[np.ndarray] = []
    for cid in cids:
        placement = messages.get(cid, {})
        k_c = per_channel_k[cid]
        if not k_c:
            chan_origins.append(np.empty(0, dtype=np.int64))
            chan_bits.append(np.empty(0, dtype=np.int64))
            continue
        node_ids = np.fromiter(placement.keys(), dtype=np.int64, count=len(placement))
        lens = np.fromiter(
            (len(msgs) for msgs in placement.values()),
            dtype=np.int64,
            count=len(placement),
        )
        ids_list = [m for msgs in placement.values() for m in msgs]
        try:
            bits = 2 + bits_for_int(cid) + bits_for_int_array(
                np.fromiter(ids_list, dtype=np.int64, count=k_c)
            )
        except OverflowError:  # ids beyond int64: price individually
            bits = np.array(
                [2 + bits_for_int(cid) + bits_for_int(m) for m in ids_list],
                dtype=np.int64,
            )
        if n > 1 and int(bits.max()) > budget:
            worst = ids_list[int(np.argmax(bits))]
            raise BandwidthExceeded(
                f"payload of {int(bits.max())} bits exceeds budget {budget} "
                f"(payload={(1, cid, worst)!r})"
            )
        chan_origins.append(np.repeat(node_ids, lens))
        chan_bits.append(bits)

    # ---- exact round count: batched upcast + closed-form downcast -------- #
    # The dense (channel, node) queue recurrence this replaces cost
    # O(rounds · n · C) — it pumped every queue every round. Three structural
    # facts collapse it while keeping the count bit-identical:
    #   1. channels never interact (queues are per (channel, node); the
    #      shared clock is just the max of the per-channel finish times);
    #   2. a non-root DOWN queue never exceeds one item (arrivals ≤ 1/round
    #      from the parent, service 1/round), so the downcast is a pure
    #      pipeline: the root's last down-send at round t_last drains at the
    #      deepest leaf in round t_last + depth(T), which is the round the
    #      simulator goes quiet;
    #   3. the upcast therefore only needs the *root's arrival stream*, which
    #      one sparse sweep over the nonempty UP queues of all channels
    #      yields in O(Σ_msg depth(origin)) total work.
    up = np.where(nonroot, own, 0).ravel()
    flat_parents = (parents + (np.arange(C) * n)[:, None]).ravel()
    is_root = ~nonroot.ravel()
    active = np.nonzero(up > 0)[0]
    hit_flat: list[np.ndarray] = []  # root arrivals: flat index / count / round
    hit_count: list[np.ndarray] = []
    hit_round: list[np.ndarray] = []
    r = 0
    while active.size:  # `active` is kept sorted and duplicate-free
        up[active] -= 1  # every nonempty UP queue sends one item to its parent
        r += 1
        tgt = flat_parents[active]
        tgt.sort()
        head = np.empty(tgt.size, dtype=bool)
        head[0] = True
        np.not_equal(tgt[1:], tgt[:-1], out=head[1:])
        starts = np.nonzero(head)[0]
        targets = tgt[starts]
        counts = np.diff(starts, append=tgt.size)
        at_root = is_root[targets]
        if at_root.any():
            hit_flat.append(targets[at_root])
            hit_count.append(counts[at_root])
            hit_round.append(np.full(int(at_root.sum()), r, dtype=np.int64))
        relayed = targets[~at_root]
        up[relayed] += counts[~at_root]
        # Merge (sorted ∪ sorted): survivors of the decrement + relay targets.
        merged = np.concatenate([active[up[active] > 0], relayed])
        merged.sort()
        keep = np.empty(merged.size, dtype=bool)
        if merged.size:
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        active = merged[keep]

    if hit_flat:
        hf = np.concatenate(hit_flat)
        hc = np.concatenate(hit_count)
        hr = np.concatenate(hit_round)
    else:
        hf = hc = hr = np.empty(0, dtype=np.int64)

    root_own = own[~nonroot]  # one entry per channel, in channel order
    rounds = 0
    for ci, cid in enumerate(cids):
        if per_channel_k[cid] == 0:
            continue  # no sends on this channel at all
        sel = (hf // n) == ci
        arr_rounds = hr[sel]  # strictly increasing (≤ one batch per round)
        arr_counts = hc[sel]
        if root_own[ci]:
            arr_rounds = np.concatenate([[0], arr_rounds])
            arr_counts = np.concatenate([[int(root_own[ci])], arr_counts])
        t_last = _last_send_round(arr_rounds, arr_counts)
        rounds = max(rounds, t_last + int(dists[ci].max()))

    # ---- exact metrics: closed-form congestion and totals ---------------- #
    total_bits = 0
    for ci, cid in enumerate(cids):
        k_c = per_channel_k[cid]
        vs = np.nonzero(nonroot[ci])[0]
        if vs.size == 0:
            continue
        sub = _subtree_sums(parents[ci], dists[ci], own[ci])
        eids = graph.edge_ids_for_pairs(parents[ci][vs], vs)
        np.add.at(metrics.edge_messages, eids, k_c + sub[vs])
        # bits: each id crosses (n-1) tree edges down + its origin depth up
        if chan_bits[ci].size:
            traversals = dists[ci][chan_origins[ci]] + (n - 1)
            total_bits += int((chan_bits[ci] * traversals).sum())
    metrics.rounds = rounds
    metrics.total_messages = int(metrics.edge_messages.sum())
    metrics.total_bits = total_bits

    return TreeBroadcastOutcome(
        rounds=rounds,
        metrics=metrics,
        k_total=sum(per_channel_k.values()),
        per_channel_k=per_channel_k,
    )
