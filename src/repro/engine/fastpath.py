"""Whole-frontier numpy kernels replicating the simulator protocols exactly.

Every function here is a drop-in for a simulator-driven primitive and must
return *bit-identical* results — same parents, same dists, same certified
round counts, same metrics — on every input. The equivalence contract is
enforced by :mod:`repro.engine.verify` and ``tests/test_engine_equivalence.py``;
see the package docstring for the round-count derivations.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.congest.metrics import Metrics
from repro.engine.kernels import (
    expand_csr_rows,
    frontier_sweep,
    last_send_round_spans,
    resolve_step,
    upcast_rounds,
    upcast_spans,
)
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult
from repro.primitives.pipeline import TreeBroadcastOutcome
from repro.util.bits import bits_for_int, bits_for_int_array, message_bit_budget
from repro.util.errors import BandwidthExceeded, ValidationError

__all__ = [
    "expand_csr_rows",  # re-exported from repro.engine.kernels
    "vectorized_bfs",
    "vectorized_parallel_bfs",
    "vectorized_elect_leader",
    "vectorized_numbering",
    "vectorized_tree_broadcast",
]


# --------------------------------------------------------------------------- #
# CSR helpers
# --------------------------------------------------------------------------- #

def _channel_adjacency(
    graph: Graph, edge_mask: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, indices) of the subgraph keeping only masked edges.

    Thin wrapper over :meth:`Graph.masked_csr`, which memoizes the filtered
    arrays per (graph, mask) pair — repeated traversals of one decomposition
    (parallel channels, packing retries, both-backend sweeps) reuse them.
    """
    return graph.masked_csr(edge_mask)


# BFS sweeps and tree-children construction live in repro.engine.kernels
# (frontier_sweep / tree_parents / children_lists), shared with
# repro.engine.faults; expand_csr_rows is re-exported above for callers
# that imported it from here.


# --------------------------------------------------------------------------- #
# Lemma 2 — BFS flood
# --------------------------------------------------------------------------- #

def vectorized_bfs(
    graph: Graph, root: int, edge_mask: np.ndarray | None = None
) -> BFSResult:
    """Fast-path :func:`repro.primitives.bfs.run_bfs` (single channel).

    Rounds = depth + 1: the deepest layer adopts in round ``depth`` and its
    child-notifications drain in one further round — or 0 when the root has
    no usable port and the flood never starts.
    """
    if not (0 <= root < graph.n):
        raise ValidationError(f"root {root} out of range")
    indptr, indices = _channel_adjacency(graph, edge_mask)
    parent, dist = frontier_sweep(graph.n, indptr, indices, root)
    depth = int(dist.max())
    rounds = depth + 1 if indptr[root + 1] > indptr[root] else 0
    return BFSResult(
        root=root,
        parent=parent,
        dist=dist,
        children=None,  # derived lazily from parent — identical lists
        rounds=rounds,
    )


def vectorized_parallel_bfs(
    graph: Graph,
    edge_masks: list[np.ndarray],
    roots: list[int] | None = None,
) -> tuple[list[BFSResult], int]:
    """Fast-path :func:`repro.primitives.bfs.run_parallel_bfs`.

    All channels share one clock, so the joint execution costs the *max*
    channel depth + 1 — the Section 3.1 claim that edge-disjoint floods run
    concurrently for free.
    """
    masks = [np.asarray(m, dtype=bool) for m in edge_masks]
    if masks:
        stack = np.stack(masks)
        if stack.sum(axis=0).max() > 1:
            raise ValidationError("edge masks must be pairwise disjoint")
    if roots is None:
        roots = [0] * len(masks)
    if len(roots) != len(masks):
        raise ValidationError("need one root per channel")
    for root in roots:
        if not (0 <= root < graph.n):
            raise ValidationError(f"root {root} out of range")
    if len(masks) >= 2 and graph.m:
        return _batched_parallel_bfs(graph, masks, roots)

    results: list[BFSResult] = []
    rounds = 0
    for mask, root in zip(masks, roots):
        indptr, indices = _channel_adjacency(graph, mask)
        parent, dist = frontier_sweep(graph.n, indptr, indices, root)
        if indptr[root + 1] > indptr[root]:
            rounds = max(rounds, int(dist.max()) + 1)
        results.append(
            BFSResult(
                root=root,
                parent=parent,
                dist=dist,
                children=None,  # derived lazily from parent — identical lists
                rounds=0,  # patched below: the joint clock is shared
            )
        )
    for r in results:
        r.rounds = rounds
    return results, rounds


def _batched_parallel_bfs(
    graph: Graph, masks: list[np.ndarray], roots: list[int]
) -> tuple[list[BFSResult], int]:
    """All channels in **one** frontier sweep over their disjoint union.

    Channel ``c``'s subgraph is laid out on nodes ``[c·n, (c+1)·n)``;
    edge-disjointness means the components never touch, so a multi-root
    :func:`frontier_sweep` advances every channel on the shared clock the
    simulator already uses — one layer loop and one parents pass in total
    instead of one *per channel*, and no per-channel ``masked_csr``
    builds. Per-channel slices of the result are bit-identical to solo
    sweeps (components are independent, and within a component the parent
    offsets cancel).
    """
    n = graph.n
    C = len(masks)
    big_n = C * n
    subs = graph.disjoint_masked_csrs(masks)
    # Shift each channel's neighbor ids into its node block, writing
    # straight into the union array (no per-channel temporaries — at
    # n = 10⁶ those were hundreds of MB of throwaway allocations).
    big_indices = np.empty(sum(ind.size for _ip, ind in subs), dtype=np.int64)
    lo = 0
    for c, (_ip, ind) in enumerate(subs):
        np.add(ind, c * n, out=big_indices[lo : lo + ind.size])
        lo += ind.size
    big_indptr = np.zeros(big_n + 1, dtype=np.int64)
    np.cumsum(
        np.concatenate([np.diff(ip) for ip, _ind in subs]), out=big_indptr[1:]
    )
    roots_arr = (
        np.arange(C, dtype=np.int64) * n + np.asarray(roots, dtype=np.int64)
    )
    parent_big, dist_big = frontier_sweep(big_n, big_indptr, big_indices, roots_arr)

    results: list[BFSResult] = []
    rounds = 0
    for c, root in enumerate(roots):
        off = c * n
        pb = parent_big[off : off + n]
        parent = np.where(pb >= 0, pb - off, pb)
        dist = dist_big[off : off + n]
        if big_indptr[off + root + 1] > big_indptr[off + root]:
            rounds = max(rounds, int(dist.max()) + 1)
        results.append(
            BFSResult(
                root=root,
                parent=parent,
                dist=dist,
                children=None,  # derived lazily from parent — identical lists
                rounds=0,  # patched below: the joint clock is shared
            )
        )
    for r in results:
        r.rounds = rounds
    return results, rounds


# --------------------------------------------------------------------------- #
# Leader election — min-ID flood
# --------------------------------------------------------------------------- #

def vectorized_elect_leader(graph: Graph) -> tuple[int, int]:
    """Fast-path :func:`repro.primitives.leader.elect_leader`.

    The global minimum id (node 0) always wins; its value reaches a node at
    distance d in round d, triggering that node's last improvement-and-send,
    so the final delivery lands in round ecc(0) + 1.
    """
    from repro.graphs.traversal import bfs_distances, connected_components

    dist = bfs_distances(graph, 0)
    if np.any(dist < 0):
        leaders = sorted(set(connected_components(graph).tolist()))
        raise RuntimeError(f"no unanimous leader: {leaders}")
    rounds = int(dist.max()) + 1 if graph.n > 1 else 0
    return 0, rounds


# --------------------------------------------------------------------------- #
# Lemma 3 — item numbering over a BFS tree
# --------------------------------------------------------------------------- #

def _layer_slices(dist: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nodes grouped by BFS layer: (order, bounds) with layer d at
    ``order[bounds[d]:bounds[d+1]]``, each layer sorted by node id."""
    order = np.argsort(dist, kind="stable")
    maxd = int(dist.max())
    bounds = np.searchsorted(dist[order], np.arange(maxd + 2))
    return order, bounds


def _subtree_sums(parent: np.ndarray, dist: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per-node sum of ``values`` over the node's subtree (layer-wise
    convergecast: deepest layer first, each layer folded into its parents)."""
    acc = np.asarray(values, dtype=np.int64).copy()
    order, bounds = _layer_slices(dist)
    for d in range(int(dist.max()), 0, -1):
        layer = order[bounds[d] : bounds[d + 1]]
        np.add.at(acc, parent[layer], acc[layer])
    return acc


def vectorized_numbering(
    graph: Graph, tree: BFSResult, counts: np.ndarray
) -> tuple[np.ndarray, int]:
    """Fast-path :func:`repro.primitives.numbering.assign_item_numbers`.

    Up phase: a node fires its subtree count at round height(v), so the root
    splits at round depth(T); the RANGE wave then takes depth(T) more rounds
    to reach the deepest leaves — 2·depth(T) rounds total. Ranges are handed
    to children in increasing child id, matching the simulator's child-port
    order (ports are sorted by neighbor id).
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.shape != (graph.n,):
        raise ValidationError("need one item count per node")
    if np.any(counts < 0):
        raise ValidationError("item counts must be non-negative")
    if not tree.spans():
        raise ValidationError("numbering requires a spanning tree")

    n = graph.n
    parent = tree.parent
    dist = tree.dist
    order, bounds = _layer_slices(dist)
    maxd = int(dist.max())

    subtree = _subtree_sums(parent, dist, counts)

    starts = np.zeros(n, dtype=np.int64)
    starts[tree.root] = 1
    for d in range(1, maxd + 1):
        vs = order[bounds[d] : bounds[d + 1]]  # ascending ids within the layer
        sibling = np.argsort(parent[vs], kind="stable")
        vs = vs[sibling]
        ps = parent[vs]
        cum = np.cumsum(subtree[vs]) - subtree[vs]
        head = np.ones(vs.size, dtype=bool)
        head[1:] = ps[1:] != ps[:-1]
        group_base = cum[head][np.cumsum(head) - 1]
        starts[vs] = starts[ps] + counts[ps] + (cum - group_base)

    # Certify the Lemma 3 guarantee (ids are exactly the partition 1..X),
    # mirroring the simulator driver's post-check. Zero-count nodes hold an
    # empty range and may share a cursor position, so only positive ranges
    # participate.
    holders = np.nonzero(counts > 0)[0]
    by_start = holders[np.argsort(starts[holders], kind="stable")]
    expected = np.cumsum(counts[by_start]) - counts[by_start] + 1
    if not np.array_equal(starts[by_start], expected):
        raise ValidationError("identifier ranges are not a partition of [X]")
    return starts, 2 * maxd


# --------------------------------------------------------------------------- #
# Lemma 1 / Theorem 1 step 4 — pipelined tree broadcast
# --------------------------------------------------------------------------- #

def _last_send_round(arrival_rounds: np.ndarray, arrival_counts: np.ndarray) -> int:
    """Last send round of a work-conserving unit-rate queue fed by batches.

    ``arrival_counts[j]`` items land in round ``arrival_rounds[j]`` (rounds
    strictly increasing, at least one batch); the server sends one item per
    round whenever its queue is nonempty, and an item arriving in round r can
    already be sent in round r. Folding the per-item recurrence
    ``t_i = max(a_i, t_{i-1} + 1)`` over whole batches gives the closed form
    ``t_last = max_j (a_j + (K - cum_{<j})) - 1`` with K the total item count.
    """
    cum_before = np.cumsum(arrival_counts) - arrival_counts
    total = int(arrival_counts[-1] + cum_before[-1])
    return int((arrival_rounds + (total - cum_before)).max()) - 1

def vectorized_tree_broadcast(
    graph: Graph,
    trees: dict[int, BFSResult],
    messages: dict[int, dict[int, list[int] | np.ndarray]],
    verify: bool = True,
    bandwidth_factor: int = 8,
    step: str | None = None,
) -> TreeBroadcastOutcome:
    """Fast-path :func:`repro.primitives.pipeline.run_tree_broadcast`.

    The pipeline's round count depends only on per-node queue *lengths*
    (message identity never influences when a queue drains): each round,
    every nonempty up-queue sends one message to its parent and every
    nonempty down-queue pops one (forwarded to children, if any); arrivals
    land one round after sends. The count is reproduced exactly without
    pumping every queue every round: a sparse sweep over the nonempty
    up-queues yields the root's arrival stream, the root's service is the
    closed-form :func:`_last_send_round`, and the downcast is a pure
    pipeline (non-root down-queues never exceed one item), finishing
    ``depth(T)`` rounds after the root's last send.

    Metrics are closed-form: each message crosses every tree edge once on the
    downcast and its origin-to-root path once on the upcast, so the edge
    ``(parent(v), v)`` in channel c carries ``k_c + (messages originating in
    subtree(v))`` messages in total.

    ``verify`` is accepted for signature parity; delivery holds by
    construction once every tree spans (checked below), which the
    equivalence suite cross-validates against the simulator's counters.

    ``step`` picks the upcast stepping strategy (see
    :func:`repro.engine.kernels.resolve_step`): ``"span"`` (default)
    batches whole tree layers, ``"round"`` replays the per-round
    reference sweep. Both are bit-identical; ``"span"`` falls back to
    ``"round"`` when a tree is not BFS-layered.
    """
    n = graph.n
    cids = sorted(trees)
    per_channel_k: dict[int, int] = {}
    # One pass over each channel's placement caches (origin nodes, queue
    # lengths, flat id array): validation here, the own-matrix fill, and
    # the bit ledger below all reuse them instead of re-flattening k
    # Python ints per consumer. Placement values may be lists or int64
    # arrays (the vectorized broadcast split hands over numpy views).
    # ids_arr is None only when an id exceeds int64 — those channels are
    # priced individually through Python ints, as before.
    chan_cache: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray | None]] = {}
    for cid, placement in messages.items():
        if cid not in trees:
            raise ValidationError(f"messages given for unknown channel {cid}")
        node_ids = np.fromiter(placement.keys(), dtype=np.int64, count=len(placement))
        lens = np.fromiter(
            (len(msgs) for msgs in placement.values()),
            dtype=np.int64,
            count=len(placement),
        )
        ids_arr: np.ndarray | None
        try:
            ids_arr = (
                np.concatenate(
                    [np.asarray(msgs, dtype=np.int64) for msgs in placement.values()]
                )
                if placement
                else np.empty(0, dtype=np.int64)
            )
            ids_sorted = np.sort(ids_arr)
            dup = bool((ids_sorted[1:] == ids_sorted[:-1]).any())
            k_c = int(ids_arr.size)
        except OverflowError:  # ids beyond int64: fall back to Python ints
            ids_arr = None
            ids = [m for msgs in placement.values() for m in msgs]
            dup = len(set(ids)) != len(ids)
            k_c = len(ids)
        if dup:
            raise ValidationError(f"duplicate message ids on channel {cid}")
        per_channel_k[cid] = k_c
        chan_cache[cid] = (node_ids, lens, ids_arr)
    for cid in cids:
        per_channel_k.setdefault(cid, 0)
        if not trees[cid].spans():
            raise ValidationError(f"channel {cid} tree does not span the graph")

    metrics = Metrics(m=graph.m)
    if not cids:
        return TreeBroadcastOutcome(
            rounds=0, metrics=metrics, k_total=0, per_channel_k=per_channel_k
        )

    C = len(cids)
    parents = np.empty((C, n), dtype=np.int64)
    dists = np.empty((C, n), dtype=np.int64)
    own = np.zeros((C, n), dtype=np.int64)
    nonroot = np.empty((C, n), dtype=bool)
    for ci, cid in enumerate(cids):
        tree = trees[cid]
        parents[ci] = tree.parent
        dists[ci] = tree.dist
        nonroot[ci] = tree.parent != np.arange(n)
        cached = chan_cache.get(cid)
        if cached is not None and cached[0].size:
            own[ci, cached[0]] = cached[1]

    # Tree-edge ids, computed once in a single batched query (one
    # searchsorted over all channels' tree edges): the disjointness gate
    # and the congestion ledger below both consume them.
    tree_vs = [np.nonzero(nonroot[ci])[0] for ci in range(C)]
    eids_flat = graph.edge_ids_for_pairs(
        np.concatenate([parents[ci][tree_vs[ci]] for ci in range(C)]),
        np.concatenate(tree_vs),
    )
    eid_bounds = np.zeros(C + 1, dtype=np.int64)
    np.cumsum([vs.size for vs in tree_vs], out=eid_bounds[1:])
    tree_eids = [
        eids_flat[eid_bounds[ci] : eid_bounds[ci + 1]] for ci in range(C)
    ]

    # The simulator would raise BandwidthExceeded on the first double-send
    # over a shared edge; the fast path rejects overlap up front. Any edge
    # used twice — across channels or within one malformed tree — is a
    # duplicate in the flat id array, so sorting the O(Σ|V|) tree edges
    # replaces the old O(m) per-edge counting pass.
    if n > 1 and C > 1 and eids_flat.size:
        eids_sorted = np.sort(eids_flat)
        if bool((eids_sorted[1:] == eids_sorted[:-1]).any()):
            raise ValidationError(
                "trees must be edge-disjoint (the simulator would refuse the "
                "double-send)"
            )

    # Per-channel message-id arrays, one pass each: they feed both the
    # bandwidth gate here and the closed-form bit totals below. Every id is
    # eventually sent (the downcast reaches every tree edge), priced as the
    # (kind, channel, id) tuple the simulator transports.
    budget = message_bit_budget(n, bandwidth_factor)
    chan_origins: list[np.ndarray] = []
    chan_bits: list[np.ndarray] = []
    for cid in cids:
        k_c = per_channel_k[cid]
        if not k_c:
            chan_origins.append(np.empty(0, dtype=np.int64))
            chan_bits.append(np.empty(0, dtype=np.int64))
            continue
        node_ids, lens, ids_arr = chan_cache[cid]
        if ids_arr is not None:
            bits = 2 + bits_for_int(cid) + bits_for_int_array(ids_arr)
        else:  # ids beyond int64: price individually
            ids_list = [m for msgs in messages[cid].values() for m in msgs]
            bits = np.array(
                [2 + bits_for_int(cid) + bits_for_int(m) for m in ids_list],
                dtype=np.int64,
            )
        if n > 1 and int(bits.max()) > budget:
            worst = (
                int(ids_arr[int(np.argmax(bits))])
                if ids_arr is not None
                else ids_list[int(np.argmax(bits))]
            )
            raise BandwidthExceeded(
                f"payload of {int(bits.max())} bits exceeds budget {budget} "
                f"(payload={(1, cid, worst)!r})"
            )
        chan_origins.append(np.repeat(node_ids, lens))
        chan_bits.append(bits)

    # ---- exact round count: batched upcast + closed-form downcast -------- #
    # The dense (channel, node) queue recurrence this replaces cost
    # O(rounds · n · C) — it pumped every queue every round. Three structural
    # facts collapse it while keeping the count bit-identical:
    #   1. channels never interact (queues are per (channel, node); the
    #      shared clock is just the max of the per-channel finish times);
    #   2. a non-root DOWN queue never exceeds one item (arrivals ≤ 1/round
    #      from the parent, service 1/round), so the downcast is a pure
    #      pipeline: the root's last down-send at round t_last drains at the
    #      deepest leaf in round t_last + depth(T), which is the round the
    #      simulator goes quiet;
    #   3. the upcast therefore only needs the *root's arrival stream*: the
    #      "round" strategy replays it with one sparse sweep over the
    #      nonempty UP queues per round (kernels.upcast_rounds,
    #      O(Σ_msg depth(origin)) work), while the default "span" strategy
    #      batches whole tree layers through the event-span algebra
    #      (kernels.upcast_spans, no per-round Python iteration at all).
    up = np.where(nonroot, own, 0).ravel()
    flat_parents = (parents + (np.arange(C) * n)[:, None]).ravel()
    is_root = ~nonroot.ravel()

    strategy = resolve_step(step)
    if strategy == "span":
        flat_dist = dists.ravel()
        nr = ~is_root
        if not (
            np.all(flat_dist[is_root] == 0)
            and np.all(flat_dist[nr] == flat_dist[flat_parents[nr]] + 1)
        ):
            strategy = "round"  # non-BFS layering: keep the per-round reference

    root_own = own[~nonroot]  # one entry per channel, in channel order
    rounds = 0
    with obs.span("upcast"):
        if strategy == "span":
            sn, sb, se, sr = upcast_spans(up, flat_parents, flat_dist)
            span_chan = sn // n
            for ci, cid in enumerate(cids):
                if per_channel_k[cid] == 0:
                    continue  # no sends on this channel at all
                sel = span_chan == ci
                starts = sb[sel]  # disjoint spans, sorted by start
                ends = se[sel]
                rates = sr[sel]
                if root_own[ci]:
                    zero = np.zeros(1, dtype=np.int64)
                    starts = np.concatenate([zero, starts])
                    ends = np.concatenate([zero, ends])
                    rates = np.concatenate([[int(root_own[ci])], rates])
                t_last = last_send_round_spans(starts, ends, rates)
                rounds = max(rounds, t_last + int(dists[ci].max()))
        else:
            hf, hc, hr = upcast_rounds(up, flat_parents, is_root)
            for ci, cid in enumerate(cids):
                if per_channel_k[cid] == 0:
                    continue  # no sends on this channel at all
                sel = (hf // n) == ci
                arr_rounds = hr[sel]  # strictly increasing (≤ one batch per round)
                arr_counts = hc[sel]
                if root_own[ci]:
                    arr_rounds = np.concatenate([[0], arr_rounds])
                    arr_counts = np.concatenate([[int(root_own[ci])], arr_counts])
                t_last = _last_send_round(arr_rounds, arr_counts)
                rounds = max(rounds, t_last + int(dists[ci].max()))

    # ---- exact metrics: closed-form congestion and totals ---------------- #
    # One flattened convergecast covers every channel at once (channel
    # blocks are disjoint in flat space), replacing C per-channel layer
    # loops — at depth ~10³ and C trees those Python loops were the
    # dominant metrics cost.
    with obs.span("downcast_metrics"):
        sub_flat = _subtree_sums(flat_parents, dists.ravel(), own.ravel())
        total_bits = 0
        for ci, cid in enumerate(cids):
            k_c = per_channel_k[cid]
            vs = tree_vs[ci]
            if vs.size == 0:
                continue
            sub = sub_flat[ci * n : (ci + 1) * n]
            # A tree visits each edge once, so the ids are distinct and a plain
            # fancy-indexed add lands every update (no unbuffered ufunc.at).
            metrics.edge_messages[tree_eids[ci]] += k_c + sub[vs]
            # bits: each id crosses (n-1) tree edges down + its origin depth up
            if chan_bits[ci].size:
                traversals = dists[ci][chan_origins[ci]] + (n - 1)
                total_bits += int((chan_bits[ci] * traversals).sum())
        metrics.rounds = rounds
        metrics.total_messages = int(metrics.edge_messages.sum())
        metrics.total_bits = total_bits

    return TreeBroadcastOutcome(
        rounds=rounds,
        metrics=metrics,
        k_total=sum(per_channel_k.values()),
        per_channel_k=per_channel_k,
    )
