"""Equivalence harness: the vectorized backend vs the simulator, bit for bit.

The fast path inherits the simulator's certification *by testing*: every
kernel in :mod:`repro.engine.fastpath` is cross-checked here against the
corresponding simulator-driven protocol on randomized inputs — parent
arrays, dists, round counts, congestion, and message/bit totals must match
exactly. ``tests/test_engine_equivalence.py`` drives these checks in CI;
``python -m repro.engine.verify`` runs a standalone sweep.

Every check returns a list of human-readable mismatch strings (empty =
equivalent), so a failure names the exact field that diverged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.graph import Graph
from repro.util.rng import ensure_rng

__all__ = [
    "random_connected_graph",
    "random_edge_masks",
    "random_fault_plan",
    "check_bfs",
    "check_parallel_bfs",
    "check_leader",
    "check_numbering",
    "check_tree_broadcast",
    "check_broadcast_pipeline",
    "check_combined_broadcast",
    "check_unknown_lambda_broadcast",
    "check_weighted_apsp",
    "check_clustering",
    "check_spanner",
    "check_sparsifier",
    "check_apsp_pipeline",
    "check_cuts_pipeline",
    "check_faulty_bfs",
    "check_step_strategies",
    "check_faulty_step_strategies",
    "check_bfs_batch",
    "check_broadcast_batch",
    "check_packing_candidates",
    "check_fault_grid",
    "check_redundant_broadcast",
    "check_root_policies",
    "check_coverage_repair",
    "check_tournament",
    "check_trace_transparency",
    "EquivalenceReport",
    "verify_equivalence",
]


def random_connected_graph(n: int, extra_edges: int, seed) -> Graph:
    """Random spanning tree plus ``extra_edges`` random non-tree edges."""
    rng = ensure_rng(seed)
    edges: set[tuple[int, int]] = set()
    for v in range(1, n):
        u = int(rng.integers(v))
        edges.add((u, v))
    tries = 0
    while len(edges) < (n - 1) + extra_edges and tries < 20 * (extra_edges + 1):
        tries += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges))


def random_edge_masks(graph: Graph, parts: int, seed) -> list[np.ndarray]:
    """Disjoint random edge masks (not necessarily covering every edge)."""
    rng = ensure_rng(seed)
    colors = rng.integers(parts + 1, size=graph.m)  # color `parts` = unused
    return [colors == i for i in range(parts)]


def _diff_bfs(a, b, label: str) -> list[str]:
    out = []
    if not np.array_equal(a.parent, b.parent):
        out.append(f"{label}: parent arrays differ")
    if not np.array_equal(a.dist, b.dist):
        out.append(f"{label}: dist arrays differ")
    if a.rounds != b.rounds:
        out.append(f"{label}: rounds {a.rounds} != {b.rounds}")
    if a.children != b.children:
        out.append(f"{label}: children lists differ")
    return out


def check_bfs(graph: Graph, root: int, edge_mask=None) -> list[str]:
    """run_bfs: simulator vs vectorized."""
    from repro.primitives.bfs import run_bfs

    sim = run_bfs(graph, root, edge_mask=edge_mask, backend="simulator")
    vec = run_bfs(graph, root, edge_mask=edge_mask, backend="vectorized")
    return _diff_bfs(sim, vec, "bfs")


def check_parallel_bfs(graph: Graph, masks, roots=None) -> list[str]:
    """run_parallel_bfs: simulator vs vectorized (shared round clock)."""
    from repro.primitives.bfs import run_parallel_bfs

    sim, sim_rounds = run_parallel_bfs(graph, masks, roots=roots, backend="simulator")
    vec, vec_rounds = run_parallel_bfs(graph, masks, roots=roots, backend="vectorized")
    out = []
    if sim_rounds != vec_rounds:
        out.append(f"parallel-bfs: rounds {sim_rounds} != {vec_rounds}")
    for c, (a, b) in enumerate(zip(sim, vec)):
        out.extend(_diff_bfs(a, b, f"parallel-bfs[channel {c}]"))
    return out


def check_leader(graph: Graph) -> list[str]:
    from repro.engine.fastpath import vectorized_elect_leader
    from repro.primitives.leader import elect_leader

    sim = elect_leader(graph)
    vec = vectorized_elect_leader(graph)
    if sim != vec:
        return [f"leader: simulator {sim} != vectorized {vec}"]
    return []


def check_numbering(graph: Graph, counts: np.ndarray) -> list[str]:
    """Lemma 3 numbering over the same BFS tree, both backends."""
    from repro.engine.fastpath import vectorized_numbering
    from repro.primitives.bfs import run_bfs
    from repro.primitives.numbering import assign_item_numbers

    tree = run_bfs(graph, 0, backend="simulator")
    sim_starts, sim_rounds = assign_item_numbers(graph, tree, counts)
    vec_starts, vec_rounds = vectorized_numbering(graph, tree, counts)
    out = []
    if sim_rounds != vec_rounds:
        out.append(f"numbering: rounds {sim_rounds} != {vec_rounds}")
    if not np.array_equal(sim_starts, vec_starts):
        out.append("numbering: starts differ")
    return out


def check_tree_broadcast(
    graph: Graph, masks, k: int, seed, roots=None
) -> list[str]:
    """Lemma 1 pipeline over edge-disjoint trees: exact rounds and metrics.

    Channels whose mask does not induce a spanning subgraph are dropped
    (both backends require spanning trees).
    """
    from repro.engine.fastpath import vectorized_tree_broadcast
    from repro.primitives.bfs import run_parallel_bfs
    from repro.primitives.pipeline import run_tree_broadcast

    results, _ = run_parallel_bfs(graph, masks, roots=roots, backend="vectorized")
    trees = {c: r for c, r in enumerate(results) if r.spans()}
    if not trees:
        return []
    rng = ensure_rng(seed)
    cids = sorted(trees)
    messages: dict[int, dict[int, list[int]]] = {c: {} for c in cids}
    for j in range(1, k + 1):
        c = cids[int(rng.integers(len(cids)))]
        v = int(rng.integers(graph.n))
        messages[c].setdefault(v, []).append(j)

    sim = run_tree_broadcast(graph, trees, messages)
    vec = vectorized_tree_broadcast(graph, trees, messages)
    out = []
    if sim.rounds != vec.rounds:
        out.append(f"pipeline: rounds {sim.rounds} != {vec.rounds}")
    if sim.max_congestion != vec.max_congestion:
        out.append(
            f"pipeline: congestion {sim.max_congestion} != {vec.max_congestion}"
        )
    if not np.array_equal(sim.metrics.edge_messages, vec.metrics.edge_messages):
        out.append("pipeline: per-edge message counts differ")
    if sim.metrics.total_messages != vec.metrics.total_messages:
        out.append(
            f"pipeline: total_messages {sim.metrics.total_messages} != "
            f"{vec.metrics.total_messages}"
        )
    if sim.metrics.total_bits != vec.metrics.total_bits:
        out.append(
            f"pipeline: total_bits {sim.metrics.total_bits} != "
            f"{vec.metrics.total_bits}"
        )
    if sim.per_channel_k != vec.per_channel_k:
        out.append("pipeline: per-channel k differ")
    return out


def check_broadcast_pipeline(graph: Graph, k: int, seed, lam: int | None = None) -> list[str]:
    """End-to-end textbook + fast broadcast: full phase ledgers must agree."""
    from repro.core.broadcast import (
        fast_broadcast,
        textbook_broadcast,
        uniform_random_placement,
    )
    from repro.graphs.connectivity import edge_connectivity
    from repro.util.errors import ValidationError

    placement = uniform_random_placement(graph.n, k, seed=seed)
    out = []
    sim = textbook_broadcast(graph, placement, backend="simulator")
    vec = textbook_broadcast(graph, placement, backend="vectorized")
    if sim.phases != vec.phases:
        out.append(f"textbook: phases {sim.phases} != {vec.phases}")
    if sim.max_congestion != vec.max_congestion:
        out.append("textbook: congestion differs")

    lam = edge_connectivity(graph) if lam is None else lam

    def attempt(backend):
        # The w.h.p. event of Theorem 2 may legitimately fail on tiny random
        # graphs; what matters is that both backends fail identically.
        try:
            return fast_broadcast(
                graph, placement, lam=lam, seed=seed, backend=backend
            ), None
        except ValidationError as err:
            return None, str(err)

    fsim, esim = attempt("simulator")
    fvec, evec = attempt("vectorized")
    if (fsim is None) != (fvec is None):
        out.append(f"fast: backends disagree on failure (sim={esim!r}, vec={evec!r})")
    elif fsim is None:
        if esim != evec:
            out.append(f"fast: failure messages differ (sim={esim!r}, vec={evec!r})")
    else:
        if fsim.phases != fvec.phases:
            out.append(f"fast: phases {fsim.phases} != {fvec.phases}")
        if fsim.max_congestion != fvec.max_congestion:
            out.append("fast: congestion differs")
        if fsim.packing_max_depth != fvec.packing_max_depth:
            out.append("fast: packing depth differs")
    return out


def check_combined_broadcast(graph: Graph, k: int, seed) -> list[str]:
    """Section 3.2's min(textbook, fast): both backends must predict the
    same winner and report identical phase ledgers."""
    from repro.core.broadcast import combined_broadcast, uniform_random_placement
    from repro.util.errors import ValidationError

    placement = uniform_random_placement(graph.n, k, seed=seed)

    def attempt(backend):
        try:
            return combined_broadcast(
                graph, placement, seed=seed, backend=backend
            ), None
        except ValidationError as err:
            return None, str(err)

    sim, esim = attempt("simulator")
    vec, evec = attempt("vectorized")
    if (sim is None) != (vec is None) or (sim is None and esim != evec):
        return [f"combined: backends disagree on failure (sim={esim!r}, vec={evec!r})"]
    if sim is None:
        return []
    out = []
    if sim.algorithm != vec.algorithm:
        out.append(f"combined: winner {sim.algorithm} != {vec.algorithm}")
    if sim.phases != vec.phases:
        out.append(f"combined: phases {sim.phases} != {vec.phases}")
    if sim.max_congestion != vec.max_congestion:
        out.append("combined: congestion differs")
    return out


def check_unknown_lambda_broadcast(graph: Graph, k: int, seed) -> list[str]:
    """§1.1 Remark: the λ-unknown broadcast — the full exponential-search
    trace (guesses, per-iteration validation rounds, seeds) plus the final
    broadcast ledger must be identical across backends."""
    from repro.core.broadcast import uniform_random_placement
    from repro.core.lambda_search import broadcast_unknown_lambda
    from repro.util.errors import ValidationError

    placement = uniform_random_placement(graph.n, k, seed=seed)

    def attempt(backend):
        try:
            return broadcast_unknown_lambda(
                graph, placement, seed=seed, backend=backend
            ), None
        except ValidationError as err:
            return None, str(err)

    sim, esim = attempt("simulator")
    vec, evec = attempt("vectorized")
    if (sim is None) != (vec is None) or (sim is None and esim != evec):
        return [
            f"unknown-lambda: backends disagree on failure "
            f"(sim={esim!r}, vec={evec!r})"
        ]
    if sim is None:
        return []
    (sres, ssearch), (vres, vsearch) = sim, vec
    out = []
    if sres.phases != vres.phases:
        out.append(f"unknown-lambda: phases {sres.phases} != {vres.phases}")
    if sres.max_congestion != vres.max_congestion:
        out.append("unknown-lambda: congestion differs")
    if ssearch.guesses != vsearch.guesses:
        out.append(
            f"unknown-lambda: guess traces {ssearch.guesses} != {vsearch.guesses}"
        )
    if ssearch.validation_rounds != vsearch.validation_rounds:
        out.append("unknown-lambda: validation rounds differ")
    if ssearch.seeds != vsearch.seeds:
        out.append("unknown-lambda: iteration seeds differ")
    if ssearch.accepted_guess != vsearch.accepted_guess:
        out.append(
            f"unknown-lambda: accepted guess {ssearch.accepted_guess} != "
            f"{vsearch.accepted_guess}"
        )
    return out


def check_weighted_apsp(graph: Graph, k: int, seed) -> list[str]:
    """Theorem 5 end to end: spanner, estimates, and both round ledgers.

    Unweighted hosts get deterministic random weights first, so the check
    is runnable on any sweep graph.
    """
    from repro.apsp.weighted import approx_apsp_weighted
    from repro.graphs.generators import random_weights
    from repro.util.errors import ValidationError

    if graph.weights is None:
        graph = random_weights(graph, seed=seed)

    def attempt(backend):
        try:
            return approx_apsp_weighted(graph, k, seed=seed, backend=backend), None
        except ValidationError as err:
            return None, str(err)

    sim, esim = attempt("simulator")
    vec, evec = attempt("vectorized")
    if (sim is None) != (vec is None) or (sim is None and esim != evec):
        return [
            f"weighted-apsp: backends disagree on failure "
            f"(sim={esim!r}, vec={evec!r})"
        ]
    if sim is None:
        return []
    out = _diff_graph(sim.spanner.spanner, vec.spanner.spanner, "weighted-apsp")
    if not np.array_equal(sim.spanner.edge_ids, vec.spanner.edge_ids):
        out.append("weighted-apsp: spanner edge ids differ")
    if not np.array_equal(sim.estimate, vec.estimate):
        out.append("weighted-apsp: estimates differ")
    if sim.simulated_rounds != vec.simulated_rounds:
        out.append(
            f"weighted-apsp: simulated rounds {sim.simulated_rounds} != "
            f"{vec.simulated_rounds}"
        )
    if sim.charged_rounds != vec.charged_rounds:
        out.append(
            f"weighted-apsp: charged rounds {sim.charged_rounds} != "
            f"{vec.charged_rounds}"
        )
    return out


def check_clustering(graph: Graph, seed, c: float = 3.0) -> list[str]:
    """Theorem 4 cluster growth: O(n+m) numpy port vs the per-node loops.

    Replays the exact coin schedule of :func:`build_clustering` against the
    retained reference (:func:`repro.apsp.clustering._reference_attempt`);
    centers, assignments, and the contracted cluster graph must match, and
    both must exhaust retries on the same inputs.
    """
    from repro.apsp.clustering import (
        _reference_attempt,
        build_clustering,
        center_sampling_probability,
    )
    from repro.util.errors import ValidationError

    max_tries = 20  # passed explicitly so replay and builder stay locked
    try:
        cl = build_clustering(graph, c=c, seed=seed, max_tries=max_tries)
    except ValidationError:
        cl = None
    rng = ensure_rng(seed)
    p = center_sampling_probability(graph.n, graph.min_degree(), c)
    ref = None
    for _ in range(max_tries):
        is_center = rng.random(graph.n) < p
        if not is_center.any():
            continue
        ref = _reference_attempt(graph, is_center)
        if ref is not None:
            break
    if (cl is None) != (ref is None):
        return ["clustering: port and reference disagree on retry exhaustion"]
    if cl is None:
        return []
    out = []
    centers, s, cluster_graph = ref
    if centers != cl.centers:
        out.append("clustering: centers differ")
    if not np.array_equal(s, cl.s):
        out.append("clustering: cluster assignments differ")
    if cluster_graph != cl.cluster_graph:
        out.append("clustering: cluster graphs differ")
    if cl.rounds != 1:
        out.append(f"clustering: rounds {cl.rounds} != 1")
    return out


def _diff_graph(a: Graph, b: Graph, label: str) -> list[str]:
    out = []
    if a != b:
        out.append(f"{label}: edge sets differ")
    if (a.weights is None) != (b.weights is None) or (
        a.weights is not None and not np.array_equal(a.weights, b.weights)
    ):
        out.append(f"{label}: weights differ")
    return out


def check_spanner(graph: Graph, k: int, seed) -> list[str]:
    """[BS07] spanner: per-node rules vs whole-array twin, same coins."""
    from repro.apsp.spanner import baswana_sen_spanner

    sim = baswana_sen_spanner(graph, k, seed=seed, backend="simulator")
    vec = baswana_sen_spanner(graph, k, seed=seed, backend="vectorized")
    out = []
    if not np.array_equal(sim.edge_ids, vec.edge_ids):
        out.append(f"spanner(k={k}): edge id sets differ")
    out.extend(_diff_graph(sim.spanner, vec.spanner, f"spanner(k={k})"))
    if sim.charged_rounds != vec.charged_rounds:
        out.append(f"spanner(k={k}): charged rounds differ")
    return out


def check_sparsifier(
    graph: Graph, eps: float, seed, tau: int | None = None
) -> list[str]:
    """Koutis–Xu sparsifier: both backends through the whole level loop."""
    from repro.cuts.sparsifier import koutis_xu_sparsifier

    sim = koutis_xu_sparsifier(graph, eps, seed=seed, tau=tau, backend="simulator")
    vec = koutis_xu_sparsifier(graph, eps, seed=seed, tau=tau, backend="vectorized")
    out = _diff_graph(sim.sparsifier, vec.sparsifier, "sparsifier")
    if sim.levels != vec.levels:
        out.append(f"sparsifier: levels {sim.levels} != {vec.levels}")
    if sim.charged_rounds != vec.charged_rounds:
        out.append("sparsifier: charged rounds differ")
    if sim.bundle_sizes != vec.bundle_sizes:
        out.append("sparsifier: bundle sizes differ")
    return out


def _diff_ledgers(sim, vec, label: str) -> list[str]:
    out = []
    if sim.simulated_rounds != vec.simulated_rounds:
        out.append(
            f"{label}: simulated rounds {sim.simulated_rounds} != "
            f"{vec.simulated_rounds}"
        )
    if sim.charged_rounds != vec.charged_rounds:
        out.append(
            f"{label}: charged rounds {sim.charged_rounds} != {vec.charged_rounds}"
        )
    if not np.array_equal(sim.estimate, vec.estimate):
        out.append(f"{label}: estimates differ")
    return out


def check_apsp_pipeline(graph: Graph, seed, lam: int | None = None) -> list[str]:
    """Theorem 4 end to end: estimates + full round ledgers, both backends.

    The w.h.p. events (clustering coverage, Theorem 2 packing) may
    legitimately fail on tiny random hosts; both backends must then fail
    with the same error.
    """
    from repro.apsp.unweighted import approx_apsp_unweighted
    from repro.util.errors import ValidationError

    def attempt(backend):
        try:
            return (
                approx_apsp_unweighted(
                    graph, lam=lam, C=1.5, seed=seed, backend=backend
                ),
                None,
            )
        except ValidationError as err:
            return None, str(err)

    sim, esim = attempt("simulator")
    vec, evec = attempt("vectorized")
    if (sim is None) != (vec is None) or (sim is None and esim != evec):
        return [f"apsp: backends disagree on failure (sim={esim!r}, vec={evec!r})"]
    if sim is None:
        return []
    out = _diff_ledgers(sim, vec, "apsp")
    if sim.clustering.centers != vec.clustering.centers or not np.array_equal(
        sim.clustering.s, vec.clustering.s
    ):
        out.append("apsp: clusterings differ")
    return out


def check_cuts_pipeline(
    graph: Graph, eps: float, seed, lam: int | None = None, tau: int | None = None
) -> list[str]:
    """Theorem 7 end to end: sparsifier + ledgers, both backends."""
    from repro.cuts.approx import approx_all_cuts
    from repro.util.errors import ValidationError

    def attempt(backend):
        try:
            return (
                approx_all_cuts(
                    graph, eps=eps, lam=lam, C=1.5, seed=seed, tau=tau,
                    backend=backend,
                ),
                None,
            )
        except ValidationError as err:
            return None, str(err)

    sim, esim = attempt("simulator")
    vec, evec = attempt("vectorized")
    if (sim is None) != (vec is None) or (sim is None and esim != evec):
        return [f"cuts: backends disagree on failure (sim={esim!r}, vec={evec!r})"]
    if sim is None:
        return []
    out = _diff_graph(
        sim.sparsifier.sparsifier, vec.sparsifier.sparsifier, "cuts"
    )
    if sim.simulated_rounds != vec.simulated_rounds:
        out.append("cuts: simulated rounds differ")
    if sim.charged_rounds != vec.charged_rounds:
        out.append("cuts: charged rounds differ")
    return out


def random_fault_plan(graph: Graph, seed, rate: float | None = None):
    """A randomized :class:`~repro.congest.adversary.FaultPlan`: a few dead
    edges, a couple of mobile rounds, and a drop rate (``rate=None`` picks
    one of 0 / 0.3 / 1.0 — including the total-loss boundary)."""
    from repro.congest.adversary import FaultPlan

    rng = ensure_rng(seed)
    dead = set()
    if graph.m:
        dead = {
            int(e)
            for e in rng.choice(graph.m, size=int(rng.integers(0, min(graph.m, 4))), replace=False)
        }
    mobile = {}
    for _ in range(int(rng.integers(0, 3))):
        if graph.m:
            mobile[int(rng.integers(1, 8))] = {
                int(e) for e in rng.choice(graph.m, size=min(graph.m, 2), replace=False)
            }
    if rate is None:
        rate = [0.0, 0.3, 1.0][int(rng.integers(3))]
    return FaultPlan(dead_edges=dead, drop_rate=rate, mobile=mobile)


def check_faulty_bfs(
    graph: Graph, root: int, plan, fault_seed, edge_mask=None
) -> list[str]:
    """Lemma 2 flood under faults: forest, rounds, drops, and the fault RNG
    stream (final PCG64 state) must match across backends."""
    from repro.engine.faults import faulty_bfs

    sim = faulty_bfs(
        graph, root, plan=plan, fault_seed=fault_seed, edge_mask=edge_mask,
        backend="simulator",
    )
    vec = faulty_bfs(
        graph, root, plan=plan, fault_seed=fault_seed, edge_mask=edge_mask,
        backend="vectorized",
    )
    out = _diff_bfs(sim.result, vec.result, "faulty-bfs")
    if sim.dropped != vec.dropped:
        out.append(f"faulty-bfs: dropped {sim.dropped} != {vec.dropped}")
    if sim.fault_rng_state != vec.fault_rng_state:
        out.append("faulty-bfs: fault RNG streams diverged")
    return out


def check_redundant_broadcast(
    graph: Graph, k: int, seed, parts: int = 2, redundancy: int = 1, plan=None
) -> list[str]:
    """Redundant broadcast under an adversary: the full
    :class:`~repro.core.resilient.DeliveryReport` — exact per-message
    receipt sets, dropped counts, round totals — plus the fault RNG state
    must be bit-identical across backends.

    Builds a Theorem 2 packing first; if the w.h.p. packing event fails on
    the tiny random host, the check is vacuous (skipped).
    """
    from repro.core.broadcast import uniform_random_placement
    from repro.core.resilient import redundant_broadcast
    from repro.core.tree_packing import build_packing_with_retry
    from repro.util.errors import ValidationError

    try:
        packing, _ = build_packing_with_retry(
            graph, parts, seed=seed, distributed=False
        )
    except ValidationError:
        return []
    placement = uniform_random_placement(graph.n, k, seed=seed)
    if plan is None:
        plan = random_fault_plan(graph, seed=seed + 13)
    redundancy = min(max(1, redundancy), packing.size)

    def attempt(backend):
        return redundant_broadcast(
            graph,
            placement,
            packing,
            redundancy=redundancy,
            dead_edges=plan.dead_edges,
            drop_rate=plan.drop_rate,
            mobile=plan.mobile,
            seed=seed,
            fault_seed=seed + 1,
            backend=backend,
            collect_receipts=True,
        )

    sim = attempt("simulator")
    vec = attempt("vectorized")
    out = []
    if sim.rounds != vec.rounds:
        out.append(f"redundant: rounds {sim.rounds} != {vec.rounds}")
    if sim.dropped_messages != vec.dropped_messages:
        out.append(
            f"redundant: dropped {sim.dropped_messages} != {vec.dropped_messages}"
        )
    if sim.per_message_coverage != vec.per_message_coverage:
        out.append("redundant: per-message coverage differs")
    if sim.receipts != vec.receipts:
        out.append("redundant: receipt sets differ")
    if sim.fault_rng_state != vec.fault_rng_state:
        out.append("redundant: fault RNG streams diverged")
    if sim.total_messages != vec.total_messages:
        out.append(
            f"redundant: total_messages {sim.total_messages} != "
            f"{vec.total_messages}"
        )
    if sim.total_bits != vec.total_bits:
        out.append(
            f"redundant: total_bits {sim.total_bits} != {vec.total_bits}"
        )
    return out


def check_root_policies(graph: Graph, parts: int, seed) -> list[str]:
    """Root-assignment policies: :func:`resolve_roots` and the multi-root
    packing it feeds must be bit-identical across backends for every policy
    (plus an explicit root list).

    The w.h.p. packing event may legitimately fail on tiny random hosts;
    both backends must then fail with the same error.
    """
    from repro.core.tree_packing import (
        ROOT_POLICIES,
        build_packing_with_retry,
        resolve_roots,
    )
    from repro.util.errors import ValidationError

    out = []
    explicit = [int(i % graph.n) for i in range(parts)]
    for roots in (*ROOT_POLICIES, explicit):
        label = roots if isinstance(roots, str) else "explicit"

        def resolve(backend):
            # cut-aware runs Theorem 7, whose w.h.p. event may fail on tiny
            # hosts; both backends must then fail identically.
            try:
                return resolve_roots(
                    graph, parts, roots=roots, seed=seed, backend=backend
                ), None
            except ValidationError as err:
                return None, str(err)

        sim_roots, res = resolve("simulator")
        vec_roots, rev = resolve("vectorized")
        if (sim_roots is None) != (vec_roots is None) or (
            sim_roots is None and res != rev
        ):
            out.append(
                f"roots[{label}]: backends disagree on resolve failure "
                f"(sim={res!r}, vec={rev!r})"
            )
            continue
        if sim_roots is None:
            continue
        if sim_roots != vec_roots:
            out.append(f"roots[{label}]: {sim_roots} != {vec_roots}")
            continue

        def attempt(backend):
            try:
                return build_packing_with_retry(
                    graph, parts, seed=seed, distributed=False,
                    roots=roots, backend=backend,
                ), None
            except ValidationError as err:
                return None, str(err)

        sim, esim = attempt("simulator")
        vec, evec = attempt("vectorized")
        if (sim is None) != (vec is None) or (sim is None and esim != evec):
            out.append(
                f"roots[{label}]: backends disagree on failure "
                f"(sim={esim!r}, vec={evec!r})"
            )
            continue
        if sim is None:
            continue
        (spack, srounds), (vpack, vrounds) = sim, vec
        if srounds != vrounds:
            out.append(f"roots[{label}]: retry rounds {srounds} != {vrounds}")
        if spack.roots != vpack.roots:
            out.append(f"roots[{label}]: packed roots {spack.roots} != {vpack.roots}")
        if spack.construction_rounds != vpack.construction_rounds:
            out.append(f"roots[{label}]: construction rounds differ")
        for c, (a, b) in enumerate(zip(spack.trees, vpack.trees)):
            if not np.array_equal(a.parent, b.parent):
                out.append(f"roots[{label}]: tree {c} parents differ")
            if not np.array_equal(a.depth, b.depth):
                out.append(f"roots[{label}]: tree {c} depths differ")
    return out


def check_coverage_repair(
    graph: Graph, k: int, seed, parts: int = 2
) -> list[str]:
    """Graceful degradation: the whole :class:`~repro.core.resilient.RepairOutcome`
    — broken-channel detection, re-root choices, rebuild decisions, repair
    round charges, and both delivery reports — must match across backends.

    Kills a prefix of tree 0's edges so the repair path actually triggers;
    vacuous if the packing event fails on the tiny host.
    """
    from repro.core.broadcast import uniform_random_placement
    from repro.core.resilient import repair_coverage, tree_edge_ids
    from repro.core.tree_packing import build_packing_with_retry
    from repro.util.errors import ValidationError

    try:
        packing, _ = build_packing_with_retry(
            graph, parts, seed=seed, distributed=False, roots="spread"
        )
    except ValidationError:
        return []
    placement = uniform_random_placement(graph.n, k, seed=seed)
    dead = sorted(tree_edge_ids(packing, 0))[: max(1, graph.n // 4)]

    def attempt(backend):
        return repair_coverage(
            graph,
            placement,
            packing,
            redundancy=1,
            dead_edges=dead,
            seed=seed,
            fault_seed=seed + 1,
            backend=backend,
        )

    sim = attempt("simulator")
    vec = attempt("vectorized")
    out = []
    for phase in ("initial", "final"):
        a, b = getattr(sim, phase), getattr(vec, phase)
        if a.per_message_coverage != b.per_message_coverage:
            out.append(f"repair: {phase} coverage differs")
        if a.rounds != b.rounds:
            out.append(f"repair: {phase} rounds {a.rounds} != {b.rounds}")
        if a.dropped_messages != b.dropped_messages:
            out.append(f"repair: {phase} dropped counts differ")
        if a.total_messages != b.total_messages or a.total_bits != b.total_bits:
            out.append(f"repair: {phase} message/bit totals differ")
        if a.fault_rng_state != b.fault_rng_state:
            out.append(f"repair: {phase} fault RNG streams diverged")
    if sim.broken_channels != vec.broken_channels:
        out.append(
            f"repair: broken channels {sim.broken_channels} != "
            f"{vec.broken_channels}"
        )
    if sim.rerooted != vec.rerooted:
        out.append(f"repair: re-roots {sim.rerooted} != {vec.rerooted}")
    if sim.rebuilt != vec.rebuilt:
        out.append(f"repair: rebuilt {sim.rebuilt} != {vec.rebuilt}")
    if sim.repair_rounds != vec.repair_rounds:
        out.append(
            f"repair: repair rounds {sim.repair_rounds} != {vec.repair_rounds}"
        )
    if sim.attempts != vec.attempts:
        out.append(f"repair: attempts {sim.attempts} != {vec.attempts}")
    return out


def check_tournament(graph: Graph, k: int, seed) -> list[str]:
    """The scored tournament surface: :meth:`TournamentResult.to_payload`
    must be identical across backends except the ``backend`` tag itself —
    every cell score, every recorded attack, bit for bit.

    Runs a small grid (two cheap adversaries x two defenses); vacuous if
    the packing event fails on the tiny host.
    """
    from repro.congest.tournament import run_tournament
    from repro.util.errors import ValidationError

    def attempt(backend):
        try:
            return run_tournament(
                graph, k, parts=2,
                adversaries=["dead-tree", "loss"],
                defenses=["shared-r1", "spread-r1"],
                seed=seed, backend=backend,
            ), None
        except ValidationError as err:
            return None, str(err)

    sim, esim = attempt("simulator")
    vec, evec = attempt("vectorized")
    if (sim is None) != (vec is None) or (sim is None and esim != evec):
        return [
            f"tournament: backends disagree on failure "
            f"(sim={esim!r}, vec={evec!r})"
        ]
    if sim is None:
        return []
    spay, vpay = sim.to_payload(), vec.to_payload()
    spay["backend"] = vpay["backend"] = ""
    if spay != vpay:
        keys = [key for key in spay if spay[key] != vpay[key]]
        return [f"tournament: payloads differ in {keys}"]
    return []


def check_step_strategies(graph: Graph, masks, k: int, seed, roots=None) -> list[str]:
    """Span-batched stepping vs the per-round reference, plus direct
    identities of the :mod:`repro.engine.kernels` primitives.

    The Lemma 1 pipeline must be bit-identical under ``step="round"`` and
    ``step="span"`` (rounds, congestion, per-edge/total messages and bits);
    ``frontier_sweep`` must agree between its scipy SpMV path and the pure
    numpy fallback; ``upcast_spans`` expanded per round must replay
    ``upcast_rounds``; and the small CSR/membership helpers must match
    their numpy one-liners.
    """
    import os

    from repro.engine import kernels
    from repro.engine.fastpath import vectorized_tree_broadcast
    from repro.primitives.bfs import run_parallel_bfs
    from repro.util.errors import ValidationError

    out = []
    n = graph.n
    rng = ensure_rng(seed)

    # -- strategy resolution -------------------------------------------- #
    if (kernels.resolve_step("round"), kernels.resolve_step("span")) != (
        "round",
        "span",
    ):
        out.append("kernels: resolve_step mangles explicit strategies")
    prev_step = os.environ.get("REPRO_STEP")
    try:
        os.environ["REPRO_STEP"] = "round"
        if kernels.resolve_step(None) != "round" or kernels.resolve_step("auto") != "round":
            out.append("kernels: resolve_step ignores REPRO_STEP")
    finally:
        if prev_step is None:
            os.environ.pop("REPRO_STEP", None)
        else:
            os.environ["REPRO_STEP"] = prev_step
    try:
        kernels.resolve_step("bogus")
        out.append("kernels: resolve_step accepted an unknown strategy")
    except ValidationError:
        pass

    # -- frontier_sweep: scipy SpMV path vs pure-numpy fallback --------- #
    root = int(rng.integers(n))
    indptr, indices = graph._indptr, graph._indices
    saved_min = kernels._SPMV_MIN_ARCS
    saved_layer = kernels._SPMV_LAYER_ARCS
    prev_noscipy = os.environ.get("REPRO_NO_SCIPY")
    try:
        kernels._SPMV_MIN_ARCS = 0  # force SpMV even on tiny graphs
        kernels._SPMV_LAYER_ARCS = 0  # ... and matvec steps on tiny layers
        os.environ.pop("REPRO_NO_SCIPY", None)
        sp_parent, sp_dist = kernels.frontier_sweep(n, indptr, indices, root)
        os.environ["REPRO_NO_SCIPY"] = "1"
        np_parent, np_dist = kernels.frontier_sweep(n, indptr, indices, root)
    finally:
        kernels._SPMV_MIN_ARCS = saved_min
        kernels._SPMV_LAYER_ARCS = saved_layer
        if prev_noscipy is None:
            os.environ.pop("REPRO_NO_SCIPY", None)
        else:
            os.environ["REPRO_NO_SCIPY"] = prev_noscipy
    if not np.array_equal(sp_parent, np_parent):
        out.append("kernels: frontier_sweep parents differ scipy vs fallback")
    if not np.array_equal(sp_dist, np_dist):
        out.append("kernels: frontier_sweep dists differ scipy vs fallback")
    if kernels.scipy_sparse() is not None and os.environ.get("REPRO_NO_SCIPY"):
        out.append("kernels: scipy_sparse ignores REPRO_NO_SCIPY")

    # -- tree_parents: the python smallest-previous-layer-neighbor rule - #
    tp = kernels.tree_parents(n, indptr, indices, np_dist, root)
    ref_parent = np.full(n, -1, dtype=np.int64)
    ref_parent[root] = root
    for v in range(n):
        if v == root or np_dist[v] < 0:
            continue
        prev = [
            int(u)
            for u in indices[indptr[v] : indptr[v + 1]]
            if np_dist[u] == np_dist[v] - 1
        ]
        if prev:
            ref_parent[v] = min(prev)
    if not (np.array_equal(tp, ref_parent) and np.array_equal(tp, np_parent)):
        out.append("kernels: tree_parents differs from the python reference")

    # -- last_send_round_spans vs a per-round queue walk ---------------- #
    widths = rng.integers(1, 4, size=4)
    gaps = rng.integers(0, 3, size=4)
    starts_l, ends_l, prev_end = [], [], 0
    for wd, gp in zip(widths.tolist(), gaps.tolist()):
        s = prev_end + 1 + gp
        prev_end = s + wd - 1
        starts_l.append(s)
        ends_l.append(prev_end)
    rates = rng.integers(1, 4, size=4)
    arrivals: dict[int, int] = {}
    for s, e, rt in zip(starts_l, ends_l, rates.tolist()):
        for r in range(s, e + 1):
            arrivals[r] = arrivals.get(r, 0) + rt
    q = last_sim = 0
    for r in range(1, max(ends_l) + int(rates.sum() * widths.sum()) + 2):
        q += arrivals.get(r, 0)
        if q > 0:
            q -= 1
            last_sim = r
    got_last = kernels.last_send_round_spans(
        np.asarray(starts_l, dtype=np.int64),
        np.asarray(ends_l, dtype=np.int64),
        rates.astype(np.int64),
    )
    if got_last != last_sim:
        out.append(
            f"kernels: last_send_round_spans {got_last} != queue walk {last_sim}"
        )

    # -- CSR builders and membership helpers ---------------------------- #
    parent = np_parent.copy()
    parent[root] = root  # tree convention: root is its own parent
    lists = kernels.children_lists(parent)
    ref_lists: list[list[int]] = [[] for _ in range(n)]
    for v in range(n):
        if v != root and parent[v] >= 0:
            ref_lists[int(parent[v])].append(v)
    if lists != ref_lists:
        out.append("kernels: children_lists differs from the python reference")
    cindptr, cind = kernels.children_csr(parent)
    lindptr, lind = kernels.lists_to_csr(lists)
    if not (np.array_equal(cindptr, lindptr) and np.array_equal(cind, lind)):
        out.append("kernels: children_csr != lists_to_csr(children_lists)")
    rows = rng.integers(0, n, size=min(n, 5))
    sel, counts, offs = kernels.expand_csr_rows(cindptr, rows)
    ref_counts = np.diff(cindptr)[rows]
    ref_vals = (
        np.concatenate([cind[cindptr[r] : cindptr[r + 1]] for r in rows])
        if rows.size
        else np.empty(0, dtype=np.int64)
    )
    ref_offs = (
        np.concatenate([np.arange(c) for c in ref_counts.tolist()])
        if rows.size
        else np.empty(0, dtype=np.int64)
    )
    if not (
        np.array_equal(cind[sel], ref_vals)
        and np.array_equal(counts, ref_counts)
        and np.array_equal(offs, ref_offs)
    ):
        out.append("kernels: expand_csr_rows differs from the numpy reference")
    table = np.unique(rng.integers(0, 2 * n, size=n))
    values = rng.integers(0, 2 * n, size=n)
    if not np.array_equal(kernels.in_sorted(values, table), np.isin(values, table)):
        out.append("kernels: in_sorted differs from np.isin")

    # -- upcast_spans expanded per round == upcast_rounds --------------- #
    up = rng.integers(0, 4, size=n).astype(np.int64)
    up[root] = 0
    is_root = np.zeros(n, dtype=bool)
    is_root[root] = True
    hf, hc, hr = kernels.upcast_rounds(up, parent, is_root)
    sn, sb, se, sr = kernels.upcast_spans(up, parent, np_dist)
    widths = se - sb + 1
    ef = np.repeat(sn, widths)
    ec = np.repeat(sr, widths)
    er = (
        np.concatenate([np.arange(b, e + 1) for b, e in zip(sb, se)])
        if sn.size
        else np.empty(0, dtype=np.int64)
    )
    ref = np.lexsort((hf, hr))
    got = np.lexsort((ef, er))
    if not (
        np.array_equal(hf[ref], ef[got])
        and np.array_equal(hc[ref], ec[got])
        and np.array_equal(hr[ref], er[got])
    ):
        out.append("kernels: upcast_spans expansion != upcast_rounds")

    # -- Lemma 1 pipeline: span vs round, full outcome ------------------ #
    if graph.m:
        results, _ = run_parallel_bfs(graph, masks, roots=roots, backend="vectorized")
    else:  # edgeless host: run_parallel_bfs needs arcs to stack masks over
        from repro.primitives.bfs import run_bfs

        results = [run_bfs(graph, 0, backend="vectorized")]
    trees = {c: r for c, r in enumerate(results) if r.spans()}
    if trees:
        cids = sorted(trees)
        messages: dict[int, dict[int, list[int]]] = {c: {} for c in cids}
        for j in range(1, k + 1):
            c = cids[int(rng.integers(len(cids)))]
            v = int(rng.integers(n))
            messages[c].setdefault(v, []).append(j)
        rnd = vectorized_tree_broadcast(graph, trees, messages, step="round")
        spn = vectorized_tree_broadcast(graph, trees, messages, step="span")
        if rnd.rounds != spn.rounds:
            out.append(f"step: pipeline rounds {rnd.rounds} != {spn.rounds}")
        if rnd.max_congestion != spn.max_congestion:
            out.append("step: pipeline congestion differs span vs round")
        if not np.array_equal(
            rnd.metrics.edge_messages, spn.metrics.edge_messages
        ):
            out.append("step: per-edge message counts differ span vs round")
        if (rnd.metrics.total_messages, rnd.metrics.total_bits) != (
            spn.metrics.total_messages,
            spn.metrics.total_bits,
        ):
            out.append("step: message/bit totals differ span vs round")
        if rnd.per_channel_k != spn.per_channel_k:
            out.append("step: per-channel k differ span vs round")
    return out


def check_faulty_step_strategies(
    graph: Graph, k: int, seed, parts: int = 2
) -> list[str]:
    """Fault engine: span-batched paths vs the per-round reference.

    Runs faulty BFS and redundant broadcast once per step strategy on a
    rate-0 plan (dead + mobile edges — the span fastpath's home turf) and
    once on a ``drop_rate>0`` plan (where span must silently fall back to
    the identical per-round walk), comparing the *entire* outcome: forest,
    rounds, drops, receipts, coverage, bit totals, and the fault RNG state.
    """
    from repro.core.broadcast import uniform_random_placement
    from repro.core.resilient import redundant_broadcast
    from repro.core.tree_packing import build_packing_with_retry
    from repro.engine.faults import faulty_bfs
    from repro.util.errors import ValidationError

    from repro.congest.adversary import FaultPlan

    rng = ensure_rng(seed)
    root = int(rng.integers(graph.n))
    out = []
    plans = [
        random_fault_plan(graph, seed=seed + 1, rate=0.0),
        random_fault_plan(graph, seed=seed + 2, rate=0.3),
        # Pure uniform total loss — the boundary the span path collapses
        # closed-form (no dead/mobile: those force the round replay).
        FaultPlan(drop_rate=1.0),
    ]
    for tag, plan in zip(("rate0", "lossy", "total-loss"), plans):
        runs = {}
        for step in ("round", "span"):
            r = faulty_bfs(
                graph, root, plan=plan, fault_seed=seed,
                backend="vectorized", step=step,
            )
            runs[step] = r
        diff = _diff_bfs(runs["round"].result, runs["span"].result, f"step-faulty-bfs[{tag}]")
        out.extend(diff)
        if runs["round"].dropped != runs["span"].dropped:
            out.append(f"step-faulty-bfs[{tag}]: dropped counts differ")
        if runs["round"].fault_rng_state != runs["span"].fault_rng_state:
            out.append(f"step-faulty-bfs[{tag}]: fault RNG streams diverged")

    try:
        packing, _ = build_packing_with_retry(
            graph, parts, seed=seed, distributed=False
        )
    except ValidationError:
        return out
    placement = uniform_random_placement(graph.n, k, seed=seed)
    redundancy = min(2, packing.size)
    for tag, plan in zip(("rate0", "lossy", "total-loss"), plans):
        reports = {}
        for step in ("round", "span"):
            reports[step] = redundant_broadcast(
                graph,
                placement,
                packing,
                redundancy=redundancy,
                dead_edges=plan.dead_edges,
                drop_rate=plan.drop_rate,
                mobile=plan.mobile,
                seed=seed,
                fault_seed=seed + 1,
                backend="vectorized",
                collect_receipts=True,
                step=step,
            )
        a, b = reports["round"], reports["span"]
        if a.rounds != b.rounds:
            out.append(f"step-redundant[{tag}]: rounds {a.rounds} != {b.rounds}")
        if a.dropped_messages != b.dropped_messages:
            out.append(f"step-redundant[{tag}]: dropped counts differ")
        if a.per_message_coverage != b.per_message_coverage:
            out.append(f"step-redundant[{tag}]: coverage differs")
        if a.receipts != b.receipts:
            out.append(f"step-redundant[{tag}]: receipt sets differ")
        if a.fault_rng_state != b.fault_rng_state:
            out.append(f"step-redundant[{tag}]: fault RNG streams diverged")
        if (a.total_messages, a.total_bits) != (b.total_messages, b.total_bits):
            out.append(f"step-redundant[{tag}]: message/bit totals differ")
    return out


def check_bfs_batch(graph: Graph, roots, edge_mask=None) -> list[str]:
    """run_bfs_batch == loop of run_bfs, element-wise, on both backends.

    The vectorized batch rides the :class:`~repro.engine.plane.QueryPlane`
    sweep; one pass also forces the plane's SpMV branch (gates zeroed, with
    and without scipy) so every stepping variant of the plane is certified
    against the solo kernels.
    """
    import os

    from repro.engine import kernels
    from repro.primitives.bfs import run_bfs, run_bfs_batch

    out = []
    solos = {}
    for backend in ("simulator", "vectorized"):
        solos[backend] = [
            run_bfs(graph, int(r), edge_mask=edge_mask, backend=backend)
            for r in roots
        ]
        batch = run_bfs_batch(graph, roots, edge_mask=edge_mask, backend=backend)
        for i, (a, b) in enumerate(zip(solos[backend], batch)):
            out.extend(_diff_bfs(a, b, f"bfs-batch[{backend}][{i}]"))
    saved = (kernels._SPMV_MIN_ARCS, kernels._SPMV_LAYER_ARCS)
    had = os.environ.get("REPRO_NO_SCIPY")
    try:
        kernels._SPMV_MIN_ARCS = 0
        kernels._SPMV_LAYER_ARCS = 0
        for noscipy in (False, True):
            if noscipy:
                os.environ["REPRO_NO_SCIPY"] = "1"
            elif had is not None:
                os.environ.pop("REPRO_NO_SCIPY", None)
            batch = run_bfs_batch(
                graph, roots, edge_mask=edge_mask, backend="vectorized"
            )
            tag = "spmv-noscipy" if noscipy else "spmv"
            for i, (a, b) in enumerate(zip(solos["simulator"], batch)):
                out.extend(_diff_bfs(a, b, f"bfs-batch[{tag}][{i}]"))
    finally:
        kernels._SPMV_MIN_ARCS, kernels._SPMV_LAYER_ARCS = saved
        if had is None:
            os.environ.pop("REPRO_NO_SCIPY", None)
        else:
            os.environ["REPRO_NO_SCIPY"] = had
    return out


def _diff_broadcast_result(a, b, label: str) -> list[str]:
    out = []
    if a.algorithm != b.algorithm:
        out.append(f"{label}: algorithm {a.algorithm} != {b.algorithm}")
    if (a.n, a.k, a.parts) != (b.n, b.k, b.parts):
        out.append(f"{label}: shape (n, k, parts) differs")
    if a.phases != b.phases:
        out.append(f"{label}: phase ledger {a.phases} != {b.phases}")
    if a.max_congestion != b.max_congestion:
        out.append(f"{label}: congestion {a.max_congestion} != {b.max_congestion}")
    if a.packing_max_depth != b.packing_max_depth:
        out.append(f"{label}: packing depth differs")
    if a.delivered != b.delivered:
        out.append(f"{label}: delivered flag differs")
    return out


def check_broadcast_batch(graph: Graph, k: int, seed) -> list[str]:
    """textbook/fast broadcast batches == loops of solo calls, both backends."""
    from repro.core.broadcast import (
        fast_broadcast,
        fast_broadcast_batch,
        textbook_broadcast,
        textbook_broadcast_batch,
        uniform_random_placement,
    )

    rng = ensure_rng(seed)
    placements = [
        uniform_random_placement(graph.n, int(kk), seed=seed + 17 * j)
        for j, kk in enumerate(rng.integers(0, max(1, k) + 1, size=3))
    ]
    seeds = [int(s) for s in rng.integers(0, 3, size=len(placements))]
    out = []
    for backend in ("simulator", "vectorized"):
        tb = textbook_broadcast_batch(graph, placements, backend=backend)
        for i, p in enumerate(placements):
            solo = textbook_broadcast(graph, p, backend=backend)
            out.extend(
                _diff_broadcast_result(solo, tb[i], f"textbook-batch[{backend}][{i}]")
            )
        fb = fast_broadcast_batch(graph, placements, seeds=seeds, backend=backend)
        for i, p in enumerate(placements):
            solo = fast_broadcast(graph, p, seed=seeds[i], backend=backend)
            out.extend(
                _diff_broadcast_result(solo, fb[i], f"fast-batch[{backend}][{i}]")
            )
    return out


def _diff_packing(a, b, label: str) -> list[str]:
    out = []
    if a.size != b.size or a.construction_rounds != b.construction_rounds:
        out.append(f"{label}: size/rounds differ")
    for i, (ta, tb) in enumerate(zip(a.trees, b.trees)):
        if ta.root != tb.root or not np.array_equal(ta.parent, tb.parent):
            out.append(f"{label}: tree {i} differs")
        elif not np.array_equal(ta.depth_of, tb.depth_of):
            out.append(f"{label}: tree {i} depths differ")
    ma, mb = a.class_masks, b.class_masks
    if (ma is None) != (mb is None) or (
        ma is not None and any(not np.array_equal(x, y) for x, y in zip(ma, mb))
    ):
        out.append(f"{label}: class masks differ")
    return out


def check_packing_candidates(graph: Graph, parts: int, seed) -> list[str]:
    """Candidate batching == the sequential walks it speculates over.

    ``build_packing_with_retry(batch=3)`` must return the same packing,
    attempt count, and failure message as the one-seed-at-a-time walk, and
    ``find_packing_unknown_lambda(lookahead=4)`` the same trace (guesses,
    validation rounds, seeds, accepted guess) and packing as the sequential
    halving loop — probes past the winner discarded unrecorded.
    """
    from repro.core.lambda_search import find_packing_unknown_lambda
    from repro.core.tree_packing import build_packing_with_retry
    from repro.util.errors import ValidationError

    out = []
    retry = {}
    for b in (1, 3):
        try:
            retry[b] = build_packing_with_retry(
                graph, parts, seed=seed, backend="vectorized", batch=b
            )
        except ValidationError as e:
            retry[b] = str(e)
    if isinstance(retry[1], str) or isinstance(retry[3], str):
        if retry[1] != retry[3]:
            out.append("packing-retry: sequential and batched failures differ")
    else:
        (pk1, n1), (pk3, n3) = retry[1], retry[3]
        if n1 != n3:
            out.append(f"packing-retry: attempts {n1} != {n3}")
        out.extend(_diff_packing(pk1, pk3, "packing-retry"))

    search = {}
    for lookahead in (1, 4):
        try:
            search[lookahead] = find_packing_unknown_lambda(
                graph, seed=seed, backend="vectorized", lookahead=lookahead
            )
        except ValidationError as e:
            search[lookahead] = str(e)
    a, b = search[1], search[4]
    if isinstance(a, str) or isinstance(b, str):
        if a != b:
            out.append("lambda-lookahead: sequential and batched failures differ")
        return out
    if (a.guesses, a.validation_rounds, a.seeds, a.accepted_guess) != (
        b.guesses, b.validation_rounds, b.seeds, b.accepted_guess
    ):
        out.append("lambda-lookahead: search traces differ")
    out.extend(_diff_packing(a.packing, b.packing, "lambda-lookahead"))
    return out


def _diff_report(a, b, label: str) -> list[str]:
    out = []
    if (a.k, a.redundancy, a.rounds) != (b.k, b.redundancy, b.rounds):
        out.append(f"{label}: k/redundancy/rounds differ")
    if a.dropped_messages != b.dropped_messages:
        out.append(f"{label}: dropped counts differ")
    if a.per_message_coverage != b.per_message_coverage:
        out.append(f"{label}: coverage differs")
    if a.receipts != b.receipts:
        out.append(f"{label}: receipt sets differ")
    if a.fault_rng_state != b.fault_rng_state:
        out.append(f"{label}: fault RNG streams diverged")
    if (a.total_messages, a.total_bits) != (b.total_messages, b.total_bits):
        out.append(f"{label}: message/bit totals differ")
    return out


def check_fault_grid(graph: Graph, k: int, seed, parts: int = 2) -> list[str]:
    """Grid entry points == loops of solo calls, element-wise, both backends.

    Covers :func:`repro.engine.faults.faulty_bfs_grid` (rate-0 plans take
    the plane sweep; lossy plans fall back to the loop, which must still
    agree) and :func:`repro.core.resilient.evaluate_fault_grid` over cells
    mixing redundancy levels, dead edges, drop rates (0, interior, and the
    total-loss boundary), and fault seeds.
    """
    from repro.core.broadcast import uniform_random_placement
    from repro.core.resilient import (
        FaultCell,
        evaluate_fault_grid,
        redundant_broadcast,
    )
    from repro.core.tree_packing import build_packing_with_retry
    from repro.engine.faults import faulty_bfs, faulty_bfs_grid
    from repro.util.errors import ValidationError

    rng = ensure_rng(seed)
    roots = [int(r) for r in rng.integers(0, graph.n, size=3)] + [int(rng.integers(graph.n))]
    roots[1] = roots[0]  # duplicate (root, ·) queries must share results
    fault_seeds = [int(s) for s in rng.integers(0, 8, size=len(roots))]
    out = []
    plans = [
        ("rate0", random_fault_plan(graph, seed=seed + 1, rate=0.0)),
        ("lossy", random_fault_plan(graph, seed=seed + 2, rate=0.3)),
    ]
    for tag, plan in plans:
        for backend in ("vectorized", "simulator"):
            grid = faulty_bfs_grid(
                graph, roots, plan=plan, fault_seeds=fault_seeds, backend=backend
            )
            for i, (r, s) in enumerate(zip(roots, fault_seeds)):
                solo = faulty_bfs(
                    graph, r, plan=plan, fault_seed=s, backend=backend
                )
                lbl = f"bfs-grid[{tag}][{backend}][{i}]"
                out.extend(_diff_bfs(solo.result, grid[i].result, lbl))
                if solo.dropped != grid[i].dropped:
                    out.append(f"{lbl}: dropped counts differ")
                if solo.fault_rng_state != grid[i].fault_rng_state:
                    out.append(f"{lbl}: fault RNG streams diverged")

    try:
        packing, _ = build_packing_with_retry(graph, parts, seed=seed, distributed=False)
    except ValidationError:
        return out
    placement = uniform_random_placement(graph.n, k, seed=seed)
    dead = sorted(plans[0][1].dead_edges)
    cells = [
        FaultCell(),
        FaultCell(redundancy=min(2, packing.size), drop_rate=0.4, fault_seed=seed + 3),
        FaultCell(dead_edges=frozenset(dead), drop_rate=1.0),
        FaultCell(redundancy=min(2, packing.size), dead_edges=frozenset(dead)),
    ]
    for backend in ("vectorized", "simulator"):
        grid = evaluate_fault_grid(
            graph, placement, packing, cells, seed=seed, backend=backend,
            collect_receipts=True,
        )
        for i, c in enumerate(cells):
            solo = redundant_broadcast(
                graph,
                placement,
                packing,
                redundancy=c.redundancy,
                dead_edges=c.dead_edges,
                drop_rate=c.drop_rate,
                mobile=c.mobile,
                seed=seed,
                fault_seed=c.fault_seed,
                backend=backend,
                collect_receipts=True,
            )
            out.extend(_diff_report(solo, grid[i], f"fault-grid[{backend}][{i}]"))
    return out


def check_trace_transparency(graph: Graph, k: int, seed, parts: int = 2) -> list[str]:
    """Tracing is a pure observer: traced == untraced, bit for bit.

    Runs :func:`repro.core.broadcast.fast_broadcast` and a lossy
    :func:`repro.core.resilient.redundant_broadcast` on both backends with
    an active :class:`repro.obs.Tracer`, and demands the phase ledger,
    round counts, congestion, receipts, and the fault RNG end-state match
    the untraced runs exactly — the null-overhead contract of the
    observability layer.
    """
    from repro import obs
    from repro.core.broadcast import fast_broadcast, uniform_random_placement
    from repro.core.resilient import redundant_broadcast
    from repro.core.tree_packing import build_packing_with_retry
    from repro.util.errors import ValidationError

    placement = uniform_random_placement(graph.n, k, seed=seed)
    out = []
    for backend in ("vectorized", "simulator"):
        plain = fast_broadcast(graph, placement, seed=seed, backend=backend)
        with obs.use_tracer() as tracer:
            traced = fast_broadcast(graph, placement, seed=seed, backend=backend)
        lbl = f"trace-broadcast[{backend}]"
        if plain.phases != traced.phases:
            out.append(f"{lbl}: phase ledgers differ under tracing")
        if (plain.rounds, plain.parts) != (traced.rounds, traced.parts):
            out.append(f"{lbl}: rounds/parts differ under tracing")
        if plain.max_congestion != traced.max_congestion:
            out.append(f"{lbl}: congestion differs under tracing")
        if not tracer.spans:
            out.append(f"{lbl}: tracer recorded no spans")

    try:
        packing, _ = build_packing_with_retry(graph, parts, seed=seed, distributed=False)
    except ValidationError:
        return out
    for backend in ("vectorized", "simulator"):
        kwargs = dict(
            redundancy=min(2, packing.size), drop_rate=0.3, seed=seed,
            fault_seed=seed + 1, backend=backend, collect_receipts=True,
        )
        plain = redundant_broadcast(graph, placement, packing, **kwargs)
        with obs.use_tracer():
            traced = redundant_broadcast(graph, placement, packing, **kwargs)
        out.extend(_diff_report(plain, traced, f"trace-faulty[{backend}]"))
    return out


@dataclass
class EquivalenceReport:
    """Outcome of one randomized equivalence sweep."""

    trials: int = 0
    checks: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def verify_equivalence(
    trials: int = 10, seed: int = 0, max_n: int = 24
) -> EquivalenceReport:
    """Randomized sweep of all checks; returns an :class:`EquivalenceReport`."""
    from repro.graphs.generators import random_weights

    rng = ensure_rng(seed)
    report = EquivalenceReport()
    for t in range(trials):
        n = int(rng.integers(2, max_n + 1))
        extra = int(rng.integers(0, max(1, n)))
        g = random_connected_graph(n, extra, seed=1000 * seed + t)
        gw = random_weights(g, seed=1500 * seed + t) if t % 2 else g
        root = int(rng.integers(n))
        parts = int(rng.integers(1, 4))
        masks = random_edge_masks(g, parts, seed=2000 * seed + t)
        k = int(rng.integers(0, 3 * n))
        for mismatches in (
            check_bfs(g, root),
            check_bfs(g, root, edge_mask=masks[0]),
            check_parallel_bfs(g, masks, roots=[root] * parts),
            check_leader(g),
            check_numbering(g, rng.integers(0, 4, size=g.n)),
            check_tree_broadcast(g, masks, k, seed=3000 * seed + t, roots=[root] * parts),
            check_combined_broadcast(g, k, seed=3500 * seed + t),
            check_unknown_lambda_broadcast(g, k, seed=3700 * seed + t),
            check_clustering(g, seed=4000 * seed + t),
            check_spanner(gw, 2 + t % 3, seed=5000 * seed + t),
            check_sparsifier(gw, eps=0.5, seed=6000 * seed + t, tau=2),
            check_apsp_pipeline(g, seed=7000 * seed + t),
            check_weighted_apsp(gw, 2 + t % 3, seed=7500 * seed + t),
            check_cuts_pipeline(g, eps=0.5, seed=8000 * seed + t, tau=2),
            check_faulty_bfs(
                g,
                root,
                random_fault_plan(g, seed=9000 * seed + t),
                fault_seed=t,
                edge_mask=masks[0] if t % 2 else None,
            ),
            check_step_strategies(
                g, masks, k, seed=14_000 * seed + t, roots=[root] * parts
            ),
            check_faulty_step_strategies(
                g, k, seed=15_000 * seed + t, parts=parts
            ),
            check_bfs_batch(
                g,
                [root, root, int(rng.integers(n))],
                edge_mask=masks[0] if t % 2 else None,
            ),
            check_broadcast_batch(g, k, seed=16_000 * seed + t),
            check_packing_candidates(g, parts, seed=17_000 * seed + t),
            check_fault_grid(g, k, seed=18_000 * seed + t, parts=parts),
            check_redundant_broadcast(
                g,
                k,
                seed=10_000 * seed + t,
                parts=parts,
                redundancy=1 + t % 2,
            ),
            check_root_policies(g, parts, seed=11_000 * seed + t),
            check_coverage_repair(g, k, seed=12_000 * seed + t, parts=parts),
            check_tournament(g, k, seed=13_000 * seed + t) if t % 3 == 0 else [],
            check_trace_transparency(g, k, seed=19_000 * seed + t, parts=parts),
        ):
            report.checks += 1
            report.mismatches.extend(f"[trial {t}, n={n}] {m}" for m in mismatches)
        report.trials += 1
    return report


def main() -> int:  # pragma: no cover - thin CLI wrapper
    report = verify_equivalence(trials=25, seed=7, max_n=32)
    print(f"trials={report.trials} checks={report.checks}")
    for m in report.mismatches:
        print(f"MISMATCH {m}")
    print("equivalent" if report.ok else f"{len(report.mismatches)} mismatches")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
