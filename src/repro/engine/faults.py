"""Fault-aware vectorized engine: drop masks threaded through the sweeps.

The fault-free fast path (:mod:`repro.engine.fastpath`) never materializes
messages — round counts collapse to closed forms because *no delivery can
fail*. Under a :class:`~repro.congest.adversary.FaultPlan` that shortcut is
gone: which message is on which edge in which round decides what survives,
so this module re-runs the protocols' queue dynamics round by round, but as
whole-network numpy batches instead of per-node Python state machines:

* :func:`vectorized_faulty_bfs` — the Lemma 2 flood with per-round edge
  drop masks applied to each frontier sweep (an announce that dies leaves
  the subtree to adopt later, or never);
* :func:`vectorized_faulty_broadcast` — the Lemma 1 upcast/downcast queue
  recurrence with drops at delivery time, tracking exact per-node receipt
  sets for :func:`repro.core.resilient.redundant_broadcast`.

**Bit-identical contract.** Both kernels replicate the corresponding
:class:`~repro.congest.faults.FaultySimulator` execution exactly: the same
deliveries fail, the same receipt sets result, the same round totals are
reported, and the fault RNG stream is consumed *in the simulator's delivery
order* (node id ascending, then channel, then the node's send order), so
the final RNG state matches bit for bit. This works because the simulator
activates nodes in canonical ascending order and NumPy's ``Generator.random``
consumes the PCG64 stream identically whether drawn one-by-one or batched.
The contract is enforced by :mod:`repro.engine.verify` checks
(``check_faulty_bfs``, ``check_redundant_broadcast``) in the CI sweep.

Like the fault-free engine, sends are still "bit-priced" in the sense that
faults act at delivery time only — a dropped message spent its bandwidth,
which is why :class:`DeliveryReport` drop counts agree with the simulator's
``Metrics`` (which records every send).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.congest.adversary import FaultPlan
from repro.engine.kernels import (
    expand_csr_rows,
    frontier_sweep,
    resolve_step,
)
from repro.graphs.graph import Graph
from repro.primitives.bfs import BFSResult
from repro.util.errors import ValidationError
from repro.util.rng import ensure_rng

__all__ = [
    "FaultStream",
    "FaultyBFSOutcome",
    "FaultyBroadcastOutcome",
    "faulty_bfs",
    "faulty_bfs_grid",
    "vectorized_faulty_bfs",
    "vectorized_faulty_broadcast",
]


class FaultStream:
    """Applies a :class:`FaultPlan` to one round's ordered delivery batch.

    Mirrors ``FaultySimulator._deliverable`` exactly: dead edges first, then
    the round's mobile set, then one fault-RNG coin per *surviving* message,
    drawn in delivery order (batched — PCG64 draws are identical either way).
    """

    def __init__(self, graph: Graph, plan: FaultPlan, fault_seed=0):
        plan.validate_for(graph.m)
        self.rng = ensure_rng(fault_seed)
        self.rate = plan.drop_rate
        self.mobile = plan.mobile
        self.m = graph.m
        self.dead = np.zeros(graph.m, dtype=bool)
        if plan.dead_edges:
            self.dead[
                np.fromiter(plan.dead_edges, dtype=np.int64, count=len(plan.dead_edges))
            ] = True
        self.dropped = 0

    def deliver_mask(self, rnd: int, eids: np.ndarray) -> np.ndarray:
        """True where the message on ``eids[i]`` survives delivery round ``rnd``."""
        drop = self.dead[eids]
        spot = self.mobile.get(rnd)
        if spot:
            mob = np.zeros(self.m, dtype=bool)
            mob[np.fromiter(spot, dtype=np.int64, count=len(spot))] = True
            drop = drop | mob[eids]
        else:
            drop = drop.copy()
        if self.rate > 0.0:
            alive_idx = np.nonzero(~drop)[0]
            if alive_idx.size:
                obs.count("rng.fault_coins", alive_idx.size)
                coin = self.rng.random(alive_idx.size) < self.rate
                drop[alive_idx[coin]] = True
        n_dropped = int(drop.sum())
        self.dropped += n_dropped
        if n_dropped:
            obs.count("faults.dropped", n_dropped)
        return ~drop

    @property
    def rng_state(self) -> dict:
        return self.rng.bit_generator.state


def _popcount_rows(bits: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a packed uint8 matrix."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(bits).sum(axis=1, dtype=np.int64)
    out = np.zeros(bits.shape[0], dtype=np.int64)  # pragma: no cover - numpy<2
    for lo in range(0, bits.shape[0], 4096):
        chunk = bits[lo : lo + 4096]
        out[lo : lo + chunk.shape[0]] = np.unpackbits(chunk, axis=1).sum(
            axis=1, dtype=np.int64
        )
    return out


# --------------------------------------------------------------------------- #
# Lemma 2 under faults — BFS flood with per-round drop masks
# --------------------------------------------------------------------------- #

@dataclass
class FaultyBFSOutcome:
    """A (possibly partial) BFS forest grown under faults."""

    result: BFSResult
    dropped: int
    fault_rng_state: dict


_KIND_CHILD = 0  # canonical per-node send order: CHILD notice first,
_KIND_ANNOUNCE = 1  # then layer announces on the remaining ports ascending


def _span_faulty_bfs(
    graph: Graph,
    root: int,
    stream: FaultStream,
    edge_mask: np.ndarray | None,
    indptr: np.ndarray,
    indices: np.ndarray,
) -> FaultyBFSOutcome:
    """Closed-form faulty BFS when the only faults are dead edges.

    With no coin drops and no mobile set, the adversary is a static edge
    deletion: adoption is plain BFS on the masked graph *minus* the dead
    edges (one :func:`frontier_sweep`, no per-round loop), every surviving
    child-notice arrives (the notice rides the adoption edge, which is by
    definition alive), and the drop count is exactly one crossing per
    (dead masked edge, adopted endpoint) pair — an adopted node sends on
    *every* masked port exactly once.
    """
    n = graph.n
    if stream.dead.any():
        base = (
            np.asarray(edge_mask, dtype=bool)
            if edge_mask is not None
            else np.ones(graph.m, dtype=bool)
        )
        pindptr, pindices = graph.masked_csr(base & ~stream.dead)
    else:
        pindptr, pindices = indptr, indices
    parent, dist = frontier_sweep(n, pindptr, pindices, root)
    # The clock runs off the *masked* graph: the root's round-1 batch exists
    # as soon as it has any usable port, dead or not.
    rounds = int(dist.max()) + 1 if indptr[root + 1] > indptr[root] else 0
    dropped = 0
    if stream.dead.any():
        de = np.nonzero(stream.dead)[0]
        if edge_mask is not None:
            de = de[np.asarray(edge_mask, dtype=bool)[de]]
        dropped = int(
            (dist[graph.edge_u[de]] >= 0).sum() + (dist[graph.edge_v[de]] >= 0).sum()
        )
    result = BFSResult(
        root=root,
        parent=parent,
        dist=dist,
        children=None,  # rate-0 plans drop no child-notices: parent-derived
        rounds=rounds,
    )
    return FaultyBFSOutcome(
        result=result, dropped=dropped, fault_rng_state=stream.rng_state
    )


def _span_faulty_bfs_total_loss(
    graph: Graph,
    root: int,
    stream: FaultStream,
    indptr: np.ndarray,
) -> FaultyBFSOutcome:
    """Closed-form faulty BFS under pure uniform total loss (rate 1.0).

    ``random() < 1.0`` always holds, so the root's round-1 announce batch
    is drawn and dropped wholesale and the flood dies immediately: the
    forest is the bare root, rounds is 1 when the root has any usable port
    (else 0), and exactly one coin per masked root port is consumed — one
    batched draw leaves the PCG64 stream where the per-round replay does.

    Only the *total*-loss boundary admits this pre-drawn plane: for rates
    in (0, 1) the number of coins drawn each round depends on which
    earlier sends survived (drops change who adopts, hence who sends), so
    any fixed-shape pre-draw would desynchronize the fault RNG stream the
    equivalence contract certifies. Those plans stay on the round path.
    Dead edges and mobile schedules also stay there: they shrink the coin
    batch per round, which this closed form does not model.
    """
    n = graph.n
    parent = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    dist[root] = 0
    deg = int(indptr[root + 1] - indptr[root])
    rounds = 0
    if deg:
        stream.rng.random(deg)  # the round-1 coin batch — every send drops
        stream.dropped += deg
        rounds = 1
    result = BFSResult(
        root=root,
        parent=parent,
        dist=dist,
        children=None,  # nothing delivered: parent-derived lists are empty
        rounds=rounds,
    )
    return FaultyBFSOutcome(
        result=result, dropped=stream.dropped, fault_rng_state=stream.rng_state
    )


@obs.traced("faulty_bfs")
def vectorized_faulty_bfs(
    graph: Graph,
    root: int,
    plan: FaultPlan | None = None,
    fault_seed=0,
    edge_mask: np.ndarray | None = None,
    step: str | None = None,
) -> FaultyBFSOutcome:
    """Fast-path twin of the Lemma 2 flood on a :class:`FaultySimulator`.

    Per round, the frontier's announces and child-notices form one ordered
    delivery batch; the drop mask is applied to the whole batch at once. A
    node adopts the smallest *surviving* announcing neighbor of the round it
    first hears one — which may be rounds later than the fault-free flood,
    with a larger dist, or never (``dist = -1``). A dropped child-notice
    leaves the child out of its parent's ``children`` list even though the
    child keeps the parent pointer, exactly like the simulator.

    ``step="span"`` (the default, see
    :func:`repro.engine.kernels.resolve_step`) replaces the per-round loop
    with one closed-form sweep whenever the plan has no coin drops and no
    mobile adversary — round-dependent faults force the ``"round"`` replay.
    Both strategies are bit-identical where both apply.
    """
    if not (0 <= root < graph.n):
        raise ValidationError(f"root {root} out of range")
    plan = plan if plan is not None else FaultPlan()
    n = graph.n
    stream = FaultStream(graph, plan, fault_seed)
    indptr, indices = graph.masked_csr(
        None if edge_mask is None else np.asarray(edge_mask, dtype=bool)
    )
    if resolve_step(step) == "span" and not stream.mobile:
        if stream.rate == 0.0:
            return _span_faulty_bfs(
                graph, root, stream, edge_mask, indptr, indices
            )
        if stream.rate == 1.0 and not stream.dead.any():
            return _span_faulty_bfs_total_loss(graph, root, stream, indptr)
    degs = np.diff(indptr)
    arc_eids = (
        graph.edge_ids_for_pairs(np.repeat(np.arange(n), degs), indices)
        if indices.size
        else np.empty(0, dtype=np.int64)
    )

    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    adopted = np.zeros(n, dtype=bool)
    dist[root] = 0
    parent[root] = root
    adopted[root] = True
    child_src: list[np.ndarray] = []
    child_dst: list[np.ndarray] = []

    def expand(adopters: np.ndarray):
        """Canonically ordered send batch of freshly adopted nodes.

        Per node: CHILD to the parent first (the root sends none), then an
        announce on every other usable port in ascending-neighbor order —
        the exact outbox insertion order of ``BFSProgram``.
        """
        sel, counts, offs = expand_csr_rows(indptr, adopters)
        if sel.size == 0:
            return None
        src = np.repeat(adopters, counts)
        dst = indices[sel]
        eid = arc_eids[sel]
        is_parent_arc = dst == parent[src]
        kind = np.where(is_parent_arc, _KIND_CHILD, _KIND_ANNOUNCE)
        keep = ~(is_parent_arc & (src == root))  # root: no parent, no CHILD
        src, dst, eid, kind, sub = (
            src[keep],
            dst[keep],
            eid[keep],
            kind[keep],
            offs[keep],
        )
        if not src.size:
            return None
        order = np.lexsort((sub, kind, src))
        return src[order], dst[order], eid[order], kind[order]

    batch = expand(np.array([root], dtype=np.int64))
    rnd = 0
    rounds = 0
    while batch is not None:
        rnd += 1
        rounds = rnd
        src, dst, eid, kind = batch
        alive = stream.deliver_mask(rnd, eid)
        notice = alive & (kind == _KIND_CHILD)
        if notice.any():
            child_src.append(src[notice])
            child_dst.append(dst[notice])
        ann = alive & (kind == _KIND_ANNOUNCE) & ~adopted[dst]
        batch = None
        if ann.any():
            a_src = src[ann]
            a_dst = dst[ann]
            order = np.lexsort((a_src, a_dst))
            a_src, a_dst = a_src[order], a_dst[order]
            first = np.ones(a_dst.size, dtype=bool)
            first[1:] = a_dst[1:] != a_dst[:-1]
            winners = a_dst[first]
            announcers = a_src[first]  # smallest port == smallest neighbor id
            dist[winners] = dist[announcers] + 1
            parent[winners] = announcers
            adopted[winners] = True
            batch = expand(winners)

    children: list[list[int]] = [[] for _ in range(n)]
    if child_src:
        cs = np.concatenate(child_src)
        cd = np.concatenate(child_dst)
        for p, c in zip(cd.tolist(), cs.tolist()):
            children[p].append(c)
        for lst in children:
            lst.sort()  # canonical order, as _collect_results does
    result = BFSResult(
        root=root, parent=parent, dist=dist, children=children, rounds=rounds
    )
    return FaultyBFSOutcome(
        result=result, dropped=stream.dropped, fault_rng_state=stream.rng_state
    )


def faulty_bfs(
    graph: Graph,
    root: int,
    plan: FaultPlan | None = None,
    fault_seed=0,
    edge_mask: np.ndarray | None = None,
    backend: str = "simulator",
    step: str | None = None,
) -> FaultyBFSOutcome:
    """Lemma 2's flood under a fault plan, on either backend.

    ``backend="simulator"`` runs :class:`~repro.primitives.bfs.BFSProgram`
    on a :class:`~repro.congest.faults.FaultySimulator`;
    ``backend="vectorized"`` produces the bit-identical outcome (forest,
    round count, drop count, fault RNG state) via
    :func:`vectorized_faulty_bfs`. ``step`` selects the vectorized
    stepping strategy and is ignored by the simulator (which is always
    per-round).
    """
    from repro.engine import validate_backend

    if validate_backend(backend) == "vectorized":
        return vectorized_faulty_bfs(
            graph,
            root,
            plan=plan,
            fault_seed=fault_seed,
            edge_mask=edge_mask,
            step=step,
        )
    from repro.congest.faults import FaultySimulator
    from repro.congest.network import Network
    from repro.primitives.bfs import BFSProgram, _collect_results

    if not (0 <= root < graph.n):
        raise ValidationError(f"root {root} out of range")
    plan = plan if plan is not None else FaultPlan()
    network = Network(graph)
    if edge_mask is not None:
        mask = np.asarray(edge_mask, dtype=bool)
        ports = {v: network.ports_for_edges(v, mask) for v in range(graph.n)}
    else:
        ports = {v: None for v in range(graph.n)}

    programs: list[BFSProgram] = []

    def factory(v: int) -> BFSProgram:
        prog = BFSProgram(v, {0: root}, {0: ports[v]})
        programs.append(prog)
        return prog

    sim = FaultySimulator(network, factory, plan=plan, fault_seed=fault_seed)
    result = sim.run()
    for prog in programs:
        prog.finalize()
    res = _collect_results(graph, network, programs, {0: root}, result.metrics.rounds)[0]
    return FaultyBFSOutcome(
        result=res,
        dropped=sim.dropped,
        fault_rng_state=sim._fault_rng.bit_generator.state,
    )


@obs.traced("faulty_bfs_grid")
def faulty_bfs_grid(
    graph: Graph,
    roots,
    plan: FaultPlan | None = None,
    fault_seeds=None,
    edge_mask: np.ndarray | None = None,
    backend: str = "vectorized",
    step: str | None = None,
) -> list[FaultyBFSOutcome]:
    """A whole (root × fault-seed) grid of faulty floods in one plane sweep.

    Element ``i`` is bit-identical to
    ``faulty_bfs(graph, roots[i], plan, fault_seeds[i], ...)`` — same
    forest, rounds, drop count, and fault RNG state. When the plan draws
    no coins and has no mobile set (the static dead-edge regime the span
    path already collapses per query), the whole grid reduces to one
    :func:`repro.engine.plane.plane_sweep` over the distinct roots on the
    dead-subtracted CSR: the coin RNG is untouched, so outcomes across
    fault seeds differ only in their (pristine) recorded RNG state, and
    queries sharing a root share read-only forest rows. Every other plan —
    positive rates, mobile schedules, ``step="round"``, the simulator
    backend — falls back to the per-query loop, which is the contract's
    definition anyway.

    ``fault_seeds`` defaults to all zeros; when given it must match
    ``roots`` in length.
    """
    from repro.engine import validate_backend

    plan = plan if plan is not None else FaultPlan()
    root_list = [int(r) for r in roots]
    seeds = list(fault_seeds) if fault_seeds is not None else [0] * len(root_list)
    if len(seeds) != len(root_list):
        raise ValidationError(
            f"fault_seeds length {len(seeds)} != roots length {len(root_list)}"
        )
    if (
        validate_backend(backend) != "vectorized"
        or resolve_step(step) != "span"
        or plan.mobile
        or plan.drop_rate != 0.0
        or not root_list
    ):
        return [
            faulty_bfs(
                graph, r, plan=plan, fault_seed=s, edge_mask=edge_mask,
                backend=backend, step=step,
            )
            for r, s in zip(root_list, seeds)
        ]

    from repro.engine.plane import plane_sweep

    plan.validate_for(graph.m)
    for r in root_list:
        if not (0 <= r < graph.n):
            raise ValidationError(f"root {r} out of range")
    base = None if edge_mask is None else np.asarray(edge_mask, dtype=bool)
    indptr, indices = graph.masked_csr(base)
    n = graph.n
    de = np.empty(0, dtype=np.int64)
    if plan.dead_edges:
        dead = np.zeros(graph.m, dtype=bool)
        dead[
            np.fromiter(plan.dead_edges, dtype=np.int64, count=len(plan.dead_edges))
        ] = True
        full = np.ones(graph.m, dtype=bool) if base is None else base
        pindptr, pindices = graph.masked_csr(full & ~dead)
        de = np.nonzero(dead)[0]
        if base is not None:
            de = de[base[de]]
    else:
        pindptr, pindices = indptr, indices
    uniq, inverse = np.unique(np.asarray(root_list, dtype=np.int64), return_inverse=True)
    parent, dist, _ = plane_sweep(n, pindptr, pindices, uniq)
    # The clock runs off the *masked* graph, exactly like _span_faulty_bfs:
    # the root's round-1 batch exists as soon as any usable port does.
    rounds_u = np.where(indptr[uniq + 1] > indptr[uniq], dist.max(axis=1) + 1, 0)
    if de.size:
        dropped_u = (dist[:, graph.edge_u[de]] >= 0).sum(axis=1) + (
            dist[:, graph.edge_v[de]] >= 0
        ).sum(axis=1)
    else:
        dropped_u = np.zeros(uniq.size, dtype=np.int64)
    out: list[FaultyBFSOutcome] = []
    for i, (r, s) in enumerate(zip(root_list, seeds)):
        q = int(inverse[i])
        res = BFSResult(
            root=r,
            parent=parent[q],
            dist=dist[q],
            children=None,  # rate-0 plans drop no child-notices
            rounds=int(rounds_u[q]),
        )
        out.append(
            FaultyBFSOutcome(
                result=res,
                dropped=int(dropped_u[q]),
                fault_rng_state=ensure_rng(s).bit_generator.state,
            )
        )
    return out


# --------------------------------------------------------------------------- #
# Lemma 1 under faults — tracking upcast/downcast queue recurrence
# --------------------------------------------------------------------------- #

@dataclass
class FaultyBroadcastOutcome:
    """Exact delivery bookkeeping of one faulted multi-tree broadcast.

    ``total_messages``/``total_bits`` charge every *send* (drops included —
    a dropped message spent its bandwidth) with the simulator's exact
    :func:`~repro.util.bits.bits_for_payload` price of the ``(kind, cid,
    mid)`` tuples ``_TrackingProgram`` puts on the wire, so they equal the
    ``Metrics`` totals of the twin simulator run bit for bit.
    """

    rounds: int
    dropped: int
    mids: np.ndarray  # sorted distinct message ids
    receipt_counts: np.ndarray  # distinct receiving nodes per mid
    receipt_bits: np.ndarray  # packed (len(mids), ceil(n/8)) receipt matrix
    n: int
    fault_rng_state: dict
    total_messages: int = 0
    total_bits: int = 0

    def coverage(self) -> dict[int, float]:
        return {
            int(m): int(c) / self.n
            for m, c in zip(self.mids.tolist(), self.receipt_counts.tolist())
        }

    def receipts(self) -> dict[int, frozenset[int]]:
        """Exact per-message receipt sets (unpacked on demand)."""
        out: dict[int, frozenset[int]] = {}
        for i, m in enumerate(self.mids.tolist()):
            nodes = np.nonzero(
                np.unpackbits(self.receipt_bits[i], bitorder="little")[: self.n]
            )[0]
            out[int(m)] = frozenset(nodes.tolist())
        return out


class _Channel:
    """Vectorized state of one broadcast channel (tree + queues)."""

    __slots__ = (
        "root",
        "parent",
        "dist",
        "up_eid",
        "cindptr",
        "cind",
        "ceid",
        "up_q",
        "root_dq",
        "root_head",
        "down_mid",
    )

    def __init__(self, graph: Graph, tree: BFSResult, placement: dict[int, list[int]]):
        n = graph.n
        self.root = int(tree.root)
        self.parent = np.asarray(tree.parent, dtype=np.int64)
        self.dist = np.asarray(tree.dist, dtype=np.int64)
        ids = np.arange(n)
        nonroot = self.parent != ids
        self.up_eid = np.full(n, -1, dtype=np.int64)
        vs = np.nonzero(nonroot)[0]
        if vs.size:
            self.up_eid[vs] = graph.edge_ids_for_pairs(self.parent[vs], vs)
        self.cindptr, self.cind = tree.children_as_csr()
        self.ceid = (
            graph.edge_ids_for_pairs(
                np.repeat(ids, np.diff(self.cindptr)), self.cind
            )
            if self.cind.size
            else np.empty(0, dtype=np.int64)
        )
        # Queues, seeded exactly like _TrackingProgram.__init__: the root's
        # own items go straight to its down stream (and count as received);
        # everyone else's own items start in the up queue.
        self.up_q: dict[int, deque[int]] = {}
        self.root_dq: list[int] = []
        self.root_head = 0
        for v, mids in placement.items():
            if not mids:
                continue
            if int(v) == self.root:
                self.root_dq.extend(int(m) for m in mids)
            else:
                self.up_q[int(v)] = deque(int(m) for m in mids)
        self.down_mid = np.full(n, -1, dtype=np.int64)


def _span_broadcast_viable(n: int, chans: list[_Channel], kmax: list[int]) -> bool:
    """Preconditions of the closed-form downcast, checked per channel.

    The span path needs a proper BFS layering of the children arcs (root
    depth 0, child depth = parent depth + 1, at most one parent arc per
    node, all depths known) so emissions pipeline at exactly one layer
    per round, and a bounded packed hole matrix (n × ceil(K/8) bytes,
    capped at ~256 MB using the a-priori bound K ≤ items placed on the
    channel). Anything else falls back to the per-round replay.
    """
    for st, k in zip(chans, kmax):
        if n * ((k + 7) // 8) > (1 << 28):
            return False
        if st.dist[st.root] != 0 or np.any(st.dist < 0):
            return False
        if st.cind.size:
            if np.bincount(st.cind, minlength=n).max() > 1:
                return False
            arc_parent = np.repeat(np.arange(n, dtype=np.int64), np.diff(st.cindptr))
            if not np.array_equal(st.dist[st.cind], st.dist[arc_parent] + 1):
                return False
    return True


def _mobile_down_kills(
    st: _Channel, plan: FaultPlan, r_emit: np.ndarray, arc_dead: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Mobile-adversary hits on the downcast, as (arc index, emission index).

    The crossing of emission ``i`` on the arc into a depth-``d`` child
    happens in round ``r_emit[i] + d - 1``, so a mobile fault at round ρ
    on that arc's edge kills emission ``i = r_emit⁻¹(ρ - d + 1)`` — if
    that round is an actual emission round and the arc is not already
    dead (dead edges drop first; the crossing must not double-count).
    """
    empty = np.empty(0, dtype=np.int64)
    if not plan.mobile or st.ceid.size == 0:
        return empty, empty
    order = np.argsort(st.ceid, kind="stable")
    sc = st.ceid[order]
    dep_child = st.dist[st.cind]
    arcs_l: list[np.ndarray] = []
    idx_l: list[np.ndarray] = []
    for rho, edges in plan.mobile.items():
        if not edges:
            continue
        arr = np.fromiter(edges, dtype=np.int64, count=len(edges))
        pos = np.minimum(np.searchsorted(sc, arr), sc.size - 1)
        arcs = order[pos[sc[pos] == arr]]  # ≤ one arc per edge per tree
        if not arcs.size:
            continue
        t = rho - dep_child[arcs] + 1
        i = np.minimum(np.searchsorted(r_emit, t), r_emit.size - 1)
        ok = (r_emit[i] == t) & (t >= 1) & ~arc_dead[arcs]
        arcs_l.append(arcs[ok])
        idx_l.append(i[ok])
    if not arcs_l:
        return empty, empty
    return np.concatenate(arcs_l), np.concatenate(idx_l)


def _span_faulty_broadcast(
    graph: Graph,
    chans: list[_Channel],
    stream: FaultStream,
    plan: FaultPlan,
    mid_index: np.ndarray,
    mid_row: dict[int, int],
    recv: np.ndarray,
    cid_bits: np.ndarray,
    nbytes: int,
) -> FaultyBroadcastOutcome:
    """Event-batched twin of the per-round faulty broadcast (rate-0 plans).

    Phase 1 replays only the upcast per round (its total volume is the
    sum of origin depths — the cheap part), collecting each root's
    emission availability schedule. Phase 2 is closed-form per channel:
    the root's emission rounds follow ``r_i = max(avail_i, r_{i-1}+1)``,
    every emission pipelines down one layer per round, and which
    emissions reach which node is propagated layer-by-layer through a
    packed *hole matrix* ``H`` (bit set = emission missing): a live arc
    copies the parent's holes, a dead arc keeps the child all-holes
    (charging one drop per emission the parent forwards), and each
    mobile hit punches one extra hole. Receipt rows, drop totals,
    send-time message/bit charges, and the final round all read off
    ``H`` — with the fault RNG untouched, exactly like the per-round
    replay at rate 0.
    """
    from repro.util.bits import bits_for_int_array

    n = graph.n
    total_messages = 0
    total_bits = 0
    rounds = 0
    dropped_down = 0

    # ---- phase 1: per-round upcast replay ------------------------------- #
    avails: list[list[int]] = [[1] * len(st.root_dq) for st in chans]
    rnd = 0
    while any(st.up_q for st in chans):
        rnd += 1
        rounds = rnd
        # Splitting the round's batch per channel is exact at rate 0: dead
        # and mobile lookups are elementwise and the coin RNG is never drawn.
        for ci, st in enumerate(chans):
            if not st.up_q:
                continue
            uvs = sorted(st.up_q)
            uarr = np.asarray(uvs, dtype=np.int64)
            umids = np.fromiter(
                (st.up_q[v][0] for v in uvs), dtype=np.int64, count=uarr.size
            )
            total_messages += uarr.size
            total_bits += int((2 + cid_bits[ci] + bits_for_int_array(umids)).sum())
            alive = stream.deliver_mask(rnd, st.up_eid[uarr])
            for v in uvs:  # pops precede deliveries, as in send_phase()
                q = st.up_q[v]
                q.popleft()
                if not q:
                    del st.up_q[v]
            for j, v in enumerate(uvs):
                if not alive[j]:
                    continue
                d = int(st.parent[v])
                m_ = int(umids[j])
                if d == st.root:
                    recv[mid_row[m_], d >> 3] |= np.uint8(1 << (d & 7))
                    st.root_dq.append(m_)
                    avails[ci].append(rnd + 1)  # poppable from the next round
                else:
                    q = st.up_q.get(d)
                    if q is None:
                        q = st.up_q[d] = deque()
                    q.append(m_)

    # ---- phase 2: closed-form downcast per channel ----------------------- #
    for ci, st in enumerate(chans):
        K = len(st.root_dq)
        if K == 0:
            continue
        dmids = np.asarray(st.root_dq, dtype=np.int64)
        av = np.asarray(avails[ci], dtype=np.int64)
        ar = np.arange(K, dtype=np.int64)
        r_emit = ar + np.maximum.accumulate(av - ar)  # r_i = max(a_i, r_{i-1}+1)
        nchild = np.diff(st.cindptr)
        if int(nchild[st.root]) == 0:
            # Childless root (single-node graph): no sends, but draining the
            # queue keeps the simulator's busy flag up for K - 1 more rounds.
            rounds = max(rounds, K - 1)
            continue
        bits_w = 2 + int(cid_bits[ci]) + bits_for_int_array(dmids)
        dep = st.dist
        Kb = (K + 7) // 8
        H = np.full((n, Kb), 0xFF, dtype=np.uint8)  # bit set = emission missing
        seed = np.zeros(Kb, dtype=np.uint8)
        if K & 7:
            seed[-1] = np.uint8((0xFF << (K & 7)) & 0xFF)  # padding stays holes
        H[st.root] = seed
        R = np.zeros(n, dtype=np.int64)  # received-emission count per node
        B = np.zeros(n, dtype=np.int64)  # received-emission bit-price sum
        R[st.root] = K
        B[st.root] = int(bits_w.sum())

        arc_parent = np.repeat(np.arange(n, dtype=np.int64), nchild)
        arc_dead = stream.dead[st.ceid]
        kill_arc, kill_i = _mobile_down_kills(st, plan, r_emit, arc_dead)
        kill_dep = dep[st.cind[kill_arc]]
        arc_dep = dep[st.cind]
        order = np.argsort(arc_dep, kind="stable")
        sdep = arc_dep[order]
        for d in range(1, int(arc_dep.max()) + 1):
            la = order[np.searchsorted(sdep, d) : np.searchsorted(sdep, d + 1)]
            if not la.size:
                continue
            dead = arc_dead[la]
            if dead.any():
                # The parent forwards everything it received on dead arcs
                # too; every one of those crossings is a counted drop.
                dropped_down += int(R[arc_parent[la[dead]]].sum())
            live = la[~dead]
            if live.size:
                cs = st.cind[live]
                ps = arc_parent[live]
                H[cs] = H[ps]
                R[cs] = R[ps]
                B[cs] = B[ps]
            ks = np.nonzero(kill_dep == d)[0]
            if ks.size:
                ka = kill_arc[ks]
                ki = kill_i[ks]
                ps = arc_parent[ka]
                cs = st.cind[ka]
                # A mobile hit only drops a crossing the parent made.
                sent = (H[ps, ki >> 3] >> (ki & 7)) & 1 == 0
                np.bitwise_or.at(H, (cs, ki >> 3), (1 << (ki & 7)).astype(np.uint8))
                dropped_down += int(sent.sum())
                np.subtract.at(R, cs[sent], 1)
                np.subtract.at(B, cs[sent], bits_w[ki[sent]])
        total_messages += int((R * nchild).sum())
        total_bits += int((B * nchild).sum())

        # Receipts: transpose ~H into the packed (mid, node) matrix. The
        # OR-accumulate handles duplicate mids within and across channels.
        rows = np.searchsorted(mid_index, dmids)
        chanrecv = np.zeros((K, nbytes), dtype=np.uint8)
        for lo in range(0, n, 4096):
            hi = min(lo + 4096, n)
            bits = np.unpackbits(~H[lo:hi], axis=1, bitorder="little")[:, :K]
            pk = np.packbits(bits.T, axis=1, bitorder="little")
            chanrecv[:, lo >> 3 : (lo >> 3) + pk.shape[1]] |= pk
        np.bitwise_or.at(recv, rows, chanrecv)

        # Last crossing: every sender forwards its latest-received emission
        # j at round r_emit[j] + depth (crossings on dead arcs included).
        senders = np.nonzero((nchild > 0) & (R > 0))[0]
        for lo in range(0, senders.size, 4096):
            vs = senders[lo : lo + 4096]
            bits = np.unpackbits(~H[vs], axis=1, bitorder="little")[:, :K]
            j = K - 1 - np.argmax(bits[:, ::-1], axis=1)
            rounds = max(rounds, int((r_emit[j] + dep[vs]).max()))

    return FaultyBroadcastOutcome(
        rounds=rounds,
        dropped=stream.dropped + dropped_down,
        mids=mid_index,
        receipt_counts=_popcount_rows(recv),
        receipt_bits=recv,
        n=n,
        fault_rng_state=stream.rng_state,
        total_messages=total_messages,
        total_bits=total_bits,
    )


def _span_faulty_broadcast_total_loss(
    chans: list[_Channel],
    stream: FaultStream,
    mid_index: np.ndarray,
    recv: np.ndarray,
    cid_bits: np.ndarray,
    n: int,
) -> FaultyBroadcastOutcome:
    """Closed-form faulty broadcast under pure uniform total loss (rate 1.0).

    Nothing ever crosses an edge, so the queue dynamics collapse: a non-root
    node with ``L`` own items pumps its up-queue head in rounds ``1..L``
    (each crossing dropped, never re-sent, never received), and the root
    pops one own item per round, emitting it to each tree child in rounds
    ``1..K`` — a childless root (single-node graph) still drains for
    ``K - 1`` extra busy rounds with no sends, exactly like the per-round
    replay's wake condition. Receipts stay at the roots' pre-marked own
    items, every crossing is both a counted send and a counted drop, and
    one batched coin draw per channel consumes the same PCG64 stream the
    per-round batches would (``random(a)`` then ``random(b)`` equals
    ``random(a + b)``).

    Like the BFS twin, only the total-loss boundary admits this: rates in
    (0, 1) make each round's coin count depend on earlier survivals, and
    dead edges / mobile schedules shrink the per-round coin batch. Those
    plans keep the round path (or the rate-0 span path).
    """
    from repro.util.bits import bits_for_int_array

    total_messages = 0
    total_bits = 0
    rounds = 0
    for ci, st in enumerate(chans):
        cb = int(cid_bits[ci])
        up_mids = [m for q in st.up_q.values() for m in q]
        if st.up_q:
            rounds = max(rounds, max(len(q) for q in st.up_q.values()))
        crossings = len(up_mids)
        bits = (
            int((2 + cb + bits_for_int_array(np.asarray(up_mids, dtype=np.int64))).sum())
            if up_mids
            else 0
        )
        K = len(st.root_dq)
        if K:
            nchild_root = int(st.cindptr[st.root + 1] - st.cindptr[st.root])
            if nchild_root:
                crossings += K * nchild_root
                bits += nchild_root * int(
                    (2 + cb + bits_for_int_array(np.asarray(st.root_dq, dtype=np.int64))).sum()
                )
                rounds = max(rounds, K)
            else:
                rounds = max(rounds, K - 1)
        total_messages += crossings
        total_bits += bits
        if crossings:
            stream.rng.random(crossings)
            stream.dropped += crossings
    return FaultyBroadcastOutcome(
        rounds=rounds,
        dropped=stream.dropped,
        mids=mid_index,
        receipt_counts=_popcount_rows(recv),
        receipt_bits=recv,
        n=n,
        fault_rng_state=stream.rng_state,
        total_messages=total_messages,
        total_bits=total_bits,
    )


@obs.traced("faulty_broadcast")
def vectorized_faulty_broadcast(
    graph: Graph,
    trees: dict[int, BFSResult],
    messages: dict[int, dict[int, list[int]]],
    plan: FaultPlan | None = None,
    fault_seed=0,
    step: str | None = None,
) -> FaultyBroadcastOutcome:
    """Fast-path twin of the tracking broadcast on a faulty simulator.

    Replays the pump-while-busy dynamics of
    :class:`repro.core.resilient._TrackingProgram` as per-round numpy
    batches: every nonempty up-queue sends its head to the parent, every
    nonempty down-queue pops one id (forwarded to all tree children), all
    crossings of a round form one delivery batch in the simulator's
    canonical order — node ascending, channel ascending, up-send before
    down-sends, children in ``tree.children`` order — and the fault plan
    drops from that batch exactly as ``FaultySimulator._deliverable`` would
    (same drops, same RNG stream). Receipts are tracked in a packed bitset,
    one row per message id.

    ``trees``/``messages`` take the same shapes as
    :func:`repro.engine.fastpath.vectorized_tree_broadcast`; channels are
    processed in sorted-cid order, which matches any driver that builds its
    per-node channel specs over ``{0: ..., 1: ..., ...}`` in cid order.

    ``step="span"`` (the default, see
    :func:`repro.engine.kernels.resolve_step`) runs the downcast — the
    bulk of the work — closed-form via :func:`_span_faulty_broadcast`
    whenever the plan draws no coins (``drop_rate == 0``; dead edges and
    the mobile adversary are fine) and the trees are BFS-layered, and via
    :func:`_span_faulty_broadcast_total_loss` under pure uniform total
    loss (``drop_rate == 1.0``, no dead edges, no mobile set); otherwise,
    and under ``step="round"``, the per-round replay below runs. All
    strategies are bit-identical where they apply.
    """
    plan = plan if plan is not None else FaultPlan()
    n = graph.n
    cids = sorted(trees)
    for cid in messages:
        if cid not in trees:
            raise ValidationError(f"messages given for unknown channel {cid}")
    for cid in cids:
        if not trees[cid].spans():
            raise ValidationError(f"channel {cid} tree does not span the graph")
    if n > 1 and len(cids) > 1:
        use = np.zeros(graph.m, dtype=np.int64)
        for cid in cids:
            t = trees[cid]
            vs = np.nonzero(t.parent != np.arange(n))[0]
            use[graph.edge_ids_for_pairs(t.parent[vs], vs)] += 1
        if use.max() > 1:
            raise ValidationError(
                "trees must be edge-disjoint (the simulator would refuse the "
                "double-send)"
            )

    all_mids = sorted(
        {int(m) for pl in messages.values() for ms in pl.values() for m in ms}
    )
    mid_index = np.asarray(all_mids, dtype=np.int64)
    mid_row = {m: i for i, m in enumerate(all_mids)}
    nbytes = max(1, (n + 7) // 8)
    recv = np.zeros((len(all_mids), nbytes), dtype=np.uint8)

    chans = [_Channel(graph, trees[cid], messages.get(cid, {})) for cid in cids]
    stream = FaultStream(graph, plan, fault_seed)
    # Send-time bit pricing: bits_for_payload((kind, cid, mid)) with
    # kind ∈ {0, 1} → 2 bits, plus the cid and mid integer sizes.
    from repro.util.bits import bits_for_int_array

    cid_bits = (
        bits_for_int_array(np.asarray(cids, dtype=np.int64))
        if cids
        else np.empty(0, dtype=np.int64)
    )
    total_messages = 0
    total_bits = 0

    # Roots know their own messages from the start (per _TrackingProgram).
    for ci, cid in enumerate(cids):
        st = chans[ci]
        own = messages.get(cid, {}).get(st.root, [])
        if own:
            rows = np.searchsorted(mid_index, np.asarray(own, dtype=np.int64))
            np.bitwise_or.at(
                recv, (rows, st.root >> 3), np.uint8(1 << (st.root & 7))
            )

    if resolve_step(step) == "span":
        if plan.drop_rate == 0.0:
            kmax = [
                sum(len(ms) for ms in messages.get(cid, {}).values()) for cid in cids
            ]
            if _span_broadcast_viable(n, chans, kmax):
                return _span_faulty_broadcast(
                    graph, chans, stream, plan, mid_index, mid_row, recv, cid_bits, nbytes
                )
        elif plan.drop_rate == 1.0 and not plan.mobile and not stream.dead.any():
            return _span_faulty_broadcast_total_loss(
                chans, stream, mid_index, recv, cid_bits, n
            )

    def send_phase():
        """Pump every nonempty queue once, in canonical order; pop heads.

        Returns ``(batch, busy)``: the ordered crossing arrays (or None) and
        whether any queue still holds items after the pops (the simulator's
        wake condition — it keeps the round clock running even when a pop
        produces no sends, e.g. a single-node root draining its own list).
        """
        node_l, chan_l, kind_l, sub_l, dst_l, eid_l, mid_l = (
            [], [], [], [], [], [], []
        )
        busy = False
        for ci, st in enumerate(chans):
            if st.up_q:
                uvs = np.fromiter(sorted(st.up_q), dtype=np.int64, count=len(st.up_q))
                umids = np.fromiter(
                    (st.up_q[v][0] for v in uvs.tolist()),
                    dtype=np.int64,
                    count=uvs.size,
                )
                node_l.append(uvs)
                chan_l.append(np.full(uvs.size, ci, dtype=np.int64))
                kind_l.append(np.zeros(uvs.size, dtype=np.int64))
                sub_l.append(np.zeros(uvs.size, dtype=np.int64))
                dst_l.append(st.parent[uvs])
                eid_l.append(st.up_eid[uvs])
                mid_l.append(umids)
                for v in uvs.tolist():
                    q = st.up_q[v]
                    q.popleft()
                    if q:
                        busy = True
                    else:
                        del st.up_q[v]
            dvs = np.nonzero(st.down_mid >= 0)[0]
            dmids = st.down_mid[dvs]
            if st.root_head < len(st.root_dq):
                pos = int(np.searchsorted(dvs, st.root))
                dvs = np.insert(dvs, pos, st.root)
                dmids = np.insert(dmids, pos, st.root_dq[st.root_head])
                st.root_head += 1
                if st.root_head < len(st.root_dq):
                    busy = True
            if dvs.size:
                st.down_mid[dvs] = -1
                sel, counts, offs = expand_csr_rows(st.cindptr, dvs)
                if sel.size:
                    node_l.append(np.repeat(dvs, counts))
                    chan_l.append(np.full(sel.size, ci, dtype=np.int64))
                    kind_l.append(np.ones(sel.size, dtype=np.int64))
                    sub_l.append(offs)
                    dst_l.append(st.cind[sel])
                    eid_l.append(st.ceid[sel])
                    mid_l.append(np.repeat(dmids, counts))
        if not node_l:
            return None, busy
        node = np.concatenate(node_l)
        chan = np.concatenate(chan_l)
        kind = np.concatenate(kind_l)
        sub = np.concatenate(sub_l)
        order = np.lexsort((sub, kind, chan, node))
        return (
            (
                chan[order],
                kind[order],
                np.concatenate(dst_l)[order],
                np.concatenate(eid_l)[order],
                np.concatenate(mid_l)[order],
            ),
            busy,
        )

    batch, busy = send_phase()
    rnd = 0
    rounds = 0
    while batch is not None or busy:
        rnd += 1
        rounds = rnd
        if batch is not None:
            chan, kind, dst, eid, mid = batch
            total_messages += int(chan.size)
            total_bits += int((2 + cid_bits[chan] + bits_for_int_array(mid)).sum())
            alive = stream.deliver_mask(rnd, eid)
            # UP deliveries in order (Python loop: volume is only the sum of
            # origin depths, the sparse-upcast term).
            for i in np.nonzero(alive & (kind == 0))[0].tolist():
                st = chans[chan[i]]
                d = int(dst[i])
                m_ = int(mid[i])
                if d == st.root:
                    recv[mid_row[m_], d >> 3] |= np.uint8(1 << (d & 7))
                    st.root_dq.append(m_)
                else:
                    q = st.up_q.get(d)
                    if q is None:
                        q = st.up_q[d] = deque()
                    q.append(m_)
            # DOWN deliveries — the bulk — vectorized per channel.
            down_alive = alive & (kind == 1)
            for ci, st in enumerate(chans):
                sel = np.nonzero(down_alive & (chan == ci))[0]
                if not sel.size:
                    continue
                dd = dst[sel]
                mm = mid[sel]
                rows = np.searchsorted(mid_index, mm)
                np.bitwise_or.at(
                    recv, (rows, dd >> 3), (1 << (dd & 7)).astype(np.uint8)
                )
                st.down_mid[dd] = mm
        batch, busy = send_phase()

    return FaultyBroadcastOutcome(
        rounds=rounds,
        dropped=stream.dropped,
        mids=mid_index,
        receipt_counts=_popcount_rows(recv),
        receipt_bits=recv,
        n=n,
        fault_rng_state=stream.rng_state,
        total_messages=total_messages,
        total_bits=total_bits,
    )
