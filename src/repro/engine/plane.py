"""Multi-query frontier planes: one sweep answering batches of BFS queries.

Every vectorized entry point used to serve exactly one (root, channel-set,
seed) configuration per call, so grid workloads — E16 adversary sweeps,
packing retries, λ-search guesses, the E17 tournament — paid the whole
per-call dispatch price once per cell. This module packs many independent
queries into one array plane and lets a single layer loop amortize all of
it, the minibatch idiom of graph samplers applied to the CONGEST engine.

Two batching shapes cover every caller:

* :class:`QueryPlane` / :func:`plane_sweep` — Q queries over **one shared
  CSR** (same channel-set, different roots). Frontier/visited membership
  lives in bit-packed ``uint64`` planes of shape ``(Q, ceil(n/64))``: the
  bit for node ``v`` of query ``q`` is ``plane[q, v >> 6] >> (v & 63) & 1``
  (little-endian within each word). One masked gather — or, on wide
  layers, one boolean SpMV of the ``(Q, n)`` frontier matrix against the
  shared adjacency — expands every live query's frontier per layer.

* :func:`masked_union_bfs` — queries with **heterogeneous channel-sets**
  (packing attempts, λ-search iterations). Each query's masked subgraph is
  laid out on its own node block of one big CSR and a single
  :func:`~repro.engine.kernels.frontier_sweep` serves all blocks on a
  shared layer clock, exactly the disjoint-union batching of
  ``vectorized_parallel_bfs`` — but without requiring masks of *different*
  queries to be disjoint.

**Bit-identity contract.** Each query's outputs equal its standalone run,
element for element. The plane gather filters candidates against the
packed visited plane, stable-sorts by the flattened key ``q·n + v``, and
adopts the first occurrence per (query, node) — arcs enumerate the sorted
frontier in order, so that first arc comes from the **smallest**
previous-layer neighbor, the exact
:func:`~repro.engine.kernels.tree_parents` adoption rule of the solo
sweeps. Per-query RNG sub-streams follow the
:func:`~repro.util.rng.rng_from_seed` discipline: a query batched with
seed ``s`` consumes (or, for rate-0 fault queries, leaves untouched) the
same PCG64 stream its standalone run would.

Memory is bounded by chunking query rows: :func:`plane_sweep` processes at
most ``max_cells`` (query × node) cells of ``int64`` plane at a time, so
batch sizes far beyond the resident-plane budget stream through in slices.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.engine import kernels
from repro.engine.kernels import expand_csr_rows, frontier_sweep, scipy_sparse
from repro.util.errors import ValidationError
from repro.util.rng import rng_from_seed

__all__ = ["QueryPlane", "masked_union_bfs", "plane_sweep"]

# Default resident-plane budget: 2^24 int64 cells keep the parent+dist
# planes of one chunk at 256 MB total regardless of batch size.
_PLANE_MAX_CELLS = 1 << 24


class QueryPlane:
    """Bit-packed (queries × nodes) BFS plane over one shared CSR.

    Holds the packed ``uint64`` ``visited`` and ``frontier_mask`` planes,
    the dense ``parent``/``dist`` planes, a per-query ``rounds`` counter,
    and (optionally) per-query seeds from which :meth:`rng_streams`
    derives one :func:`~repro.util.rng.rng_from_seed` generator per query.
    :meth:`sweep` runs every query to exhaustion on one shared layer
    clock; queries whose frontier dies simply stop contributing arcs.

    ``frontier_mask`` is materialized from the live (query, node) pair
    list on demand — the SpMV layer path uses it both to build the
    ``(Q, n)`` frontier matrix and to test previous-layer membership
    during parent adoption.
    """

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        roots,
        seeds=None,
    ) -> None:
        self.n = int(n)
        self.indptr = indptr
        self.indices = indices
        self.roots = np.atleast_1d(np.asarray(roots, dtype=np.int64))
        if self.roots.size and (
            int(self.roots.min()) < 0 or int(self.roots.max()) >= self.n
        ):
            raise ValidationError("plane roots out of range")
        self.queries = int(self.roots.size)
        self.seeds = None if seeds is None else [int(s) for s in seeds]
        if self.seeds is not None and len(self.seeds) != self.queries:
            raise ValidationError("plane seeds must match the query count")
        self.words = (self.n + 63) >> 6
        self.visited = np.zeros((self.queries, self.words), dtype=np.uint64)
        self.frontier_mask = np.zeros_like(self.visited)
        self.rounds = np.zeros(self.queries, dtype=np.int64)
        self.parent = np.full((self.queries, self.n), -1, dtype=np.int64)
        self.dist = np.full((self.queries, self.n), -1, dtype=np.int64)
        q = np.arange(self.queries, dtype=np.int64)
        self.dist[q, self.roots] = 0
        self._set_bits(self.visited, q, self.roots)
        # Live frontier as (query, node) pairs sorted by the key q·n + v —
        # the enumeration order every layer's adoption rule relies on.
        self._fq = q
        self._fv = self.roots.copy()
        self._swept = False

    # -- packed-plane bit helpers --------------------------------------- #

    def _set_bits(self, plane: np.ndarray, q: np.ndarray, v: np.ndarray) -> None:
        flat = q * np.int64(self.words) + (v >> 6)
        np.bitwise_or.at(
            plane.reshape(-1), flat, np.uint64(1) << (v & 63).astype(np.uint64)
        )

    def _test_bits(self, plane: np.ndarray, q: np.ndarray, v: np.ndarray) -> np.ndarray:
        words = plane[q, v >> 6]
        return (words >> (v & 63).astype(np.uint64)) & np.uint64(1) != 0

    def rng_streams(self) -> list:
        """One :func:`rng_from_seed` generator per query, in query order."""
        if self.seeds is None:
            raise ValidationError("plane queries carry no seeds")
        return [rng_from_seed(s) for s in self.seeds]

    # -- the layer loop -------------------------------------------------- #

    def sweep(self) -> "QueryPlane":
        """Expand all live frontiers layer by layer until every query dies."""
        if self._swept:
            return self
        sp = (
            scipy_sparse()
            if self.indices.size >= kernels._SPMV_MIN_ARCS
            else None
        )
        adj = None
        d = 0
        fq, fv = self._fq, self._fv
        while fv.size:
            counts = self.indptr[fv + 1] - self.indptr[fv]
            arcs = int(counts.sum())
            if arcs == 0:
                break
            if sp is not None and arcs >= kernels._SPMV_LAYER_ARCS:
                obs.count("plane.spmv_layers")
                if adj is None:
                    adj = sp.csr_matrix(
                        (
                            np.ones(self.indices.size, dtype=bool),
                            self.indices,
                            self.indptr,
                        ),
                        shape=(self.n, self.n),
                    )
                self.frontier_mask.fill(0)
                self._set_bits(self.frontier_mask, fq, fv)
                x = sp.csr_matrix(
                    (np.ones(fv.size, dtype=bool), (fq, fv)),
                    shape=(self.queries, self.n),
                )
                y = x @ adj
                y.sort_indices()
                cq = np.repeat(
                    np.arange(self.queries, dtype=np.int64), np.diff(y.indptr)
                )
                cv = y.indices.astype(np.int64, copy=False)
                unv = ~self._test_bits(self.visited, cq, cv)
                nq, nv = cq[unv], cv[unv]
                if nq.size:
                    # Adopt the smallest previous-layer neighbor: scan each
                    # fresh node's own CSR row (ascending) against the
                    # packed frontier plane; first hit per row wins.
                    sel, fcounts, _offs = expand_csr_rows(self.indptr, nv)
                    nb = self.indices[sel]
                    rows = np.repeat(
                        np.arange(nv.size, dtype=np.int64), fcounts
                    )
                    good = np.flatnonzero(
                        self._test_bits(self.frontier_mask, nq[rows], nb)
                    )
                    gr = rows[good]
                    first = np.empty(good.size, dtype=bool)
                    first[0] = True
                    np.not_equal(gr[1:], gr[:-1], out=first[1:])
                    self.parent[nq[gr[first]], nv[gr[first]]] = nb[good[first]]
            else:
                obs.count("plane.gather_layers")
                sel, counts, _offs = expand_csr_rows(self.indptr, fv)
                cand = self.indices[sel]
                qrep = np.repeat(fq, counts)
                unv = ~self._test_bits(self.visited, qrep, cand)
                cand, qrep = cand[unv], qrep[unv]
                if cand.size == 0:
                    break
                src = np.repeat(fv, counts)[unv]
                key = qrep * np.int64(self.n) + cand
                order = np.argsort(key, kind="stable")
                skey = key[order]
                first = np.empty(skey.size, dtype=bool)
                first[0] = True
                np.not_equal(skey[1:], skey[:-1], out=first[1:])
                keep = order[first]
                nq, nv = qrep[keep], cand[keep]
                self.parent[nq, nv] = src[keep]
            if nq.size == 0:
                break
            d += 1
            self.dist[nq, nv] = d
            self.rounds[nq] = d
            self._set_bits(self.visited, nq, nv)
            fq, fv = nq, nv
        self._fq, self._fv = fq[:0], fv[:0]
        q = np.arange(self.queries, dtype=np.int64)
        self.parent[q, self.roots] = self.roots
        # Solo round accounting: depth + 1 when the root has a usable port
        # (the final round delivers the deepest layer's notifications),
        # else the protocol never starts.
        has_port = self.indptr[self.roots + 1] > self.indptr[self.roots]
        self.rounds = np.where(has_port, self.rounds + 1, 0)
        self._swept = True
        if obs.enabled():  # occupancy popcount is O(Q·n/64): only when traced
            occupied = int(
                np.bitwise_count(self.visited).sum()
                if hasattr(np, "bitwise_count")
                else np.unpackbits(
                    self.visited.view(np.uint8), bitorder="little"
                ).sum()
            )
            obs.count("plane.occupied_cells", occupied)
            obs.count("plane.cells", self.queries * self.n)
        return self


def plane_sweep(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    roots,
    seeds=None,
    max_cells: int = _PLANE_MAX_CELLS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched BFS over one shared CSR: ``(parent, dist, rounds)`` planes.

    ``parent``/``dist`` have shape ``(Q, n)``; row ``i`` is bit-identical
    to ``frontier_sweep(n, indptr, indices, roots[i])`` plus the solo
    round count of ``vectorized_bfs``. Query rows are processed in chunks
    of at most ``max_cells // n`` so the resident working set stays
    bounded for arbitrarily large batches.
    """
    roots = np.atleast_1d(np.asarray(roots, dtype=np.int64))
    q = int(roots.size)
    chunk = max(1, int(max_cells) // max(1, int(n)))
    obs.count("plane.queries", q)
    if q <= chunk:
        obs.count("plane.chunks")
        plane = QueryPlane(n, indptr, indices, roots, seeds=seeds).sweep()
        return plane.parent, plane.dist, plane.rounds
    obs.count("plane.chunks", -(-q // chunk))
    parent = np.full((q, n), -1, dtype=np.int64)
    dist = np.full((q, n), -1, dtype=np.int64)
    rounds = np.zeros(q, dtype=np.int64)
    for lo in range(0, q, chunk):
        hi = min(q, lo + chunk)
        sub = None if seeds is None else list(seeds[lo:hi])
        plane = QueryPlane(n, indptr, indices, roots[lo:hi], seeds=sub).sweep()
        parent[lo:hi] = plane.parent
        dist[lo:hi] = plane.dist
        rounds[lo:hi] = plane.rounds
    return parent, dist, rounds


def masked_union_bfs(graph, masks, roots, group_sizes=None) -> list:
    """BFS every ``(edge_mask, root)`` channel query in one union sweep.

    Unlike ``vectorized_parallel_bfs`` the masks need **not** be pairwise
    disjoint: ``group_sizes`` partitions ``masks`` into consecutive groups
    that are internally disjoint (one group per packing attempt or
    λ-search iteration; default: every mask its own group). Each group's
    CSRs are built with the fused one-gather builder, every channel
    subgraph is laid out on its own node block of one big CSR, and a
    single :func:`frontier_sweep` serves all blocks — overlapping masks of
    different groups never meet because their blocks are disconnected.

    Returns one :class:`~repro.primitives.bfs.BFSResult` per mask,
    bit-identical to ``run_bfs(graph, root, edge_mask=mask,
    backend="vectorized")`` (solo round accounting included).
    """
    from repro.primitives.bfs import BFSResult

    c = len(masks)
    if len(roots) != c:
        raise ValidationError("masked_union_bfs: one root per mask required")
    n = graph.n
    roots_local = np.asarray(roots, dtype=np.int64)
    if c and (int(roots_local.min()) < 0 or int(roots_local.max()) >= n):
        raise ValidationError("masked_union_bfs: root out of range")
    if group_sizes is None:
        group_sizes = [1] * c
    if sum(group_sizes) != c:
        raise ValidationError("group_sizes must partition the mask list")
    csrs = []
    i = 0
    for gs in group_sizes:
        if gs == 1:
            csrs.append(graph.masked_csr(masks[i]))
        else:
            csrs.extend(graph.disjoint_masked_csrs(list(masks[i : i + gs])))
        i += gs
    total = sum(int(ind.size) for _iptr, ind in csrs)
    big_indptr = np.empty(c * n + 1, dtype=np.int64)
    big_indptr[0] = 0
    big_indices = np.empty(total, dtype=np.int64)
    pos = 0
    for ci, (iptr, ind) in enumerate(csrs):
        big_indptr[ci * n + 1 : (ci + 1) * n + 1] = iptr[1:] + pos
        big_indices[pos : pos + ind.size] = ind + ci * n
        pos += int(ind.size)
    roots_arr = roots_local + np.arange(c, dtype=np.int64) * n
    parent, dist = frontier_sweep(c * n, big_indptr, big_indices, roots_arr)
    results = []
    for ci, (iptr, _ind) in enumerate(csrs):
        off = ci * n
        pb = parent[off : off + n]
        pc = np.where(pb >= 0, pb - off, pb)
        dc = dist[off : off + n].copy()
        rt = int(roots_local[ci])
        rnd = int(dc.max()) + 1 if int(iptr[rt + 1]) > int(iptr[rt]) else 0
        results.append(
            BFSResult(root=rt, parent=pc, dist=dc, children=None, rounds=rnd)
        )
    return results
