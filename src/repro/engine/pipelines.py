"""Vectorized twins of the loop-bound application pipelines.

The APSP and cut-sparsifier pipelines (Theorems 4–7) were the last
simulator-/Python-loop-bound paths in the library: cluster growth iterated
``for v in range(n)`` + ``for u, v in graph.edges()``, and the Baswana–Sen
spanner walked every node's neighbor dict once per phase. This module holds
their whole-array numpy twins, built on the same Graph CSR arrays as
:mod:`repro.engine.fastpath`.

Equivalence contract (same as the fast-path kernels): every function here is
**bit-identical** to its reference — identical outputs *and* identical RNG
consumption (same number, shape, and order of draws from the shared
``numpy.random.Generator``), so a pipeline that mixes backends mid-stream
(e.g. the Koutis–Xu level loop threading one generator through τ spanner
builds plus a sampling round) produces the same object either way. The
contract is enforced by :mod:`repro.engine.verify` (``check_clustering``,
``check_spanner``, ``check_sparsifier``) and
``tests/test_engine_equivalence.py``.

Tie-breaks mirrored exactly:

* center assignment adopts the **smallest center id** among a node's
  neighbors (CSR neighbor blocks are id-sorted, so "first valid per block"
  is that minimum);
* the spanner's per-(node, cluster) lightest edge breaks weight ties toward
  the **smaller edge id**, and the lightest *sampled* cluster is the
  ``(weight, edge id)`` minimum over sampled candidates — both are one
  lexsort + group-head selection.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.graphs.graph import Graph

__all__ = [
    "assign_centers",
    "contract_clusters",
    "vectorized_spanner_edges",
]


# --------------------------------------------------------------------------- #
# Theorem 4 step 1 — cluster growth
# --------------------------------------------------------------------------- #

@obs.traced("clustering.centers")
def assign_centers(
    graph: Graph, is_center: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Membership map for one clustering attempt, in O(n + m).

    Returns ``(centers, s)`` where ``centers`` are the sampled node ids
    (sorted) and ``s[v]`` is the cluster index of node ``v`` — centers join
    themselves, every other node joins its **smallest** center neighbor —
    or ``None`` when some non-center has no center neighbor (the retry
    event of :func:`repro.apsp.clustering.build_clustering`).
    """
    is_center = np.asarray(is_center, dtype=bool)
    centers = np.nonzero(is_center)[0]
    s = np.full(graph.n, -1, dtype=np.int64)
    s[centers] = np.arange(len(centers), dtype=np.int64)

    arc_dst = graph._indices
    arc_src = graph.arc_sources()
    usable = is_center[arc_dst] & ~is_center[arc_src]
    srcs = arc_src[usable]
    dsts = arc_dst[usable]
    if srcs.size:
        # CSR blocks are sorted by neighbor id, so the first usable arc per
        # source is its smallest center neighbor — the reference tie-break.
        first = np.empty(srcs.size, dtype=bool)
        first[0] = True
        np.not_equal(srcs[1:], srcs[:-1], out=first[1:])
        s[srcs[first]] = np.searchsorted(centers, dsts[first])
    if np.any(s < 0):
        return None
    return centers, s


@obs.traced("clustering.contract")
def contract_clusters(graph: Graph, s: np.ndarray, k: int) -> Graph:
    """The virtual cluster graph G_c, in O(m log m).

    One edge ``{s(u), s(v)}`` per pair of distinct clusters joined by a
    G-edge; the unique-sorted key order reproduces the reference
    ``sorted(set(...))`` edge ids exactly.
    """
    cu = s[graph.edge_u]
    cv = s[graph.edge_v]
    cross = cu != cv
    lo = np.minimum(cu[cross], cv[cross])
    hi = np.maximum(cu[cross], cv[cross])
    key = np.unique(lo * np.int64(k) + hi)
    return Graph(k, np.stack([key // k, key % k], axis=1))


# --------------------------------------------------------------------------- #
# [BS07] spanner — the Theorem 5 / Koutis–Xu workhorse
# --------------------------------------------------------------------------- #

from repro.engine.kernels import in_sorted as _in_sorted  # noqa: E402


class _ArcView:
    """The directed-arc arrays one spanner run sweeps repeatedly."""

    def __init__(self, graph: Graph):
        self.src = graph.arc_sources()
        self.dst = graph._indices
        self.eid = graph._adj_edge_id
        self.w = (
            graph.weights[self.eid]
            if graph.weights is not None
            else np.ones(self.eid.size)
        )

    def lightest_per_cluster(
        self, cluster_arr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per (source node, neighbor cluster) lightest edge.

        ``cluster_arr[u] = -1`` marks unclustered neighbors (skipped).
        Returns ``(src, cluster, w, eid)`` group heads, grouped by source
        (ascending) and minimal in ``(w, eid)`` within each group — the
        vectorized ``_lightest_per_cluster`` of the reference.
        """
        cl = cluster_arr[self.dst]
        valid = cl >= 0
        s_, c_, w_, e_ = self.src[valid], cl[valid], self.w[valid], self.eid[valid]
        if s_.size == 0:
            return s_, c_, w_, e_
        order = np.lexsort((e_, w_, c_, s_))
        s_, c_, w_, e_ = s_[order], c_[order], w_[order], e_[order]
        head = np.empty(s_.size, dtype=bool)
        head[0] = True
        head[1:] = (s_[1:] != s_[:-1]) | (c_[1:] != c_[:-1])
        return s_[head], c_[head], w_[head], e_[head]


@obs.traced("spanner.edges")
def vectorized_spanner_edges(
    graph: Graph, k: int, rng: np.random.Generator, p: float
) -> np.ndarray:
    """Edge ids of a Baswana–Sen (2k−1)-spanner, whole-array per phase.

    Twin of the reference loops in
    :func:`repro.apsp.spanner.baswana_sen_spanner` (which documents the
    algorithm): k−1 cluster-sampling phases, then the cluster-joining phase.
    Consumes exactly one ``rng.random(#active clusters)`` draw per phase —
    the reference's coin schedule — and returns the identical sorted id set.
    """
    n = graph.n
    arcs = _ArcView(graph)
    chosen: list[np.ndarray] = []
    cluster_of = np.arange(n, dtype=np.int64)  # level 0: singletons
    active = np.ones(n, dtype=bool)

    for _phase in range(k - 1):
        centers = np.unique(cluster_of[active & (cluster_of >= 0)])
        sampled = centers[rng.random(len(centers)) < p]

        hs, hc, hw, he = arcs.lightest_per_cluster(
            np.where(active, cluster_of, -1)
        )
        in_sampled_cluster = _in_sorted(cluster_of, sampled)
        new_cluster = np.where(active & in_sampled_cluster, cluster_of, -1)

        # Heads of active nodes whose own cluster was *not* sampled drive
        # the phase; everything else keeps or loses its cluster above.
        deciding = active[hs] & ~in_sampled_cluster[hs]
        hs, hc, hw, he = hs[deciding], hc[deciding], hw[deciding], he[deciding]

        samp_head = _in_sorted(hc, sampled)
        # Lightest sampled cluster per node: (w, eid)-minimum of its sampled
        # heads (lexsort + first-of-group).
        best_w = np.full(n, np.inf)
        best_e = np.full(n, -1, dtype=np.int64)
        best_c = np.full(n, -1, dtype=np.int64)
        if samp_head.any():
            ss, sc, sw, se = hs[samp_head], hc[samp_head], hw[samp_head], he[samp_head]
            order = np.lexsort((se, sw, ss))
            ss, sc, sw, se = ss[order], sc[order], sw[order], se[order]
            top = np.empty(ss.size, dtype=bool)
            top[0] = True
            np.not_equal(ss[1:], ss[:-1], out=top[1:])
            best_w[ss[top]] = sw[top]
            best_e[ss[top]] = se[top]
            best_c[ss[top]] = sc[top]
        has_sampled = best_c >= 0

        # No sampled neighbor cluster: keep the lightest edge to every
        # neighboring cluster and leave the clustering.
        chosen.append(he[~has_sampled[hs]])
        # Otherwise: join the lightest sampled cluster, keep its edge plus
        # every strictly (w, eid)-lighter per-cluster edge. (best_c is only
        # ever set at deciding heads, so has_sampled nodes are exactly the
        # active, unsampled-cluster nodes with a sampled neighbor cluster.)
        joiners = np.nonzero(has_sampled)[0]
        chosen.append(best_e[joiners])
        new_cluster[joiners] = best_c[joiners]
        lighter = (hw < best_w[hs]) | ((hw == best_w[hs]) & (he < best_e[hs]))
        chosen.append(he[has_sampled[hs] & lighter])

        cluster_of = new_cluster
        active = cluster_of >= 0

    # Phase 2: every node connects to each adjacent surviving cluster with
    # its lightest edge (intra-cluster edges skipped).
    hs, hc, _, he = arcs.lightest_per_cluster(np.where(active, cluster_of, -1))
    own = active[hs] & (cluster_of[hs] == hc)
    chosen.append(he[~own])

    if not chosen:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chosen))
