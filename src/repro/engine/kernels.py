"""Shared array kernels for the vectorized backend: CSR builders, the
boolean SpMV frontier sweep, and the event-batched span algebra.

Two primitives collapse the O(rounds) Python loops of
:mod:`repro.engine.fastpath` and :mod:`repro.engine.faults` into
O(events) numpy steps:

* **Frontier sweeps as boolean SpMV** — :func:`frontier_sweep` runs each
  BFS layer as one ``(1 × n) @ (n × n)`` boolean sparse matvec over the
  Graph CSR arrays when :mod:`scipy.sparse` is importable (and the
  subgraph is large enough to amortize matrix construction), falling
  back to the pure-numpy gather sweep otherwise. Parents are adopted
  inline as each layer lands; :func:`tree_parents` is the whole-array
  reference the verify sweep cross-checks.

* **Event-batched span stepping** — between queue-drain events the
  pipelined-broadcast recurrence is closed-form, so
  :func:`upcast_spans` advances the Lemma 1 upcast one *tree layer* at a
  time instead of one *round* at a time: per layer, child send intervals
  are overlaid into arrival-rate spans (:func:`_overlay_spans`) and the
  work-conserving unit-rate queues are folded with a segmented max-plus
  scan (:func:`_busy_scan`). Total work is O((n + events) · depth-layers)
  with no per-round Python iteration. :func:`upcast_rounds` keeps the
  per-round reference loop for the ``"round"`` strategy and for the
  span-vs-round equivalence checks in :mod:`repro.engine.verify`.

Step strategies: every engine entry point with a hot round loop takes
``step=None | "auto" | "round" | "span"``; ``None``/``"auto"`` defer to
the ``REPRO_STEP`` environment variable (default ``"span"``). Both
strategies are **bit-identical** — same rounds, bits, receipts, drops,
and fault-RNG consumption — which the verify sweep enforces; span paths
silently fall back to ``"round"`` on inputs outside their closed-form
preconditions (non-BFS layering, positive drop rates, memory guards).

Exactness of the batch-at-start model used throughout: an arrival span
of rate ``ρ ≥ 1`` over rounds ``[a, b]`` delivers item ``i`` at
``a + ⌊i/ρ⌋``; a unit-rate server that starts the span at round
``max(prev_finish + 1, a)`` sends item ``i`` no earlier than ``a + i ≥
a + ⌊i/ρ⌋``, so availability never binds mid-span and the whole span
behaves exactly like a batch of ``ρ·(b−a+1)`` items landing at ``a``.
Overlay rates are counts of concurrently-busy children, hence always
``≥ 1``.
"""

from __future__ import annotations

import os

import numpy as np

from repro import obs
from repro.util.errors import ValidationError

__all__ = [
    "STEP_STRATEGIES",
    "children_csr",
    "children_lists",
    "expand_csr_rows",
    "frontier_sweep",
    "in_sorted",
    "last_send_round_spans",
    "lists_to_csr",
    "resolve_step",
    "scipy_sparse",
    "tree_parents",
    "upcast_rounds",
    "upcast_spans",
]


# --------------------------------------------------------------------------- #
# Step-strategy selection
# --------------------------------------------------------------------------- #

STEP_STRATEGIES = ("round", "span")


def resolve_step(step: str | None = None) -> str:
    """Resolve a ``step=`` argument to a concrete strategy.

    ``None`` and ``"auto"`` defer to the ``REPRO_STEP`` environment
    variable, defaulting to ``"span"``; anything else must name a member
    of :data:`STEP_STRATEGIES`.
    """
    if step is None or step == "auto":
        step = os.environ.get("REPRO_STEP") or "span"
    if step not in STEP_STRATEGIES:
        raise ValidationError(
            f"unknown step strategy {step!r}; expected one of {STEP_STRATEGIES}"
        )
    return step


_scipy_sparse_mod: object = None  # None = untried, False = unavailable


def scipy_sparse():
    """The :mod:`scipy.sparse` module, or ``None`` when unavailable.

    The import is attempted once and cached; the ``REPRO_NO_SCIPY``
    environment variable is consulted on *every* call so tests can force
    the pure-numpy fallback without reloading modules. scipy is an
    optional accelerator: no engine output depends on its presence.
    """
    global _scipy_sparse_mod
    if os.environ.get("REPRO_NO_SCIPY"):
        return None
    if _scipy_sparse_mod is None:
        try:
            import scipy.sparse as _sp

            _scipy_sparse_mod = _sp
        except ImportError:  # pragma: no cover - scipy is in the dev image
            _scipy_sparse_mod = False
    return _scipy_sparse_mod or None


# --------------------------------------------------------------------------- #
# CSR builders shared by fastpath / faults / broadcast call sites
# --------------------------------------------------------------------------- #

def expand_csr_rows(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat slot indices of all CSR adjacency entries of ``rows``.

    Returns ``(sel, counts, offs)``: ``sel`` indexes the CSR data array with
    each row's block contiguous in row order, ``counts`` is the per-row
    block length, and ``offs`` the within-block rank of each entry. Shared
    by every whole-frontier sweep in the engine.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    base = np.repeat(indptr[rows], counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return base + offs, counts, offs


def in_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Membership of ``values`` in the sorted array ``table``."""
    if table.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(table, values), table.size - 1)
    return table[pos] == values


def children_csr(parent: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR ``(indptr, child_ids)`` of a parent array, children ascending.

    Self-parents (roots) and ``-1`` (unreached) contribute no children;
    each child block is sorted ascending — the canonical order every
    simulator tree uses (ports are numbered by neighbor id).
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    kids = np.nonzero((parent >= 0) & (parent != np.arange(n)))[0]
    order = np.argsort(parent[kids], kind="stable")  # kids already ascending
    kids = kids[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(parent[kids], minlength=n), out=indptr[1:])
    return indptr, kids


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """Per-node sorted child lists from a parent array (canonical order)."""
    indptr, kids = children_csr(parent)
    flat = kids.tolist()
    bounds = indptr.tolist()
    return [flat[bounds[i] : bounds[i + 1]] for i in range(len(bounds) - 1)]


def lists_to_csr(lists: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """CSR ``(indptr, flat)`` of a ragged list-of-lists of ints."""
    counts = np.fromiter(
        (len(block) for block in lists), dtype=np.int64, count=len(lists)
    )
    indptr = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    flat = np.fromiter(
        (v for block in lists for v in block), dtype=np.int64, count=total
    )
    return indptr, flat


# --------------------------------------------------------------------------- #
# Boolean CSR SpMV frontier kernel
# --------------------------------------------------------------------------- #

# Below this many CSR arcs the csr_matrix construction dominates the sweep;
# verify checks drop it to 0 to exercise the SpMV path on tiny graphs.
_SPMV_MIN_ARCS = 2048

# Per-layer gate: a sparse-sparse matvec costs ~300µs of scipy object
# construction regardless of size, which a deep narrow graph would pay
# once per layer; below this many frontier out-arcs the numpy gather wins.
_SPMV_LAYER_ARCS = 32768


def _bfs_layers_spmv(
    sp,
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    parent: np.ndarray,
    roots: np.ndarray,
) -> None:
    """Fill ``dist`` and ``parent`` in place; wide layers advance by
    boolean sparse matvec.

    Narrow layers (< :data:`_SPMV_LAYER_ARCS` out-arcs) use the same
    gather step as :func:`_bfs_layers_numpy` — the candidate sets, and
    therefore the layers, are identical either way; only the wall clock
    differs. The adjacency matrix is built lazily on the first wide layer.

    Wide layers adopt parents by scanning each *fresh* node's own CSR row
    for its first (= smallest-id) previous-layer neighbor; the matvec
    itself only yields the candidate set.
    """
    adj = None
    frontier = roots
    d = 0
    while frontier.size:
        obs.count("kernels.frontier_nodes", frontier.size)
        obs.count("kernels.frontier_peak", frontier.size, "max")
        arcs = int((indptr[frontier + 1] - indptr[frontier]).sum())
        if arcs >= _SPMV_LAYER_ARCS:
            obs.count("kernels.spmv_layers")
            if adj is None:
                adj = sp.csr_matrix(
                    (np.ones(indices.size, dtype=bool), indices, indptr),
                    shape=(n, n),
                )
            x = sp.csr_matrix(
                (
                    np.ones(frontier.size, dtype=bool),
                    (np.zeros(frontier.size, dtype=np.int64), frontier),
                ),
                shape=(1, n),
            )
            cand = (x @ adj).indices.astype(np.int64, copy=False)
            frontier = cand[dist[cand] < 0]  # sorted unique already
            if not frontier.size:
                break
            fsel, fcounts, _offs = expand_csr_rows(indptr, frontier)
            nb = indices[fsel]
            good = np.flatnonzero(dist[nb] == d)  # fresh rows still hold -1
            rows = np.repeat(
                np.arange(frontier.size, dtype=np.int64), fcounts
            )[good]
            first = np.empty(good.size, dtype=bool)
            first[0] = True
            np.not_equal(rows[1:], rows[:-1], out=first[1:])
            parent[frontier[rows[first]]] = nb[good[first]]
        else:
            obs.count("kernels.gather_layers")
            frontier = _advance_layer(indptr, indices, dist, parent, frontier)
            if not frontier.size:
                break
        d += 1
        dist[frontier] = d


def _advance_layer(
    indptr: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    parent: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """One gather layer step: returns the sorted fresh layer and adopts
    its parents in place.

    Filtering visited candidates *before* the sort discards most of a
    layered graph's candidates ahead of the O(c log c) work. The stable
    argsort keeps arc order within ties, and arcs enumerate the (sorted)
    frontier in order — so the first occurrence of each fresh node pairs
    it with its **smallest** previous-layer neighbor, exactly the
    :func:`tree_parents` adoption rule, with no whole-graph pass.
    """
    sel, counts, _offs = expand_csr_rows(indptr, frontier)
    if sel.size == 0:
        return np.empty(0, dtype=np.int64)
    cand = indices[sel]
    unv = dist[cand] < 0
    cand = cand[unv]
    if cand.size == 0:
        return cand
    src = np.repeat(frontier, counts)[unv]
    order = np.argsort(cand, kind="stable")
    cand = cand[order]
    first = np.empty(cand.size, dtype=bool)
    first[0] = True
    np.not_equal(cand[1:], cand[:-1], out=first[1:])
    fresh = cand[first]
    parent[fresh] = src[order[first]]
    return fresh


def _bfs_layers_numpy(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    parent: np.ndarray,
    roots: np.ndarray,
) -> None:
    """Pure-numpy twin of :func:`_bfs_layers_spmv` (gather + unique)."""
    frontier = roots
    d = 0
    while frontier.size:
        obs.count("kernels.frontier_nodes", frontier.size)
        obs.count("kernels.frontier_peak", frontier.size, "max")
        obs.count("kernels.gather_layers")
        frontier = _advance_layer(indptr, indices, dist, parent, frontier)
        if not frontier.size:
            break
        d += 1
        dist[frontier] = d


def tree_parents(
    n: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    dist: np.ndarray,
    root: int | np.ndarray,
) -> np.ndarray:
    """BFS-tree parents from distances, in one whole-array pass.

    Every reached non-root node adopts its **smallest** neighbor in the
    previous layer — exactly the simulator's first-port adoption, since
    ports are numbered in neighbor-id order and all previous-layer
    neighbors announce in the same round. CSR rows keep neighbors
    ascending, so the *first* valid arc of each row is that smallest
    neighbor; one mask + first-occurrence diff finds every adoption
    without per-row reductions (``minimum.reduceat`` / ``minimum.at``
    both degrade badly once the row count reaches the hundreds of
    thousands).

    ``root`` may be a single node or an array of roots — one per
    connected component, as in the disjoint-union sweep of
    ``vectorized_parallel_bfs``.
    """
    deg = np.diff(indptr)
    rows_all = np.repeat(np.arange(n, dtype=np.int64), deg)
    dv = dist[rows_all]
    ok_idx = np.flatnonzero((dv > 0) & (dist[indices] == dv - 1))
    parent = np.full(n, -1, dtype=np.int64)
    if ok_idx.size:
        rows = rows_all[ok_idx]  # non-decreasing: CSR arc order
        first = np.empty(ok_idx.size, dtype=bool)
        first[0] = True
        np.not_equal(rows[1:], rows[:-1], out=first[1:])
        parent[rows[first]] = indices[ok_idx[first]]
    parent[root] = root
    return parent


def frontier_sweep(
    n: int, indptr: np.ndarray, indices: np.ndarray, root: int | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """BFS ``(parent, dist)`` over a CSR subgraph, SpMV-accelerated.

    Layer expansion runs as boolean sparse matvecs when scipy is
    available and the subgraph clears :data:`_SPMV_MIN_ARCS`; otherwise a
    pure-numpy gather sweep. Either way the layers — and therefore the
    parents chosen by :func:`tree_parents` — are identical.

    ``root`` may be a single node or a sorted array of roots lying in
    pairwise-disconnected components (the disjoint-union batching of
    ``vectorized_parallel_bfs``): each component's sweep proceeds exactly
    as a solo sweep from its root would, on one shared layer clock.

    Parents are adopted inline as each layer lands (the candidate gather
    the dedup already pays carries the source of every arc), avoiding
    :func:`tree_parents`'s whole-graph ``dist`` gather — that function
    stays as the reference the verify sweep cross-checks against.
    """
    roots = np.atleast_1d(np.asarray(root, dtype=np.int64))
    dist = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    dist[roots] = 0
    sp = scipy_sparse() if indices.size >= _SPMV_MIN_ARCS else None
    if sp is not None:
        obs.count("kernels.spmv_sweeps")
        _bfs_layers_spmv(sp, n, indptr, indices, dist, parent, roots)
    else:
        obs.count("kernels.gather_sweeps")
        _bfs_layers_numpy(n, indptr, indices, dist, parent, roots)
    parent[roots] = roots
    return parent, dist


# --------------------------------------------------------------------------- #
# Event-batched span algebra (Lemma 1 upcast)
# --------------------------------------------------------------------------- #

def _overlay_spans(
    p: np.ndarray, s0: np.ndarray, e0: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Overlay unit-rate busy intervals into per-parent arrival spans.

    Each input interval ``[s0, e0]`` (inclusive) delivers one item per
    round to parent ``p``. Returns ``(nodes, starts, ends, rates)``:
    maximal constant-rate spans, rates ``≥ 1``, grouped by node and
    sorted by start within each node.
    """
    if p.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    ones = np.ones(p.size, dtype=np.int64)
    ev_p = np.concatenate([p, p])
    ev_r = np.concatenate([s0, e0 + 1])
    ev_d = np.concatenate([ones, -ones])
    order = np.lexsort((ev_r, ev_p))
    ev_p = ev_p[order]
    ev_r = ev_r[order]
    # Per-parent deltas sum to zero, so the plain cumulative sum carries no
    # residue across parent blocks — no segmented reset needed.
    rate = np.cumsum(ev_d[order])
    last = np.empty(ev_p.size, dtype=bool)
    last[-1] = True
    last[:-1] = (ev_p[1:] != ev_p[:-1]) | (ev_r[1:] != ev_r[:-1])
    ev_p = ev_p[last]
    ev_r = ev_r[last]
    rate = rate[last]
    # A span [r_i, r_{i+1} - 1] exists wherever the running rate is positive
    # and the next event belongs to the same parent (a block's final event
    # always has rate 0: every interval closed).
    same = np.zeros(ev_p.size, dtype=bool)
    same[:-1] = ev_p[1:] == ev_p[:-1]
    keep = same & (rate > 0)
    idx = np.nonzero(keep)[0]
    return ev_p[idx], ev_r[idx], ev_r[idx + 1] - 1, rate[idx]


def _busy_scan(
    nodes: np.ndarray, s: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Busy intervals of per-node unit-rate queues fed by batches.

    ``w[j]`` items land at node ``nodes[j]`` at round ``s[j]`` (sorted by
    ``(node, s)``, starts distinct within a node); each node sends one
    item per round while its queue is nonempty. Returns the maximal busy
    intervals ``(nodes, starts, ends)`` — exactly the node's send rounds.

    The finish-round recurrence ``f_j = max(f_{j-1}, s_j - 1) + w_j``
    folds into a segmented max-plus scan: with ``W`` the segmented
    inclusive cumsum of ``w`` and ``g_j = s_j - 1 - W_{j-1}``,
    ``f_j = W_j + max_{i ≤ j} g_i``; the segmented running max rides a
    single ``np.maximum.accumulate`` over ``seg·off + (g - gmin)`` keys.
    """
    head = np.empty(nodes.size, dtype=bool)
    head[0] = True
    head[1:] = nodes[1:] != nodes[:-1]
    seg = np.cumsum(head) - 1
    cw = np.cumsum(w)
    head_idx = np.nonzero(head)[0]
    W = cw - (cw - w)[head_idx][seg]
    g = s - 1 - (W - w)
    gmin = int(g.min())
    off = int(g.max()) - gmin + 1
    key = seg * off + (g - gmin)
    f = W + np.maximum.accumulate(key) - seg * off + gmin
    gap = head.copy()
    gap[1:] |= s[1:] > f[:-1] + 1  # f[:-1] is same-segment wherever head is False
    end = np.empty(nodes.size, dtype=bool)
    end[-1] = True
    end[:-1] = gap[1:]
    return nodes[gap], s[gap], f[end]


def upcast_spans(
    up: np.ndarray, flat_parents: np.ndarray, flat_dist: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Root arrival spans of the Lemma 1 upcast, layer-batched.

    ``up[v]`` items start queued at flat node ``v`` (roots hold 0);
    ``flat_dist`` must be a proper BFS layering (root depth 0, child
    depth = parent depth + 1 — the caller gates on this). Bottom-up, one
    iteration per tree layer: child send intervals shift by one round
    (an item received in round r is sendable in round r + 1), overlay
    into arrival spans, and merge with the layer's own batches (queued
    before round 1) through the busy scan. The final overlay onto the
    roots is **unshifted**: a root arrival in round r is the child's
    send round, matching the per-round reference's hit bookkeeping.

    Returns ``(nodes, starts, ends, rates)`` — per flat root, the rounds
    where ``rates`` children deliver simultaneously. Expanding each span
    into per-round batches reproduces :func:`upcast_rounds` exactly.
    """
    empty = np.empty(0, dtype=np.int64)
    if flat_dist.size == 0:
        return empty, empty, empty, empty
    order = np.argsort(flat_dist, kind="stable")
    maxd = int(flat_dist.max())
    bounds = np.searchsorted(flat_dist[order], np.arange(maxd + 2))
    iv_node = iv_b = iv_e = empty
    for d in range(maxd, 0, -1):
        layer = order[bounds[d] : bounds[d + 1]]
        if iv_node.size:
            anodes, astarts, aends, arates = _overlay_spans(
                flat_parents[iv_node], iv_b + 1, iv_e + 1
            )
            aw = (aends - astarts + 1) * arates
        else:
            anodes = astarts = aw = empty
        onodes = layer[up[layer] > 0]
        if onodes.size:
            nodes = np.concatenate([onodes, anodes])
            starts = np.concatenate([np.ones(onodes.size, dtype=np.int64), astarts])
            w = np.concatenate([up[onodes], aw])
        else:
            nodes, starts, w = anodes, astarts, aw
        if nodes.size == 0:
            iv_node = iv_b = iv_e = empty
            continue
        obs.count("engine.span_batches")
        obs.count("engine.spans", nodes.size)
        obs.count("engine.span_batch_peak", nodes.size, "max")
        mo = np.lexsort((starts, nodes))
        iv_node, iv_b, iv_e = _busy_scan(nodes[mo], starts[mo], w[mo])
    if iv_node.size == 0:
        return empty, empty, empty, empty
    return _overlay_spans(flat_parents[iv_node], iv_b, iv_e)


def upcast_rounds(
    up: np.ndarray, flat_parents: np.ndarray, is_root: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-round reference of the Lemma 1 upcast (the ``"round"`` strategy).

    One sparse sweep over the nonempty UP queues per round; returns the
    root arrival stream ``(flat_targets, counts, rounds)`` in hit order.
    ``up`` is not mutated. Kept verbatim as the bit-identity reference
    for :func:`upcast_spans`.
    """
    up = np.asarray(up, dtype=np.int64).copy()
    active = np.nonzero(up > 0)[0]
    hit_flat: list[np.ndarray] = []
    hit_count: list[np.ndarray] = []
    hit_round: list[np.ndarray] = []
    r = 0
    while active.size:  # `active` is kept sorted and duplicate-free
        obs.count("engine.queue_rounds")
        obs.count("engine.queue_depth_peak", active.size, "max")
        up[active] -= 1  # every nonempty UP queue sends one item to its parent
        r += 1
        tgt = flat_parents[active]
        tgt.sort()
        head = np.empty(tgt.size, dtype=bool)
        head[0] = True
        np.not_equal(tgt[1:], tgt[:-1], out=head[1:])
        starts = np.nonzero(head)[0]
        targets = tgt[starts]
        counts = np.diff(starts, append=tgt.size)
        at_root = is_root[targets]
        if at_root.any():
            hit_flat.append(targets[at_root])
            hit_count.append(counts[at_root])
            hit_round.append(np.full(int(at_root.sum()), r, dtype=np.int64))
        relayed = targets[~at_root]
        up[relayed] += counts[~at_root]
        # Merge (sorted ∪ sorted): survivors of the decrement + relay targets.
        merged = np.concatenate([active[up[active] > 0], relayed])
        merged.sort()
        keep = np.empty(merged.size, dtype=bool)
        if merged.size:
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
        active = merged[keep]
    if hit_flat:
        return (
            np.concatenate(hit_flat),
            np.concatenate(hit_count),
            np.concatenate(hit_round),
        )
    empty = np.empty(0, dtype=np.int64)
    return empty, empty, empty


def last_send_round_spans(
    starts: np.ndarray, ends: np.ndarray, rates: np.ndarray
) -> int:
    """Last send round of a unit-rate queue fed by arrival spans.

    Span ``j`` delivers ``rates[j]`` items per round over
    ``[starts[j], ends[j]]`` (spans disjoint, sorted by start, rates
    ``≥ 1``; a rate may be 0 only for a degenerate single-round batch
    such as the root's own items at round 0 — the batch-at-start model
    is exact either way since a width-1 span has no mid-span rounds).
    Same closed form as the per-batch ``_last_send_round``: the maximum
    of ``start_j + (items not yet arrived before span j)`` is attained
    at span starts because the objective's slope inside a span is
    ``1 - rate ≤ 0``.
    """
    w = (ends - starts + 1) * rates
    cum_before = np.cumsum(w) - w
    total = int(cum_before[-1] + w[-1])
    return int((starts + (total - cum_before)).max()) - 1
