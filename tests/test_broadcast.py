"""Tests for the k-broadcast algorithms (Theorem 1, Lemma 1, Section 3.2)."""

import numpy as np
import pytest

from repro.core import (
    combined_broadcast,
    cut_adversarial_placement,
    fast_broadcast,
    random_partition,
    build_tree_packing,
    single_source_placement,
    textbook_broadcast,
    uniform_random_placement,
)
from repro.graphs import (
    barbell,
    diameter,
    min_cut,
    path_graph,
    random_regular,
    thick_cycle,
)
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def host():
    """80 nodes, λ = δ = 24: supports a 3-part decomposition."""
    return random_regular(80, 24, seed=4)


class TestPlacements:
    def test_uniform_total(self):
        pl = uniform_random_placement(50, 200, seed=1)
        assert sum(pl.values()) == 200
        assert all(0 <= v < 50 for v in pl)

    def test_single_source(self):
        assert single_source_placement(3, 7) == {3: 7}

    def test_cut_adversarial(self):
        g = barbell(6)
        side, _ = min_cut(g)
        pl = cut_adversarial_placement(g, side, 20)
        assert sum(pl.values()) == 20
        assert all(side[v] for v in pl)

    def test_cut_adversarial_empty_side(self):
        g = barbell(6)
        with pytest.raises(ValidationError):
            cut_adversarial_placement(g, np.zeros(g.n, dtype=bool), 5)


class TestTextbookBroadcast:
    def test_delivers_and_counts(self, host):
        pl = uniform_random_placement(host.n, 100, seed=2)
        res = textbook_broadcast(host, pl)
        assert res.delivered and res.k == 100 and res.parts == 1
        assert set(res.phases) == {
            "leader_election",
            "global_bfs",
            "numbering",
            "pipeline",
        }

    def test_rounds_near_D_plus_k(self, host):
        k = 120
        res = textbook_broadcast(host, uniform_random_placement(host.n, k, seed=3))
        D = diameter(host)
        assert res.rounds <= 6 * D + 2 * k + 10
        assert res.rounds >= k  # k messages must leave the root one by one

    def test_congestion_O_k(self, host):
        k = 60
        res = textbook_broadcast(host, uniform_random_placement(host.n, k, seed=4))
        assert res.max_congestion <= 2 * k

    def test_single_message(self, host):
        res = textbook_broadcast(host, {5: 1})
        assert res.k == 1
        assert res.rounds <= 8 * diameter(host) + 10

    def test_disconnected_raises(self):
        from repro.graphs import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(Exception):
            textbook_broadcast(g, {0: 3})


class TestFastBroadcast:
    def test_delivers_with_multiple_trees(self, host):
        pl = uniform_random_placement(host.n, 150, seed=5)
        res = fast_broadcast(host, pl, lam=24, C=1.2, seed=6)
        assert res.delivered
        assert res.parts >= 2
        assert "tree_packing" in res.phases

    def test_beats_textbook_at_large_k(self):
        # High-diameter, high-λ host: the paper's winning regime.
        g = thick_cycle(14, 10)  # n=140, λ=20, D=7
        k = 500
        pl = uniform_random_placement(g.n, k, seed=7)
        fast = fast_broadcast(g, pl, lam=20, C=1.2, seed=8)
        text = textbook_broadcast(g, pl)
        assert fast.parts >= 2
        assert fast.rounds < text.rounds

    def test_congestion_split_across_trees(self, host):
        k = 120
        pl = uniform_random_placement(host.n, k, seed=9)
        fast = fast_broadcast(host, pl, lam=24, C=1.2, seed=10)
        # Per-tree load is ~k/parts, so per-edge congestion must be well
        # below the single-tree 2k.
        assert fast.max_congestion <= 2 * (k // fast.parts) + 10

    def test_lambda_one_degenerates_to_single_tree(self):
        g = barbell(8, bridge_len=3)
        pl = uniform_random_placement(g.n, 30, seed=1)
        res = fast_broadcast(g, pl, lam=1, seed=2)
        assert res.parts == 1
        assert res.delivered

    def test_lambda_computed_when_omitted(self, host):
        res = fast_broadcast(host, {0: 10}, seed=3)
        assert res.delivered

    def test_reuse_decomposition(self, host):
        decomp = random_partition(host, 3, seed=11)
        pl = uniform_random_placement(host.n, 50, seed=12)
        res = fast_broadcast(host, pl, decomposition=decomp, seed=11)
        assert res.parts == 3 and res.delivered

    def test_reuse_packing_charges_zero_construction(self, host):
        decomp = random_partition(host, 3, seed=11)
        packing = build_tree_packing(decomp, distributed=False)
        res = fast_broadcast(host, {0: 20}, packing=packing)
        assert res.phases["tree_packing"] == 0
        assert res.delivered

    def test_distributed_and_centralized_packing_same_rounds(self, host):
        pl = uniform_random_placement(host.n, 40, seed=13)
        a = fast_broadcast(host, pl, lam=24, C=1.2, seed=14, distributed_packing=True)
        b = fast_broadcast(host, pl, lam=24, C=1.2, seed=14, distributed_packing=False)
        assert a.phases["pipeline"] == b.phases["pipeline"]
        # Packing rounds agree up to the charge convention (+/- 1).
        assert abs(a.phases["tree_packing"] - b.phases["tree_packing"]) <= 1

    def test_messages_partitioned_by_contiguous_ranges(self, host):
        # k = parts * 10 exactly: each tree must carry exactly 10 messages.
        decomp = random_partition(host, 3, seed=11)
        packing = build_tree_packing(decomp, distributed=False)
        res = fast_broadcast(host, {0: 30}, packing=packing)
        assert res.k == 30 and res.parts == 3


class TestCombinedBroadcast:
    def test_picks_textbook_on_path(self):
        g = path_graph(40)
        res = combined_broadcast(g, {0: 5}, lam=1, seed=1)
        assert res.algorithm == "combined/textbook"
        assert res.delivered

    def test_picks_fast_on_thick_cycle_large_k(self):
        g = thick_cycle(14, 10)
        pl = uniform_random_placement(g.n, 600, seed=2)
        res = combined_broadcast(g, pl, lam=20, C=1.2, seed=3)
        assert res.algorithm == "combined/fast"
        assert res.delivered

    def test_small_k_prefers_textbook_even_when_connected(self, host):
        res = combined_broadcast(host, {0: 2}, lam=24, seed=4)
        assert res.algorithm == "combined/textbook"
