"""Tests for the APSP applications (Theorems 4, 5, Corollary 1)."""

import numpy as np
import pytest

from repro.apsp import (
    approx_apsp_unweighted,
    approx_apsp_weighted,
    baswana_sen_spanner,
    build_clustering,
    center_sampling_probability,
    check_32_approximation,
    check_spanner_stretch,
    check_weighted_stretch,
    corollary1_k,
    dfs_timestamps,
    prt_apsp,
)
from repro.graphs import (
    all_pairs_distances,
    random_regular,
    random_weights,
    thick_cycle,
)
from repro.util.errors import ValidationError


class TestClustering:
    def test_every_node_in_adjacent_cluster(self, reg_medium):
        cl = build_clustering(reg_medium, seed=1)
        cl.validate()

    def test_cluster_count_scale(self, reg_medium):
        # k ≈ n·p = n·c·ln n/δ.
        cl = build_clustering(reg_medium, c=3.0, seed=1)
        p = center_sampling_probability(reg_medium.n, reg_medium.min_degree(), 3.0)
        expected = reg_medium.n * p
        assert 0.4 * expected <= cl.k <= 1.8 * expected

    def test_one_round_cost(self, reg_medium):
        assert build_clustering(reg_medium, seed=1).rounds == 1

    def test_members_partition_nodes(self, reg_medium):
        cl = build_clustering(reg_medium, seed=2)
        total = sum(len(cl.members(i)) for i in range(cl.k))
        assert total == reg_medium.n

    def test_centers_join_themselves(self, reg_medium):
        cl = build_clustering(reg_medium, seed=3)
        for i, c in enumerate(cl.centers):
            assert cl.s[c] == i

    def test_probability_formula(self):
        assert center_sampling_probability(100, 10, c=2.0) == pytest.approx(
            2.0 * np.log(100) / 10
        )
        assert center_sampling_probability(10, 1, c=5.0) == 1.0


class TestPRT:
    def test_dfs_timestamps_bounded(self, reg_small):
        pi = dfs_timestamps(reg_small)
        assert pi[0] == 0
        assert len(np.unique(pi)) == reg_small.n  # distinct first-visits
        assert pi.max() <= 2 * (reg_small.n - 1)

    def test_dfs_walk_property(self, reg_small):
        """d(u, w) <= |pi(u) - pi(w)| — the inequality PRT's proof needs."""
        from repro.graphs import bfs_distances

        pi = dfs_timestamps(reg_small)
        d0 = bfs_distances(reg_small, 0)
        for v in range(reg_small.n):
            assert d0[v] <= pi[v]

    def test_exact_distances(self, reg_small):
        res = prt_apsp(reg_small)
        assert np.array_equal(res.dist, all_pairs_distances(reg_small))

    def test_no_collisions_certified(self, q4):
        res = prt_apsp(q4)
        assert res.collisions_checked

    def test_virtual_rounds_linear(self, reg_small):
        res = prt_apsp(reg_small)
        assert res.virtual_rounds <= 4 * reg_small.n + 2  # 2π + D + 1

    def test_disconnected_raises(self):
        from repro.graphs import Graph

        with pytest.raises(ValidationError):
            prt_apsp(Graph(4, [(0, 1), (2, 3)]))


class TestTheorem4:
    def test_32_approximation_holds(self):
        g = random_regular(70, 14, seed=6)
        res = approx_apsp_unweighted(g, lam=14, C=1.2, seed=2)
        ok, worst = check_32_approximation(g, res.estimate)
        assert ok
        assert worst <= 3.0 + 1e-9

    def test_diagonal_zero(self):
        g = random_regular(70, 14, seed=6)
        res = approx_apsp_unweighted(g, lam=14, C=1.2, seed=2)
        assert (np.diag(res.estimate) == 0).all()

    def test_round_ledger_complete(self):
        g = random_regular(70, 14, seed=6)
        res = approx_apsp_unweighted(g, lam=14, C=1.2, seed=2)
        assert set(res.charged_rounds) == {
            "clustering",
            "learn_cluster_neighbors",
            "prt_on_cluster_graph",
            "intra_cluster_distances",
        }
        assert res.simulated_rounds["broadcast_s"] > 0
        assert res.rounds > 0

    def test_estimate_symmetric(self):
        g = random_regular(70, 14, seed=6)
        res = approx_apsp_unweighted(g, lam=14, C=1.2, seed=2)
        assert np.array_equal(res.estimate, res.estimate.T)

    def test_works_on_thick_cycle(self):
        g = thick_cycle(10, 8)  # λ = 16, D = 5
        res = approx_apsp_unweighted(g, lam=16, C=1.2, seed=4)
        ok, _ = check_32_approximation(g, res.estimate)
        assert ok


class TestBaswanaSen:
    def test_stretch_various_k(self, weighted_medium):
        for k in (2, 3):
            sp = baswana_sen_spanner(weighted_medium, k, seed=k)
            ok, worst = check_spanner_stretch(weighted_medium, sp.spanner, k)
            assert ok, f"stretch {worst} > {2*k-1}"

    def test_size_scales_down_with_k(self, weighted_medium):
        sizes = [
            baswana_sen_spanner(weighted_medium, k, seed=1).m for k in (1, 2, 3)
        ]
        assert sizes[0] == weighted_medium.m
        assert sizes[1] < sizes[0]

    def test_size_near_expected_bound(self):
        g = random_weights(random_regular(100, 20, seed=8), seed=9)
        sp = baswana_sen_spanner(g, 2, seed=3)
        assert sp.m <= 2 * sp.expected_size_bound(g.n)

    def test_k1_identity(self, weighted_medium):
        sp = baswana_sen_spanner(weighted_medium, 1, seed=1)
        assert sp.m == weighted_medium.m

    def test_spanner_is_subgraph_with_weights(self, weighted_medium):
        sp = baswana_sen_spanner(weighted_medium, 3, seed=2)
        for eid_sub in range(sp.spanner.m):
            u, v = sp.spanner.edge_endpoints(eid_sub)
            host_eid = weighted_medium.edge_id(u, v)
            assert sp.spanner.weights[eid_sub] == weighted_medium.weights[host_eid]

    def test_charged_rounds_k_squared(self, weighted_medium):
        assert baswana_sen_spanner(weighted_medium, 3, seed=1).charged_rounds == 9

    def test_unweighted_graph_ok(self, reg_small):
        sp = baswana_sen_spanner(reg_small, 2, seed=4)
        ok, _ = check_spanner_stretch(reg_small, sp.spanner, 2)
        assert ok

    def test_invalid_k(self, reg_small):
        with pytest.raises(ValidationError):
            baswana_sen_spanner(reg_small, 0)


class TestTheorem5:
    def test_weighted_apsp_stretch(self):
        g = random_weights(random_regular(60, 16, seed=10), seed=11)
        res = approx_apsp_weighted(g, k=3, lam=16, C=1.2, seed=5)
        ok, worst = check_weighted_stretch(g, res.estimate, 3)
        assert ok, f"stretch {worst}"

    def test_rounds_ledger(self):
        g = random_weights(random_regular(60, 16, seed=10), seed=11)
        res = approx_apsp_weighted(g, k=3, lam=16, C=1.2, seed=5)
        assert res.charged_rounds["baswana_sen"] == 9
        assert res.simulated_rounds["broadcast_spanner"] > 0
        assert res.messages_broadcast == res.spanner.m

    def test_rejects_unweighted(self, reg_small):
        with pytest.raises(ValidationError):
            approx_apsp_weighted(reg_small, k=2)

    def test_corollary1_k_values(self):
        assert corollary1_k(2) == 2
        k100 = corollary1_k(100)
        assert 2 <= k100 <= 4
        assert corollary1_k(10**6) >= corollary1_k(100)

    def test_corollary1_end_to_end(self):
        g = random_weights(random_regular(60, 16, seed=10), seed=11)
        k = corollary1_k(g.n)
        res = approx_apsp_weighted(g, k=k, lam=16, C=1.2, seed=6)
        ok, _ = check_weighted_stretch(g, res.estimate, k)
        assert ok
