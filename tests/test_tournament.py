"""Tests for the adversary tournament (ISSUE 7 tentpole, part 3).

The small-host grid numbers here mirror the bench surface
(``benchmarks/bench_e17_tournament.py``): at n=100 a budget equal to the
leader's degree severs node 0 entirely, so *min* coverage floors at 0 for
every defense (some message always routes through the severed node) — the
separation shows in mean coverage, and the bench asserts the min-coverage
separation at n=10^4 where the cut is relatively small.
"""

import pytest

from repro.congest.tournament import (
    DEFAULT_ADVERSARIES,
    DEFAULT_DEFENSES,
    SCENARIOS,
    parse_defense,
    run_tournament,
)
from repro.core import uniform_random_placement
from repro.graphs import thick_cycle
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def grid():
    g = thick_cycle(10, 10)
    pl = uniform_random_placement(g.n, 60, seed=3)
    pl.pop(0, None)  # no defense can deliver *from* the node the cut severs
    res = run_tournament(
        g, 60, parts=3, seed=2, backend="vectorized",
        adversaries=["targeted-cut", "dead-tree"],
        defenses=["shared-r1", "shared-r2", "spread-r2", "cut-aware-r2"],
        placement=pl,
    )
    return g, res


class TestDefenseParsing:
    def test_parses_policy_and_redundancy(self):
        assert parse_defense("spread-r2") == ("spread", 2)
        assert parse_defense("cut-aware-r3") == ("cut-aware", 3)
        assert parse_defense("shared-r1") == ("shared", 1)

    @pytest.mark.parametrize(
        "bad", ["spread", "spread-r", "spread-rx", "bogus-r2", "r2", ""]
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValidationError):
            parse_defense(bad)

    def test_default_grids_are_well_formed(self):
        for d in DEFAULT_DEFENSES:
            policy, r = parse_defense(d)
            assert r >= 1
        assert set(DEFAULT_ADVERSARIES) <= set(SCENARIOS)
        for name, (doc, factory) in SCENARIOS.items():
            assert doc and callable(factory)


class TestTournamentValidation:
    def test_unknown_adversary_lists_registry(self):
        g = thick_cycle(6, 4)
        with pytest.raises(ValidationError, match="dead-tree"):
            run_tournament(g, 10, parts=2, adversaries=["zero-day"])

    def test_unknown_defense_rejected(self):
        g = thick_cycle(6, 4)
        with pytest.raises(ValidationError):
            run_tournament(g, 10, parts=2, defenses=["bogus-r2"])

    def test_budget_must_be_positive(self):
        g = thick_cycle(6, 4)
        with pytest.raises(ValidationError):
            run_tournament(g, 10, parts=2, budget=0)

    def test_budget_defaults_to_leader_degree(self):
        g = thick_cycle(6, 4)
        res = run_tournament(
            g, 10, parts=2, adversaries=["loss"], defenses=["shared-r1"]
        )
        assert res.budget == int(g.degrees()[0])


class TestTournamentGrid:
    def test_reproduces_the_e16_attack(self, grid):
        """Attack half of the acceptance criterion: shared-root min (and
        mean) coverage collapses under the targeted cut, r=2 included —
        redundancy alone cannot route around a severed shared root."""
        _, res = grid
        assert res.cell("targeted-cut", "shared-r1").mean_coverage == 0.0
        assert res.cell("targeted-cut", "shared-r2").mean_coverage == 0.0

    def test_defense_separation_at_matched_budget(self, grid):
        """Defense half: same budget, same decomposition seed — root-spread
        keeps most traffic alive where shared-root loses everything."""
        _, res = grid
        shared = res.cell("targeted-cut", "shared-r1")
        spread = res.cell("targeted-cut", "spread-r2")
        aware = res.cell("targeted-cut", "cut-aware-r2")
        assert spread.mean_coverage > 0.9 > shared.mean_coverage
        assert aware.mean_coverage > 0.8 > shared.mean_coverage

    def test_repair_rescues_dead_tree_at_r1(self, grid):
        _, res = grid
        cell = res.cell("dead-tree", "shared-r1")
        assert cell.min_coverage == 0.0
        assert cell.repaired_min_coverage == 1.0
        assert cell.rebuilt and cell.repair_rounds > 0

    def test_redundancy_absorbs_dead_tree_without_repair(self, grid):
        _, res = grid
        cell = res.cell("dead-tree", "shared-r2")
        assert cell.min_coverage == 1.0
        assert cell.repair_rounds == 0 and not cell.rebuilt

    def test_best_defense_ranking(self, grid):
        _, res = grid
        best = res.best_defense("dead-tree")
        # Full coverage with zero repair cost beats full coverage bought
        # back by a rebuild.
        assert best.repaired_min_coverage == 1.0 and best.repair_rounds == 0

    def test_cells_carry_certified_costs(self, grid):
        _, res = grid
        for cell in res.cells:
            assert cell.rounds > 0
            assert cell.total_messages > 0
            assert cell.total_bits > 2 * cell.total_messages
            assert 0.0 <= cell.min_coverage <= cell.mean_coverage <= 1.0

    def test_payload_is_json_shaped(self, grid):
        import json

        _, res = grid
        pay = json.loads(json.dumps(res.to_payload()))
        assert pay["n"] == 100 and pay["budget"] == 20
        assert set(pay["attacks"]) == {"targeted-cut", "dead-tree"}
        assert pay["attacks"]["targeted-cut"]["type"] == "targeted-cut"
        assert len(pay["cells"]) == 2 * 4
        assert {c["defense"] for c in pay["cells"]} == set(res.defenses)

    def test_cell_lookup_raises_on_missing(self, grid):
        _, res = grid
        with pytest.raises(KeyError):
            res.cell("loss", "shared-r1")

    def test_recorded_attack_replays_identically(self, grid):
        """The payload's attack record is executable provenance: rebuilding
        the adversary from it compiles to the same fault plan."""
        from repro.congest import AdversarySchedule

        g, res = grid
        from repro.core import build_packing_with_retry

        packing, _ = build_packing_with_retry(
            g, 3, seed=2, distributed=False, roots="shared"
        )
        adv = AdversarySchedule.from_json(res.attacks["dead-tree"])
        assert adv.compile(g, packing=packing).dead_edges
