"""Smoke tests: every shipped example must run end to end.

Examples are part of the public API surface (they are the first thing an
adopter runs), so CI executes each one's ``main()`` and checks it completes
without raising. Output content is the example's business; these tests only
pin the contract that the demonstrated pipelines stay runnable.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/typing introspection inside the module works.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    module = _load(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{path.name} produced suspiciously little output"


def test_examples_discovered():
    assert len(EXAMPLES) >= 4, "expected at least four runnable examples"
