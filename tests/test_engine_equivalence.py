"""Property-based equivalence: vectorized backend == simulator, bit for bit.

The vectorized engine (:mod:`repro.engine`) inherits the simulator's
certification *by testing*: these tests assert exact equality of parents,
dists, children, round counts, congestion, and message/bit totals across
random graphs, edge masks, and multi-channel configurations. Any divergence
is a bug in the fast path, never an accepted approximation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.broadcast import fast_broadcast, uniform_random_placement
from repro.core.decomposition import random_partition
from repro.core.lambda_search import find_packing_unknown_lambda
from repro.core.tree_packing import build_tree_packing
from repro.engine import BACKENDS, validate_backend
from repro.engine.fastpath import vectorized_tree_broadcast
from repro.engine.verify import (
    check_apsp_pipeline,
    check_bfs,
    check_broadcast_pipeline,
    check_clustering,
    check_combined_broadcast,
    check_coverage_repair,
    check_cuts_pipeline,
    check_faulty_bfs,
    check_faulty_step_strategies,
    check_leader,
    check_numbering,
    check_parallel_bfs,
    check_redundant_broadcast,
    check_root_policies,
    check_spanner,
    check_sparsifier,
    check_step_strategies,
    check_tournament,
    check_tree_broadcast,
    check_unknown_lambda_broadcast,
    check_weighted_apsp,
    random_connected_graph,
    random_edge_masks,
    random_fault_plan,
    verify_equivalence,
)
from repro.graphs import Graph, path_of_cliques, random_weights, thick_cycle
from repro.primitives.bfs import run_bfs, run_parallel_bfs
from repro.util.errors import BandwidthExceeded, ValidationError

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBFSEquivalence:
    @_SETTINGS
    @given(
        n=st.integers(2, 20),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
        root_pick=st.integers(0, 1_000_000),
    )
    def test_single_channel(self, n, extra, seed, root_pick):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_bfs(g, root_pick % n) == []

    @_SETTINGS
    @given(
        n=st.integers(2, 18),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
        parts=st.integers(1, 4),
    )
    def test_multi_channel_masks(self, n, extra, seed, parts):
        g = random_connected_graph(n, extra, seed=seed)
        masks = random_edge_masks(g, parts, seed=seed + 1)
        assert check_parallel_bfs(g, masks) == []
        # Masked single-channel BFS, including classes that may not span.
        assert check_bfs(g, 0, edge_mask=masks[0]) == []

    def test_single_node_graph(self):
        from repro.graphs import Graph

        g = Graph(1, [])
        assert check_bfs(g, 0) == []

    def test_disconnected_mask_exact_dists(self):
        g = thick_cycle(6, 3)
        mask = np.zeros(g.m, dtype=bool)
        mask[:4] = True
        assert check_bfs(g, 0, edge_mask=mask) == []

    def test_invalid_backend_rejected(self):
        g = thick_cycle(4, 3)
        with pytest.raises(ValidationError):
            run_bfs(g, 0, backend="gpu")
        assert validate_backend(BACKENDS[0]) == "simulator"


class TestPrologueEquivalence:
    @_SETTINGS
    @given(
        n=st.integers(2, 20),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
    )
    def test_leader_election(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_leader(g) == []

    @_SETTINGS
    @given(
        n=st.integers(2, 18),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_numbering(self, n, extra, seed, data):
        g = random_connected_graph(n, extra, seed=seed)
        counts = data.draw(
            st.lists(st.integers(0, 5), min_size=n, max_size=n).map(np.asarray)
        )
        assert check_numbering(g, counts) == []


class TestPipelineEquivalence:
    @_SETTINGS
    @given(
        n=st.integers(2, 16),
        extra=st.integers(0, 18),
        seed=st.integers(0, 10_000),
        parts=st.integers(1, 3),
        k=st.integers(0, 30),
    )
    def test_tree_broadcast_rounds_and_metrics(self, n, extra, seed, parts, k):
        g = random_connected_graph(n, extra, seed=seed)
        masks = random_edge_masks(g, parts, seed=seed + 2)
        assert check_tree_broadcast(g, masks, k, seed=seed + 3) == []

    def test_oversized_payload_raises_like_simulator(self):
        g = thick_cycle(4, 3)
        tree = run_bfs(g, 0, backend="vectorized")
        with pytest.raises(BandwidthExceeded):
            vectorized_tree_broadcast(g, {0: tree}, {0: {0: [1 << 200]}})

    def test_overlapping_trees_rejected(self):
        g = thick_cycle(4, 3)
        tree = run_bfs(g, 0, backend="vectorized")
        with pytest.raises(ValidationError):
            vectorized_tree_broadcast(g, {0: tree, 1: tree}, {0: {0: [1]}, 1: {0: [2]}})


class TestPackingEquivalence:
    def test_vectorized_packing_validates_and_matches(self):
        g = thick_cycle(10, 6)
        decomp = random_partition(g, 2, seed=4)
        sim = build_tree_packing(decomp, backend="simulator")
        vec = build_tree_packing(decomp, backend="vectorized")
        vec.validate()  # TreePacking certification of the fast path
        assert vec.is_edge_disjoint
        assert sim.construction_rounds == vec.construction_rounds
        assert np.array_equal(sim.edge_tree_count, vec.edge_tree_count)
        for a, b in zip(sim.trees, vec.trees):
            assert np.array_equal(a.parent, b.parent)
            assert np.array_equal(a.depth_of, b.depth_of)

    def test_unknown_lambda_search_same_trace(self):
        g = path_of_cliques(3, 8, 2)
        sim = find_packing_unknown_lambda(g, seed=2, C=1.0, backend="simulator")
        vec = find_packing_unknown_lambda(g, seed=2, C=1.0, backend="vectorized")
        assert sim.guesses == vec.guesses
        assert sim.validation_rounds == vec.validation_rounds
        assert sim.seeds == vec.seeds
        assert sim.accepted_guess == vec.accepted_guess
        assert sim.packing.construction_rounds == vec.packing.construction_rounds


class TestEndToEndBroadcast:
    def test_thick_cycle_ledgers_match(self):
        g = thick_cycle(8, 6)
        assert check_broadcast_pipeline(g, 40, seed=5, lam=12) == []

    @_SETTINGS
    @given(
        n=st.integers(4, 14),
        extra=st.integers(4, 20),
        seed=st.integers(0, 10_000),
        k=st.integers(1, 20),
    )
    def test_random_graph_ledgers_match(self, n, extra, seed, k):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_broadcast_pipeline(g, k, seed=seed) == []

    def test_combined_broadcast_winner_and_ledgers_match(self):
        g = thick_cycle(8, 6)
        assert check_combined_broadcast(g, 24, seed=7) == []

    @_SETTINGS
    @given(
        n=st.integers(4, 12),
        extra=st.integers(4, 16),
        seed=st.integers(0, 10_000),
        k=st.integers(1, 12),
    )
    def test_combined_broadcast_random_graphs(self, n, extra, seed, k):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_combined_broadcast(g, k, seed=seed) == []

    def test_unknown_lambda_trace_matches(self):
        g = thick_cycle(6, 5)
        assert check_unknown_lambda_broadcast(g, 12, seed=3) == []

    def test_weighted_apsp_ledgers_match(self):
        g = random_weights(thick_cycle(6, 5), seed=2)
        assert check_weighted_apsp(g, 2, seed=4) == []

    def test_vectorized_fast_broadcast_delivers(self):
        g = thick_cycle(10, 8)
        pl = uniform_random_placement(g.n, 60, seed=9)
        res = fast_broadcast(g, pl, lam=16, C=1.5, seed=3, backend="vectorized")
        assert res.delivered and res.k == 60
        assert res.rounds == sum(res.phases.values())


class TestPipelineTwins:
    """APSP + cut-sparsifier vectorized paths: bit-identical to the loops."""

    @_SETTINGS
    @given(
        n=st.integers(6, 24),
        extra=st.integers(4, 30),
        seed=st.integers(0, 10_000),
    )
    def test_clustering_port_matches_reference(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_clustering(g, seed=seed + 1) == []

    @_SETTINGS
    @given(
        n=st.integers(2, 24),
        extra=st.integers(0, 30),
        seed=st.integers(0, 10_000),
        k=st.integers(2, 4),
        weighted=st.booleans(),
    )
    def test_spanner_backends_identical(self, n, extra, seed, k, weighted):
        g = random_connected_graph(n, extra, seed=seed)
        if weighted:
            g = random_weights(g, seed=seed + 1)
        assert check_spanner(g, k, seed=seed + 2) == []

    @_SETTINGS
    @given(
        n=st.integers(4, 20),
        extra=st.integers(10, 40),
        seed=st.integers(0, 10_000),
        weighted=st.booleans(),
    )
    def test_sparsifier_backends_identical(self, n, extra, seed, weighted):
        g = random_connected_graph(n, extra, seed=seed)
        if weighted:
            g = random_weights(g, seed=seed + 1)
        assert check_sparsifier(g, eps=0.5, seed=seed + 2, tau=2) == []

    def test_apsp_pipeline_ledgers_match(self):
        g = thick_cycle(8, 6)
        assert check_apsp_pipeline(g, seed=5, lam=12) == []

    def test_cuts_pipeline_ledgers_match(self):
        g = thick_cycle(8, 6)
        assert check_cuts_pipeline(g, eps=0.4, seed=6, lam=12, tau=2) == []

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_random_apsp_and_cuts_pipelines(self, seed):
        g = random_connected_graph(10 + seed % 8, 20, seed=seed)
        assert check_apsp_pipeline(g, seed=seed + 1) == []
        assert check_cuts_pipeline(g, eps=0.5, seed=seed + 2, tau=2) == []


class TestAwkwardInputs:
    """The inputs the randomized sweep rarely produces (ISSUE 2 satellite)."""

    def test_disconnected_graph_bfs(self):
        g = Graph(7, [(0, 1), (1, 2), (3, 4), (5, 6)])
        assert check_bfs(g, 0) == []
        assert check_bfs(g, 3) == []

    def test_disconnected_graph_spanner(self):
        g = Graph(6, [(0, 1), (0, 2), (1, 2), (3, 4)])
        assert check_spanner(g, 2, seed=3) == []
        assert check_spanner(g, 3, seed=4) == []

    def test_weighted_graph_bfs_ignores_weights(self):
        g = random_weights(thick_cycle(5, 3), seed=2)
        assert check_bfs(g, 4) == []
        masks = random_edge_masks(g, 2, seed=3)
        assert check_parallel_bfs(g, masks) == []

    def test_weighted_sparsifier_weighted_host(self):
        g = random_weights(random_connected_graph(14, 40, seed=9), seed=10)
        assert check_sparsifier(g, eps=0.5, seed=11, tau=2) == []

    def test_single_node_graph_everywhere(self):
        g = Graph(1, [])
        assert check_bfs(g, 0) == []
        assert check_spanner(g, 2, seed=1) == []
        assert check_sparsifier(g, eps=0.5, seed=2, tau=1) == []
        # Pipelined broadcast degenerates to the root popping its own queue.
        tree = run_bfs(g, 0, backend="vectorized")
        out = vectorized_tree_broadcast(g, {0: tree}, {0: {0: [1, 2, 3]}})
        assert out.rounds == 2 and out.k_total == 3

    def test_all_masked_edge_set(self):
        g = thick_cycle(5, 3)
        empty = np.zeros(g.m, dtype=bool)
        assert check_bfs(g, 0, edge_mask=empty) == []
        assert check_parallel_bfs(g, [empty, empty.copy()]) == []

    def test_full_mask_equals_unmasked(self):
        g = thick_cycle(5, 3)
        full = np.ones(g.m, dtype=bool)
        a = run_bfs(g, 2, edge_mask=full, backend="vectorized")
        b = run_bfs(g, 2, backend="vectorized")
        assert np.array_equal(a.parent, b.parent) and a.rounds == b.rounds


class TestMaskedCSRMemoization:
    def test_cache_hit_on_repeated_mask(self):
        g = thick_cycle(6, 4)
        mask = random_edge_masks(g, 2, seed=1)[0]
        indptr1, indices1 = g.masked_csr(mask)
        assert g.masked_csr_hits == 0
        indptr2, indices2 = g.masked_csr(mask.copy())  # equal content, new array
        assert g.masked_csr_hits == 1
        assert indptr1 is indptr2 and indices1 is indices2
        # A different mask is a different cache entry, not a stale hit.
        other = ~mask
        indptr3, _ = g.masked_csr(other)
        assert g.masked_csr_hits == 1
        assert not np.array_equal(indptr1, indptr3)

    def test_parallel_bfs_reuses_cached_csr(self):
        # Single-channel runs go through the per-mask CSR cache ...
        g = thick_cycle(6, 4)
        masks = random_edge_masks(g, 1, seed=2)
        run_parallel_bfs(g, masks, backend="vectorized")
        before = g.masked_csr_hits
        run_parallel_bfs(g, masks, backend="vectorized")
        assert g.masked_csr_hits == before + 1

    def test_batched_parallel_bfs_reuses_cached_csr(self):
        # ... and multi-channel runs concatenate the per-channel cached
        # CSRs into one disjoint-union sweep — a repeat run (packing
        # retries, both-backend sweeps) hits the cache once per channel.
        g = thick_cycle(6, 4)
        masks = random_edge_masks(g, 3, seed=2)
        run_parallel_bfs(g, masks, backend="vectorized")
        before = g.masked_csr_hits
        run_parallel_bfs(g, masks, backend="vectorized")
        assert g.masked_csr_hits == before + len(masks)

    def test_none_mask_is_not_cached_copy(self):
        g = thick_cycle(6, 4)
        indptr, indices = g.masked_csr(None)
        assert indptr is g._indptr and indices is g._indices
        assert g.masked_csr_hits == 0


class TestFaultEngineEquivalence:
    """Fault-aware engine (ISSUE 5): drops, receipts, and the fault RNG
    stream must be bit-identical to the FaultySimulator execution."""

    @_SETTINGS
    @given(
        n=st.integers(2, 20),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
        rate=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        masked=st.booleans(),
    )
    def test_faulty_bfs_backends_identical(self, n, extra, seed, rate, masked):
        g = random_connected_graph(n, extra, seed=seed)
        plan = random_fault_plan(g, seed=seed + 1, rate=rate)
        mask = random_edge_masks(g, 2, seed=seed + 2)[0] if masked else None
        assert check_faulty_bfs(g, seed % n, plan, fault_seed=seed, edge_mask=mask) == []

    @_SETTINGS
    @given(
        n=st.integers(4, 16),
        extra=st.integers(4, 24),
        seed=st.integers(0, 10_000),
        k=st.integers(0, 20),
        parts=st.integers(1, 3),
        redundancy=st.integers(1, 3),
    )
    def test_redundant_broadcast_backends_identical(
        self, n, extra, seed, k, parts, redundancy
    ):
        g = random_connected_graph(n, extra, seed=seed)
        assert (
            check_redundant_broadcast(
                g, k, seed=seed, parts=parts, redundancy=redundancy
            )
            == []
        )

    def test_every_adversary_type_on_a_packing_host(self):
        """The acceptance sweep: each AdversarySchedule flavor, both
        backends, exact DeliveryReport + RNG-state equality."""
        from repro.congest.adversary import (
            MobileAdversary,
            RandomLoss,
            StaticSaboteur,
            TargetedCutAdversary,
            compose_schedules,
        )
        from repro.core import (
            build_packing_with_retry,
            redundant_broadcast,
            uniform_random_placement,
        )

        g = thick_cycle(8, 5)
        packing, _ = build_packing_with_retry(g, 3, seed=1, distributed=False)
        pl = uniform_random_placement(g.n, 30, seed=2)
        schedules = [
            None,
            StaticSaboteur(tree_index=0),
            MobileAdversary.sweeping(range(g.m), budget=6, rounds=12),
            RandomLoss(0.2),
            RandomLoss(1.0),
            TargetedCutAdversary(eps=0.5, budget=4, candidates=4, seed=3, tau=2),
            StaticSaboteur(tree_index=1) + RandomLoss(0.1),
            compose_schedules(
                MobileAdversary({2: {0, 1}}), RandomLoss(0.05), StaticSaboteur({5})
            ),
        ]
        for adv in schedules:
            reports = {
                backend: redundant_broadcast(
                    g,
                    pl,
                    packing,
                    redundancy=2,
                    adversary=adv,
                    seed=4,
                    fault_seed=5,
                    backend=backend,
                    collect_receipts=True,
                )
                for backend in BACKENDS
            }
            sim, vec = reports["simulator"], reports["vectorized"]
            assert sim.rounds == vec.rounds, adv
            assert sim.dropped_messages == vec.dropped_messages, adv
            assert sim.per_message_coverage == vec.per_message_coverage, adv
            assert sim.receipts == vec.receipts, adv
            assert sim.fault_rng_state == vec.fault_rng_state, adv


class TestRobustnessEquivalence:
    """ISSUE 7: multi-root packings, the repair loop, and the tournament
    surface must be bit-identical across backends."""

    @_SETTINGS
    @given(
        n=st.integers(4, 18),
        extra=st.integers(4, 24),
        seed=st.integers(0, 10_000),
        parts=st.integers(1, 3),
    )
    def test_root_policies_backends_identical(self, n, extra, seed, parts):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_root_policies(g, parts, seed=seed + 1) == []

    @_SETTINGS
    @given(
        n=st.integers(4, 16),
        extra=st.integers(4, 24),
        seed=st.integers(0, 10_000),
        k=st.integers(0, 20),
        parts=st.integers(1, 3),
    )
    def test_coverage_repair_backends_identical(self, n, extra, seed, k, parts):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_coverage_repair(g, k, seed=seed + 1, parts=parts) == []

    def test_tournament_payloads_identical(self):
        assert check_tournament(thick_cycle(8, 5), 24, seed=3) == []

    def test_tournament_full_grid_on_packing_host(self):
        """Every registered adversary x a policy-diverse defense slate."""
        from repro.congest.tournament import (
            DEFAULT_ADVERSARIES,
            run_tournament,
        )
        from repro.engine import BACKENDS

        g = thick_cycle(8, 5)
        payloads = {}
        for backend in BACKENDS:
            res = run_tournament(
                g, 24, parts=3,
                adversaries=list(DEFAULT_ADVERSARIES),
                defenses=["shared-r1", "spread-r2", "cut-aware-r2"],
                seed=2, backend=backend, mobile_rounds=64,
            )
            pay = res.to_payload()
            assert pay.pop("backend") == backend
            payloads[backend] = pay
        assert payloads["simulator"] == payloads["vectorized"]


class TestStepStrategyEquivalence:
    """Span-batched stepping (ISSUE 8): one deterministic anchor here; the
    randomized property suite lives in ``tests/test_span_engine.py``."""

    def test_step_checks_on_packing_host(self):
        g = thick_cycle(8, 5)
        masks = random_edge_masks(g, 2, seed=3)
        assert check_step_strategies(g, masks, 20, seed=4) == []
        assert check_faulty_step_strategies(g, 20, seed=5, parts=2) == []


class TestHarnessSweep:
    def test_randomized_sweep_is_clean(self):
        report = verify_equivalence(trials=6, seed=11, max_n=20)
        assert report.checks == 6 * 26
        assert report.ok, report.mismatches
