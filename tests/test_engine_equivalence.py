"""Property-based equivalence: vectorized backend == simulator, bit for bit.

The vectorized engine (:mod:`repro.engine`) inherits the simulator's
certification *by testing*: these tests assert exact equality of parents,
dists, children, round counts, congestion, and message/bit totals across
random graphs, edge masks, and multi-channel configurations. Any divergence
is a bug in the fast path, never an accepted approximation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.broadcast import fast_broadcast, uniform_random_placement
from repro.core.decomposition import random_partition
from repro.core.lambda_search import find_packing_unknown_lambda
from repro.core.tree_packing import build_tree_packing
from repro.engine import BACKENDS, validate_backend
from repro.engine.fastpath import vectorized_tree_broadcast
from repro.engine.verify import (
    check_bfs,
    check_broadcast_pipeline,
    check_leader,
    check_numbering,
    check_parallel_bfs,
    check_tree_broadcast,
    random_connected_graph,
    random_edge_masks,
    verify_equivalence,
)
from repro.graphs import path_of_cliques, thick_cycle
from repro.primitives.bfs import run_bfs, run_parallel_bfs
from repro.util.errors import BandwidthExceeded, ValidationError

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBFSEquivalence:
    @_SETTINGS
    @given(
        n=st.integers(2, 20),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
        root_pick=st.integers(0, 1_000_000),
    )
    def test_single_channel(self, n, extra, seed, root_pick):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_bfs(g, root_pick % n) == []

    @_SETTINGS
    @given(
        n=st.integers(2, 18),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
        parts=st.integers(1, 4),
    )
    def test_multi_channel_masks(self, n, extra, seed, parts):
        g = random_connected_graph(n, extra, seed=seed)
        masks = random_edge_masks(g, parts, seed=seed + 1)
        assert check_parallel_bfs(g, masks) == []
        # Masked single-channel BFS, including classes that may not span.
        assert check_bfs(g, 0, edge_mask=masks[0]) == []

    def test_single_node_graph(self):
        from repro.graphs import Graph

        g = Graph(1, [])
        assert check_bfs(g, 0) == []

    def test_disconnected_mask_exact_dists(self):
        g = thick_cycle(6, 3)
        mask = np.zeros(g.m, dtype=bool)
        mask[:4] = True
        assert check_bfs(g, 0, edge_mask=mask) == []

    def test_invalid_backend_rejected(self):
        g = thick_cycle(4, 3)
        with pytest.raises(ValidationError):
            run_bfs(g, 0, backend="gpu")
        assert validate_backend(BACKENDS[0]) == "simulator"


class TestPrologueEquivalence:
    @_SETTINGS
    @given(
        n=st.integers(2, 20),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
    )
    def test_leader_election(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_leader(g) == []

    @_SETTINGS
    @given(
        n=st.integers(2, 18),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
        data=st.data(),
    )
    def test_numbering(self, n, extra, seed, data):
        g = random_connected_graph(n, extra, seed=seed)
        counts = data.draw(
            st.lists(st.integers(0, 5), min_size=n, max_size=n).map(np.asarray)
        )
        assert check_numbering(g, counts) == []


class TestPipelineEquivalence:
    @_SETTINGS
    @given(
        n=st.integers(2, 16),
        extra=st.integers(0, 18),
        seed=st.integers(0, 10_000),
        parts=st.integers(1, 3),
        k=st.integers(0, 30),
    )
    def test_tree_broadcast_rounds_and_metrics(self, n, extra, seed, parts, k):
        g = random_connected_graph(n, extra, seed=seed)
        masks = random_edge_masks(g, parts, seed=seed + 2)
        assert check_tree_broadcast(g, masks, k, seed=seed + 3) == []

    def test_oversized_payload_raises_like_simulator(self):
        g = thick_cycle(4, 3)
        tree = run_bfs(g, 0, backend="vectorized")
        with pytest.raises(BandwidthExceeded):
            vectorized_tree_broadcast(g, {0: tree}, {0: {0: [1 << 200]}})

    def test_overlapping_trees_rejected(self):
        g = thick_cycle(4, 3)
        tree = run_bfs(g, 0, backend="vectorized")
        with pytest.raises(ValidationError):
            vectorized_tree_broadcast(g, {0: tree, 1: tree}, {0: {0: [1]}, 1: {0: [2]}})


class TestPackingEquivalence:
    def test_vectorized_packing_validates_and_matches(self):
        g = thick_cycle(10, 6)
        decomp = random_partition(g, 2, seed=4)
        sim = build_tree_packing(decomp, backend="simulator")
        vec = build_tree_packing(decomp, backend="vectorized")
        vec.validate()  # TreePacking certification of the fast path
        assert vec.is_edge_disjoint
        assert sim.construction_rounds == vec.construction_rounds
        assert np.array_equal(sim.edge_tree_count, vec.edge_tree_count)
        for a, b in zip(sim.trees, vec.trees):
            assert np.array_equal(a.parent, b.parent)
            assert np.array_equal(a.depth_of, b.depth_of)

    def test_unknown_lambda_search_same_trace(self):
        g = path_of_cliques(3, 8, 2)
        sim = find_packing_unknown_lambda(g, seed=2, C=1.0, backend="simulator")
        vec = find_packing_unknown_lambda(g, seed=2, C=1.0, backend="vectorized")
        assert sim.guesses == vec.guesses
        assert sim.validation_rounds == vec.validation_rounds
        assert sim.seeds == vec.seeds
        assert sim.accepted_guess == vec.accepted_guess
        assert sim.packing.construction_rounds == vec.packing.construction_rounds


class TestEndToEndBroadcast:
    def test_thick_cycle_ledgers_match(self):
        g = thick_cycle(8, 6)
        assert check_broadcast_pipeline(g, 40, seed=5, lam=12) == []

    @_SETTINGS
    @given(
        n=st.integers(4, 14),
        extra=st.integers(4, 20),
        seed=st.integers(0, 10_000),
        k=st.integers(1, 20),
    )
    def test_random_graph_ledgers_match(self, n, extra, seed, k):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_broadcast_pipeline(g, k, seed=seed) == []

    def test_vectorized_fast_broadcast_delivers(self):
        g = thick_cycle(10, 8)
        pl = uniform_random_placement(g.n, 60, seed=9)
        res = fast_broadcast(g, pl, lam=16, C=1.5, seed=3, backend="vectorized")
        assert res.delivered and res.k == 60
        assert res.rounds == sum(res.phases.values())


class TestHarnessSweep:
    def test_randomized_sweep_is_clean(self):
        report = verify_equivalence(trials=6, seed=11, max_n=20)
        assert report.checks == 6 * 6
        assert report.ok, report.mismatches
