"""Tests for Section 3.1 tree packings (and the FP23 interface parameters)."""

import numpy as np
import pytest

from repro.core import (
    build_tree_packing,
    packing_from_masks,
    random_partition,
)
from repro.core.tree_packing import SpanningTree
from repro.graphs import cycle_graph, path_graph, random_regular
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def packed():
    g = random_regular(80, 24, seed=4)
    decomp = random_partition(g, 3, seed=6)
    return g, build_tree_packing(decomp, distributed=True)


class TestSpanningTree:
    def test_depth_and_edges(self):
        parent = np.array([0, 0, 1, 2])
        depth = np.array([0, 1, 2, 3])
        t = SpanningTree(root=0, parent=parent, depth_of=depth)
        assert t.depth == 3
        assert sorted(t.edges()) == [(0, 1), (1, 2), (2, 3)]
        assert t.diameter() == 3

    def test_star_diameter(self):
        parent = np.array([0, 0, 0, 0])
        t = SpanningTree(root=0, parent=parent, depth_of=np.array([0, 1, 1, 1]))
        assert t.diameter() == 2

    def test_path_to_root(self):
        t = SpanningTree(
            root=0,
            parent=np.array([0, 0, 1]),
            depth_of=np.array([0, 1, 2]),
        )
        assert t.path_to_root(2) == [2, 1, 0]

    def test_rejects_orphan(self):
        with pytest.raises(ValidationError):
            SpanningTree(root=0, parent=np.array([0, -1]), depth_of=np.array([0, 1]))

    def test_rejects_bad_root(self):
        with pytest.raises(ValidationError):
            SpanningTree(root=1, parent=np.array([0, 0]), depth_of=np.array([0, 1]))


class TestBuildPacking:
    def test_edge_disjoint(self, packed):
        g, packing = packed
        assert packing.is_edge_disjoint
        assert packing.congestion == 1
        packing.validate()

    def test_trees_span(self, packed):
        g, packing = packed
        for t in packing.trees:
            assert len(t.edges()) == g.n - 1

    def test_tree_edges_have_right_color(self, packed):
        g, packing = packed
        decomp = random_partition(g, 3, seed=6)
        for i, t in enumerate(packing.trees):
            for u, v in t.edges():
                assert decomp.colors[g.edge_id(u, v)] == i

    def test_construction_rounds_scale_with_depth(self, packed):
        _, packing = packed
        assert packing.construction_rounds >= packing.max_depth
        assert packing.construction_rounds <= packing.max_depth + 3

    def test_centralized_equals_distributed(self):
        g = random_regular(60, 18, seed=7)
        decomp = random_partition(g, 2, seed=8)
        p_dist = build_tree_packing(decomp, distributed=True)
        p_cent = build_tree_packing(decomp, distributed=False)
        for a, b in zip(p_dist.trees, p_cent.trees):
            assert np.array_equal(a.parent, b.parent)
            assert np.array_equal(a.depth_of, b.depth_of)

    def test_fractional_view(self, packed):
        _, packing = packed
        assert packing.fractional_total_weight() == packing.size

    def test_fp23_interface_parameters(self, packed):
        """The Fischer–Parter compiler consumes exactly these three numbers."""
        g, packing = packed
        assert packing.size >= 1  # >= λ/(C log n) trees
        assert packing.congestion == 1  # each edge in <= 1 tree
        bound = 20.0 * g.n * np.ceil(np.log(g.n)) / g.min_degree()
        assert packing.max_diameter <= bound

    def test_non_spanning_class_raises(self, reg_small):
        decomp = random_partition(reg_small, 6, seed=1)  # guaranteed failure
        with pytest.raises(ValidationError):
            build_tree_packing(decomp, distributed=False)

    def test_validate_detects_stale_counts(self, packed):
        import copy

        _, packing = packed
        broken = copy.copy(packing)
        broken.edge_tree_count = packing.edge_tree_count.copy()
        broken.edge_tree_count[0] += 1
        with pytest.raises(ValidationError):
            broken.validate()


class TestPackingFromMasks:
    def test_overlapping_masks_counted(self):
        g = cycle_graph(6)
        full = np.ones(g.m, dtype=bool)
        packing = packing_from_masks(g, [full, full])
        assert packing.size == 2
        assert packing.congestion == 2
        assert not packing.is_edge_disjoint

    def test_non_spanning_mask_raises(self):
        g = path_graph(4)
        empty = np.zeros(g.m, dtype=bool)
        with pytest.raises(ValidationError):
            packing_from_masks(g, [empty])
