"""Tests for exact edge connectivity, minimum cuts, and Stoer–Wagner."""

import numpy as np
import pytest

import networkx as nx

from repro.graphs import (
    Graph,
    barbell,
    complete_graph,
    cycle_graph,
    edge_connectivity,
    hypercube,
    local_edge_connectivity,
    min_cut,
    path_graph,
    path_of_cliques,
    random_regular,
    stoer_wagner,
    thick_cycle,
)
from repro.graphs.connectivity import greedy_dominating_set
from repro.util.errors import ValidationError


class TestEdgeConnectivity:
    def test_known_families(self):
        assert edge_connectivity(complete_graph(6)) == 5
        assert edge_connectivity(cycle_graph(7)) == 2
        assert edge_connectivity(path_graph(5)) == 1
        assert edge_connectivity(hypercube(4)) == 4

    def test_barbell_is_one(self):
        assert edge_connectivity(barbell(6, bridge_len=2)) == 1

    def test_path_of_cliques_equals_bridge_width(self):
        for w in (1, 2, 4):
            g = path_of_cliques(3, 6, w)
            assert edge_connectivity(g) == w

    def test_thick_cycle(self):
        g = thick_cycle(8, 3)
        assert edge_connectivity(g) == 6  # 2 * group_size

    def test_random_regular_lambda_equals_d(self):
        for d, seed in ((4, 1), (6, 2), (8, 3)):
            g = random_regular(48, d, seed=seed)
            assert edge_connectivity(g) == d

    def test_matches_networkx(self):
        for seed in range(3):
            g = random_regular(36, 5, seed=seed) if seed != 1 else barbell(7)
            assert edge_connectivity(g) == nx.edge_connectivity(g.to_networkx())

    def test_disconnected_is_zero(self):
        assert edge_connectivity(Graph(4, [(0, 1), (2, 3)])) == 0

    def test_single_node(self):
        assert edge_connectivity(Graph(1, [])) == 0

    def test_star_dominating_set_edge_case(self):
        # Star: greedy dominating set is just the hub.
        from repro.graphs import star_graph

        assert edge_connectivity(star_graph(8)) == 1


class TestLocalConnectivity:
    def test_scipy_matches_reference(self):
        g = random_regular(30, 4, seed=9)
        for s, t in ((0, 15), (3, 29), (7, 8)):
            fast = local_edge_connectivity(g, s, t, method="scipy")
            ref = local_edge_connectivity(g, s, t, method="reference")
            assert fast == ref

    def test_cutoff_truncates(self):
        g = complete_graph(8)
        assert local_edge_connectivity(g, 0, 1, cutoff=3, method="reference") == 3

    def test_same_node_raises(self):
        with pytest.raises(ValidationError):
            local_edge_connectivity(complete_graph(3), 1, 1)

    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            local_edge_connectivity(complete_graph(3), 0, 1, method="magic")


class TestMinCut:
    def test_cut_size_equals_lambda(self):
        g = random_regular(40, 5, seed=4)
        side, cut = min_cut(g)
        assert len(cut) == edge_connectivity(g)

    def test_cut_edges_actually_cross(self):
        g = path_of_cliques(3, 5, 2)
        side, cut = min_cut(g)
        for eid in cut.tolist():
            u, v = g.edge_endpoints(eid)
            assert side[u] != side[v]

    def test_nontrivial_sides(self):
        g = barbell(6, bridge_len=2)
        side, cut = min_cut(g)
        assert len(cut) == 1
        assert 0 < side.sum() < g.n

    def test_single_node_raises(self):
        with pytest.raises(ValidationError):
            min_cut(Graph(1, []))


class TestDominatingSet:
    def test_dominates(self):
        g = random_regular(50, 6, seed=21)
        dom = greedy_dominating_set(g)
        covered = np.zeros(g.n, dtype=bool)
        for v in dom:
            covered[v] = True
            covered[g.neighbors(v)] = True
        assert covered.all()

    def test_smaller_than_n_for_dense(self):
        g = complete_graph(20)
        assert len(greedy_dominating_set(g)) == 1


class TestStoerWagner:
    def test_matches_lambda_unweighted(self):
        g = random_regular(24, 4, seed=6)
        val, side = stoer_wagner(g)
        assert val == edge_connectivity(g)
        assert 0 < side.sum() < g.n

    def test_weighted_planted_cut(self):
        # Two triangles joined by one light edge: min cut = that edge.
        g = Graph(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            weights=[10, 10, 10, 10, 10, 10, 0.5],
        )
        val, side = stoer_wagner(g)
        assert val == pytest.approx(0.5)
        assert sorted(np.nonzero(side)[0].tolist()) in ([0, 1, 2], [3, 4, 5])

    def test_matches_networkx_weighted(self):
        from repro.graphs import random_weights

        g = random_weights(random_regular(18, 4, seed=2), seed=3)
        val, _ = stoer_wagner(g)
        nx_val, _ = nx.stoer_wagner(g.to_networkx())
        assert val == pytest.approx(nx_val)
