"""Tests for the cross-PR perf gate (ISSUE 7 satellite: one-sided metrics).

The gate must fail only on real regressions of pipelines measured in *both*
artifacts; sections present in just one (a new bench surface like E17, or a
retired one) are notices — otherwise the first PR adding a surface could
never land.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from compare_bench import (  # noqa: E402
    attribute,
    compare,
    main,
    walk_phases,
    walk_qps,
    walk_seconds,
)


OLD = {
    "e13": {"apsp_seconds": 1.0, "cuts": [{"scenario": "a", "seconds": 2.0}]},
    "e16": {"sweep_seconds": 0.5},
    "legacy": {"old_pipeline_seconds": 3.0},
}


class TestWalkSeconds:
    def test_flattens_nested_and_list_leaves(self):
        secs = walk_seconds(OLD)
        assert secs["e13.apsp_seconds"] == 1.0
        assert secs["e13.cuts[scenario=a].seconds"] == 2.0
        assert len(secs) == 4

    def test_identity_labels_survive_reordering(self):
        a = {"rows": [{"scenario": "x", "seconds": 1.0}, {"scenario": "y", "seconds": 2.0}]}
        b = {"rows": [{"scenario": "y", "seconds": 2.0}, {"scenario": "x", "seconds": 1.0}]}
        assert walk_seconds(a) == walk_seconds(b)

    def test_non_seconds_keys_ignored(self):
        assert walk_seconds({"rounds": 9, "bits_total": 100}) == {}


class TestOneSidedMetrics:
    def test_new_surface_is_a_notice_not_a_failure(self):
        new = dict(OLD, e17={"tournament_seconds": 9.9})
        regressions, notes = compare(OLD, new, threshold=2.0, min_seconds=0.05)
        assert regressions == []
        assert any(n.startswith("new: e17.tournament_seconds") for n in notes)

    def test_retired_surface_is_a_notice_not_a_failure(self):
        new = {k: v for k, v in OLD.items() if k != "legacy"}
        regressions, notes = compare(OLD, new, threshold=2.0, min_seconds=0.05)
        assert regressions == []
        assert any(n.startswith("retired: legacy.old_pipeline_seconds") for n in notes)

    def test_disjoint_artifacts_never_gate(self):
        regressions, notes = compare(
            {"a": {"x_seconds": 1.0}}, {"b": {"y_seconds": 50.0}},
            threshold=2.0, min_seconds=0.05,
        )
        assert regressions == []
        assert len(notes) == 2  # one retired, one new


class TestRegressionGate:
    def test_real_regression_fails(self):
        new = json.loads(json.dumps(OLD))
        new["e13"]["apsp_seconds"] = 5.0
        regressions, _ = compare(OLD, new, threshold=2.0, min_seconds=0.05)
        assert len(regressions) == 1 and "apsp_seconds" in regressions[0]

    def test_noise_floor_absorbs_tiny_deltas(self):
        old = {"x_seconds": 0.001}
        new = {"x_seconds": 0.01}  # 10x but only +9ms
        regressions, _ = compare(old, new, threshold=2.0, min_seconds=0.05)
        assert regressions == []

    def test_within_threshold_passes(self):
        new = json.loads(json.dumps(OLD))
        new["e16"]["sweep_seconds"] = 0.9  # 1.8x < 2x
        regressions, _ = compare(OLD, new, threshold=2.0, min_seconds=0.05)
        assert regressions == []


class TestThroughputFloor:
    """ISSUE 9 satellite: *qps leaves gate downward (E18 batched throughput)."""

    OLD = {"e18": {"e18a": {"grid_qps": 1000.0},
                   "curve": [{"batch": 100, "qps": 20.0}]}}

    def test_walk_qps_flattens_with_identity_labels(self):
        qps = walk_qps(self.OLD)
        assert qps == {"e18.e18a.grid_qps": 1000.0,
                       "e18.curve[batch=100].qps": 20.0}

    def test_throughput_drop_beyond_threshold_fails(self):
        new = {"e18": {"e18a": {"grid_qps": 400.0},
                       "curve": [{"batch": 100, "qps": 20.0}]}}
        regressions, _ = compare(self.OLD, new, threshold=2.0, min_seconds=0.05)
        assert len(regressions) == 1 and "grid_qps" in regressions[0]

    def test_throughput_within_threshold_passes(self):
        new = {"e18": {"e18a": {"grid_qps": 600.0},
                       "curve": [{"batch": 100, "qps": 11.0}]}}
        regressions, _ = compare(self.OLD, new, threshold=2.0, min_seconds=0.05)
        assert regressions == []

    def test_throughput_gain_is_never_a_regression(self):
        new = {"e18": {"e18a": {"grid_qps": 9000.0},
                       "curve": [{"batch": 100, "qps": 500.0}]}}
        regressions, _ = compare(self.OLD, new, threshold=2.0, min_seconds=0.05)
        assert regressions == []

    def test_one_sided_qps_is_a_notice(self):
        regressions, notes = compare(
            self.OLD, {"e18": {}}, threshold=2.0, min_seconds=0.05
        )
        assert regressions == []
        assert sum(n.startswith("retired:") for n in notes) == 2
        regressions, notes = compare(
            {}, self.OLD, threshold=2.0, min_seconds=0.05
        )
        assert regressions == []
        assert sum(n.startswith("new:") for n in notes) == 2

    def test_qps_gate_exit_code(self, tmp_path):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"grid_qps": 100.0}))
        new = tmp_path / "new.json"
        new.write_text(json.dumps({"grid_qps": 10.0}))
        assert main(["--old", str(old), "--new", str(new)]) == 1


class TestPhaseAttribution:
    """ISSUE 10 satellite: a wall-clock regression names the phase that
    moved, using the ``*phases`` breakdowns the traced benches record."""

    OLD = {
        "e13_quick": {
            "vec_seconds": 0.10,
            "vec_phases": {"pipeline": 0.04, "tree_packing": 0.03},
        }
    }

    def test_walk_phases_flattens_breakdown_dicts(self):
        phases = walk_phases(self.OLD)
        assert phases == {
            "e13_quick.vec_phases": {"pipeline": 0.04, "tree_packing": 0.03}
        }

    def test_walk_phases_follows_list_identity_labels(self):
        node = {"e13d": [{"n": 80, "fast_phases": {"upcast": 1.0}}]}
        assert walk_phases(node) == {
            "e13d[n=80].fast_phases": {"upcast": 1.0}
        }

    def test_regression_is_attributed_to_the_biggest_mover(self):
        new = {
            "e13_quick": {
                "vec_seconds": 0.50,
                "vec_phases": {"pipeline": 0.42, "tree_packing": 0.04},
            }
        }
        regressions, _ = compare(self.OLD, new, threshold=2.0, min_seconds=0.05)
        assert len(regressions) == 1
        assert "phase 'pipeline' moved most" in regressions[0]
        assert "+0.380s" in regressions[0]

    def test_stem_matching_prefers_the_sibling_breakdown(self):
        old = {
            "row": {
                "fast_seconds": 0.1, "fast_phases": {"a": 0.1},
                "text_phases": {"b": 0.1},
            }
        }
        new = {
            "row": {
                "fast_seconds": 1.0, "fast_phases": {"a": 1.0},
                "text_phases": {"b": 9.9},
            }
        }
        blame = attribute("row.fast_seconds", walk_phases(old), walk_phases(new))
        assert "'a'" in blame

    def test_no_breakdown_means_no_attribution(self):
        old = {"x_seconds": 0.1}
        new = {"x_seconds": 1.0}
        regressions, _ = compare(old, new, threshold=2.0, min_seconds=0.05)
        assert len(regressions) == 1
        assert "phase" not in regressions[0]

    def test_one_sided_breakdown_is_skipped(self):
        new = {
            "e13_quick": {"vec_seconds": 0.50, "vec_phases": {"pipeline": 0.42}}
        }
        old = {"e13_quick": {"vec_seconds": 0.10}}
        regressions, _ = compare(old, new, threshold=2.0, min_seconds=0.05)
        assert len(regressions) == 1 and "moved most" not in regressions[0]

    def test_shrinking_phases_report_no_grower(self):
        old_p = {"p.phases": {"a": 1.0}}
        new_p = {"p.phases": {"a": 0.5}}
        assert "no recorded phase grew" in attribute("p.x_seconds", old_p, new_p)


class TestMainEntry:
    def test_missing_old_artifact_bootstraps_clean(self, tmp_path, capsys):
        new = tmp_path / "new.json"
        new.write_text(json.dumps(OLD))
        rc = main(["--old", str(tmp_path / "absent.json"), "--new", str(new)])
        assert rc == 0
        assert "skipping gate" in capsys.readouterr().out

    def test_unreadable_old_artifact_bootstraps_clean(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text("{not json")
        new = tmp_path / "new.json"
        new.write_text(json.dumps(OLD))
        assert main(["--old", str(old), "--new", str(new)]) == 0
        assert "unreadable" in capsys.readouterr().out

    def test_missing_new_artifact_fails(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps(OLD))
        rc = main(["--old", str(old), "--new", str(tmp_path / "absent.json")])
        assert rc == 1

    @pytest.mark.parametrize("factor,expected_rc", [(1.5, 0), (3.0, 1)])
    def test_gate_exit_codes(self, tmp_path, factor, expected_rc):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"x_seconds": 1.0}))
        new = tmp_path / "new.json"
        new.write_text(json.dumps({"x_seconds": factor}))
        rc = main(["--old", str(old), "--new", str(new)])
        assert rc == expected_rc
