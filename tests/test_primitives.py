"""Tests for the distributed primitives (Lemmas 1–4, Theorem 12)."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    bfs_distances,
    cycle_graph,
    diameter,
    path_graph,
)
from repro.primitives import (
    assign_item_numbers,
    elect_leader,
    learn_min_degree,
    run_bfs,
    run_parallel_bfs,
    run_scheduled_broadcast,
    run_tree_broadcast,
    tree_aggregate,
)
from repro.util.errors import ValidationError


class TestDistributedBFS:
    def test_distances_match_centralized(self, reg_small):
        tree = run_bfs(reg_small, 0)
        assert np.array_equal(tree.dist, bfs_distances(reg_small, 0))

    def test_parent_is_previous_layer_neighbor(self, reg_small):
        tree = run_bfs(reg_small, 0)
        for v in range(reg_small.n):
            if v == 0:
                assert tree.parent[v] == 0
            else:
                p = int(tree.parent[v])
                assert reg_small.has_edge(p, v)
                assert tree.dist[v] == tree.dist[p] + 1

    def test_rounds_are_depth_plus_constant(self):
        g = path_graph(15)
        tree = run_bfs(g, 0)
        assert tree.depth == 14
        assert tree.depth <= tree.rounds <= tree.depth + 2

    def test_children_consistent_with_parents(self, q4):
        tree = run_bfs(q4, 0)
        for v in range(q4.n):
            for c in tree.children[v]:
                assert tree.parent[c] == v

    def test_restricted_to_edge_mask(self):
        g = cycle_graph(6)
        # Keep only the path edges 0-1-2-3-4-5 (drop the closing edge).
        mask = np.ones(g.m, dtype=bool)
        mask[g.edge_id(0, 5)] = False
        tree = run_bfs(g, 0, edge_mask=mask)
        assert tree.dist[5] == 5  # must walk the long way

    def test_non_spanning_mask_detected(self):
        g = cycle_graph(6)
        mask = np.zeros(g.m, dtype=bool)
        mask[g.edge_id(0, 1)] = True
        tree = run_bfs(g, 0, edge_mask=mask)
        assert not tree.spans()

    def test_bad_root(self, c8):
        with pytest.raises(ValidationError):
            run_bfs(c8, 99)

    def test_parallel_bfs_disjoint_channels(self, reg_dense):
        from repro.core import random_partition

        decomp = random_partition(reg_dense, 2, seed=3)
        results, rounds = run_parallel_bfs(reg_dense, decomp.masks())
        assert len(results) == 2
        assert rounds == max(r.depth for r in results) + 1 or rounds >= max(
            r.depth for r in results
        )
        for r, mask in zip(results, decomp.masks()):
            sub = reg_dense.edge_subgraph(mask)
            assert np.array_equal(r.dist, bfs_distances(sub, 0))

    def test_parallel_bfs_rejects_overlap(self, c8):
        mask = np.ones(c8.m, dtype=bool)
        with pytest.raises(ValidationError):
            run_parallel_bfs(c8, [mask, mask])

    def test_deterministic_tree_equivalence(self, reg_medium):
        """Distributed BFS == centralized bfs_tree (same tie-breaking)."""
        from repro.graphs import bfs_tree

        tree = run_bfs(reg_medium, 3)
        parent, dist = bfs_tree(reg_medium, 3)
        assert np.array_equal(tree.parent, parent)


class TestLeaderElection:
    def test_elects_minimum(self, reg_small):
        leader, rounds = elect_leader(reg_small)
        assert leader == 0
        assert rounds <= diameter(reg_small) + 2

    def test_path_takes_diameter_rounds(self):
        g = path_graph(12)
        leader, rounds = elect_leader(g)
        assert leader == 0
        assert rounds >= 11

    def test_disconnected_raises(self):
        with pytest.raises(RuntimeError):
            elect_leader(Graph(4, [(0, 1), (2, 3)]))


class TestAggregation:
    def test_min_sum_max(self, reg_small):
        tree = run_bfs(reg_small, 0)
        values = np.arange(reg_small.n) + 5
        assert tree_aggregate(reg_small, tree, values, op="min")[0] == 5
        assert tree_aggregate(reg_small, tree, values, op="max")[0] == 4 + 5 + reg_small.n - 1 - 4
        assert (
            tree_aggregate(reg_small, tree, values, op="sum")[0] == int(values.sum())
        )

    def test_learn_min_degree(self, reg_small):
        delta, rounds = learn_min_degree(reg_small)
        assert delta == 6
        assert rounds > 0

    def test_learn_min_degree_irregular(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        delta, _ = learn_min_degree(g)
        assert delta == 2

    def test_rounds_scale_with_depth(self):
        g = path_graph(16)
        tree = run_bfs(g, 0)
        _, rounds = tree_aggregate(g, tree, np.ones(16, dtype=int), op="sum")
        assert rounds >= 2 * 15  # up + down a depth-15 tree

    def test_bad_op(self, c8):
        tree = run_bfs(c8, 0)
        with pytest.raises(ValidationError):
            tree_aggregate(c8, tree, np.ones(8, dtype=int), op="median")

    def test_non_spanning_tree_rejected(self):
        g = cycle_graph(6)
        mask = np.zeros(g.m, dtype=bool)
        tree = run_bfs(g, 0, edge_mask=mask)
        with pytest.raises(ValidationError):
            tree_aggregate(g, tree, np.ones(6, dtype=int))


class TestNumbering:
    def test_partition_of_range(self, reg_small):
        tree = run_bfs(reg_small, 0)
        counts = np.ones(reg_small.n, dtype=np.int64) * 3
        starts, _ = assign_item_numbers(reg_small, tree, counts)
        ids = sorted(
            i for v in range(reg_small.n) for i in range(starts[v], starts[v] + 3)
        )
        assert ids == list(range(1, 3 * reg_small.n + 1))

    def test_zero_counts_allowed(self, c8):
        tree = run_bfs(c8, 0)
        counts = np.zeros(8, dtype=np.int64)
        counts[3] = 5
        starts, _ = assign_item_numbers(c8, tree, counts)
        assert starts[3] == 1

    def test_negative_count_rejected(self, c8):
        tree = run_bfs(c8, 0)
        with pytest.raises(ValidationError):
            assign_item_numbers(c8, tree, np.array([-1] + [0] * 7))

    def test_root_takes_first_ids(self, c8):
        tree = run_bfs(c8, 0)
        counts = np.ones(8, dtype=np.int64)
        starts, _ = assign_item_numbers(c8, tree, counts)
        assert starts[0] == 1


class TestPipelinedBroadcast:
    def _placement(self, n, k, seed=0):
        rng = np.random.default_rng(seed)
        placement = {}
        for mid in range(1, k + 1):
            v = int(rng.integers(n))
            placement.setdefault(v, []).append(mid)
        return placement

    def test_all_delivered(self, reg_small):
        tree = run_bfs(reg_small, 0)
        placement = self._placement(reg_small.n, 60)
        out = run_tree_broadcast(reg_small, {0: tree}, {0: placement})
        assert out.k_total == 60  # verify=True already asserted delivery

    def test_rounds_bound(self, reg_small):
        tree = run_bfs(reg_small, 0)
        k = 50
        out = run_tree_broadcast(
            reg_small, {0: tree}, {0: self._placement(reg_small.n, k)}
        )
        assert out.rounds <= 2 * tree.depth + 2 * k + 4

    def test_congestion_bound_lemma1(self, reg_small):
        """Lemma 1: congestion O(k) — at most 2k with our pipeline."""
        tree = run_bfs(reg_small, 0)
        k = 40
        out = run_tree_broadcast(
            reg_small, {0: tree}, {0: self._placement(reg_small.n, k)}
        )
        assert out.max_congestion <= 2 * k

    def test_single_source(self, c8):
        tree = run_bfs(c8, 0)
        out = run_tree_broadcast(c8, {0: tree}, {0: {4: [1, 2, 3]}})
        assert out.rounds >= 3

    def test_root_holds_everything(self, c8):
        tree = run_bfs(c8, 0)
        out = run_tree_broadcast(c8, {0: tree}, {0: {0: [1, 2, 3, 4]}})
        # pure downcast: depth + k-ish rounds
        assert out.rounds <= tree.depth + 4 + 1

    def test_empty_channel_is_noop(self, c8):
        tree = run_bfs(c8, 0)
        out = run_tree_broadcast(c8, {0: tree}, {0: {}})
        assert out.k_total == 0 and out.rounds == 0

    def test_duplicate_ids_rejected(self, c8):
        tree = run_bfs(c8, 0)
        with pytest.raises(ValidationError):
            run_tree_broadcast(c8, {0: tree}, {0: {1: [5], 2: [5]}})

    def test_unknown_channel_rejected(self, c8):
        tree = run_bfs(c8, 0)
        with pytest.raises(ValidationError):
            run_tree_broadcast(c8, {0: tree}, {7: {0: [1]}})

    def test_non_spanning_tree_rejected(self):
        g = cycle_graph(6)
        mask = np.zeros(g.m, dtype=bool)
        mask[0] = True
        tree = run_bfs(g, 0, edge_mask=mask)
        with pytest.raises(ValidationError):
            run_tree_broadcast(g, {0: tree}, {0: {0: [1]}})

    def test_two_disjoint_channels_parallel(self, reg_dense):
        from repro.core import random_partition, build_tree_packing
        from repro.core.broadcast import _bfs_view

        decomp = random_partition(reg_dense, 2, seed=3)
        packing = build_tree_packing(decomp, distributed=False)
        trees = {0: _bfs_view(packing, 0), 1: _bfs_view(packing, 1)}
        msgs = {
            0: self._placement(reg_dense.n, 30, seed=1),
            1: {v: [m + 100 for m in ms] for v, ms in self._placement(reg_dense.n, 30, seed=2).items()},
        }
        out = run_tree_broadcast(reg_dense, trees, msgs)
        # Concurrent channels: rounds ~ max of singles, not the sum.
        single = run_tree_broadcast(reg_dense, {0: trees[0]}, {0: msgs[0]})
        assert out.rounds <= single.rounds + 2 * packing.max_depth + 35


class TestScheduling:
    def test_overlapping_trees_complete(self, reg_small):
        t0 = run_bfs(reg_small, 0)
        t1 = run_bfs(reg_small, 1)  # overlapping edge sets
        msgs = {
            0: {2: list(range(1, 21))},
            1: {3: list(range(100, 121))},
        }
        out = run_scheduled_broadcast(
            reg_small, {0: t0, 1: t1}, msgs, seed=4
        )
        assert out.makespan > 0
        assert out.congestion >= 1

    def test_zero_delay_baseline(self, reg_small):
        t0 = run_bfs(reg_small, 0)
        t1 = run_bfs(reg_small, 1)
        msgs = {0: {2: [1, 2, 3]}, 1: {3: [10, 11]}}
        out = run_scheduled_broadcast(
            reg_small, {0: t0, 1: t1}, msgs, max_delay=0, seed=4
        )
        assert all(d == 0 for d in out.delays.values())

    def test_makespan_at_least_single_job(self, c8):
        tree = run_bfs(c8, 0)
        msgs = {0: {4: list(range(1, 11))}}
        alone = run_tree_broadcast(c8, {0: tree}, {0: msgs[0]})
        out = run_scheduled_broadcast(c8, {0: tree}, msgs, max_delay=0, seed=1)
        assert out.makespan >= alone.rounds - 1

    def test_duplicate_ids_rejected(self, c8):
        tree = run_bfs(c8, 0)
        with pytest.raises(ValidationError):
            run_scheduled_broadcast(c8, {0: tree}, {0: {1: [5], 2: [5]}})

    def test_congestion_counts_both_jobs(self, c8):
        tree = run_bfs(c8, 0)
        msgs = {0: {4: [1, 2, 3]}, 1: {4: [11, 12, 13]}}
        out = run_scheduled_broadcast(
            c8, {0: tree, 1: tree}, msgs, max_delay=0, seed=2
        )
        solo = run_tree_broadcast(c8, {0: tree}, {0: msgs[0]})
        assert out.congestion >= solo.max_congestion
