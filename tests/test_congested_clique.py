"""Tests for the broadcast congested clique simulation (Section 1.2)."""

import pytest

from repro.core import SumAndLeaderBCC, simulate_bcc
from repro.core.congested_clique import BCCAlgorithm
from repro.graphs import thick_cycle
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def host():
    return thick_cycle(10, 10)  # n = 100, λ = 20


class TestSimulateBCC:
    def test_semantics_end_to_end(self, host):
        algs = [SumAndLeaderBCC(v, host.n, value=(v * 7) % 23) for v in range(host.n)]
        out = simulate_bcc(host, algs, lam=20, C=1.5, seed=1)
        assert out.bcc_rounds == 2
        expected_sum = sum((v * 7) % 23 for v in range(host.n))
        assert all(a.output["sum"] == expected_sum for a in algs)
        assert all(a.output["unanimous"] for a in algs)

    def test_packing_amortized_across_rounds(self, host):
        algs = [SumAndLeaderBCC(v, host.n, value=v) for v in range(host.n)]
        out = simulate_bcc(host, algs, lam=20, C=1.5, seed=1)
        # Construction charged once; per-round costs are the broadcasts.
        assert len(out.per_bcc_round_cost) == out.bcc_rounds
        assert out.congest_rounds == out.packing.construction_rounds + sum(
            out.per_bcc_round_cost
        )

    def test_per_round_cost_scale(self, host):
        """One BCC round ≈ one n-message broadcast: Õ(n/λ) rounds."""
        algs = [SumAndLeaderBCC(v, host.n, value=v) for v in range(host.n)]
        out = simulate_bcc(host, algs, lam=20, C=1.5, seed=1)
        import math

        per = out.per_bcc_round_cost[0]
        assert per <= 10 * (host.n / 20) * math.log(host.n)

    def test_rejects_wrong_algorithm_count(self, host):
        with pytest.raises(ValidationError):
            simulate_bcc(host, [SumAndLeaderBCC(0, host.n, 1)], lam=20)

    def test_rejects_oversized_message(self, host):
        class Shouter(BCCAlgorithm):
            def broadcast_message(self, bcc_round):
                return tuple(range(100))  # way over O(log n) bits

            def on_messages(self, bcc_round, messages):
                return True

        algs = [Shouter(v, host.n) for v in range(host.n)]
        with pytest.raises(ValidationError):
            simulate_bcc(host, algs, lam=20, C=1.5, seed=1)

    def test_max_rounds_cap(self, host):
        class Forever(BCCAlgorithm):
            def broadcast_message(self, bcc_round):
                return 1

            def on_messages(self, bcc_round, messages):
                return False  # never halts

        algs = [Forever(v, host.n) for v in range(host.n)]
        out = simulate_bcc(host, algs, lam=20, C=1.5, seed=1, max_bcc_rounds=3)
        assert out.bcc_rounds == 3
