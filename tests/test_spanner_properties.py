"""Hypothesis tests for Baswana–Sen spanners and the cut sparsifier."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apsp import baswana_sen_spanner, check_spanner_stretch
from repro.cuts import koutis_xu_sparsifier
from repro.graphs import Graph, cut_value


@st.composite
def weighted_connected_graphs(draw, max_n=10):
    n = draw(st.integers(3, max_n))
    perm = draw(st.permutations(range(n)))
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        a, b = perm[i], perm[j]
        edges.add((min(a, b), max(a, b)))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(all_pairs), max_size=2 * n))
    edges.update(extra)
    edges = sorted(edges)
    weights = draw(
        st.lists(
            st.integers(1, 100), min_size=len(edges), max_size=len(edges)
        )
    )
    return Graph(n, edges, weights=[float(w) for w in weights])


@given(weighted_connected_graphs(), st.integers(1, 4), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_spanner_stretch_always_holds(g, k, seed):
    sp = baswana_sen_spanner(g, k, seed=seed)
    ok, worst = check_spanner_stretch(g, sp.spanner, k)
    assert ok, f"stretch {worst} > {2*k-1} on n={g.n}, m={g.m}, k={k}"


@given(weighted_connected_graphs(), st.integers(2, 4), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_spanner_is_weight_preserving_subgraph(g, k, seed):
    sp = baswana_sen_spanner(g, k, seed=seed)
    assert sp.spanner.m <= g.m
    for eid in range(sp.spanner.m):
        u, v = sp.spanner.edge_endpoints(eid)
        assert g.has_edge(u, v)
        assert sp.spanner.weights[eid] == g.weights[g.edge_id(u, v)]


@given(weighted_connected_graphs(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_sparsifier_preserves_connectivity_structure(g, seed):
    """The sparsifier never disconnects what was connected: every cut that
    is positive in G stays positive in H (bundles contain spanners, which
    preserve connectivity)."""
    res = koutis_xu_sparsifier(g, eps=0.5, seed=seed, tau=1)
    h = res.sparsifier
    assert h.n == g.n
    rng = np.random.default_rng(seed)
    for _ in range(5):
        side = rng.random(g.n) < 0.5
        if side.any() and not side.all():
            if cut_value(g, side) > 0:
                assert cut_value(h, side) > 0
