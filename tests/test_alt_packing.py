"""Tests for Appendix A: Lemma 9 witnesses and the Theorem 10 packing."""

import math

import pytest

from repro.core import (
    greedy_low_diameter_packing,
    kd_connectivity_witness,
    lemma9_parameters,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_regular,
)
from repro.util.errors import ValidationError


class TestKdWitness:
    def test_path_count_equals_local_connectivity(self):
        g = random_regular(40, 6, seed=3)
        ps = kd_connectivity_witness(g, 0, 20)
        # Greedy shortest augmentation is Edmonds–Karp → max flow paths.
        from repro.graphs import local_edge_connectivity

        assert ps.count == local_edge_connectivity(g, 0, 20)

    def test_paths_edge_disjoint_and_valid(self):
        g = random_regular(40, 6, seed=3)
        ps = kd_connectivity_witness(g, 0, 20)
        assert ps.is_edge_disjoint()
        for path in ps.paths:
            assert path[0] == 0 and path[-1] == 20
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b)

    def test_lemma9_holds_on_regular_graphs(self):
        g = random_regular(60, 10, seed=5)
        lam = 10
        k_target, d_target = lemma9_parameters(g, lam)
        for u, v in ((0, 30), (5, 55), (12, 40)):
            ps = kd_connectivity_witness(g, u, v, max_paths=math.ceil(k_target))
            assert ps.count >= k_target
            assert ps.max_length <= d_target

    def test_cycle_two_paths(self):
        g = cycle_graph(8)
        ps = kd_connectivity_witness(g, 0, 4)
        assert ps.count == 2
        assert ps.max_length == 4

    def test_max_paths_cap(self):
        g = complete_graph(6)
        ps = kd_connectivity_witness(g, 0, 1, max_paths=2)
        assert ps.count == 2

    def test_same_node_raises(self):
        with pytest.raises(ValidationError):
            kd_connectivity_witness(cycle_graph(5), 2, 2)

    def test_monotone_path_lengths(self):
        # Shortest-augmentation invariant: successive lengths non-decreasing.
        g = random_regular(40, 8, seed=9)
        ps = kd_connectivity_witness(g, 0, 25)
        lengths = [len(p) - 1 for p in ps.paths]
        assert lengths == sorted(lengths)


class TestGreedyPacking:
    def test_theorem10_parameters(self):
        g = random_regular(100, 16, seed=7)
        lam = 16
        packing = greedy_low_diameter_packing(g, lam, seed=1)
        assert packing.size == lam
        # Congestion target O(log n): allow constant 3.
        assert packing.congestion <= 3 * math.log(g.n)
        # Diameter target O((n log n)/δ).
        assert packing.max_diameter <= 20 * g.n * math.log(g.n) / g.min_degree()

    def test_each_tree_spans(self):
        g = random_regular(50, 8, seed=2)
        packing = greedy_low_diameter_packing(g, 8, seed=3)
        for t in packing.trees:
            assert len(t.edges()) == g.n - 1

    def test_explicit_roots_respected(self):
        g = random_regular(30, 6, seed=4)
        packing = greedy_low_diameter_packing(g, 3, roots=[5, 6, 7], seed=1)
        assert [t.root for t in packing.trees] == [5, 6, 7]

    def test_roots_length_mismatch(self):
        g = cycle_graph(6)
        with pytest.raises(ValidationError):
            greedy_low_diameter_packing(g, 2, roots=[0], seed=1)

    def test_disconnected_raises(self):
        from repro.graphs import Graph

        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValidationError):
            greedy_low_diameter_packing(g, 2, seed=1)

    def test_path_graph_trivial(self):
        g = path_graph(10)
        packing = greedy_low_diameter_packing(g, 1, seed=1)
        assert packing.size == 1
        assert packing.max_diameter == 9

    def test_congestion_grows_sublinearly_in_trees(self):
        """Doubling the tree count should much less than double congestion
        (the multiplicative-penalty spreading effect)."""
        g = random_regular(80, 20, seed=6)
        few = greedy_low_diameter_packing(g, 5, seed=2)
        many = greedy_low_diameter_packing(g, 20, seed=2)
        assert many.congestion <= few.congestion + math.ceil(math.log(g.n)) + 2
