"""Tests for ``repro lint`` (:mod:`repro.analysis`).

Three layers:

* **True positives** — one fixture per rule id, violating that rule exactly
  once; asserts the rule fires at the expected line and nothing else does.
* **Suppressions** — line and file ``# repro-lint: disable`` comments
  silence exactly the named rule.
* **No false positives** — a full :func:`repro.analysis.run_lint` pass over
  the real tree (src, benchmarks, examples) must come back clean; this is
  the same invocation CI runs.

The CLI tests shell out to ``python -m repro lint`` to pin the JSON schema
and the exit-code contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    Finding,
    check_backend_parity,
    check_bit_accounting,
    check_congest_legality,
    check_obs_discipline,
    check_rng_discipline,
    run_lint,
)
from repro.analysis.walker import parse_module

REPO_ROOT = Path(__file__).resolve().parents[1]


def _parse(tmp_path: Path, source: str, name: str = "fixture.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    info = parse_module(path, display_path=name)
    assert not isinstance(info, Finding), getattr(info, "message", None)
    return info


def _only(findings: list[Finding], rule: str) -> Finding:
    """Assert the fixture produced exactly one finding, of ``rule``."""
    assert [f.rule for f in findings] == [rule]
    return findings[0]


class TestCongestLegality:
    def test_global_read_of_mutable_module_state(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            from repro.congest import NodeProgram

            phase_table = {}

            class P(NodeProgram):
                def on_round(self, ctx):
                    ctx.send_all(len(phase_table))
            """,
        )
        f = _only(check_congest_legality(info), "congest-global-read")
        assert f.line == 7  # the read inside on_round, not the definition

    def test_graph_parameter_is_flagged(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            from repro.congest import NodeProgram

            class P(NodeProgram):
                def on_start(self, ctx, graph):
                    ctx.wake()
            """,
        )
        f = _only(check_congest_legality(info), "congest-graph-state")
        assert f.line == 4

    def test_self_graph_attribute_is_flagged(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            from repro.congest import NodeProgram

            class P(NodeProgram):
                def on_round(self, ctx):
                    ctx.send_all(self.graph.n)
            """,
        )
        f = _only(check_congest_legality(info), "congest-graph-state")
        assert f.line == 5

    def test_private_context_attribute_is_flagged(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            from repro.congest import NodeProgram

            class P(NodeProgram):
                def on_round(self, ctx):
                    ctx._outbox.clear()
            """,
        )
        f = _only(check_congest_legality(info), "congest-context-api")
        assert f.line == 5

    def test_legal_program_is_clean(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            from repro.congest import NodeProgram

            ANNOUNCE = 1  # protocol constant: legal to read

            class P(NodeProgram):
                def __init__(self, color):
                    self.color = color

                def on_round(self, ctx):
                    for src, payload in ctx.inbox:
                        if payload == ANNOUNCE:
                            ctx.send(src, (self.color, ctx.round))
                    if ctx.round > ctx.n:
                        ctx.halt()
            """,
        )
        assert check_congest_legality(info) == []

    def test_non_program_classes_are_ignored(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            registry = {}

            class Driver:
                def run(self, graph):
                    registry[graph.n] = self
            """,
        )
        assert check_congest_legality(info) == []


class TestRngDiscipline:
    def test_np_random_module_call(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """,
        )
        f = _only(check_rng_discipline(info), "rng-module-call")
        assert f.line == 4

    def test_stdlib_random_import(self, tmp_path):
        info = _parse(tmp_path, "import random\n")
        f = _only(check_rng_discipline(info), "rng-stdlib-random")
        assert f.line == 1

    def test_generator_construction(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import numpy as np

            def make(seed):
                return np.random.Generator(np.random.PCG64(seed))
            """,
        )
        findings = check_rng_discipline(info)
        assert [f.rule for f in findings] == ["rng-generator-construct"] * 2
        assert {f.line for f in findings} == {4}

    def test_rng_home_is_exempt(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import numpy as np

            def rng_from_seed(seed):
                return np.random.Generator(np.random.PCG64(seed))
            """,
            name="repro/util/rng.py",
        )
        assert check_rng_discipline(info) == []

    def test_isinstance_reference_is_legal(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import numpy as np

            def ensure(rng):
                return isinstance(rng, np.random.Generator)
            """,
        )
        assert check_rng_discipline(info) == []


class TestObsDiscipline:
    """ISSUE 10 satellite: timing/memory probes in library code must route
    through repro/obs/ spans."""

    TIMED = """\
        import time

        def run():
            t0 = time.perf_counter()
            return time.perf_counter() - t0
        """

    def test_perf_counter_call_in_library_code(self, tmp_path):
        info = _parse(tmp_path, self.TIMED, name="src/repro/core/fixture.py")
        findings = check_obs_discipline(info)
        assert [f.rule for f in findings] == ["obs-discipline"] * 2
        assert {f.line for f in findings} == {4, 5}
        assert "obs.span" in findings[0].message

    def test_from_import_alias_is_flagged_at_the_call(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            from time import perf_counter as clock

            def run():
                return clock()
            """,
            name="src/repro/engine/fixture.py",
        )
        f = _only(check_obs_discipline(info), "obs-discipline")
        assert f.line == 4

    @pytest.mark.parametrize("probe", ["resource", "tracemalloc"])
    def test_memory_probe_import_is_flagged(self, tmp_path, probe):
        info = _parse(
            tmp_path,
            f"import {probe}\n",
            name="src/repro/congest/fixture.py",
        )
        f = _only(check_obs_discipline(info), "obs-discipline")
        assert f.line == 1

    def test_obs_home_is_exempt(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import resource
            import time

            def run():
                return time.perf_counter()
            """,
            name="src/repro/obs/fixture.py",
        )
        assert check_obs_discipline(info) == []

    def test_harness_code_is_exempt(self, tmp_path):
        for name in ("benchmarks/fixture.py", "examples/fixture.py"):
            info = _parse(tmp_path, self.TIMED, name=name)
            assert check_obs_discipline(info) == []

    def test_plain_time_time_is_legal(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import time

            def stamp():
                return time.time()
            """,
            name="src/repro/core/fixture.py",
        )
        assert check_obs_discipline(info) == []


class TestBitAccounting:
    def test_dict_payload_is_flagged(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            def announce(ctx):
                ctx.send(0, {"phase": 1})
            """,
        )
        f = _only(check_bit_accounting(info), "bits-unpriced-payload")
        assert f.line == 2
        assert "dict" in f.message

    def test_priced_payloads_are_clean(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            def announce(ctx, color):
                ctx.send(0, (color, ctx.round))
                ctx.send_all("token")
                ctx.send_all(None)
                ctx.send_all(compute(color))  # unknown static type: not flagged
            """,
        )
        assert check_bit_accounting(info) == []


class TestBackendParity:
    def _modules(self, tmp_path, test_source: str):
        src = _parse(
            tmp_path,
            """\
            def certified(graph, backend="simulator"):
                return graph

            def drifting(graph, backend="simulator"):
                return graph
            """,
            name="src/repro/algo.py",
        )
        verify = _parse(
            tmp_path,
            """\
            from repro.algo import certified

            def check_certified(graph, seed):
                certified(graph, backend="vectorized")

            def check_orphan(graph, seed):
                pass

            def verify_equivalence(graphs):
                for g in graphs:
                    check_certified(g, 0)
            """,
            name="src/repro/engine/verify.py",
        )
        tests = _parse(tmp_path, test_source, name="tests/test_engine_equivalence.py")
        return src, verify, tests

    def test_uncovered_entry_point_and_orphan_check(self, tmp_path):
        src, verify, tests = self._modules(
            tmp_path, "from repro.engine.verify import check_certified\n"
        )
        findings = check_backend_parity([src, verify], verify, tests)
        by_rule = {f.rule: f for f in findings}
        assert set(by_rule) == {"parity-unverified-backend", "parity-untested-check"}
        assert by_rule["parity-unverified-backend"].line == 4  # drifting()
        assert "drifting" in by_rule["parity-unverified-backend"].message
        assert "check_orphan" in by_rule["parity-untested-check"].message

    def test_test_reference_covers_both(self, tmp_path):
        src, verify, tests = self._modules(
            tmp_path,
            """\
            from repro.engine.verify import check_certified, check_orphan
            from repro.algo import drifting
            """,
        )
        assert check_backend_parity([src, verify], verify, tests) == []

    def test_uncovered_kernel_entry_point(self, tmp_path):
        src, verify, tests = self._modules(
            tmp_path,
            """\
            from repro.engine.verify import check_certified, check_orphan
            from repro.algo import drifting
            from repro.engine.kernels import tested_kernel
            """,
        )
        kernels = _parse(
            tmp_path,
            """\
            def covered_kernel(a):
                return a

            def tested_kernel(a):
                return a

            def orphan_kernel(a):
                return a

            def _private_kernel(a):
                return a
            """,
            name="src/repro/engine/kernels.py",
        )
        verify2 = _parse(
            tmp_path,
            """\
            from repro.algo import certified
            from repro.engine.kernels import covered_kernel

            def check_certified(graph, seed):
                certified(graph, backend="vectorized")
                covered_kernel(graph)

            def check_orphan(graph, seed):
                pass

            def verify_equivalence(graphs):
                for g in graphs:
                    check_certified(g, 0)
            """,
            name="src/repro/engine/verify.py",
        )
        findings = check_backend_parity([src, verify2, kernels], verify2, tests)
        assert [f.rule for f in findings] == ["parity-unverified-kernel"]
        assert "orphan_kernel" in findings[0].message
        assert findings[0].line == 7  # orphan_kernel()


class TestSuppressions:
    def test_line_suppression_silences_named_rule(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import numpy as np

            def noise(n):
                return np.random.rand(n)  # repro-lint: disable=rng-module-call
            """,
        )
        assert check_rng_discipline(info) == []

    def test_line_suppression_is_rule_specific(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            import numpy as np

            def noise(n):
                return np.random.rand(n)  # repro-lint: disable=bits-unpriced-payload
            """,
        )
        _only(check_rng_discipline(info), "rng-module-call")

    def test_file_suppression(self, tmp_path):
        info = _parse(
            tmp_path,
            """\
            # repro-lint: disable-file=rng-stdlib-random
            import random

            def roll():
                return random.random()
            """,
        )
        assert check_rng_discipline(info) == []


class TestParseError:
    def test_syntax_error_becomes_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        result = parse_module(path, display_path="broken.py")
        assert isinstance(result, Finding)
        assert result.rule == "parse-error"


class TestRealTree:
    def test_run_lint_over_repo_is_clean(self):
        report = run_lint(project_root=REPO_ROOT)
        assert report.files_scanned > 50
        assert report.sorted_findings() == []
        assert report.ok

    def test_every_rule_id_is_documented(self):
        for rule, description in RULES.items():
            assert rule == rule.lower()
            assert description


class TestCli:
    def _run(self, *args: str, cwd: Path | None = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd or REPO_ROOT,
        )

    @pytest.fixture()
    def dirty_dir(self, tmp_path):
        (tmp_path / "bad.py").write_text("import random\n")
        return tmp_path

    def test_clean_dir_exits_zero(self, tmp_path):
        (tmp_path / "good.py").write_text("X = 1\n")
        proc = self._run(str(tmp_path), "--project-root", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "0 findings" in proc.stdout

    def test_findings_exit_one_with_json_schema(self, dirty_dir):
        proc = self._run(
            str(dirty_dir), "--project-root", str(dirty_dir), "--format=json"
        )
        assert proc.returncode == 1, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"rng-stdlib-random": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "rng-stdlib-random"
        assert finding["path"] == "bad.py"
        assert finding["line"] == 1

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0, proc.stderr
        for rule in RULES:
            assert rule in proc.stdout
