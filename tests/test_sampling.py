"""Tests for Lemma 5: random edge sampling yields spanning low-diameter
subgraphs."""

import numpy as np
import pytest

from repro.core import (
    analyze_sample,
    lemma5_diameter_bound,
    sample_edges,
    sampling_probability,
)
from repro.graphs import is_connected, random_regular, thick_cycle
from repro.util.errors import ValidationError


class TestSamplingProbability:
    def test_formula(self):
        p = sampling_probability(100, 10, C=2.0)
        assert p == pytest.approx(2.0 * np.log(100) / 10)

    def test_caps_at_one(self):
        assert sampling_probability(100, 1, C=5.0) == 1.0

    def test_tiny_n(self):
        assert sampling_probability(1, 3) == 1.0

    def test_invalid_lambda(self):
        with pytest.raises(ValidationError):
            sampling_probability(10, 0)


class TestSampleEdges:
    def test_deterministic_in_seed(self, reg_medium):
        a = sample_edges(reg_medium, 0.5, seed=3)
        b = sample_edges(reg_medium, 0.5, seed=3)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, reg_medium):
        a = sample_edges(reg_medium, 0.5, seed=3)
        b = sample_edges(reg_medium, 0.5, seed=4)
        assert not np.array_equal(a, b)

    def test_rate_concentrates(self, reg_medium):
        mask = sample_edges(reg_medium, 0.4, seed=1)
        rate = mask.mean()
        assert 0.25 < rate < 0.55

    def test_p_bounds(self, reg_medium):
        assert not sample_edges(reg_medium, 0.0, seed=1).any()
        assert sample_edges(reg_medium, 1.0, seed=1).all()
        with pytest.raises(ValidationError):
            sample_edges(reg_medium, 1.2, seed=1)


class TestLemma5:
    def test_bound_formula(self):
        b = lemma5_diameter_bound(100, 10, C=2.0)
        assert b > 0
        assert b == pytest.approx(20.0 * 100 * np.ceil(2.0 * np.log(100)) / 10)

    def test_sampled_subgraph_spans_whp(self):
        # λ = δ = 16; p = C ln n / λ with C = 3 is comfortably supercritical.
        g = random_regular(128, 16, seed=8)
        p = sampling_probability(g.n, 16, C=3.0)
        successes = 0
        for seed in range(5):
            mask = sample_edges(g, p, seed=seed)
            if is_connected(g.edge_subgraph(mask)):
                successes += 1
        assert successes >= 4  # w.h.p. at this scale; allow one fluke

    def test_report_within_bound(self):
        g = random_regular(128, 16, seed=8)
        p = sampling_probability(g.n, 16, C=3.0)
        rep = analyze_sample(g, sample_edges(g, p, seed=1), C=3.0)
        assert rep.spanning
        assert rep.within_bound
        assert rep.diameter < rep.bound / 10  # proof constant is loose

    def test_report_detects_disconnection(self, reg_medium):
        mask = np.zeros(reg_medium.m, dtype=bool)
        mask[0] = True
        rep = analyze_sample(reg_medium, mask)
        assert not rep.spanning and rep.diameter == -1 and not rep.within_bound

    def test_diameter_scale_on_thick_cycle(self):
        # Thick cycle: host D ~ groups/2; sampled subgraph diameter must stay
        # within the same order (the n log n / δ scale), not blow up to n.
        g = thick_cycle(16, 8)  # n=128, λ=δ=16
        p = sampling_probability(g.n, 16, C=3.0)
        rep = analyze_sample(g, sample_edges(g, p, seed=2), C=3.0)
        assert rep.spanning
        assert rep.diameter <= rep.bound
