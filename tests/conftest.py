"""Shared fixtures: small, fast, deterministic graphs for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    barbell,
    complete_graph,
    cycle_graph,
    hypercube,
    path_graph,
    random_regular,
    random_weights,
    thick_cycle,
    torus_grid,
)


@pytest.fixture(scope="session")
def k4() -> Graph:
    return complete_graph(4)


@pytest.fixture(scope="session")
def c8() -> Graph:
    return cycle_graph(8)


@pytest.fixture(scope="session")
def p10() -> Graph:
    return path_graph(10)


@pytest.fixture(scope="session")
def q4() -> Graph:
    """4-dimensional hypercube: n=16, λ=δ=4, D=4."""
    return hypercube(4)


@pytest.fixture(scope="session")
def reg_small() -> Graph:
    """Random 6-regular graph on 40 nodes (λ = 6 w.h.p., verified in tests)."""
    return random_regular(40, 6, seed=11)


@pytest.fixture(scope="session")
def reg_medium() -> Graph:
    """Random 12-regular graph on 90 nodes: the main mid-size workload."""
    return random_regular(90, 12, seed=13)


@pytest.fixture(scope="session")
def reg_dense() -> Graph:
    """Random 24-regular graph on 80 nodes: supports multi-part partitions."""
    return random_regular(80, 24, seed=17)


@pytest.fixture(scope="session")
def weighted_medium(reg_medium) -> Graph:
    return random_weights(reg_medium, seed=19)


@pytest.fixture(scope="session")
def barbell_graph() -> Graph:
    """λ = 1 control case."""
    return barbell(8, bridge_len=3)


@pytest.fixture(scope="session")
def thick() -> Graph:
    """Thick cycle: λ = 8, D ≈ 6 — high connectivity, moderate diameter."""
    return thick_cycle(12, 4)


@pytest.fixture(scope="session")
def torus() -> Graph:
    return torus_grid(5, 6)
