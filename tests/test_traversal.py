"""Tests for the centralized BFS kernels (ground truth for everything else)."""

import numpy as np

import networkx as nx

from repro.graphs import (
    Graph,
    all_pairs_distances,
    bfs_distances,
    bfs_tree,
    connected_components,
    cycle_graph,
    eccentricity,
    hypercube,
    is_connected,
    path_graph,
    random_regular,
)


class TestBFSDistances:
    def test_path(self):
        g = path_graph(6)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_cycle(self):
        g = cycle_graph(6)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 2, 1]

    def test_disconnected_marks_unreached(self):
        g = Graph(4, [(0, 1), (2, 3)])
        d = bfs_distances(g, 0)
        assert d[2] == -1 and d[3] == -1

    def test_isolated_source(self):
        g = Graph(3, [(1, 2)])
        d = bfs_distances(g, 0)
        assert d.tolist() == [0, -1, -1]

    def test_matches_networkx_on_random_graph(self):
        g = random_regular(50, 5, seed=3)
        nxg = g.to_networkx()
        for src in (0, 17, 42):
            ours = bfs_distances(g, src)
            theirs = nx.single_source_shortest_path_length(nxg, src)
            for v in range(g.n):
                assert ours[v] == theirs[v]

    def test_hypercube_distance_is_hamming(self):
        g = hypercube(4)
        d = bfs_distances(g, 0)
        for v in range(16):
            assert d[v] == bin(v).count("1")


class TestBFSTree:
    def test_parent_consistency(self):
        g = random_regular(40, 4, seed=5)
        parent, dist = bfs_tree(g, 0)
        assert parent[0] == 0
        for v in range(1, g.n):
            p = int(parent[v])
            assert g.has_edge(p, v)
            assert dist[v] == dist[p] + 1

    def test_deterministic_smallest_parent(self):
        # Node 3 reachable from both 1 and 2 at distance 1; parent must be 1.
        g = Graph(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        parent, _ = bfs_tree(g, 0)
        assert parent[3] == 1

    def test_unreachable_parent_is_minus_one(self):
        g = Graph(3, [(0, 1)])
        parent, _ = bfs_tree(g, 0)
        assert parent[2] == -1


class TestAggregates:
    def test_all_pairs_symmetric(self):
        g = random_regular(30, 4, seed=7)
        d = all_pairs_distances(g)
        assert np.array_equal(d, d.T)
        assert (np.diag(d) == 0).all()

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2

    def test_eccentricity_disconnected(self):
        assert eccentricity(Graph(3, [(0, 1)]), 0) == -1

    def test_connected_components(self):
        g = Graph(5, [(0, 1), (2, 3)])
        labels = connected_components(g)
        assert labels[0] == labels[1] == 0
        assert labels[2] == labels[3] == 2
        assert labels[4] == 4

    def test_is_connected(self):
        assert is_connected(cycle_graph(5))
        assert not is_connected(Graph(3, [(0, 1)]))
        assert is_connected(Graph(1, []))
