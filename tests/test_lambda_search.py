"""Tests for the unknown-λ exponential search (Section 1.1 Remark)."""

import pytest

from repro.core import (
    broadcast_unknown_lambda,
    find_packing_unknown_lambda,
    uniform_random_placement,
)
from repro.graphs import barbell, path_of_cliques, random_regular
from repro.util.errors import ValidationError


class TestSearch:
    def test_accepts_quickly_when_lambda_equals_delta(self):
        g = random_regular(80, 24, seed=4)
        out = find_packing_unknown_lambda(g, seed=1, C=1.2)
        # λ = δ here, so the very first guess (δ) should already validate.
        assert out.iterations == 1
        assert out.accepted_guess == 24
        assert out.packing is not None
        assert out.packing.is_edge_disjoint

    def test_descends_when_delta_exceeds_lambda(self):
        # Cliques of size 12 (δ = 11) joined by 2-edge bridges (λ = 2):
        # guessing λ̃ = δ yields too many parts → classes disconnect →
        # the search must halve at least once.
        g = path_of_cliques(3, 12, 2)
        out = find_packing_unknown_lambda(g, seed=2, C=1.0)
        assert out.iterations >= 2
        assert out.accepted_guess < g.min_degree()
        assert out.packing is not None

    def test_validation_rounds_accumulate(self):
        g = path_of_cliques(3, 12, 2)
        out = find_packing_unknown_lambda(g, seed=2, C=1.0)
        assert len(out.validation_rounds) == out.iterations
        assert out.total_validation_rounds >= out.iterations

    def test_lambda_one_control(self):
        g = barbell(8, bridge_len=2)
        out = find_packing_unknown_lambda(g, seed=3)
        assert out.packing.size == 1  # only the trivial 1-part decomposition

    def test_zero_degree_raises(self):
        from repro.graphs import Graph

        g = Graph(3, [(0, 1)])
        with pytest.raises(ValidationError):
            find_packing_unknown_lambda(g)


class TestBroadcastUnknownLambda:
    def test_end_to_end(self):
        g = random_regular(80, 24, seed=4)
        pl = uniform_random_placement(g.n, 60, seed=5)
        res, search = broadcast_unknown_lambda(g, pl, seed=6, C=1.2)
        assert res.delivered
        assert res.algorithm == "fast/unknown-lambda"
        assert res.phases["lambda_search"] == search.total_validation_rounds

    def test_total_rounds_include_search_overhead(self):
        g = path_of_cliques(3, 12, 2)
        pl = uniform_random_placement(g.n, 20, seed=7)
        res, search = broadcast_unknown_lambda(g, pl, seed=8, C=1.0)
        assert search.iterations >= 2
        assert res.rounds >= res.phases["pipeline"] + search.total_validation_rounds


class TestPerIterationSeeds:
    """Regression: every iteration must draw a fresh partition seed (and
    record it), so a guess that failed on an unlucky partition is actually
    re-randomized rather than silently rescued by the guess halving."""

    def test_seeds_recorded_and_distinct(self):
        g = path_of_cliques(3, 12, 2)
        out = find_packing_unknown_lambda(g, seed=2, C=1.0)
        assert out.iterations >= 2
        assert out.seeds == [2 + 7919 * i for i in range(out.iterations)]
        assert len(set(out.seeds)) == out.iterations

    def test_failed_iterations_used_fresh_partitions(self):
        from unittest import mock

        from repro.core import lambda_search
        from repro.core.decomposition import random_partition as real_partition

        g = path_of_cliques(3, 12, 2)
        seen = []

        def spy(graph, parts, seed):
            seen.append(seed)
            return real_partition(graph, parts, seed)

        with mock.patch.object(lambda_search, "random_partition", spy):
            out = lambda_search.find_packing_unknown_lambda(g, seed=5, C=1.0)
        assert seen == out.seeds
        assert len(set(seen)) == len(seen)

    def test_accepted_iteration_reproducible_from_recorded_seed(self):
        from repro.core.decomposition import num_parts, random_partition

        g = path_of_cliques(3, 12, 2)
        out = find_packing_unknown_lambda(g, seed=2, C=1.0)
        parts = num_parts(out.accepted_guess, g.n, 1.0)
        decomp = random_partition(g, parts, out.seeds[-1])
        assert decomp.parts == out.packing.size
