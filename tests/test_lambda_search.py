"""Tests for the unknown-λ exponential search (Section 1.1 Remark)."""

import pytest

from repro.core import (
    broadcast_unknown_lambda,
    find_packing_unknown_lambda,
    uniform_random_placement,
)
from repro.graphs import barbell, path_of_cliques, random_regular
from repro.util.errors import ValidationError


class TestSearch:
    def test_accepts_quickly_when_lambda_equals_delta(self):
        g = random_regular(80, 24, seed=4)
        out = find_packing_unknown_lambda(g, seed=1, C=1.2)
        # λ = δ here, so the very first guess (δ) should already validate.
        assert out.iterations == 1
        assert out.accepted_guess == 24
        assert out.packing is not None
        assert out.packing.is_edge_disjoint

    def test_descends_when_delta_exceeds_lambda(self):
        # Cliques of size 12 (δ = 11) joined by 2-edge bridges (λ = 2):
        # guessing λ̃ = δ yields too many parts → classes disconnect →
        # the search must halve at least once.
        g = path_of_cliques(3, 12, 2)
        out = find_packing_unknown_lambda(g, seed=2, C=1.0)
        assert out.iterations >= 2
        assert out.accepted_guess < g.min_degree()
        assert out.packing is not None

    def test_validation_rounds_accumulate(self):
        g = path_of_cliques(3, 12, 2)
        out = find_packing_unknown_lambda(g, seed=2, C=1.0)
        assert len(out.validation_rounds) == out.iterations
        assert out.total_validation_rounds >= out.iterations

    def test_lambda_one_control(self):
        g = barbell(8, bridge_len=2)
        out = find_packing_unknown_lambda(g, seed=3)
        assert out.packing.size == 1  # only the trivial 1-part decomposition

    def test_zero_degree_raises(self):
        from repro.graphs import Graph

        g = Graph(3, [(0, 1)])
        with pytest.raises(ValidationError):
            find_packing_unknown_lambda(g)


class TestBroadcastUnknownLambda:
    def test_end_to_end(self):
        g = random_regular(80, 24, seed=4)
        pl = uniform_random_placement(g.n, 60, seed=5)
        res, search = broadcast_unknown_lambda(g, pl, seed=6, C=1.2)
        assert res.delivered
        assert res.algorithm == "fast/unknown-lambda"
        assert res.phases["lambda_search"] == search.total_validation_rounds

    def test_total_rounds_include_search_overhead(self):
        g = path_of_cliques(3, 12, 2)
        pl = uniform_random_placement(g.n, 20, seed=7)
        res, search = broadcast_unknown_lambda(g, pl, seed=8, C=1.0)
        assert search.iterations >= 2
        assert res.rounds >= res.phases["pipeline"] + search.total_validation_rounds
