"""Tests for the observability layer (:mod:`repro.obs`, ISSUE 10).

Four contracts:

* **Tracer semantics** — context-var scoping, span nesting (parent/depth),
  typed counters (sum vs max, mode fixed by first call), the ``traced``
  decorator, and :meth:`Metrics.merge` used by counter roll-ups.
* **Artifacts** — JSONL and Chrome trace-event JSON both round-trip
  through :func:`repro.obs.load_trace`; ``repro trace`` renders them; the
  CLI ``--trace`` flag records any subcommand.
* **Transparency** — tracing is a pure observer: traced and untraced runs
  are bit-identical (forest, rounds, bits, receipts, fault RNG state) on
  both backends, property-tested over random graphs; the null tracer's
  overhead is bounded below 5% of an E13-quick-sized run.
* **Acceptance** — a traced ``fast_broadcast`` at n = 10⁴ emits valid
  Chrome JSON whose top-level phase spans sum to within 10% of the
  end-to-end wall clock.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cli import main as cli_main
from repro.congest import Metrics
from repro.core import fast_broadcast, uniform_random_placement
from repro.engine.faults import faulty_bfs
from repro.engine.verify import random_fault_plan
from repro.graphs import Graph, thick_cycle
from repro.util.errors import ValidationError

BACKENDS = ("simulator", "vectorized")


# ---------------------------------------------------------------------- #
# tracer semantics
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_null_tracer_is_the_default(self):
        assert obs.current() is None
        assert not obs.enabled()
        # span/count are no-ops, and the null span is a shared singleton.
        assert obs.span("a") is obs.span("b")
        with obs.span("phase"):
            obs.count("x", 5)
        assert obs.current() is None

    def test_use_tracer_scopes_and_restores(self):
        with obs.use_tracer() as tracer:
            assert obs.current() is tracer
            assert obs.enabled()
        assert obs.current() is None

    def test_span_nesting_records_parent_and_depth(self):
        with obs.use_tracer() as tracer:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            with obs.span("outer"):
                pass
        by_name = {}
        for rec in tracer.spans:
            by_name.setdefault(rec.name, []).append(rec)
        outer0 = by_name["outer"][0]
        inner = by_name["inner"][0]
        assert outer0.parent is None and outer0.depth == 0
        assert inner.parent == outer0.sid and inner.depth == 1
        assert inner.start >= outer0.start
        assert inner.dur <= outer0.dur
        assert tracer.phase_totals()["outer"] == pytest.approx(
            sum(r.dur for r in by_name["outer"])
        )

    def test_counter_modes(self):
        with obs.use_tracer() as tracer:
            obs.count("calls")
            obs.count("calls", 3)
            obs.count("peak", 7, "max")
            obs.count("peak", 2, "max")
            obs.count("peak", 9, "max")
        assert tracer.counter_values() == {"calls": 4, "peak": 9}
        assert tracer.counters["calls"][0] == "sum"
        assert tracer.counters["peak"][0] == "max"

    def test_unknown_counter_mode_raises(self):
        with obs.use_tracer():
            with pytest.raises(ValueError, match="mode"):
                obs.count("x", 1, "median")

    def test_traced_decorator(self):
        @obs.traced("wrapped")
        def fn(a, b=0):
            return a + b

        assert fn(1, b=2) == 3  # untraced: plain passthrough
        with obs.use_tracer() as tracer:
            assert fn(4) == 4
        assert [r.name for r in tracer.spans] == ["wrapped"]
        assert fn.__name__ == "fn"

    def test_metrics_merge(self):
        a = Metrics(m=3)
        a.record_message(0, 8)
        a.rounds = 2
        b = Metrics(m=3)
        b.record_message(0, 8)
        b.record_message(2, 16)
        b.rounds = 5
        out = a.merge(b)
        assert out is a
        assert a.rounds == 7
        assert a.total_messages == 3
        assert a.total_bits == 32
        assert a.edge_messages.tolist() == [2, 0, 1]

    def test_metrics_merge_rejects_mismatched_edge_sets(self):
        with pytest.raises(ValueError, match="merge"):
            Metrics(m=3).merge(Metrics(m=4))


# ---------------------------------------------------------------------- #
# artifacts: JSONL + Chrome, load_trace, the report
# ---------------------------------------------------------------------- #


def _sample_tracer() -> obs.Tracer:
    with obs.use_tracer() as tracer:
        with obs.span("outer"):
            with obs.span("inner"):
                obs.count("events", 3)
            obs.count("depth", 11, "max")
    return tracer


class TestArtifacts:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = _sample_tracer()
        path = tracer.write(tmp_path / "t.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta" and first["format"] == "repro-trace"
        data = obs.load_trace(path)
        assert [s.name for s in data.spans] == ["inner", "outer"]
        assert data.counters == {"depth": ("max", 11), "events": ("sum", 3)}

    def test_chrome_roundtrip(self, tmp_path):
        tracer = _sample_tracer()
        path = tracer.write(tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        phases = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert phases == {"outer", "inner"}
        data = obs.load_trace(path)
        ref = obs.load_trace(tracer.write(tmp_path / "t.jsonl"))
        assert data.counters == ref.counters
        for got, want in zip(data.spans, ref.spans):
            assert got.name == want.name and got.depth == want.depth
            assert got.dur == pytest.approx(want.dur, abs=1e-6)

    def test_phase_stats_self_time_subtracts_children(self):
        tracer = _sample_tracer()
        data = obs.TraceData(
            spans=list(tracer.spans), counters=dict(tracer.counters)
        )
        stats = {s.name: s for s in obs.phase_stats(data)}
        inner, outer = stats["inner"], stats["outer"]
        assert outer.self_time == pytest.approx(outer.total - inner.total)
        assert inner.self_time == pytest.approx(inner.total)

    def test_format_report_lists_phases_and_counters(self):
        tracer = _sample_tracer()
        data = obs.TraceData(
            spans=list(tracer.spans), counters=dict(tracer.counters)
        )
        text = obs.format_report(data)
        assert "outer" in text and "inner" in text
        assert "events" in text and "(max)" in text

    def test_load_trace_rejects_junk(self, tmp_path):
        bad = tmp_path / "junk.json"
        bad.write_text("not json at all")
        with pytest.raises(ValidationError):
            obs.load_trace(bad)
        with pytest.raises(ValidationError):
            obs.load_trace(tmp_path / "absent.json")


class TestCLISurfaces:
    def test_trace_flag_records_any_subcommand(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = cli_main(
            ["broadcast", "thick:groups=6,size=3", "-k", "6",
             "--backend", "vectorized", "--trace", str(out)]
        )
        assert rc == 0
        assert "total rounds" in capsys.readouterr().out
        data = obs.load_trace(out)
        names = {s.name for s in data.spans}
        assert "fast_broadcast" in names

    def test_trace_report_subcommand(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert cli_main(
            ["broadcast", "thick:groups=6,size=3", "-k", "6",
             "--backend", "simulator", "--trace", str(out)]
        ) == 0
        capsys.readouterr()
        assert cli_main(["trace", str(out), "--top", "5"]) == 0
        report = capsys.readouterr().out
        assert "fast_broadcast" in report
        assert "simulate.rounds" in report

    def test_trace_report_on_junk_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert cli_main(["trace", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# transparency: tracing observes, never perturbs
# ---------------------------------------------------------------------- #


@st.composite
def small_connected_graphs(draw, min_n=3, max_n=10):
    n = draw(st.integers(min_n, max_n))
    perm = draw(st.permutations(range(n)))
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        a, b = perm[i], perm[j]
        edges.add((min(a, b), max(a, b)))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges.update(draw(st.lists(st.sampled_from(all_pairs), max_size=2 * n)))
    return Graph(n, sorted(edges))


class TestTransparency:
    @given(small_connected_graphs(), st.integers(0, 10_000))
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_traced_faulty_bfs_bit_identical(self, g, seed):
        plan = random_fault_plan(g, seed=seed, rate=0.3)
        for backend in BACKENDS:
            plain = faulty_bfs(
                g, 0, plan=plan, fault_seed=seed, backend=backend
            )
            with obs.use_tracer():
                traced = faulty_bfs(
                    g, 0, plan=plan, fault_seed=seed, backend=backend
                )
            assert np.array_equal(plain.result.parent, traced.result.parent)
            assert np.array_equal(plain.result.dist, traced.result.dist)
            assert plain.result.rounds == traced.result.rounds
            assert plain.result.children == traced.result.children
            assert plain.dropped == traced.dropped
            assert plain.fault_rng_state == traced.fault_rng_state

    @given(st.integers(0, 10_000))
    @settings(
        max_examples=5, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_traced_broadcast_ledger_identical(self, seed):
        g = thick_cycle(5, 3)
        pl = uniform_random_placement(g.n, 8, seed=seed)
        for backend in BACKENDS:
            plain = fast_broadcast(g, pl, seed=seed, backend=backend)
            with obs.use_tracer():
                traced = fast_broadcast(g, pl, seed=seed, backend=backend)
            assert plain.phases == traced.phases
            assert plain.rounds == traced.rounds
            assert plain.max_congestion == traced.max_congestion

    def test_traced_redundant_broadcast_receipts_and_bits(self):
        from repro.core import build_packing_with_retry
        from repro.core.resilient import redundant_broadcast

        g = thick_cycle(6, 3)
        pl = uniform_random_placement(g.n, 10, seed=4)
        packing, _ = build_packing_with_retry(g, 2, seed=4, distributed=False)
        for backend in BACKENDS:
            kwargs = dict(
                redundancy=2, drop_rate=0.3, seed=4, fault_seed=9,
                backend=backend, collect_receipts=True,
            )
            plain = redundant_broadcast(g, pl, packing, **kwargs)
            with obs.use_tracer():
                traced = redundant_broadcast(g, pl, packing, **kwargs)
            assert plain.receipts == traced.receipts
            assert plain.per_message_coverage == traced.per_message_coverage
            assert plain.total_bits == traced.total_bits
            assert plain.dropped_messages == traced.dropped_messages
            assert plain.fault_rng_state == traced.fault_rng_state


class _CountingTracer(obs.Tracer):
    """Tracer that tallies how often the instrumentation surface is hit."""

    def __init__(self):
        super().__init__()
        self.span_calls = 0
        self.count_calls = 0

    def span(self, name):
        self.span_calls += 1
        return super().span(name)

    def count(self, name, value=1, mode="sum"):
        self.count_calls += 1
        super().count(name, value, mode)


class TestNullOverheadBudget:
    def test_null_tracer_costs_under_five_percent(self):
        """The untraced fast paths, exercised exactly as often as an
        E13-quick run exercises them, must cost < 5% of its wall clock."""
        g = thick_cycle(8, 10)
        pl = uniform_random_placement(g.n, 160, seed=8)

        t0 = time.perf_counter()
        fast_broadcast(g, pl, lam=20, C=1.5, seed=1, backend="simulator")
        run_secs = time.perf_counter() - t0

        tracer = _CountingTracer()
        with obs.use_tracer(tracer):
            fast_broadcast(g, pl, lam=20, C=1.5, seed=1, backend="simulator")
        assert tracer.span_calls and tracer.count_calls

        t0 = time.perf_counter()
        for _ in range(tracer.span_calls):
            with obs.span("x"):
                pass
        for _ in range(tracer.count_calls):
            obs.count("x", 1)
        null_secs = time.perf_counter() - t0
        assert null_secs < 0.05 * run_secs, (
            f"null tracer cost {null_secs:.4f}s for {tracer.span_calls} "
            f"spans + {tracer.count_calls} counts vs {run_secs:.4f}s run "
            f"({100 * null_secs / run_secs:.1f}%)"
        )


# ---------------------------------------------------------------------- #
# acceptance: n = 10^4 traced fast_broadcast
# ---------------------------------------------------------------------- #


class TestAcceptance:
    def test_traced_fast_broadcast_1e4_phase_coverage(self, tmp_path):
        g = thick_cycle(250, 40)  # n = 10^4, lam = 80
        assert g.n == 10_000
        pl = uniform_random_placement(g.n, 2 * g.n, seed=5)

        t0 = time.perf_counter()
        with obs.use_tracer() as tracer:
            res = fast_broadcast(
                g, pl, lam=80, C=1.5, seed=5, backend="vectorized"
            )
        wall = time.perf_counter() - t0
        assert res.rounds > 0

        path = tracer.write(tmp_path / "e2e.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"fast_broadcast", "elect", "global_bfs",
                "tree_packing", "pipeline", "upcast"} <= names

        # The root span plus everything at depth 1 under it must explain
        # the end-to-end wall clock to within 10%.
        root = next(e for e in spans if e["name"] == "fast_broadcast")
        child_us = sum(
            e["dur"] for e in spans
            if e["args"]["parent"] == root["args"]["sid"]
        )
        assert child_us <= root["dur"] * 1.001
        assert root["dur"] >= 0.9 * wall * 1e6, (
            f"root span covers {root['dur'] / (wall * 1e6):.0%} of wall"
        )
        assert child_us >= 0.9 * wall * 1e6, (
            f"phase spans cover {child_us / (wall * 1e6):.0%} of wall"
        )
        # And it is Perfetto-loadable in shape: counters present, ts/dur µs.
        assert any(e["ph"] == "C" for e in events)
        assert all("ts" in e for e in events)
