"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.graphs import Graph, complete_graph
from repro.util.errors import ValidationError


def tiny() -> Graph:
    # 0-1, 0-2, 1-2, 2-3 ("triangle with a tail")
    return Graph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])


class TestConstruction:
    def test_basic_counts(self):
        g = tiny()
        assert g.n == 4 and g.m == 4

    def test_edge_order_normalized(self):
        g = Graph(3, [(2, 0), (1, 0)])
        assert (g.edge_u < g.edge_v).all()

    def test_rejects_self_loop(self):
        with pytest.raises(ValidationError):
            Graph(3, [(1, 1)])

    def test_rejects_parallel_edges(self):
        with pytest.raises(ValidationError):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            Graph(3, [(0, 3)])

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValidationError):
            Graph(0, [])

    def test_empty_edge_set_ok(self):
        g = Graph(5, [])
        assert g.m == 0 and g.min_degree() == 0

    def test_weights_validated(self):
        with pytest.raises(ValidationError):
            Graph(3, [(0, 1)], weights=[0.0])
        with pytest.raises(ValidationError):
            Graph(3, [(0, 1)], weights=[1.0, 2.0])


class TestQueries:
    def test_degrees(self):
        g = tiny()
        assert g.degrees().tolist() == [2, 2, 3, 1]
        assert g.min_degree() == 1
        assert g.degree(2) == 3

    def test_neighbors_sorted(self):
        g = tiny()
        assert g.neighbors(2).tolist() == [0, 1, 3]

    def test_has_edge(self):
        g = tiny()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 3)
        assert not g.has_edge(1, 1)

    def test_edge_id_roundtrip(self):
        g = tiny()
        for eid in range(g.m):
            u, v = g.edge_endpoints(eid)
            assert g.edge_id(u, v) == eid
            assert g.edge_id(v, u) == eid

    def test_edge_id_missing_raises(self):
        with pytest.raises(KeyError):
            tiny().edge_id(0, 3)

    def test_incident_edges_align_with_neighbors(self):
        g = tiny()
        for v in range(g.n):
            for u, eid in zip(g.neighbors(v).tolist(), g.incident_edge_ids(v).tolist()):
                a, b = g.edge_endpoints(eid)
                assert {a, b} == {u, v}

    def test_edges_iterator(self):
        assert sorted(tiny().edges()) == [(0, 1), (0, 2), (1, 2), (2, 3)]

    def test_total_weight(self):
        assert tiny().total_weight() == 4.0
        g = Graph(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
        assert g.total_weight() == 5.0

    def test_edge_weight_default_one(self):
        assert tiny().edge_weight(0) == 1.0


class TestDerived:
    def test_edge_subgraph_spanning_nodes(self):
        g = tiny()
        sub = g.edge_subgraph(np.array([True, False, False, True]))
        assert sub.n == 4 and sub.m == 2
        assert sorted(sub.edges()) == [(0, 1), (2, 3)]

    def test_edge_subgraph_with_map(self):
        g = tiny()
        sub, ids = g.edge_subgraph_with_map(np.array([False, True, True, False]))
        assert ids.tolist() == [1, 2]

    def test_edge_subgraph_bad_mask(self):
        with pytest.raises(ValidationError):
            tiny().edge_subgraph(np.array([True]))

    def test_reweighted(self):
        g = tiny().reweighted([1, 2, 3, 4])
        assert g.is_weighted and g.weights.tolist() == [1, 2, 3, 4]

    def test_unweighted_strips(self):
        g = tiny().reweighted([1, 2, 3, 4]).unweighted()
        assert not g.is_weighted


class TestInterop:
    def test_networkx_roundtrip(self):
        g = tiny()
        back = Graph.from_networkx(g.to_networkx())
        assert g == back

    def test_networkx_weighted_roundtrip(self):
        g = tiny().reweighted([1.0, 2.0, 3.0, 4.0])
        back = Graph.from_networkx(g.to_networkx())
        assert back.is_weighted
        assert sorted(back.weights.tolist()) == [1.0, 2.0, 3.0, 4.0]

    def test_scipy_csr_symmetric(self):
        a = tiny().to_scipy_csr()
        assert (a != a.T).nnz == 0
        assert a.shape == (4, 4)

    def test_repr(self):
        assert "n=4" in repr(tiny())

    def test_equality_ignores_edge_order(self):
        g1 = Graph(3, [(0, 1), (1, 2)])
        g2 = Graph(3, [(1, 2), (0, 1)])
        assert g1 == g2

    def test_inequality(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(0, 2)])
        assert complete_graph(3) != complete_graph(4)
