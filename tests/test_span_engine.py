"""Property tests for the span-batched step strategy (ISSUE 8).

``step="span"`` advances the Lemma 1 queue recurrence and the rate-0
fault engine one numpy step per *event* instead of per round. These
tests assert it is **bit-identical** to the per-round reference —
receipts, rounds, bits, drops, and the fault RNG stream — on randomized
graphs and fault plans, including the ``drop_rate=1.0`` and single-node
boundaries, and that the scipy SpMV frontier kernel matches its
pure-numpy fallback.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import STEP_STRATEGIES, resolve_step
from repro.engine.verify import (
    check_faulty_step_strategies,
    check_step_strategies,
    random_connected_graph,
    random_edge_masks,
    random_fault_plan,
)
from repro.graphs import Graph, thick_cycle
from repro.util.errors import ValidationError

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStepResolution:
    def test_explicit_strategies(self):
        assert STEP_STRATEGIES == ("round", "span")
        for s in STEP_STRATEGIES:
            assert resolve_step(s) == s

    def test_auto_defers_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEP", raising=False)
        assert resolve_step(None) == "span"
        assert resolve_step("auto") == "span"
        monkeypatch.setenv("REPRO_STEP", "round")
        assert resolve_step(None) == "round"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            resolve_step("turbo")


class TestSpanPipelineEquivalence:
    """Lemma 1 upcast spans + SpMV frontiers vs the per-round reference."""

    @_SETTINGS
    @given(
        n=st.integers(2, 18),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
        parts=st.integers(1, 3),
        k=st.integers(0, 30),
    )
    def test_span_equals_round(self, n, extra, seed, parts, k):
        g = random_connected_graph(n, extra, seed=seed)
        masks = random_edge_masks(g, parts, seed=seed + 1)
        assert check_step_strategies(g, masks, k, seed=seed + 2) == []

    def test_single_node_graph(self):
        g = Graph(1, [])
        masks = [np.zeros(0, dtype=bool)]
        assert check_step_strategies(g, masks, 3, seed=1) == []

    def test_two_node_graph(self):
        g = Graph(2, [(0, 1)])
        masks = [np.ones(1, dtype=bool)]
        assert check_step_strategies(g, masks, 5, seed=2) == []

    def test_deep_path_many_items(self):
        """A long path stresses the busy scan's layer shifting."""
        g = Graph(40, [(v, v + 1) for v in range(39)])
        masks = [np.ones(g.m, dtype=bool)]
        assert check_step_strategies(g, masks, 60, seed=3) == []


class TestSpanFaultEquivalence:
    """Span fault paths (and their rate>0 fallback) vs per-round walk."""

    @_SETTINGS
    @given(
        n=st.integers(2, 16),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
        k=st.integers(0, 20),
        parts=st.integers(1, 3),
    )
    def test_faulty_span_equals_round(self, n, extra, seed, k, parts):
        g = random_connected_graph(n, extra, seed=seed)
        assert check_faulty_step_strategies(g, k, seed=seed + 1, parts=parts) == []

    @_SETTINGS
    @given(seed=st.integers(0, 10_000), k=st.integers(0, 16))
    def test_total_loss_boundary(self, seed, k):
        """drop_rate=1.0: every coin flipped, nothing delivered — both
        strategies must burn the identical RNG stream."""
        from repro.core.broadcast import uniform_random_placement
        from repro.core.resilient import redundant_broadcast
        from repro.core.tree_packing import build_packing_with_retry

        g = thick_cycle(6, 4)
        packing, _ = build_packing_with_retry(g, 2, seed=seed, distributed=False)
        placement = uniform_random_placement(g.n, k, seed=seed)
        reports = {
            step: redundant_broadcast(
                g,
                placement,
                packing,
                redundancy=2,
                drop_rate=1.0,
                seed=seed,
                fault_seed=seed + 1,
                backend="vectorized",
                collect_receipts=True,
                step=step,
            )
            for step in STEP_STRATEGIES
        }
        a, b = reports["round"], reports["span"]
        assert a.rounds == b.rounds
        assert a.dropped_messages == b.dropped_messages
        assert a.per_message_coverage == b.per_message_coverage
        assert a.receipts == b.receipts
        assert a.fault_rng_state == b.fault_rng_state
        assert (a.total_messages, a.total_bits) == (b.total_messages, b.total_bits)

    def test_single_node_faulty_bfs(self):
        from repro.engine.faults import faulty_bfs

        g = Graph(1, [])
        plan = random_fault_plan(g, seed=1, rate=0.0)
        runs = {
            step: faulty_bfs(
                g, 0, plan=plan, fault_seed=2, backend="vectorized", step=step
            )
            for step in STEP_STRATEGIES
        }
        a, b = runs["round"], runs["span"]
        assert np.array_equal(a.result.parent, b.result.parent)
        assert a.result.rounds == b.result.rounds
        assert a.dropped == b.dropped
        assert a.fault_rng_state == b.fault_rng_state


class TestScipyFallback:
    """The SpMV kernel is an optional accelerator, never a dependency."""

    def test_frontier_sweep_matches_fallback(self, monkeypatch):
        from repro.engine import kernels

        g = random_connected_graph(30, 40, seed=5)
        monkeypatch.setattr(kernels, "_SPMV_MIN_ARCS", 0)
        monkeypatch.setattr(kernels, "_SPMV_LAYER_ARCS", 0)
        monkeypatch.delenv("REPRO_NO_SCIPY", raising=False)
        with_scipy = kernels.frontier_sweep(g.n, g._indptr, g._indices, 0)
        monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        without = kernels.frontier_sweep(g.n, g._indptr, g._indices, 0)
        assert np.array_equal(with_scipy[0], without[0])
        assert np.array_equal(with_scipy[1], without[1])

    def test_no_scipy_env_disables_import(self, monkeypatch):
        from repro.engine import kernels

        monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        assert kernels.scipy_sparse() is None

    def test_engine_usable_without_scipy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        g = thick_cycle(6, 4)
        masks = random_edge_masks(g, 2, seed=7)
        assert check_step_strategies(g, masks, 12, seed=8) == []


class TestEnvStepOverride:
    def test_repro_step_env_steers_default(self, monkeypatch):
        """step=None paths obey REPRO_STEP — and both settings agree."""
        from repro.core.broadcast import textbook_broadcast, uniform_random_placement

        g = thick_cycle(6, 4)
        placement = uniform_random_placement(g.n, 10, seed=1)
        results = {}
        for env in ("round", "span"):
            monkeypatch.setenv("REPRO_STEP", env)
            res = textbook_broadcast(g, placement, backend="vectorized")
            results[env] = (res.phases, res.max_congestion)
        assert results["round"] == results["span"]
