"""Tests for the workload graph families: every (n, δ, λ, D) claim in the
generators' docstrings is verified here."""

import numpy as np
import pytest

from repro.graphs import (
    barbell,
    complete_graph,
    connected_gnp,
    cycle_graph,
    diameter,
    edge_connectivity,
    ghaffari_kuhn_family,
    gnp_random,
    hypercube,
    is_connected,
    path_graph,
    path_of_cliques,
    random_regular,
    random_weights,
    star_graph,
    thick_cycle,
    torus_grid,
)
from repro.util.errors import ValidationError


class TestBasicFamilies:
    def test_complete(self):
        g = complete_graph(7)
        assert g.m == 21 and g.min_degree() == 6 and diameter(g) == 1

    def test_cycle(self):
        g = cycle_graph(9)
        assert g.m == 9 and diameter(g) == 4

    def test_cycle_too_small(self):
        with pytest.raises(ValidationError):
            cycle_graph(2)

    def test_path(self):
        assert diameter(path_graph(7)) == 6

    def test_star(self):
        g = star_graph(9)
        assert g.min_degree() == 1 and diameter(g) == 2

    def test_hypercube_params(self):
        g = hypercube(5)
        assert g.n == 32 and g.min_degree() == 5 and diameter(g) == 5

    def test_torus_params(self):
        g = torus_grid(4, 5)
        assert g.n == 20 and g.min_degree() == 4
        assert edge_connectivity(g) == 4

    def test_torus_too_small(self):
        with pytest.raises(ValidationError):
            torus_grid(2, 5)


class TestRandomRegular:
    def test_regularity(self):
        g = random_regular(50, 7, seed=1)
        assert (g.degrees() == 7).all()

    def test_connected_and_d_connected(self):
        g = random_regular(60, 5, seed=2)
        assert is_connected(g)
        assert edge_connectivity(g) == 5

    def test_reproducible(self):
        a = random_regular(30, 4, seed=9)
        b = random_regular(30, 4, seed=9)
        assert a == b

    def test_odd_product_rejected(self):
        with pytest.raises(ValidationError):
            random_regular(5, 3)

    def test_d_too_large(self):
        with pytest.raises(ValidationError):
            random_regular(5, 5)


class TestGnp:
    def test_p_zero_and_one(self):
        assert gnp_random(10, 0.0, seed=1).m == 0
        assert gnp_random(10, 1.0, seed=1).m == 45

    def test_edge_count_concentrates(self):
        g = gnp_random(80, 0.3, seed=5)
        expected = 0.3 * 80 * 79 / 2
        assert abs(g.m - expected) < 0.25 * expected

    def test_invalid_p(self):
        with pytest.raises(ValidationError):
            gnp_random(10, 1.5)

    def test_connected_variant(self):
        g = connected_gnp(40, 0.2, seed=3)
        assert is_connected(g)

    def test_all_simple_edges(self):
        g = gnp_random(30, 0.4, seed=7)
        assert (g.edge_u < g.edge_v).all()


class TestStructuredFamilies:
    def test_thick_cycle_params(self):
        g = thick_cycle(10, 3)
        assert g.n == 30
        assert g.min_degree() == 6
        assert edge_connectivity(g) == 6
        assert diameter(g) == 5

    def test_barbell_lambda_one(self):
        g = barbell(6, bridge_len=4)
        assert edge_connectivity(g) == 1

    def test_path_of_cliques_params(self):
        g = path_of_cliques(4, 5, 3)
        assert g.n == 20
        assert edge_connectivity(g) == 3
        assert g.min_degree() == 4  # clique degree

    def test_path_of_cliques_bridge_too_wide(self):
        with pytest.raises(ValidationError):
            path_of_cliques(3, 4, 5)

    def test_random_weights(self):
        g = random_weights(cycle_graph(10), low=1, high=5, seed=4)
        assert g.is_weighted
        assert (g.weights >= 1).all() and (g.weights <= 5).all()


class TestGhaffariKuhnFamily:
    def test_parameters(self):
        g = ghaffari_kuhn_family(32, 6)
        assert g.n == 32 * 6
        assert g.min_degree() == 6
        assert edge_connectivity(g) == 6

    def test_low_diameter_despite_length(self):
        g = ghaffari_kuhn_family(64, 4)
        # Without shortcuts the diameter would be 63; with the hierarchy it
        # collapses to O(log length).
        assert diameter(g) <= 4 * int(np.log2(64)) + 4

    def test_rejects_degenerate(self):
        with pytest.raises(ValidationError):
            ghaffari_kuhn_family(2, 4)
        with pytest.raises(ValidationError):
            ghaffari_kuhn_family(8, 1)
