"""Tests for the cut-approximation application (Theorems 6–7)."""

import numpy as np
import pytest

from repro.cuts import (
    approx_all_cuts,
    bundle_size,
    effective_resistance_sparsifier,
    evaluate_cut_quality,
    koutis_xu_sparsifier,
)
from repro.graphs import (
    complete_graph,
    cut_value,
    random_weights,
    stoer_wagner,
    thick_cycle,
)
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def dense():
    """Dense host where sparsification actually shrinks the edge set."""
    return complete_graph(60)  # m = 1770


class TestBundleSize:
    def test_monotone_in_eps(self):
        assert bundle_size(200, 0.5) <= bundle_size(200, 0.2)

    def test_invalid_eps(self):
        with pytest.raises(ValidationError):
            bundle_size(100, 0.0)
        with pytest.raises(ValidationError):
            bundle_size(100, 1.5)


class TestKoutisXu:
    def test_sparsifies_dense_graph(self, dense):
        res = koutis_xu_sparsifier(dense, eps=0.5, seed=1, tau=3)
        assert res.m < dense.m
        assert res.levels >= 1

    def test_cut_quality_within_envelope(self, dense):
        res = koutis_xu_sparsifier(dense, eps=0.5, seed=1, tau=3)
        q = evaluate_cut_quality(dense, res.sparsifier, seed=2)
        assert q["max_rel_error"] <= 0.5

    def test_total_weight_preserved_in_expectation(self, dense):
        res = koutis_xu_sparsifier(dense, eps=0.5, seed=3, tau=3)
        assert res.sparsifier.total_weight() == pytest.approx(
            dense.total_weight(), rel=0.35
        )

    def test_small_graph_passthrough(self, reg_small):
        # τ·n exceeds m: nothing to do; the graph itself is the sparsifier.
        res = koutis_xu_sparsifier(reg_small, eps=0.3, seed=1)
        assert res.m == reg_small.m
        assert res.levels == 0

    def test_charged_rounds_positive_when_active(self, dense):
        res = koutis_xu_sparsifier(dense, eps=0.5, seed=1, tau=3)
        assert res.charged_rounds > 0

    def test_weighted_host(self):
        g = random_weights(complete_graph(40), seed=5)
        res = koutis_xu_sparsifier(g, eps=0.5, seed=6, tau=3)
        q = evaluate_cut_quality(g, res.sparsifier, seed=7)
        assert q["max_rel_error"] <= 0.6

    def test_deterministic_in_seed(self, dense):
        a = koutis_xu_sparsifier(dense, eps=0.5, seed=9, tau=3)
        b = koutis_xu_sparsifier(dense, eps=0.5, seed=9, tau=3)
        assert a.sparsifier == b.sparsifier


class TestEffectiveResistance:
    def test_cut_quality(self, dense):
        res = effective_resistance_sparsifier(dense, eps=0.3, seed=1)
        q = evaluate_cut_quality(dense, res.sparsifier, seed=2)
        assert q["max_rel_error"] <= 0.3

    def test_min_cut_preserved(self):
        g = thick_cycle(8, 5)
        res = effective_resistance_sparsifier(g, eps=0.25, seed=3)
        exact, _ = stoer_wagner(g)
        approx, _ = stoer_wagner(res.sparsifier)
        assert approx == pytest.approx(exact, rel=0.3)

    def test_size_guard(self):
        from repro.graphs import Graph

        big = Graph(2001, [(i, i + 1) for i in range(2000)])
        with pytest.raises(ValidationError):
            effective_resistance_sparsifier(big, eps=0.3)


class TestTheorem7Pipeline:
    def test_end_to_end(self):
        g = thick_cycle(10, 8)  # λ = 16, dense enough to sparsify
        res = approx_all_cuts(g, eps=0.5, lam=16, C=1.2, seed=4, tau=2)
        assert res.rounds > 0
        assert res.simulated_rounds["broadcast_sparsifier"] > 0
        q = evaluate_cut_quality(g, res.sparsifier.sparsifier, seed=5)
        assert q["max_rel_error"] <= 0.6

    def test_estimate_cut_accessor(self):
        g = thick_cycle(10, 8)
        res = approx_all_cuts(g, eps=0.5, lam=16, C=1.2, seed=4, tau=2)
        side = np.zeros(g.n, dtype=bool)
        side[: g.n // 2] = True
        est = res.estimate_cut(side)
        exact = cut_value(g, side)
        assert est == pytest.approx(exact, rel=0.6)


class TestEvaluateCutQuality:
    def test_identity_sparsifier_zero_error(self, reg_small):
        q = evaluate_cut_quality(reg_small, reg_small, seed=1)
        assert q["max_rel_error"] == 0.0

    def test_wrong_node_count_raises(self, reg_small):
        with pytest.raises(ValidationError):
            evaluate_cut_quality(reg_small, complete_graph(5), seed=1)
