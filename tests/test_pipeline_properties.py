"""Hypothesis tests for the broadcast pipeline and numbering invariants.

These target the protocol layer: for *arbitrary* connected graphs, roots,
and placements, the Lemma 1 pipeline must deliver everything within its
round bound, and the Lemma 3 numbering must partition [X] — the invariants
Theorem 1 composes.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.primitives import (
    assign_item_numbers,
    run_bfs,
    run_scheduled_broadcast,
    run_tree_broadcast,
)


@st.composite
def connected_graph_and_placement(draw, max_n=10, max_k=12):
    n = draw(st.integers(2, max_n))
    perm = draw(st.permutations(range(n)))
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        a, b = perm[i], perm[j]
        edges.add((min(a, b), max(a, b)))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(all_pairs), max_size=n))
    edges.update(extra)
    g = Graph(n, sorted(edges))
    k = draw(st.integers(0, max_k))
    owners = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    placement: dict[int, list[int]] = {}
    for j, v in enumerate(owners, start=1):
        placement.setdefault(v, []).append(j)
    root = draw(st.integers(0, n - 1))
    return g, placement, k, root


@given(connected_graph_and_placement())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_pipeline_delivers_within_bound(case):
    g, placement, k, root = case
    tree = run_bfs(g, root)
    out = run_tree_broadcast(g, {0: tree}, {0: placement})  # verify=True asserts
    assert out.rounds <= 2 * tree.depth + 2 * k + 4
    assert out.max_congestion <= 2 * k + 1


@given(connected_graph_and_placement())
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scheduled_equals_pipeline_for_single_job(case):
    g, placement, k, root = case
    tree = run_bfs(g, root)
    sched = run_scheduled_broadcast(g, {0: tree}, {0: placement}, max_delay=0, seed=1)
    alone = run_tree_broadcast(g, {0: tree}, {0: placement})
    # One job with no delay = plain pipeline, up to 1 round of bookkeeping.
    assert abs(sched.makespan - alone.rounds) <= 1


@given(connected_graph_and_placement())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_numbering_partitions_for_arbitrary_counts(case):
    g, placement, k, root = case
    counts = np.zeros(g.n, dtype=np.int64)
    for v, ids in placement.items():
        counts[v] = len(ids)
    tree = run_bfs(g, root)
    starts, _rounds = assign_item_numbers(g, tree, counts)  # self-certifying
    total = int(counts.sum())
    ids = sorted(
        i
        for v in range(g.n)
        for i in range(int(starts[v]), int(starts[v] + counts[v]))
    )
    assert ids == list(range(1, total + 1))
