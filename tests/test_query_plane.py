"""Property tests for the multi-query frontier plane (ISSUE 9).

:class:`~repro.engine.plane.QueryPlane` packs many (root, seed,
channel-set) BFS queries into one bit-packed (queries × nodes) plane and
answers them in one shared layer loop. These tests pin the bit-identity
contract on the edges the randomized verify sweep is least likely to hit:
batch size 1, duplicate queries, single-node graphs, forced SpMV layers,
chunked planes, and the all-queries-dead-on-round-0 boundary under
``drop_rate=1.0``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.adversary import FaultPlan
from repro.engine import kernels
from repro.engine.faults import faulty_bfs_grid
from repro.engine.plane import QueryPlane, masked_union_bfs, plane_sweep
from repro.engine.verify import (
    check_bfs_batch,
    check_broadcast_batch,
    check_fault_grid,
    check_packing_candidates,
    random_connected_graph,
    random_edge_masks,
)
from repro.graphs import Graph, thick_cycle
from repro.primitives.bfs import run_bfs, run_bfs_batch
from repro.util.errors import ValidationError
from repro.util.rng import rng_from_seed

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPlaneVsSolo:
    @_SETTINGS
    @given(
        n=st.integers(2, 18),
        extra=st.integers(0, 24),
        seed=st.integers(0, 10_000),
        q=st.integers(1, 9),
    )
    def test_plane_rows_equal_solo_sweeps(self, n, extra, seed, q):
        g = random_connected_graph(n, extra, seed=seed)
        rng = rng_from_seed(seed + 1)
        roots = rng.integers(0, n, size=q).tolist()
        indptr, indices = g.masked_csr(None)
        parent, dist, rounds = plane_sweep(g.n, indptr, indices, roots)
        for i, r in enumerate(roots):
            solo = run_bfs(g, int(r), backend="vectorized")
            assert np.array_equal(parent[i], solo.parent)
            assert np.array_equal(dist[i], solo.dist)
            assert int(rounds[i]) == solo.rounds

    @_SETTINGS
    @given(
        n=st.integers(2, 16),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
    )
    def test_batch_of_one_equals_unbatched(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed=seed)
        root = int(rng_from_seed(seed).integers(n))
        for backend in ("simulator", "vectorized"):
            solo = run_bfs(g, root, backend=backend)
            (batched,) = run_bfs_batch(g, [root], backend=backend)
            assert np.array_equal(batched.parent, solo.parent)
            assert np.array_equal(batched.dist, solo.dist)
            assert batched.rounds == solo.rounds
            assert batched.children == solo.children

    @_SETTINGS
    @given(
        n=st.integers(2, 16),
        extra=st.integers(0, 20),
        seed=st.integers(0, 10_000),
    )
    def test_duplicate_queries_share_identical_rows(self, n, extra, seed):
        g = random_connected_graph(n, extra, seed=seed)
        root = int(rng_from_seed(seed).integers(n))
        other = (root + 1) % n
        batch = run_bfs_batch(g, [root, other, root, root], backend="vectorized")
        solo = run_bfs(g, root, backend="vectorized")
        for i in (0, 2, 3):
            assert np.array_equal(batch[i].parent, solo.parent)
            assert np.array_equal(batch[i].dist, solo.dist)
            assert batch[i].rounds == solo.rounds
        assert batch[1].root == other

    def test_masked_queries(self):
        g = thick_cycle(5, 4)
        masks = random_edge_masks(g, 2, seed=7)
        batch = run_bfs_batch(g, [0, 3, 9], edge_mask=masks[0], backend="vectorized")
        for r, res in zip([0, 3, 9], batch):
            solo = run_bfs(g, r, edge_mask=masks[0], backend="vectorized")
            assert np.array_equal(res.parent, solo.parent)
            assert np.array_equal(res.dist, solo.dist)
            assert res.rounds == solo.rounds

    def test_chunked_plane_equals_resident_plane(self):
        g = thick_cycle(6, 3)
        indptr, indices = g.masked_csr(None)
        roots = list(range(g.n)) * 2
        full = plane_sweep(g.n, indptr, indices, roots)
        tiny = plane_sweep(g.n, indptr, indices, roots, max_cells=2 * g.n)
        for a, b in zip(full, tiny):
            assert np.array_equal(a, b)

    def test_forced_spmv_layers_match_gather(self, monkeypatch):
        g = thick_cycle(8, 4)
        indptr, indices = g.masked_csr(None)
        roots = [0, 5, 17, 5]
        base = plane_sweep(g.n, indptr, indices, roots)
        monkeypatch.setattr(kernels, "_SPMV_MIN_ARCS", 0)
        monkeypatch.setattr(kernels, "_SPMV_LAYER_ARCS", 0)
        forced = plane_sweep(g.n, indptr, indices, roots)
        for a, b in zip(base, forced):
            assert np.array_equal(a, b)
        monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        fallback = plane_sweep(g.n, indptr, indices, roots)
        for a, b in zip(base, fallback):
            assert np.array_equal(a, b)


class TestPlaneEdges:
    def test_single_node_graph(self):
        g = Graph(1, [])
        for backend in ("simulator", "vectorized"):
            (res,) = run_bfs_batch(g, [0], backend=backend)
            assert res.parent.tolist() == [0]
            assert res.dist.tolist() == [0]
            assert res.rounds == 0
        indptr, indices = g.masked_csr(None)
        parent, dist, rounds = plane_sweep(1, indptr, indices, [0, 0, 0])
        assert parent.shape == (3, 1) and rounds.tolist() == [0, 0, 0]

    def test_empty_batch(self):
        g = thick_cycle(3, 3)
        assert run_bfs_batch(g, [], backend="vectorized") == []
        assert run_bfs_batch(g, [], backend="simulator") == []

    def test_root_out_of_range_rejected(self):
        g = thick_cycle(3, 3)
        indptr, indices = g.masked_csr(None)
        with pytest.raises(ValidationError):
            QueryPlane(g.n, indptr, indices, [0, g.n])
        with pytest.raises(ValidationError):
            run_bfs_batch(g, [0, -1], backend="vectorized")

    def test_seed_discipline(self):
        g = thick_cycle(3, 3)
        indptr, indices = g.masked_csr(None)
        plane = QueryPlane(g.n, indptr, indices, [0, 1], seeds=[3, 9])
        streams = plane.rng_streams()
        assert [s.integers(1 << 30) for s in streams] == [
            rng_from_seed(3).integers(1 << 30),
            rng_from_seed(9).integers(1 << 30),
        ]
        with pytest.raises(ValidationError):
            QueryPlane(g.n, indptr, indices, [0, 1], seeds=[3])
        with pytest.raises(ValidationError):
            QueryPlane(g.n, indptr, indices, [0, 1]).rng_streams()

    @_SETTINGS
    @given(
        n=st.integers(1, 14),
        extra=st.integers(0, 12),
        seed=st.integers(0, 10_000),
    )
    def test_all_queries_dead_on_round_0_total_loss(self, n, extra, seed):
        """Under ``drop_rate=1.0`` every query's flood dies on round 0: the
        grid must report bare-root forests, one round of wholly dropped
        announces (zero for portless roots), and the exact post-draw RNG
        states — bit-identical to the solo calls on both backends."""
        g = random_connected_graph(n, extra, seed=seed) if n > 1 else Graph(1, [])
        rng = rng_from_seed(seed)
        roots = rng.integers(0, n, size=4).tolist()
        fault_seeds = rng.integers(0, 16, size=4).tolist()
        plan = FaultPlan(drop_rate=1.0)
        sim = faulty_bfs_grid(
            g, roots, plan=plan, fault_seeds=fault_seeds, backend="simulator"
        )
        vec = faulty_bfs_grid(
            g, roots, plan=plan, fault_seeds=fault_seeds, backend="vectorized"
        )
        for r, a, b in zip(roots, sim, vec):
            deg = int(g.degrees()[r])
            for o in (a, b):
                assert (o.result.dist >= 0).sum() == 1  # the bare root
                assert o.result.rounds == (1 if deg else 0)
                assert o.dropped == deg
            assert np.array_equal(a.result.parent, b.result.parent)
            assert np.array_equal(a.result.dist, b.result.dist)
            assert a.fault_rng_state == b.fault_rng_state


class TestMaskedUnionPlane:
    def test_overlapping_masks_across_groups(self):
        g = thick_cycle(4, 4)
        masks = random_edge_masks(g, 2, seed=5)
        # same masks twice: groups overlap each other but not internally
        results = masked_union_bfs(
            g, masks + masks, [0, 1, 0, 1], group_sizes=[2, 2]
        )
        for mask, root, res in zip(masks + masks, [0, 1, 0, 1], results):
            solo = run_bfs(g, root, edge_mask=mask, backend="vectorized")
            assert np.array_equal(res.parent, solo.parent)
            assert np.array_equal(res.dist, solo.dist)
            assert res.rounds == solo.rounds

    def test_shape_validation(self):
        g = thick_cycle(3, 3)
        masks = random_edge_masks(g, 2, seed=1)
        with pytest.raises(ValidationError):
            masked_union_bfs(g, masks, [0])
        with pytest.raises(ValidationError):
            masked_union_bfs(g, masks, [0, g.n])
        with pytest.raises(ValidationError):
            masked_union_bfs(g, masks, [0, 1], group_sizes=[3])


class TestBatchChecksDeterministic:
    """Deterministic anchors of the new verify.py checks on a packing host."""

    def test_bfs_batch_check(self):
        g = thick_cycle(6, 4)
        assert check_bfs_batch(g, [0, 7, 0, 13]) == []
        masks = random_edge_masks(g, 2, seed=2)
        assert check_bfs_batch(g, [0, 7], edge_mask=masks[0]) == []

    def test_broadcast_batch_check(self):
        g = thick_cycle(5, 4)
        assert check_broadcast_batch(g, 8, seed=3) == []

    def test_packing_candidates_check(self):
        g = thick_cycle(5, 4)
        assert check_packing_candidates(g, 2, seed=4) == []

    def test_fault_grid_check(self):
        g = thick_cycle(5, 4)
        assert check_fault_grid(g, 6, seed=5, parts=2) == []
