"""Cross-module integration tests: full pipelines on shared workloads,
cross-validation between independent implementations, and failure injection."""

import numpy as np
import pytest

from repro.apsp import approx_apsp_unweighted, check_32_approximation
from repro.core import (
    broadcast_unknown_lambda,
    build_packing_with_retry,
    combined_broadcast,
    fast_broadcast,
    num_parts,
    textbook_broadcast,
    uniform_random_placement,
)
from repro.graphs import (
    bfs_distances,
    min_cut,
    random_regular,
    thick_cycle,
)
from repro.lower_bounds import verify_broadcast_meets_bound
from repro.theory import universal_optimality_ratio
from repro.util.bits import message_bit_budget


class TestEndToEndBroadcast:
    """One workload, every algorithm, mutual consistency."""

    @pytest.fixture(scope="class")
    def setup(self):
        g = thick_cycle(12, 10)  # n=120, λ=20, D=6
        k = 240
        pl = uniform_random_placement(g.n, k, seed=21)
        return g, k, pl

    def test_all_algorithms_deliver_and_fast_wins(self, setup):
        g, k, pl = setup
        fast = fast_broadcast(g, pl, lam=20, C=1.5, seed=22)
        text = textbook_broadcast(g, pl)
        combo = combined_broadcast(g, pl, lam=20, C=1.5, seed=22)
        assert fast.delivered and text.delivered and combo.delivered
        assert fast.rounds < text.rounds
        assert combo.rounds <= max(fast.rounds, text.rounds)

    def test_lower_bound_certificates(self, setup):
        g, k, pl = setup
        budget = message_bit_budget(g.n)
        for res in (
            fast_broadcast(g, pl, lam=20, C=1.5, seed=22),
            textbook_broadcast(g, pl),
        ):
            cert = verify_broadcast_meets_bound(
                g, k, res.rounds, message_bits=budget, bandwidth_bits=budget
            )
            assert cert.holds

    def test_universal_optimality_ratio_is_logarithmic(self, setup):
        """k = 2n: measured/(k/λ) must be O(log n) — the headline claim."""
        g, k, pl = setup
        fast = fast_broadcast(g, pl, lam=20, C=1.5, seed=22)
        ratio = universal_optimality_ratio(fast.rounds, k, 20)
        assert ratio <= 12 * np.log(g.n)

    def test_unknown_lambda_close_to_known(self, setup):
        g, k, pl = setup
        known = fast_broadcast(g, pl, lam=20, C=1.5, seed=22)
        unknown, search = broadcast_unknown_lambda(g, pl, seed=22, C=1.5)
        # Same asymptotics: within a small factor of the known-λ run.
        assert unknown.rounds <= 4 * known.rounds + 100


class TestPackingPipelineConsistency:
    def test_retry_helper_matches_direct_build(self):
        g = random_regular(80, 24, seed=4)
        parts = num_parts(24, g.n, C=1.5)
        packing, attempts = build_packing_with_retry(g, parts, seed=5, distributed=False)
        assert attempts >= 1
        packing.validate()
        assert packing.size == parts

    def test_broadcast_over_every_tree_alone_delivers(self):
        """Each tree of the packing is independently a working broadcast
        substrate (spanning + connected)."""
        from repro.core.broadcast import _bfs_view
        from repro.primitives.pipeline import run_tree_broadcast

        g = random_regular(80, 24, seed=4)
        packing, _ = build_packing_with_retry(g, 3, seed=6, distributed=False)
        for i in range(packing.size):
            out = run_tree_broadcast(
                g, {0: _bfs_view(packing, i)}, {0: {0: [1, 2, 3]}}
            )
            assert out.k_total == 3


class TestAPSPBroadcastInterplay:
    def test_apsp_uses_fast_broadcast_rounds_sublinearly(self):
        """Õ(n/λ) scaling: double λ (at same n) → broadcast phase shrinks."""
        g_lo = thick_cycle(15, 4)  # n=60, λ=8
        g_hi = thick_cycle(5, 12)  # n=60, λ=24
        r_lo = approx_apsp_unweighted(g_lo, lam=8, C=1.5, seed=2)
        r_hi = approx_apsp_unweighted(g_hi, lam=24, C=1.5, seed=2)
        ok_lo, _ = check_32_approximation(g_lo, r_lo.estimate)
        ok_hi, _ = check_32_approximation(g_hi, r_hi.estimate)
        assert ok_lo and ok_hi
        assert r_hi.simulated_rounds["broadcast_s"] < r_lo.simulated_rounds["broadcast_s"] * 1.5


class TestFailureInjection:
    def test_broadcast_detects_non_spanning_tree(self):
        """Injected fault: drop a tree edge from the packing — delivery
        verification must catch the loss, not silently succeed."""
        from repro.core.broadcast import _bfs_view
        from repro.primitives.bfs import BFSResult
        from repro.primitives.pipeline import run_tree_broadcast
        from repro.util.errors import ProtocolError, ValidationError

        g = random_regular(40, 6, seed=11)
        packing, _ = build_packing_with_retry(g, 1, seed=1, distributed=False)
        view = _bfs_view(packing, 0)
        # Cut off one leaf: set its parent to itself (orphaned island).
        leaf = next(
            v for v in range(g.n) if v != view.root and not view.children[v]
        )
        bad_parent = view.parent.copy()
        bad_parent[leaf] = leaf
        bad_children = [list(c) for c in view.children]
        bad_children[int(view.parent[leaf])].remove(leaf)
        bad = BFSResult(
            root=view.root,
            parent=bad_parent,
            dist=view.dist,
            children=bad_children,
            rounds=0,
        )
        with pytest.raises((ProtocolError, ValidationError)):
            run_tree_broadcast(g, {0: bad}, {0: {0: [1, 2]}})

    def test_min_cut_placement_is_hardest(self):
        """Adversarial placement across the min cut should not be easier
        than a uniform one (sanity for the Theorem 3 experiments)."""
        from repro.core import cut_adversarial_placement

        g = thick_cycle(12, 10)
        side, _ = min_cut(g)
        k = 200
        adv = cut_adversarial_placement(g, side, k)
        res = fast_broadcast(g, adv, lam=20, C=1.5, seed=3)
        assert res.delivered


class TestDistributedVsCentralizedCrossValidation:
    def test_bfs_implementations_agree_everywhere(self):
        from repro.primitives import run_bfs

        for seed in (1, 2):
            g = random_regular(60, 8, seed=seed)
            for root in (0, 7):
                tree = run_bfs(g, root)
                assert np.array_equal(tree.dist, bfs_distances(g, root))

    def test_packing_rounds_match_depth_observation(self):
        g = random_regular(80, 24, seed=4)
        packing, attempts = build_packing_with_retry(g, 2, seed=7, distributed=True)
        per_attempt = packing.construction_rounds // attempts
        assert packing.max_depth <= per_attempt <= packing.max_depth + 2
