"""Unit tests for repro.util: bits, rng, tables, errors."""

import numpy as np
import pytest

from repro.util import (
    BandwidthExceeded,
    ReproError,
    Table,
    ValidationError,
    bits_for_int,
    bits_for_payload,
    derive_seed,
    ensure_rng,
    format_float,
    message_bit_budget,
    rng_from_seed,
    spawn_rngs,
)


class TestBits:
    def test_zero_costs_two_bits(self):
        assert bits_for_int(0) == 2  # 1 magnitude + 1 sign

    def test_small_ints(self):
        assert bits_for_int(1) == 2
        assert bits_for_int(7) == 4
        assert bits_for_int(8) == 5

    def test_negative_same_as_positive(self):
        assert bits_for_int(-7) == bits_for_int(7)

    def test_none_is_one_bit(self):
        assert bits_for_payload(None) == 1

    def test_bool_is_one_bit(self):
        assert bits_for_payload(True) == 1

    def test_string_utf8(self):
        assert bits_for_payload("ab") == 16

    def test_tuple_sums_elements(self):
        assert bits_for_payload((1, 2)) == bits_for_int(1) + bits_for_int(2)

    def test_nested_sequences(self):
        flat = bits_for_payload((1, 2, 3))
        nested = bits_for_payload((1, (2, 3)))
        assert flat == nested

    def test_float_is_64_bits(self):
        assert bits_for_payload(1.5) == 64

    def test_numpy_scalar(self):
        assert bits_for_payload(np.int64(7)) == bits_for_int(7)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            bits_for_payload(object())

    def test_budget_grows_with_n(self):
        assert message_bit_budget(1024) == 8 * 10
        assert message_bit_budget(1 << 20) > message_bit_budget(1 << 10)

    def test_budget_tiny_n_floored(self):
        assert message_bit_budget(1) == 32
        assert message_bit_budget(8) == 32  # floor at 4 log-units

    def test_budget_factor(self):
        assert message_bit_budget(1024, bandwidth_factor=4) == 40


class TestRng:
    def test_seeded_reproducible(self):
        a = rng_from_seed(42).random(5)
        b = rng_from_seed(42).random(5)
        assert np.array_equal(a, b)

    def test_ensure_rng_accepts_int(self):
        assert ensure_rng(3).integers(10) == ensure_rng(3).integers(10)

    def test_ensure_rng_passes_generator_through(self):
        g = rng_from_seed(1)
        assert ensure_rng(g) is g

    def test_ensure_rng_rejects_junk(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    def test_spawn_independent_streams(self):
        kids = spawn_rngs(rng_from_seed(7), 3)
        draws = [k.random(4).tolist() for k in kids]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(rng_from_seed(0), -1)

    def test_derive_seed_stable(self):
        assert derive_seed(5, "edge", 1, 2) == derive_seed(5, "edge", 1, 2)

    def test_derive_seed_distinguishes_keys(self):
        # Concatenation ambiguity ("ab","c") vs ("a","bc") must not collide.
        assert derive_seed(5, "ab", "c") != derive_seed(5, "a", "bc")

    def test_derive_seed_depends_on_root(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestTables:
    def test_render_alignment(self):
        t = Table(["name", "val"], title="demo")
        t.add_row(["alpha", 1])
        t.add_row(["b", 22])
        out = t.render()
        assert "demo" in out
        lines = out.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_row_width_mismatch(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_format_float(self):
        assert format_float(3.0) == "3"
        assert format_float(3.14159, digits=2) == "3.14"
        assert format_float(7) == "7"
        assert format_float(None) == "-"


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ValidationError, ReproError)
        assert issubclass(BandwidthExceeded, ReproError)

    def test_validation_details(self):
        err = ValidationError("bad", got=3, want=5)
        assert err.details == {"got": 3, "want": 5}
