"""Tests for Theorem 2: the zero-communication random edge partition."""

import numpy as np
import pytest

from repro.core import (
    num_parts,
    random_partition,
    theorem2_diameter_bound,
    validate_decomposition,
)
from repro.graphs import is_connected, random_regular, thick_cycle
from repro.util.errors import ValidationError


class TestNumParts:
    def test_formula(self):
        assert num_parts(46, 100, C=1.0) == int(46 / np.log(100))

    def test_at_least_one(self):
        assert num_parts(2, 1000) == 1

    def test_tiny_graph(self):
        assert num_parts(5, 2) == 1

    def test_scales_with_C(self):
        assert num_parts(60, 100, C=2.0) <= num_parts(60, 100, C=1.0)

    def test_invalid_lambda(self):
        with pytest.raises(ValidationError):
            num_parts(0, 100)


class TestRandomPartition:
    def test_every_edge_colored_once(self, reg_dense):
        decomp = random_partition(reg_dense, 3, seed=1)
        assert decomp.colors.shape == (reg_dense.m,)
        assert decomp.colors.min() >= 0 and decomp.colors.max() < 3
        # Masks partition the edge set.
        total = sum(m.sum() for m in decomp.masks())
        assert total == reg_dense.m

    def test_deterministic_zero_communication(self, reg_dense):
        a = random_partition(reg_dense, 3, seed=9)
        b = random_partition(reg_dense, 3, seed=9)
        assert np.array_equal(a.colors, b.colors)

    def test_roughly_uniform(self, reg_dense):
        decomp = random_partition(reg_dense, 4, seed=2)
        sizes = decomp.class_sizes()
        expected = reg_dense.m / 4
        assert (np.abs(sizes - expected) < 0.4 * expected).all()

    def test_subgraph_accessors(self, reg_dense):
        decomp = random_partition(reg_dense, 2, seed=3)
        subs = decomp.subgraphs()
        assert len(subs) == 2
        assert subs[0].m + subs[1].m == reg_dense.m
        with pytest.raises(ValidationError):
            decomp.mask(5)

    def test_single_part_is_whole_graph(self, reg_small):
        decomp = random_partition(reg_small, 1, seed=0)
        assert decomp.mask(0).all()

    def test_invalid_parts(self, reg_small):
        with pytest.raises(ValidationError):
            random_partition(reg_small, 0, seed=0)


class TestTheorem2:
    def test_all_classes_spanning_whp(self):
        # δ = λ = 24, 2 parts → per-class degree 12 >> ln 80 ≈ 4.4.
        g = random_regular(80, 24, seed=4)
        decomp = random_partition(g, 2, seed=5)
        for i in range(2):
            assert is_connected(decomp.subgraph(i))

    def test_validation_report(self, reg_dense):
        decomp = random_partition(reg_dense, 2, seed=5)
        rep = validate_decomposition(decomp, exact_diameter=True)
        assert rep.all_spanning
        assert rep.ok
        assert rep.max_diameter <= rep.bound

    def test_validation_catches_failure(self, reg_small):
        # 6-regular into 6 parts: expected class degree 1 — certain failure.
        decomp = random_partition(reg_small, 6, seed=1)
        rep = validate_decomposition(decomp)
        assert not rep.ok

    def test_diameter_bound_formula(self):
        assert theorem2_diameter_bound(100, 10, C=1.0) == pytest.approx(
            20.0 * 100 * np.ceil(np.log(100)) / 10
        )
        # The default C=2 doubles L and hence the bound.
        assert theorem2_diameter_bound(100, 10) == pytest.approx(
            20.0 * 100 * np.ceil(2 * np.log(100)) / 10
        )

    def test_three_parts_on_thick_cycle(self):
        # λ = δ = 24 on a high-diameter host: classes must stay connected
        # *and* low-diameter relative to n log n/δ, not degrade to Ω(n).
        g = thick_cycle(12, 12)  # n = 144, λ = 24
        decomp = random_partition(g, 3, seed=2)
        rep = validate_decomposition(decomp, exact_diameter=True)
        assert rep.all_spanning
        assert rep.max_diameter <= theorem2_diameter_bound(g.n, g.min_degree())
