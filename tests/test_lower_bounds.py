"""Tests for the paper's lower bounds (Theorems 3, 8, 9, 13)."""

import numpy as np
import pytest

from repro.core import textbook_broadcast, uniform_random_placement
from repro.graphs import edge_connectivity, thick_cycle
from repro.lower_bounds import (
    Theorem3Certificate,
    cut_bits_required,
    decode_exponents,
    id_entropy_bits,
    kmax_for,
    measure_packing_diameters,
    theorem3_rounds_bound,
    theorem8_rounds_bound,
    theorem9_instance,
    theorem13_prediction,
    verify_broadcast_meets_bound,
)
from repro.util.errors import ValidationError


class TestTheorem3:
    def test_bound_formula(self):
        # s = w: t >= k/(4λ) - 1.
        assert theorem3_rounds_bound(400, 10, 32, 32) == pytest.approx(
            400 / 40 - 1 / 16, rel=0.2
        )

    def test_bound_zero_for_tiny_k(self):
        assert theorem3_rounds_bound(0, 5, 32, 32) == 0.0

    def test_invalid_lambda(self):
        with pytest.raises(ValidationError):
            theorem3_rounds_bound(10, 0, 32, 32)

    def test_cut_bits(self):
        assert cut_bits_required(100, 32) == 32 * 50 - 4

    def test_real_execution_respects_bound(self):
        g = thick_cycle(8, 5)  # λ = 10
        k = 200
        res = textbook_broadcast(g, uniform_random_placement(g.n, k, seed=1))
        cert = verify_broadcast_meets_bound(
            g, k, res.rounds, message_bits=32, bandwidth_bits=64
        )
        assert cert.holds
        assert cert.lam == 10
        assert cert.slack >= 1.0

    def test_certificate_fields(self):
        cert = Theorem3Certificate(
            k=10, lam=2, cut_size=2, measured_rounds=100, bound_rounds=10.0
        )
        assert cert.holds and cert.slack == 10.0

    def test_zero_bound_infinite_slack(self):
        cert = Theorem3Certificate(
            k=0, lam=2, cut_size=2, measured_rounds=5, bound_rounds=0.0
        )
        assert cert.slack == float("inf")


class TestTheorem8:
    def test_entropy_scale(self):
        # Ω(n log n) bits.
        bits = id_entropy_bits(1000, c=2.0)
        assert bits == pytest.approx(500 * np.log2(1000))

    def test_rounds_bound_scale(self):
        # Ω(n/λ): doubling λ halves the bound.
        b1 = theorem8_rounds_bound(1000, 10)
        b2 = theorem8_rounds_bound(1000, 20)
        assert b1 == pytest.approx(2 * b2)

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            id_entropy_bits(1, 2.0)
        with pytest.raises(ValidationError):
            theorem8_rounds_bound(100, 0)


class TestTheorem9:
    def test_instance_edge_connectivity(self):
        inst = theorem9_instance(30, 6, alpha=2.0, seed=1)
        assert edge_connectivity(inst.graph) == 6

    def test_closed_form_distances_match_dijkstra(self):
        from scipy.sparse.csgraph import dijkstra

        inst = theorem9_instance(25, 4, alpha=2.0, seed=2)
        d = dijkstra(inst.graph.to_scipy_csr(), directed=False, indices=0)
        assert np.allclose(d, inst.exact_distances_from_v1())

    def test_decoding_from_exact(self):
        inst = theorem9_instance(30, 5, alpha=2.0, seed=3)
        decoded = decode_exponents(inst, inst.exact_distances_from_v1())
        assert np.array_equal(decoded, inst.exponents)

    def test_decoding_from_any_alpha_approx(self):
        """The heart of Theorem 9: *any* α-approximation reveals the bits."""
        inst = theorem9_instance(30, 5, alpha=2.0, seed=4)
        exact = inst.exact_distances_from_v1()
        rng = np.random.default_rng(5)
        # Adversarial approximation: independent stretch per entry.
        stretch = 1.0 + rng.random(inst.n) * (inst.alpha - 1.0)
        decoded = decode_exponents(inst, exact * stretch)
        assert np.array_equal(decoded, inst.exponents)

    def test_bad_estimate_rejected(self):
        inst = theorem9_instance(20, 4, alpha=2.0, seed=6)
        est = inst.exact_distances_from_v1() * 10.0  # not a 2-approx
        with pytest.raises(ValidationError):
            decode_exponents(inst, est)

    def test_kmax_shrinks_with_alpha(self):
        assert kmax_for(1000, 8.0) < kmax_for(1000, 2.0)

    def test_information_bound_positive(self):
        inst = theorem9_instance(40, 4, alpha=2.0, seed=7)
        assert inst.information_bits() > 0
        assert inst.rounds_bound() > 0

    def test_degenerate_params_rejected(self):
        with pytest.raises(ValidationError):
            theorem9_instance(5, 10)
        with pytest.raises(ValidationError):
            theorem9_instance(10, 1)


class TestTheorem13:
    def test_prediction_scale(self):
        deep, scale = theorem13_prediction(4096, 64)
        assert scale == 64.0

    def test_measured_trees_are_deep(self):
        rep = measure_packing_diameters(48, 32, seed=1)
        assert rep.parts >= 2
        # Host diameter stays logarithmic…
        assert rep.host_diameter <= 3 * np.log2(rep.n)
        # …but the packed trees must walk the thick path: Ω(n/λ) deep.
        assert rep.trees_above(0.25) >= rep.parts - 2
        assert rep.max_tree_diameter >= rep.length // 4

    def test_report_accessors(self):
        rep = measure_packing_diameters(48, 32, seed=1)
        assert rep.min_tree_diameter <= rep.max_tree_diameter
        assert len(rep.tree_diameters) == rep.parts
