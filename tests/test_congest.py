"""Tests for the CONGEST substrate: network ports, simulator semantics,
bandwidth enforcement, metrics."""

import numpy as np
import pytest

from repro.congest import Metrics, Network, NodeProgram, Simulator
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.util.errors import BandwidthExceeded, ProtocolError, ReproError


class TestNetwork:
    def test_port_numbering_sorted(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        net = Network(g)
        assert [net.neighbor(0, p) for p in range(3)] == [1, 2, 3]

    def test_port_roundtrip(self):
        net = Network(complete_graph(5))
        for v in range(5):
            for p in range(4):
                u = net.neighbor(v, p)
                assert net.port_to(v, u) == p

    def test_edge_of_port(self):
        g = cycle_graph(4)
        net = Network(g)
        for v in range(4):
            for p in range(2):
                eid = net.edge_of_port(v, p)
                a, b = g.edge_endpoints(eid)
                assert v in (a, b)

    def test_bad_port_raises(self):
        net = Network(cycle_graph(4))
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError):
            net.neighbor(0, 5)
        with pytest.raises(ValidationError):
            net.port_to(0, 2)  # not a neighbor on C4

    def test_ports_for_edges(self):
        g = cycle_graph(4)
        net = Network(g)
        eid = g.edge_id(0, 1)
        assert net.ports_for_edges(0, {eid}) == [net.port_to(0, 1)]


class _Echo(NodeProgram):
    """Node 0 sends a ping; neighbors reply once."""

    def __init__(self, node):
        super().__init__()
        self.node = node
        self.got = []

    def on_start(self, ctx):
        if self.node == 0:
            ctx.send_all((0,))  # 0 = ping

    def on_round(self, ctx):
        for port, payload in ctx.inbox:
            self.got.append(payload[0])
            if payload[0] == 0:  # ping -> pong
                ctx.send(port, (1,))


class TestSimulator:
    def test_round_semantics(self):
        g = cycle_graph(4)
        sim = Simulator(Network(g), _Echo)
        result = sim.run()
        # ping delivered in round 1, pong in round 2 → 2 rounds total.
        assert result.metrics.rounds == 2
        assert result.programs[0].got == [1, 1]

    def test_message_and_congestion_metrics(self):
        g = cycle_graph(4)
        result = Simulator(Network(g), _Echo).run()
        assert result.metrics.total_messages == 4  # 2 pings + 2 pongs
        assert result.metrics.max_congestion == 2  # each of 0's edges: ping+pong

    def test_quiescence_without_halt(self):
        result = Simulator(Network(cycle_graph(4)), _Echo).run()
        assert not result.halted  # nobody called halt(); run ended by quiet

    def test_max_rounds_guard(self):
        class Babbler(NodeProgram):
            def __init__(self, node):
                super().__init__()

            def on_start(self, ctx):
                ctx.send(0, (0,))

            def on_round(self, ctx):
                ctx.send(0, (0,))

        with pytest.raises(ReproError):
            Simulator(Network(cycle_graph(4)), lambda v: Babbler(v)).run(max_rounds=10)

    def test_oversized_payload_rejected(self):
        class Shouter(NodeProgram):
            def on_start(self, ctx):
                ctx.send(0, "x" * 1000)

            def on_round(self, ctx):
                pass

        with pytest.raises(BandwidthExceeded):
            Simulator(Network(cycle_graph(4)), lambda v: Shouter()).run()

    def test_double_send_same_port_rejected(self):
        class Doubler(NodeProgram):
            def on_start(self, ctx):
                ctx.send(0, (1,))
                ctx.send(0, (2,))

            def on_round(self, ctx):
                pass

        with pytest.raises(BandwidthExceeded):
            Simulator(Network(cycle_graph(4)), lambda v: Doubler()).run()

    def test_send_bad_port_rejected(self):
        class BadPort(NodeProgram):
            def on_start(self, ctx):
                ctx.send(7, (1,))

            def on_round(self, ctx):
                pass

        with pytest.raises(ProtocolError):
            Simulator(Network(cycle_graph(4)), lambda v: BadPort()).run()

    def test_halted_node_drops_messages(self):
        class HaltEarly(NodeProgram):
            def __init__(self, node):
                super().__init__()
                self.node = node
                self.received = 0

            def on_start(self, ctx):
                if self.node == 0:
                    ctx.halt()
                elif self.node == 1:
                    ctx.send_all(("hi",))

            def on_round(self, ctx):
                self.received += len(ctx.inbox)

        g = path_graph(3)  # 0-1-2
        result = Simulator(Network(g), HaltEarly).run()
        assert result.programs[0].received == 0
        assert result.programs[2].received == 1

    def test_wake_without_messages(self):
        class Sleeper(NodeProgram):
            def __init__(self):
                super().__init__()
                self.wakeups = 0

            def on_start(self, ctx):
                ctx.wake()

            def on_round(self, ctx):
                self.wakeups += 1
                if self.wakeups < 3:
                    ctx.wake()

        result = Simulator(Network(cycle_graph(3)), lambda v: Sleeper()).run()
        assert result.metrics.rounds == 3
        assert all(p.wakeups == 3 for p in result.programs)

    def test_shared_knowledge_exposed(self):
        seen = {}

        class Reader(NodeProgram):
            def __init__(self, node):
                super().__init__()
                self.node = node

            def on_start(self, ctx):
                seen[self.node] = (ctx.shared["n"], ctx.shared.get("delta"))

            def on_round(self, ctx):
                pass

        Simulator(Network(cycle_graph(5)), Reader, shared={"delta": 2}).run()
        assert seen[3] == (5, 2)

    def test_factory_type_checked(self):
        with pytest.raises(ReproError):
            Simulator(Network(cycle_graph(3)), lambda v: object())

    def test_per_node_rngs_differ(self):
        draws = {}

        class Roller(NodeProgram):
            def __init__(self, node):
                super().__init__()
                self.node = node

            def on_start(self, ctx):
                draws[self.node] = ctx.rng.random()

            def on_round(self, ctx):
                pass

        Simulator(Network(cycle_graph(4)), Roller, seed=5).run()
        assert len(set(draws.values())) == 4


class TestMetrics:
    def test_bits_across(self):
        m = Metrics(m=4)
        m.record_message(0, 10)
        m.record_message(0, 10)
        m.record_message(2, 5)
        assert m.bits_across(np.array([0])) == 2
        assert m.bits_across(np.array([0, 2]), per_message_bits=8) == 24
        assert m.max_congestion == 2

    def test_summary(self):
        m = Metrics(m=1)
        m.record_message(0, 3)
        s = m.summary()
        assert s["messages"] == 1 and s["bits"] == 3


class TestPayloadBitsCache:
    """Regression: the bit-size memo must not conflate equal-but-differently
    typed payloads — ``hash(True) == hash(1)`` and ``(0, 1) == (False, True)``,
    but ``bits_for_payload(True)`` is 1 bit while ``bits_for_payload(1)`` is 2."""

    def _sim(self):
        return Simulator(Network(path_graph(2)), lambda v: NodeProgram())

    def test_bool_after_int_not_conflated(self):
        sim = self._sim()
        assert sim._payload_bits(1) == 2
        assert sim._payload_bits(True) == 1

    def test_int_after_bool_not_conflated(self):
        sim = self._sim()
        assert sim._payload_bits(True) == 1
        assert sim._payload_bits(1) == 2

    def test_tuple_payloads_interleaved(self):
        from repro.util.bits import bits_for_payload

        sim = self._sim()
        for payload in [(0, 1), (False, True), (0, 1), (False, True)]:
            assert sim._payload_bits(payload) == bits_for_payload(payload)
        assert sim._payload_bits((0, 1)) == 4       # two signed ints
        assert sim._payload_bits((False, True)) == 2  # two 1-bit flags

    def test_list_payloads_priced_like_tuples_but_keyed_apart(self):
        sim = self._sim()
        assert sim._payload_bits(([0, 1], 2)) == sim._payload_bits(((0, 1), 2))

    def test_end_to_end_bit_accounting(self):
        """Interleaved bool/int sends must charge type-correct totals."""

        class Mixed(NodeProgram):
            def __init__(self, node):
                super().__init__()
                self.node = node

            def on_start(self, ctx):
                if self.node == 0:
                    ctx.send(0, (0, 1))

            def on_round(self, ctx):
                if self.node == 1 and ctx.round == 1:
                    ctx.send(0, (False, True))

        result = Simulator(Network(path_graph(2)), Mixed).run()
        # (0, 1) is 2+2 bits; (False, True) is 1+1 bits.
        assert result.metrics.total_bits == 6


class TestPortsForEdgesVectorized:
    def test_accepts_bool_mask(self):
        g = cycle_graph(6)
        net = Network(g)
        mask = np.zeros(g.m, dtype=bool)
        mask[g.edge_id(0, 1)] = True
        mask[g.edge_id(0, 5)] = True
        assert net.ports_for_edges(0, mask) == [net.port_to(0, 1), net.port_to(0, 5)]

    def test_accepts_set_array_and_list(self):
        g = complete_graph(5)
        net = Network(g)
        eids = {g.edge_id(2, 0), g.edge_id(2, 4)}
        expected = sorted([net.port_to(2, 0), net.port_to(2, 4)])
        assert net.ports_for_edges(2, eids) == expected
        assert net.ports_for_edges(2, np.array(sorted(eids))) == expected
        assert net.ports_for_edges(2, sorted(eids)) == expected

    def test_empty_selection(self):
        net = Network(cycle_graph(4))
        assert net.ports_for_edges(0, set()) == []
        assert net.ports_for_edges(0, np.zeros(4, dtype=bool)) == []
