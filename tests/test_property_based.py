"""Property-based tests (hypothesis) for the core data structures and the
invariants the theorems rest on."""


import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apsp import dfs_timestamps
from repro.congest import Network
from repro.core import (
    num_parts,
    random_partition,
    sample_edges,
)
from repro.graphs import (
    Graph,
    bfs_distances,
    bfs_tree,
    connected_components,
    cut_value,
    edge_connectivity,
)
from repro.util.bits import bits_for_payload, message_bit_budget
from repro.util.rng import derive_seed

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #


@st.composite
def small_graphs(draw, min_n=2, max_n=12, connected=False):
    """Random simple graphs with n in [min_n, max_n]."""
    n = draw(st.integers(min_n, max_n))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if connected:
        # Random spanning tree first (random attachment), then extra edges.
        perm = draw(st.permutations(range(n)))
        edges = set()
        for i in range(1, n):
            j = draw(st.integers(0, i - 1))
            a, b = perm[i], perm[j]
            edges.add((min(a, b), max(a, b)))
        extra = draw(st.lists(st.sampled_from(all_pairs), max_size=2 * n))
        edges.update(extra)
        return Graph(n, sorted(edges))
    subset = draw(st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs)))
    return Graph(n, subset)


payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**40), 2**40),
        st.text(max_size=6),
    ),
    lambda inner: st.lists(inner, max_size=4).map(tuple),
    max_leaves=8,
)


# ---------------------------------------------------------------------- #
# graph invariants
# ---------------------------------------------------------------------- #


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_degree_sum_is_twice_edges(g):
    assert int(g.degrees().sum()) == 2 * g.m


@given(small_graphs())
@settings(max_examples=60, deadline=None)
def test_adjacency_symmetric(g):
    for v in range(g.n):
        for u in g.neighbors(v).tolist():
            assert v in g.neighbors(u).tolist()


@given(small_graphs(connected=True))
@settings(max_examples=50, deadline=None)
def test_bfs_triangle_inequality(g):
    """|d(s,u) - d(s,v)| <= 1 for every edge {u,v}: BFS layers are sane."""
    d = bfs_distances(g, 0)
    for u, v in g.edges():
        assert abs(int(d[u]) - int(d[v])) <= 1


@given(small_graphs(connected=True))
@settings(max_examples=50, deadline=None)
def test_bfs_tree_is_spanning_tree(g):
    parent, dist = bfs_tree(g, 0)
    edges = {(min(int(parent[v]), v), max(int(parent[v]), v)) for v in range(1, g.n)}
    assert len(edges) == g.n - 1
    # tree edges are graph edges
    for a, b in edges:
        assert g.has_edge(a, b)


@given(small_graphs())
@settings(max_examples=50, deadline=None)
def test_components_partition_nodes(g):
    labels = connected_components(g)
    for v in range(g.n):
        assert labels[labels[v]] == labels[v]  # label is a representative


@given(small_graphs(connected=True))
@settings(max_examples=30, deadline=None)
def test_lambda_at_most_min_degree(g):
    lam = edge_connectivity(g)
    assert 1 <= lam <= g.min_degree()


@given(small_graphs(connected=True), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.filter_too_much])
def test_cut_value_complement_symmetric(g, seed):
    rng = np.random.default_rng(seed)
    side = rng.random(g.n) < 0.5
    assert cut_value(g, side) == cut_value(g, ~side)


# ---------------------------------------------------------------------- #
# Theorem 2 partition invariants
# ---------------------------------------------------------------------- #


@given(small_graphs(connected=True), st.integers(1, 5), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_partition_is_exact_cover(g, parts, seed):
    decomp = random_partition(g, parts, seed)
    stack = np.stack(decomp.masks()) if parts > 1 else decomp.mask(0)[None, :]
    assert (stack.sum(axis=0) == 1).all()


@given(small_graphs(connected=True), st.floats(0.0, 1.0), st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_sampling_deterministic(g, p, seed):
    assert np.array_equal(sample_edges(g, p, seed), sample_edges(g, p, seed))


@given(st.integers(1, 10**6), st.integers(3, 10**6), st.floats(0.5, 4.0))
@settings(max_examples=80, deadline=None)
def test_num_parts_bounds(lam, n, C):
    parts = num_parts(lam, n, C)
    assert 1 <= parts
    assert parts <= max(1, lam)  # never more classes than λ


# ---------------------------------------------------------------------- #
# bit accounting
# ---------------------------------------------------------------------- #


@given(payloads)
@settings(max_examples=120, deadline=None)
def test_bit_size_positive_and_monotone_under_nesting(p):
    bits = bits_for_payload(p)
    assert bits >= 1
    # Doubling the payload doubles the cost (up to the empty-frame floor).
    assert bits_for_payload((p, p)) == max(1, 2 * bits) or bits_for_payload((p, p)) == 2 * bits


@given(st.integers(2, 2**30))
@settings(max_examples=60, deadline=None)
def test_budget_fits_constant_tuple_of_ids(n):
    """A (tag, id, id) tuple must always fit the budget — the shape every
    protocol in the library sends."""
    budget = message_bit_budget(n)
    worst = bits_for_payload((7, n - 1, n - 1))
    assert worst <= budget


@given(st.integers(0, 2**62), st.lists(st.integers(0, 100), max_size=4))
@settings(max_examples=60, deadline=None)
def test_derive_seed_in_range(root, key):
    s = derive_seed(root, *key)
    assert 0 <= s < 2**63


# ---------------------------------------------------------------------- #
# PRT timestamps
# ---------------------------------------------------------------------- #


@given(small_graphs(connected=True))
@settings(max_examples=40, deadline=None)
def test_dfs_timestamps_dominate_distance(g):
    """π(v) >= d(start, v): the DFS tour is a physical walk."""
    pi = dfs_timestamps(g, 0)
    d = bfs_distances(g, 0)
    assert (pi >= d).all()
    assert len(np.unique(pi)) == g.n


# ---------------------------------------------------------------------- #
# network ports
# ---------------------------------------------------------------------- #


@given(small_graphs(connected=True))
@settings(max_examples=40, deadline=None)
def test_port_bijection(g):
    net = Network(g)
    for v in range(g.n):
        seen = set()
        for p in range(g.degree(v)):
            u = net.neighbor(v, p)
            assert net.port_to(v, u) == p
            seen.add(u)
        assert len(seen) == g.degree(v)
