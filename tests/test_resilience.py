"""Tests for fault injection and the redundant broadcast (Section 1.2 flavor)."""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest import (
    AdversarySchedule,
    FaultPlan,
    FaultySimulator,
    MobileAdversary,
    Network,
    NodeProgram,
    RandomLoss,
    StaticSaboteur,
    TargetedCutAdversary,
    compose_schedules,
)
from repro.core import (
    ROOT_POLICIES,
    build_packing_with_retry,
    redundant_broadcast,
    repair_coverage,
    resolve_roots,
    tree_edge_ids,
    uniform_random_placement,
)
from repro.graphs import cycle_graph, thick_cycle
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def setup():
    g = thick_cycle(10, 10)  # n = 100, λ = 20
    packing, _ = build_packing_with_retry(g, 3, seed=2, distributed=False)
    pl = uniform_random_placement(g.n, 90, seed=3)
    return g, packing, pl


class _Flood(NodeProgram):
    """Node 0 floods a token; every node records whether it heard it."""

    def __init__(self, node):
        super().__init__()
        self.node = node
        self.heard = node == 0

    def on_start(self, ctx):
        if self.node == 0:
            ctx.send_all((1,))

    def on_round(self, ctx):
        if ctx.inbox and not self.heard:
            self.heard = True
            ctx.send_all((1,))


class TestFaultySimulator:
    def test_dead_edge_partitions_flood(self):
        g = cycle_graph(6)
        # Kill both edges around node 3: the flood cannot reach it.
        dead = {g.edge_id(2, 3), g.edge_id(3, 4)}
        sim = FaultySimulator(Network(g), _Flood, dead_edges=dead)
        result = sim.run()
        heard = [p.heard for p in result.programs]
        assert heard[3] is False
        assert all(heard[v] for v in (0, 1, 2, 4, 5))

    def test_no_faults_is_base_behavior(self):
        g = cycle_graph(6)
        sim = FaultySimulator(Network(g), _Flood)
        result = sim.run()
        assert all(p.heard for p in result.programs)
        assert sim.dropped == 0

    def test_drop_rate_counts_drops(self):
        g = cycle_graph(8)
        sim = FaultySimulator(Network(g), _Flood, drop_rate=0.5, fault_seed=1)
        sim.run()
        assert sim.dropped > 0

    def test_mobile_adversary_round_scoped(self):
        g = cycle_graph(6)
        eid = g.edge_id(0, 1)
        # Block edge (0,1) only in round 1; the flood detours or retries...
        # in a cycle the token still reaches everyone the other way around.
        sim = FaultySimulator(Network(g), _Flood, mobile={1: {eid}})
        result = sim.run()
        assert all(p.heard for p in result.programs)
        assert sim.dropped >= 1

    def test_invalid_drop_rate(self):
        g = cycle_graph(5)
        with pytest.raises(ValidationError):
            FaultySimulator(Network(g), _Flood, drop_rate=1.5)
        with pytest.raises(ValidationError):
            FaultySimulator(Network(g), _Flood, drop_rate=-0.1)

    def test_total_loss_boundary_accepted(self):
        """drop_rate=1.0 (the closed-interval boundary) is a legal adversary:
        every delivery fails, so the flood never leaves node 0."""
        g = cycle_graph(6)
        sim = FaultySimulator(Network(g), _Flood, drop_rate=1.0)
        result = sim.run()
        heard = [p.heard for p in result.programs]
        assert heard[0] is True and not any(heard[1:])
        assert sim.dropped == 2  # node 0's two initial sends, both dropped


class TestRedundantBroadcast:
    def test_clean_run_full_coverage(self, setup):
        g, packing, pl = setup
        rep = redundant_broadcast(g, pl, packing, redundancy=1)
        assert rep.min_coverage == 1.0
        assert rep.fully_delivered == rep.k

    def test_sabotaged_tree_loses_exactly_its_messages(self, setup):
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0)
        rep = redundant_broadcast(g, pl, packing, redundancy=1, dead_edges=dead)
        # Messages homed on tree 0 (k/parts of them) are lost; others arrive.
        assert rep.fully_delivered == rep.k - rep.k // packing.size
        assert rep.min_coverage < 1.0

    def test_redundancy_two_survives_dead_tree(self, setup):
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0)
        rep = redundant_broadcast(g, pl, packing, redundancy=2, dead_edges=dead)
        assert rep.fully_delivered == rep.k
        assert rep.min_coverage == 1.0

    def test_redundancy_costs_rounds(self, setup):
        g, packing, pl = setup
        r1 = redundant_broadcast(g, pl, packing, redundancy=1)
        r2 = redundant_broadcast(g, pl, packing, redundancy=2)
        assert r2.rounds > r1.rounds  # ~2x pipeline load
        assert r2.rounds <= 3 * r1.rounds + 20

    def test_full_redundancy_survives_all_but_one_tree(self, setup):
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0) | tree_edge_ids(packing, 1)
        rep = redundant_broadcast(
            g, pl, packing, redundancy=packing.size, dead_edges=dead
        )
        assert rep.fully_delivered == rep.k

    def test_redundancy_bounds(self, setup):
        g, packing, pl = setup
        with pytest.raises(ValidationError):
            redundant_broadcast(g, pl, packing, redundancy=0)
        with pytest.raises(ValidationError):
            redundant_broadcast(g, pl, packing, redundancy=packing.size + 1)

    def test_lossy_network_degrades_gracefully(self, setup):
        g, packing, pl = setup
        lossy = redundant_broadcast(
            g, pl, packing, redundancy=2, drop_rate=0.01, seed=5
        )
        # 1% loss with double redundancy: most messages still everywhere.
        assert lossy.fully_delivered >= 0.8 * lossy.k

    def test_total_loss_defeats_full_redundancy_by_design(self, setup):
        """The r = λ' boundary: drop_rate=1.0 kills every delivery, so even
        assigning every message to every tree saves nothing — only the
        root's own messages are ever 'received' (by the root itself)."""
        g, packing, pl = setup
        rep = redundant_broadcast(
            g, pl, packing, redundancy=packing.size, drop_rate=1.0
        )
        assert rep.fully_delivered == 0
        assert max(rep.per_message_coverage.values()) <= 1 / g.n
        # Dead edges are moot at total loss: every send is dropped anyway,
        # so the drop total (and everything else) is unchanged.
        dead = tree_edge_ids(packing, 0)
        rep2 = redundant_broadcast(
            g, pl, packing, redundancy=packing.size, drop_rate=1.0, dead_edges=dead
        )
        assert rep2.dropped_messages == rep.dropped_messages
        assert rep2.per_message_coverage == rep.per_message_coverage


class TestCombinedFaultSources:
    """dead_edges + mobile + drop_rate compose (ISSUE 5 satellite)."""

    def test_channel_disjoint_fault_sources_drop_additively(self, setup):
        """Broadcast channels are independent, so faults confined to
        distinct trees account for exactly their separate drop totals."""
        g, packing, pl = setup
        dead0 = tree_edge_ids(packing, 0)
        mobile1 = {r: tree_edge_ids(packing, 1) for r in range(1, 60)}
        only_dead = redundant_broadcast(g, pl, packing, dead_edges=dead0)
        only_mobile = redundant_broadcast(g, pl, packing, mobile=mobile1)
        both = redundant_broadcast(g, pl, packing, dead_edges=dead0, mobile=mobile1)
        # (Round totals may differ between scenarios — a starved channel
        # finishes early — but per-channel dynamics are independent, so the
        # drop totals of faults confined to distinct trees add up exactly.)
        assert (
            both.dropped_messages
            == only_dead.dropped_messages + only_mobile.dropped_messages
        )
        # And coverage composes: a message is lost in the combined run iff
        # it is lost in (at least) one of the single-source runs.
        for j in both.per_message_coverage:
            assert both.per_message_coverage[j] == min(
                only_dead.per_message_coverage[j],
                only_mobile.per_message_coverage[j],
            )

    def test_adding_drop_rate_only_adds_drops(self, setup):
        g, packing, pl = setup
        dead0 = tree_edge_ids(packing, 0)
        base = redundant_broadcast(g, pl, packing, dead_edges=dead0)
        noisy = redundant_broadcast(
            g, pl, packing, dead_edges=dead0, drop_rate=0.05, fault_seed=11
        )
        assert noisy.dropped_messages > base.dropped_messages
        assert all(
            noisy.per_message_coverage[j] <= base.per_message_coverage[j] + 1e-12
            for j in base.per_message_coverage
        )

    @pytest.mark.parametrize("backend", ["simulator", "vectorized"])
    def test_fault_rng_independent_of_protocol_rng(self, setup, backend):
        """Varying only fault_seed re-rolls which deliveries fail but never
        which messages exist or how they are numbered/assigned."""
        g, packing, pl = setup
        a = redundant_broadcast(
            g, pl, packing, redundancy=2, drop_rate=0.1, seed=3, fault_seed=1,
            backend=backend,
        )
        b = redundant_broadcast(
            g, pl, packing, redundancy=2, drop_rate=0.1, seed=3, fault_seed=2,
            backend=backend,
        )
        assert set(a.per_message_coverage) == set(b.per_message_coverage)
        assert a.k == b.k
        assert a.per_message_coverage != b.per_message_coverage  # faults re-rolled
        # And the converse: the protocol seed feeds only the (unused) node
        # RNGs, so varying it alone changes nothing at all.
        c = redundant_broadcast(
            g, pl, packing, redundancy=2, drop_rate=0.1, seed=4, fault_seed=1,
            backend=backend,
        )
        assert c.per_message_coverage == a.per_message_coverage
        assert c.dropped_messages == a.dropped_messages

    def test_protocol_rng_streams_untouched_by_faults(self):
        """A program's ctx.rng draws are identical whatever the fault seed —
        the fault RNG is a dedicated stream, not a tap on the node RNGs."""

        class _Draw(NodeProgram):
            def __init__(self, node):
                super().__init__()
                self.node = node

            def on_start(self, ctx):
                self.output["draw"] = float(ctx.rng.random())
                ctx.send_all((1,))

            def on_round(self, ctx):
                pass

        g = cycle_graph(8)
        draws = []
        for fault_seed in (1, 2):
            sim = FaultySimulator(
                Network(g), _Draw, drop_rate=0.7, fault_seed=fault_seed, seed=123
            )
            result = sim.run()
            assert sim.dropped > 0
            draws.append(result.outputs("draw"))
        assert draws[0] == draws[1]


class TestAdversarySchedules:
    def test_plans_merge_and_compose(self):
        a = FaultPlan(dead_edges={1, 2}, drop_rate=0.5, mobile={3: {4}})
        b = FaultPlan(dead_edges={2, 5}, drop_rate=0.5, mobile={3: {6}, 7: {8}})
        m = a.merged(b)
        assert m.dead_edges == frozenset({1, 2, 5})
        assert m.mobile == {3: frozenset({4, 6}), 7: frozenset({8})}
        assert m.drop_rate == pytest.approx(0.75)  # independent coins
        assert FaultPlan().is_null and not m.is_null

    def test_invalid_plan_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValidationError):
            RandomLoss(-0.2)

    def test_static_saboteur_targets_a_tree(self, setup):
        g, packing, pl = setup
        plan = StaticSaboteur(tree_index=0).compile(g, packing=packing)
        assert plan.dead_edges == frozenset(tree_edge_ids(packing, 0))
        with pytest.raises(ValidationError):
            StaticSaboteur(tree_index=0).compile(g)  # needs the packing

    def test_sweeping_mobile_respects_budget(self):
        g = thick_cycle(6, 4)
        adv = MobileAdversary.sweeping(range(g.m), budget=3, rounds=10, start=2)
        plan = adv.compile(g)
        assert set(plan.mobile) == set(range(2, 12))
        assert all(len(es) == 3 for es in plan.mobile.values())
        covered = set().union(*plan.mobile.values())
        assert covered <= set(range(g.m))

    def test_composition_equals_explicit_args(self, setup):
        """An adversary schedule and the equivalent explicit triple produce
        the same report (the schedule is sugar, not new semantics)."""
        g, packing, pl = setup
        dead = tree_edge_ids(packing, 0)
        adv = StaticSaboteur(dead) + RandomLoss(0.1) + MobileAdversary({4: {0, 1}})
        via_schedule = redundant_broadcast(
            g, pl, packing, redundancy=2, adversary=adv, seed=7
        )
        explicit = redundant_broadcast(
            g, pl, packing, redundancy=2, dead_edges=dead, drop_rate=0.1,
            mobile={4: {0, 1}}, seed=7,
        )
        assert via_schedule.per_message_coverage == explicit.per_message_coverage
        assert via_schedule.dropped_messages == explicit.dropped_messages
        assert compose_schedules(StaticSaboteur(dead)).compile(g).dead_edges == frozenset(dead)

    def test_targeted_cut_adversary_compiles_deterministically(self, setup):
        g, packing, pl = setup
        adv = TargetedCutAdversary(eps=0.5, budget=8, candidates=4, seed=3, tau=2)
        p1 = adv.compile(g, packing=packing)
        p2 = TargetedCutAdversary(
            eps=0.5, budget=8, candidates=4, seed=3, tau=2
        ).compile(g, packing=packing)
        assert p1.dead_edges == p2.dead_edges
        assert 0 < len(p1.dead_edges) <= 8
        assert p1.drop_rate == 0.0 and not p1.mobile

    def test_targeted_cut_unbudgeted_isolates_lightest_cut(self, setup):
        """With no budget the attacker kills its lightest candidate cut
        whole — redundancy cannot route around a severed cut, which is
        exactly the Theorem 1 bandwidth argument in reverse."""
        g, packing, pl = setup
        adv = TargetedCutAdversary(eps=0.5, candidates=4, seed=3, tau=2)
        rep = redundant_broadcast(
            g, pl, packing, redundancy=packing.size, adversary=adv, seed=7
        )
        assert rep.min_coverage < 1.0


class TestRootPolicies:
    """ISSUE 7 countermeasure: root assignment per color class."""

    def test_shared_is_the_theorem_1_default(self):
        g = thick_cycle(10, 10)
        assert resolve_roots(g, 3, roots="shared") == [0, 0, 0]
        assert "shared" in ROOT_POLICIES

    def test_spread_roots_are_distinct_and_spaced(self):
        g = thick_cycle(10, 10)
        roots = resolve_roots(g, 3, roots="spread")
        assert roots == [0, 33, 66]
        assert len(set(roots)) == 3

    def test_explicit_list_passes_through(self):
        g = thick_cycle(10, 10)
        assert resolve_roots(g, 3, roots=[5, 50, 95]) == [5, 50, 95]

    def test_cut_aware_avoids_light_cut_targets(self):
        """Cut-aware roots land on distinct heavy-cut nodes, so a budgeted
        cut attacker pays more per beheaded class than against 'shared'."""
        g = thick_cycle(10, 10)
        roots = resolve_roots(g, 3, roots="cut-aware", seed=2)
        assert len(set(roots)) == 3
        assert all(0 <= r < g.n for r in roots)
        # Deterministic per (graph, policy, seed).
        assert roots == resolve_roots(g, 3, roots="cut-aware", seed=2)

    def test_invalid_policies_rejected(self):
        g = thick_cycle(5, 4)
        with pytest.raises(ValidationError):
            resolve_roots(g, 2, roots="bogus")
        with pytest.raises(ValidationError):
            resolve_roots(g, 2, roots=[0])  # wrong length
        with pytest.raises(ValidationError):
            resolve_roots(g, 2, roots=[0, g.n])  # out of range
        with pytest.raises(ValidationError):
            resolve_roots(g, 0)

    def test_packing_trees_rooted_per_policy(self):
        g = thick_cycle(10, 10)
        packing, _ = build_packing_with_retry(
            g, 3, seed=2, distributed=False, roots="spread"
        )
        assert packing.roots == [0, 33, 66]
        for tree, root in zip(packing.trees, packing.roots):
            assert tree.root == root
        assert packing.class_masks is not None

    def test_spread_packing_broadcasts_cleanly(self):
        g = thick_cycle(10, 10)
        packing, _ = build_packing_with_retry(
            g, 3, seed=2, distributed=False, roots="spread"
        )
        pl = uniform_random_placement(g.n, 60, seed=3)
        rep = redundant_broadcast(g, pl, packing, redundancy=2)
        assert rep.min_coverage == 1.0

    def test_spread_beats_shared_under_targeted_cut(self):
        """The E16 counter: same budget, same decomposition seed — the
        attack that zeroes every shared-root message leaves most of the
        spread-root traffic standing."""
        g = thick_cycle(10, 10)
        pl = uniform_random_placement(g.n, 60, seed=3)
        pl.pop(0, None)  # no defense can deliver *from* the severed node
        adv = TargetedCutAdversary(budget=int(g.degrees()[0]), seed=2)
        reps = {}
        for policy in ("shared", "spread"):
            packing, _ = build_packing_with_retry(
                g, 3, seed=2, distributed=False, roots=policy
            )
            reps[policy] = redundant_broadcast(
                g, pl, packing, redundancy=2, adversary=adv, seed=0
            )
        covs = {
            p: sum(r.per_message_coverage.values()) / r.k for p, r in reps.items()
        }
        assert covs["shared"] == 0.0  # total collapse, all classes beheaded
        assert covs["spread"] > 0.85  # only the severed neighborhood suffers


class TestCoverageRepair:
    """ISSUE 7 graceful degradation: detect dead classes, re-root or
    rebuild, report the cost (numbers pinned on the module fixture)."""

    def test_reroot_path_restores_coverage(self, setup):
        g, packing, pl = setup
        # Damage away from the root: tree 0 stays attached at the root but
        # loses its far side, so a re-root (not a rebuild) suffices.
        dead = sorted(tree_edge_ids(packing, 0))[-12:]
        out = repair_coverage(g, pl, packing, redundancy=1, dead_edges=dead)
        assert out.initial.min_coverage == pytest.approx(0.7)
        assert out.final.min_coverage == 1.0
        assert out.broken_channels == [0]
        assert out.rerooted == {0: 97} and not out.rebuilt
        assert out.attempts == 1 and out.repair_rounds > 0
        assert out.recovered and out.improvement == pytest.approx(0.3)

    def test_rebuild_path_restores_coverage(self, setup):
        g, packing, pl = setup
        # Killing tree 0 whole takes the root's own class edges with it —
        # no re-root can span, so the loop falls back to a full rebuild.
        dead = sorted(tree_edge_ids(packing, 0))
        out = repair_coverage(g, pl, packing, redundancy=1, dead_edges=dead)
        assert out.initial.min_coverage == 0.0
        assert out.final.min_coverage == 1.0
        assert out.rebuilt and out.rerooted == {}
        assert out.repair_rounds > 0
        assert out.packing is not packing  # repaired packing is returned

    def test_transient_loss_triggers_no_structural_repair(self, setup):
        g, packing, pl = setup
        out = repair_coverage(
            g, pl, packing, redundancy=1, drop_rate=0.2, fault_seed=7
        )
        assert out.final is out.initial
        assert not out.rebuilt and out.rerooted == {}
        assert out.repair_rounds == 0

    def test_clean_run_returns_early(self, setup):
        g, packing, pl = setup
        out = repair_coverage(g, pl, packing, redundancy=1)
        assert out.initial.min_coverage == 1.0
        assert out.final is out.initial
        assert out.attempts == 0 and out.repair_rounds == 0

    def test_unrepairable_cut_degrades_gracefully(self, setup):
        """Severing the shared root entirely: re-roots cannot span and the
        rebuild's residual graph is disconnected — the loop must surrender
        cleanly (partial results stand, no exception)."""
        g, packing, _ = setup
        pl = dict(uniform_random_placement(g.n, 90, seed=3))
        pl.pop(0, None)
        dead = sorted(
            int(e) for e in np.nonzero((g.edge_u == 0) | (g.edge_v == 0))[0]
        )
        out = repair_coverage(g, pl, packing, redundancy=1, dead_edges=dead)
        assert out.broken_channels == [0, 1, 2]  # every shared-root class
        assert out.final.min_coverage == 0.0
        assert not out.rebuilt and not out.recovered
        assert out.attempts == 1  # it tried, and charged rounds for it

    @pytest.mark.parametrize("backend", ["simulator", "vectorized"])
    def test_message_and_bit_totals_reported(self, setup, backend):
        g, packing, pl = setup
        rep = redundant_broadcast(g, pl, packing, redundancy=1, backend=backend)
        assert rep.total_messages > 0
        assert rep.total_bits > 2 * rep.total_messages  # kind bits alone


class TestAdversaryJSON:
    """ISSUE 7 satellite: schedules and plans round-trip through JSON."""

    @pytest.fixture(scope="class")
    def host(self):
        g = thick_cycle(8, 5)
        packing, _ = build_packing_with_retry(g, 2, seed=1, distributed=False)
        return g, packing

    @pytest.mark.parametrize(
        "adv",
        [
            StaticSaboteur({3, 1, 4}),
            StaticSaboteur(tree_index=1),
            MobileAdversary({2: {0, 1}, 5: {3}}),
            RandomLoss(0.25),
            RandomLoss(1.0),
            TargetedCutAdversary(eps=0.5, budget=4, candidates=4, seed=3, tau=2),
            StaticSaboteur({5}) + RandomLoss(0.1),
            compose_schedules(
                MobileAdversary({2: {0}}), RandomLoss(0.05), StaticSaboteur({5})
            ),
        ],
    )
    def test_schedule_round_trips_to_same_plan(self, host, adv):
        g, packing = host
        data = json.loads(json.dumps(adv.to_json()))  # through real JSON
        rebuilt = AdversarySchedule.from_json(data)
        assert rebuilt.compile(g, packing=packing) == adv.compile(
            g, packing=packing
        )
        assert rebuilt.to_json() == adv.to_json()

    def test_fault_plan_round_trips(self):
        plan = FaultPlan(
            dead_edges={7, 2}, drop_rate=0.5, mobile={3: {1, 2}, 9: {0}}
        )
        data = json.loads(json.dumps(plan.to_json()))
        assert FaultPlan.from_json(data) == plan
        assert FaultPlan.from_json(json.loads(json.dumps(FaultPlan().to_json()))).is_null

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            AdversarySchedule.from_json({"type": "quantum"})


# Dyadic rates: exact under the independent-coins combination, so the
# algebraic properties below hold with == rather than approx.
_RATES = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0])
_EDGES = st.frozensets(st.integers(0, 30), max_size=5)
_PLANS = st.builds(
    FaultPlan,
    dead_edges=_EDGES,
    drop_rate=_RATES,
    mobile=st.dictionaries(st.integers(1, 8), _EDGES, max_size=3),
)
_PLAN_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestFaultPlanProperties:
    """ISSUE 7 satellite: FaultPlan.merged is a commutative monoid action
    and validate_for holds at both drop-rate boundaries."""

    @_PLAN_SETTINGS
    @given(a=_PLANS, b=_PLANS)
    def test_merged_commutative(self, a, b):
        x, y = a.merged(b), b.merged(a)
        assert x.dead_edges == y.dead_edges
        assert x.mobile == y.mobile
        assert x.drop_rate == y.drop_rate

    @_PLAN_SETTINGS
    @given(a=_PLANS, b=_PLANS, c=_PLANS)
    def test_merged_associative(self, a, b, c):
        x, y = a.merged(b).merged(c), a.merged(b.merged(c))
        assert x.dead_edges == y.dead_edges
        assert x.mobile == y.mobile
        assert x.drop_rate == y.drop_rate

    @_PLAN_SETTINGS
    @given(p=_PLANS)
    def test_null_plan_is_identity(self, p):
        m = FaultPlan().merged(p)
        assert (m.dead_edges, m.drop_rate, m.mobile) == (
            p.dead_edges, p.drop_rate, p.mobile
        )

    @_PLAN_SETTINGS
    @given(p=_PLANS, rate=st.sampled_from([0.0, 1.0]))
    def test_validate_for_at_rate_boundaries(self, p, rate):
        plan = FaultPlan(p.dead_edges, rate, p.mobile)
        assert plan.validate_for(31) is plan  # all generated ids < 31
        ids = set(plan.dead_edges) | {
            e for es in plan.mobile.values() for e in es
        }
        if ids:
            with pytest.raises(ValidationError):
                plan.validate_for(max(ids))  # largest id now out of range

    @_PLAN_SETTINGS
    @given(rate=st.sampled_from([0.0, 1.0]))
    def test_boundary_rates_are_legal_plans(self, rate):
        plan = FaultPlan(drop_rate=rate)
        assert plan.validate_for(0) is plan
        assert plan.is_null == (rate == 0.0)


class TestBackendReportEquality:
    """Spot equality here; the randomized sweep lives in the engine tests."""

    def test_reports_bit_identical(self, setup):
        g, packing, pl = setup
        kwargs = dict(
            redundancy=2,
            dead_edges=tree_edge_ids(packing, 1),
            drop_rate=0.15,
            mobile={3: {0, 1, 2}},
            seed=9,
            fault_seed=10,
            collect_receipts=True,
        )
        sim = redundant_broadcast(g, pl, packing, **kwargs)
        vec = redundant_broadcast(g, pl, packing, backend="vectorized", **kwargs)
        assert sim.rounds == vec.rounds
        assert sim.dropped_messages == vec.dropped_messages
        assert sim.per_message_coverage == vec.per_message_coverage
        assert sim.receipts == vec.receipts
        assert sim.fault_rng_state == vec.fault_rng_state
        assert (sim.backend, vec.backend) == ("simulator", "vectorized")
